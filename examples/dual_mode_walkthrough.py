"""A walkthrough of dual-mode execution (the paper's Fig. 6 scenario).

Builds a program whose regions pull the compiler in different directions
-- a high-ILP block (coupled mode), a miss-heavy strand loop and a
pipelined pointer loop (decoupled mode), and a DOALL loop (speculative LLP)
-- then shows the per-region strategy decisions, a disassembly excerpt of
the per-core streams, and the runtime mode/stall statistics.

    python examples/dual_mode_walkthrough.py
"""

from repro.arch import four_core, single_core
from repro.compiler import VoltronCompiler
from repro.isa import ProgramBuilder, run_program
from repro.sim import VoltronMachine
from repro.workloads.kernels import (
    KernelContext,
    doall_kernel,
    dswp_kernel,
    ilp_kernel,
    strand_kernel,
)


def build_program():
    pb = ProgramBuilder("walkthrough")
    fb = pb.function("main")
    fb.block("entry")
    ctx = KernelContext(pb=pb, fb=fb, seed=42)
    outputs = [
        ilp_kernel(ctx, trips=96, chains=4, depth=4),
        strand_kernel(ctx, trips=64),
        dswp_kernel(ctx, trips=96),
        doall_kernel(ctx, trips=128),
    ]
    fb.halt()
    return pb.finish(), outputs


def main():
    program, outputs = build_program()
    compiler = VoltronCompiler(program)
    compiled = compiler.compile("hybrid", four_core())

    print("== region decisions ==")
    seen = set()
    for (fn, label), entry in sorted(compiled.attrs["regions"].items()):
        key = (entry["rid"], entry["strategy"], entry["origin"])
        if key in seen:
            continue
        seen.add(key)
        print(f"  region {entry['rid']:2d}: {entry['strategy']:8s}"
              f" (loop at {fn}:{entry['origin']})")

    print("\n== per-core stream sizes ==")
    for core in range(4):
        ops = sum(
            sum(1 for _ in block.ops())
            for function in compiled.streams[core].values()
            for block in function.ordered_blocks()
        )
        print(f"  core {core}: {ops} static ops")

    reference = run_program(program)
    baseline = VoltronMachine(
        compiler.compile("baseline", single_core()), single_core()
    )
    base_cycles = baseline.run().cycles
    machine = VoltronMachine(compiled, four_core())
    stats = machine.run()
    for out in outputs:
        assert machine.array_values(out) == reference.array_values(program, out)

    print("\n== execution ==")
    print(f"  baseline: {base_cycles} cycles; hybrid 4-core: {stats.cycles} "
          f"cycles; speedup {base_cycles / stats.cycles:.2f}x")
    print(f"  mode time: {stats.mode_fraction('coupled'):.0%} coupled / "
          f"{stats.mode_fraction('decoupled'):.0%} decoupled "
          f"({stats.mode_switches} switches)")
    print(f"  transactions: {stats.tx_commits} commits, "
          f"{stats.tx_aborts} aborts; {stats.spawns} thread spawns")
    print("\n== per-core stall profile (cycles) ==")
    for core_id, core in enumerate(stats.cores):
        interesting = {
            name: value for name, value in core.stalls.items() if value
        }
        print(f"  core {core_id}: busy={core.busy} stalls={interesting}")


if __name__ == "__main__":
    main()
