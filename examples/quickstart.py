"""Quickstart: author a program, compile it for Voltron, simulate it.

Runs the same little kernel as the paper's Fig. 7 sketch -- an elementwise
loop -- through the whole stack: reference interpretation, hybrid
compilation for a 4-core Voltron, cycle simulation, and a correctness
check, printing speedup and mode statistics.

    python examples/quickstart.py
"""

from repro.arch import four_core, single_core
from repro.compiler import VoltronCompiler
from repro.isa import ProgramBuilder, run_program
from repro.sim import VoltronMachine


def build_program(n=128):
    pb = ProgramBuilder("quickstart")
    u = pb.alloc("u", n, init=range(1, n + 1))
    rp = pb.alloc("rp", n, init=range(2, n + 2))
    uf = pb.alloc("uf", n)
    rpf = pb.alloc("rpf", n)
    fb = pb.function("main")
    fb.block("entry")
    scalef = fb.mov(3)
    # The gsmdecode loop of paper Fig. 7:
    #   for (i = 0; i < n; ++i) { uf[i] = u[i]; rpf[i] = rp[i] * scalef; }
    with fb.counted_loop("fig7_loop", 0, n) as i:
        fb.store(uf.base, i, fb.load(u.base, i))
        fb.store(rpf.base, i, fb.mul(fb.load(rp.base, i), scalef))
    fb.halt()
    return pb.finish()


def main():
    program = build_program()

    # 1. Reference semantics (and the profile the compiler will use).
    reference = run_program(program)
    print(f"interpreter executed {reference.dynamic_ops} operations")

    # 2. Compile: profiling -> region selection -> partitioning ->
    #    scheduling -> per-core machine code.
    compiler = VoltronCompiler(program)
    baseline = compiler.compile("baseline", single_core())
    hybrid = compiler.compile("hybrid", four_core())
    regions = {
        entry["strategy"] for entry in hybrid.attrs["regions"].values()
    }
    print(f"hybrid compile chose region strategies: {sorted(regions)}")

    # 3. Simulate both machines.
    base_machine = VoltronMachine(baseline, single_core())
    base_stats = base_machine.run()
    machine = VoltronMachine(hybrid, four_core())
    stats = machine.run()

    # 4. Check correctness against the interpreter.
    for array in ("uf", "rpf"):
        assert machine.array_values(array) == reference.array_values(
            program, array
        ), f"array {array} diverged!"
    print("outputs match the reference interpreter")

    # 5. Report.
    print(f"baseline (1 core): {base_stats.cycles} cycles")
    print(f"voltron  (4 core): {stats.cycles} cycles")
    print(f"speedup: {base_stats.cycles / stats.cycles:.2f}x")
    print(
        "time in modes: "
        f"{stats.mode_fraction('coupled'):.0%} coupled, "
        f"{stats.mode_fraction('decoupled'):.0%} decoupled; "
        f"transactions: {stats.tx_commits} committed, "
        f"{stats.tx_aborts} aborted"
    )


if __name__ == "__main__":
    main()
