"""Regenerate the paper's Figure 3 for a subset of the suite.

For each benchmark, each region is timed under each single-strategy
compilation on a 4-core machine, and its share of serial execution time
is attributed to the parallelism type that ran it fastest (or to "single
core" when nothing beat the baseline) -- the paper's methodology.

    python examples/parallelism_breakdown.py [benchmark ...]
"""

import sys

import repro
from repro.harness import render_bar_breakdown

DEFAULT_SUBSET = ["gsmdecode", "164.gzip", "179.art", "171.swim", "cjpeg"]


def main(benchmarks=None):
    names = benchmarks or DEFAULT_SUBSET
    table = repro.run_figure("3", benchmarks=names)
    print(
        render_bar_breakdown(
            "Figure 3: fraction of execution best accelerated by each "
            "parallelism type (4 cores)",
            table,
            columns=("ilp", "tlp", "llp", "single"),
        )
    )


if __name__ == "__main__":
    main(sys.argv[1:] or None)
