"""Statistical DOALL mis-speculation in action (paper Section 3, TM).

The paper's compiler parallelizes loops that *profiling* says are
independent, even when the compiler cannot prove it.  This example builds
a histogram-update loop whose conflict behaviour depends on the input:
the profiling input is a permutation (no two iterations touch the same
bin), so the loop is classified statistical DOALL -- but the production
input funnels many updates into one bin, so the speculative chunks
conflict, the transactional memory rolls them back, and execution still
produces exactly the serial result.

    python examples/speculative_rollback.py
"""

from repro.arch import four_core
from repro.compiler import VoltronCompiler
from repro.isa import ProgramBuilder, run_program
from repro.sim import VoltronMachine

N = 64


def build_program():
    pb = ProgramBuilder("histogram")
    clean = pb.alloc("clean_idx", N, init=[(i * 7) % N for i in range(N)])
    hot = pb.alloc("hot_idx", N, init=[i % 4 for i in range(N)])
    bins = pb.alloc("bins", N)
    fb = pb.function("main", n_params=1)
    fb.block("entry")
    (which,) = fb.function.params
    use_clean = fb.cmp_eq(which, 0)
    base = fb.select(use_clean, clean.base, hot.base)
    with fb.counted_loop("hist", 0, N) as i:
        bin_index = fb.load(base, i)
        count = fb.load(bins.base, bin_index)
        fb.store(bins.base, bin_index, fb.add(count, 1))
    fb.halt()
    return pb.finish()


def main():
    program = build_program()

    # Profile with the clean (conflict-free) input, as the paper profiles
    # with a train input.
    compiler = VoltronCompiler(program, profile_args=(0,))
    compiled = compiler.compile("llp", four_core())
    strategies = {e["strategy"] for e in compiled.attrs["regions"].values()}
    print(f"compiler classified the loop as: {sorted(strategies)}")

    for which, label in ((0, "clean permutation"), (1, "hot-bin input")):
        reference = run_program(program, (which,))
        machine = VoltronMachine(compiled, four_core(), args=(which,))
        stats = machine.run()
        ok = machine.array_values("bins") == reference.array_values(
            program, "bins"
        )
        print(
            f"{label:18s}: {stats.tx_commits} commits, "
            f"{stats.tx_aborts} rollbacks, correct={ok}, "
            f"{stats.cycles} cycles"
        )
        assert ok


if __name__ == "__main__":
    main()
