"""Visualize dual-mode execution cycle by cycle.

Traces a tiny program with one coupled (ILP) region and one DOALL region
and prints a per-core timeline around each region, making the lock-step
PUT/GET alignment, the MODE_SWITCH brackets, the SPAWN/SLEEP protocol,
and the TX_BEGIN/TX_COMMIT envelopes visible.

    python examples/trace_dual_mode.py
"""

from repro.arch import four_core
from repro.compiler import compile_program
from repro.harness import Tracer
from repro.isa import ProgramBuilder
from repro.isa.operations import Opcode
from repro.sim import VoltronMachine
from repro.workloads.kernels import KernelContext, doall_kernel, ilp_kernel


def main():
    pb = ProgramBuilder("traced")
    fb = pb.function("main")
    fb.block("entry")
    ctx = KernelContext(pb=pb, fb=fb, seed=8)
    ilp_kernel(ctx, trips=12, chains=4)
    doall_kernel(ctx, trips=32)
    fb.halt()
    program = pb.finish()

    compiled = compile_program(program, 4, "hybrid")
    machine = VoltronMachine(compiled, four_core())
    tracer = Tracer.attach(machine, limit=50_000)
    machine.run()

    # Find the first mode switch: the coupled->decoupled boundary.
    switch = next(
        e for e in tracer.events if e.op.opcode is Opcode.MODE_SWITCH
    )
    spawn = next(e for e in tracer.events if e.op.opcode is Opcode.SPAWN)

    print("== coupled ILP execution (lock-step; P>/ <G are the direct")
    print("   network; B* broadcasts the branch predicate) ==")
    print(tracer.render(start=tracer.events[0].cycle + 230, width=44))
    print()
    print("== entering the DOALL region (MS = mode switch, sp = spawn,")
    print("   T( )T = transaction bracket, zz = sleep, li = listen) ==")
    print(tracer.render(start=spawn.cycle - 4, width=44))
    print()
    histogram = tracer.opcode_histogram()
    interesting = (
        Opcode.PUT, Opcode.GET, Opcode.BCAST, Opcode.SEND, Opcode.RECV,
        Opcode.SPAWN, Opcode.SLEEP, Opcode.MODE_SWITCH,
        Opcode.TX_BEGIN, Opcode.TX_COMMIT,
    )
    print("== dynamic op counts (communication & mode machinery) ==")
    for opcode in interesting:
        if histogram.get(opcode):
            print(f"  {opcode.value:12s} {histogram[opcode]}")


if __name__ == "__main__":
    main()
