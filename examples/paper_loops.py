"""The paper's three worked examples (Sections 4.2, Figs. 7-9), measured.

* Fig. 7  -- gsmdecode DOALL loop, parallelized as speculative LLP
             (paper measured 1.9x on 2 cores);
* Fig. 8  -- 164.gzip match loop, compiled as decoupled fine-grain TLP
             (paper measured 1.2x);
* Fig. 9  -- gsmdecode filter loop with abundant ILP, coupled mode
             (paper measured 1.78x).

    python examples/paper_loops.py
"""

import repro

PAPER_NUMBERS = {
    "fig7_gsm_llp": 1.9,
    "fig8_gzip_strands": 1.2,
    "fig9_gsm_ilp": 1.78,
}


def main():
    measured = repro.run_figure("7-9", benchmarks=[])
    print(f"{'example':22s}{'paper':>8s}{'measured':>10s}")
    print("-" * 40)
    for label, paper_value in PAPER_NUMBERS.items():
        print(f"{label:22s}{paper_value:8.2f}{measured[label]:10.2f}")


if __name__ == "__main__":
    main()
