"""Figure 3: breakdown of exploitable parallelism on a 4-core system.

Paper: on average 30% of dynamic execution is best accelerated by ILP,
32% by fine-grain TLP, 31% by LLP, and 7% runs best on a single core,
with no single type dominating across benchmarks.
"""

from repro.harness import arithmean, render_bar_breakdown

COLUMNS = ("ilp", "tlp", "llp", "single")


def test_fig3_parallelism_breakdown(benchmark, runner):
    table = runner.fig3_breakdown()
    print()
    print(
        render_bar_breakdown(
            "Figure 3: fraction of execution best accelerated by each "
            "parallelism type (4 single-issue cores)",
            table,
            columns=COLUMNS,
        )
    )
    # Shape assertions from the paper's reading of the figure:
    averages = {
        column: arithmean([row[column] for row in table.values()])
        for column in COLUMNS
    }
    # No single type dominates (paper: 30/32/31/7).
    assert max(averages["ilp"], averages["tlp"], averages["llp"]) < 0.75
    assert all(v > 0.05 for k, v in averages.items() if k != "single")
    # Each parallel type wins at least one benchmark outright.
    for column in ("ilp", "tlp", "llp"):
        assert any(
            row[column] == max(row.values()) for row in table.values()
        ), f"{column} never dominates any benchmark"

    # Unit timed: one region-attribution pass over a cached runner.
    benchmark.pedantic(
        runner.fig3_breakdown, rounds=1, iterations=1, warmup_rounds=0
    )
