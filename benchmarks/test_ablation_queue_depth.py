"""Ablation: receive-queue depth provides the decoupling slack.

Paper Section 3.1: queue mode exists because "the execution of multiple
fine-grain threads are decoupled ... queue structures must be used to
buffer values".  With depth 1, credit-based flow control degenerates to
near-synchronous rendezvous and pipeline stages lose their slack; with
the default depth 16, stages run ahead and overlap stalls.
"""

import dataclasses

from repro.arch.config import NetworkConfig, mesh
from repro.compiler import VoltronCompiler
from repro.isa import ProgramBuilder
from repro.sim import VoltronMachine
from repro.workloads.kernels import KernelContext, dswp_kernel


def _pipeline_program():
    pb = ProgramBuilder("pipe")
    fb = pb.function("main")
    fb.block("entry")
    ctx = KernelContext(pb=pb, fb=fb, seed=13)
    dswp_kernel(ctx, trips=160, work_depth=6, chase_depth=1)
    fb.halt()
    return pb.finish()


def _cycles_with_depth(program, depth):
    config = dataclasses.replace(
        mesh(4), network=NetworkConfig(queue_depth=depth)
    )
    compiled = VoltronCompiler(program).compile("tlp", config)
    machine = VoltronMachine(compiled, config, max_cycles=30_000_000)
    return machine.run().cycles


def test_ablation_receive_queue_depth(benchmark):
    program = _pipeline_program()
    results = {depth: _cycles_with_depth(program, depth) for depth in (1, 2, 16)}
    print()
    print("Ablation: receive-queue depth on a DSWP pipeline (4 cores)")
    for depth, cycles in results.items():
        print(f"  depth {depth:2d}: {cycles} cycles")
    # Deeper queues never hurt, and the jump from rendezvous (1) to the
    # paper's buffered queues is measurable.
    assert results[16] <= results[2] <= results[1]
    assert results[16] < results[1]
    benchmark.pedantic(
        lambda: _cycles_with_depth(program, 16),
        rounds=1, iterations=1, warmup_rounds=0,
    )
