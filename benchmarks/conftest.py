"""Shared state for the figure-regeneration benchmarks.

One :class:`ExperimentRunner` is shared across every figure so the
(benchmark, cores, strategy) simulations are computed once; each figure
bench then renders its table from the shared results and times one
representative fresh unit of work with pytest-benchmark.
"""

import pytest

from repro import api


@pytest.fixture(scope="session")
def runner():
    return api.session(max_cycles=20_000_000)


@pytest.fixture(scope="session")
def small_runner():
    """A fresh runner over a three-benchmark subset, for timing units."""
    return api.session(
        benchmarks=["gsmdecode", "179.art", "171.swim"],
        max_cycles=20_000_000,
    )
