"""Figure 14: fraction of hybrid execution spent in each mode.

Paper: significant time in *both* modes overall; epic (abundant
fine-grain TLP) lives almost entirely in decoupled mode, while mixed
benchmarks such as cjpeg genuinely alternate.
"""

from repro.harness import arithmean, render_bar_breakdown


def test_fig14_mode_time(benchmark, runner):
    table = runner.fig14_mode_time(4)
    print()
    print(
        render_bar_breakdown(
            "Figure 14: time in each execution mode (hybrid, 4 cores)",
            table,
            columns=("coupled", "decoupled"),
        )
    )
    # Both modes are used across the suite.
    avg_coupled = arithmean([row["coupled"] for row in table.values()])
    assert 0.1 < avg_coupled < 0.9
    # epic is dominated by decoupled execution (paper's callout).
    assert table["epic"]["decoupled"] > 0.7
    # Some benchmark spends the majority of its time coupled.
    assert any(row["coupled"] > 0.5 for row in table.values())
    # Fractions are well-formed.
    for row in table.values():
        assert abs(row["coupled"] + row["decoupled"] - 1.0) < 1e-9

    benchmark.pedantic(
        lambda: runner.fig14_mode_time(4), rounds=1, iterations=1,
        warmup_rounds=0,
    )
