"""Figure 12: breakdown of synchronization stalls, coupled vs decoupled.

Paper: decoupled mode always spends less time on cache-miss stalls
(cores stall separately) -- on average under half of coupled mode's --
but pays extra receive-data, receive-predicate, and call/return
synchronization stalls that coupled mode does not have.
"""

from repro.harness import arithmean, render_table

SHOWN = ("istall", "dstall", "recv_data", "recv_pred", "call_sync")


def test_fig12_stall_breakdown(benchmark, runner):
    table = runner.fig12_stalls(4)
    flat = {}
    for name, row in table.items():
        for mode in ("coupled", "decoupled"):
            flat[f"{name} [{mode[:3]}]"] = {
                category: row[mode][category] for category in SHOWN
            }
    print()
    print(
        render_table(
            "Figure 12: stall cycles per core, normalized to serial "
            "execution time (4 cores; ILP=coupled vs fine-grain "
            "TLP=decoupled)",
            flat,
            columns=SHOWN,
            fmt="{:.3f}",
            average_row=False,
        )
    )

    cache_coupled = [
        row["coupled"]["istall"] + row["coupled"]["dstall"]
        for row in table.values()
    ]
    cache_decoupled = [
        row["decoupled"]["istall"] + row["decoupled"]["dstall"]
        for row in table.values()
    ]
    # Decoupled cache-miss stalls below coupled on average (paper: < half).
    assert arithmean(cache_decoupled) < 0.7 * arithmean(cache_coupled)
    # Decoupled mode is the only one paying communication stalls.
    for row in table.values():
        comm = (
            row["decoupled"]["recv_data"]
            + row["decoupled"]["recv_pred"]
            + row["decoupled"]["call_sync"]
        )
        coupled_comm = (
            row["coupled"]["recv_data"]
            + row["coupled"]["recv_pred"]
            + row["coupled"]["call_sync"]
        )
        assert coupled_comm == 0.0
        del comm  # present for most benchmarks; asserted in aggregate below
    assert any(
        row["decoupled"]["recv_data"] > 0 for row in table.values()
    )
    assert any(
        row["decoupled"]["recv_pred"] > 0 for row in table.values()
    )
    assert any(
        row["decoupled"]["call_sync"] > 0 for row in table.values()
    )

    benchmark.pedantic(
        lambda: runner.fig12_stalls(4), rounds=1, iterations=1,
        warmup_rounds=0,
    )
