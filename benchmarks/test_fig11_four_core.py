"""Figure 11: speedup exploiting each parallelism type alone, 4 cores.

Paper averages: ILP 1.33, fine-grain TLP 1.23, LLP 1.37, with the gains
from 2 to 4 cores largest for benchmarks that can use decoupled mode.
"""

from repro.harness import arithmean, render_table


def test_fig11_four_core_speedups(benchmark, runner):
    two = runner.fig10_11_speedups(2)
    four = runner.fig10_11_speedups(4)
    print()
    print(
        render_table(
            "Figure 11: 4-core speedup per parallelism type "
            "(baseline: 1 core)",
            four,
            columns=("ilp", "tlp", "llp"),
        )
    )
    avg4 = {
        s: arithmean([row[s] for row in four.values()])
        for s in ("ilp", "tlp", "llp")
    }
    avg2 = {
        s: arithmean([row[s] for row in two.values()])
        for s in ("ilp", "tlp", "llp")
    }
    # Four cores beat two cores for every strategy on average.
    for strategy in ("ilp", "tlp", "llp"):
        assert avg4[strategy] >= avg2[strategy] - 0.02
    # Paper: decoupled-mode strategies scale better from 2 to 4 cores
    # than coupled ILP does.
    ilp_gain = avg4["ilp"] - avg2["ilp"]
    decoupled_gain = max(avg4["tlp"] - avg2["tlp"], avg4["llp"] - avg2["llp"])
    assert decoupled_gain > ilp_gain
    # Magnitudes within 25% of the paper's averages.
    for strategy, paper_value in (("ilp", 1.33), ("tlp", 1.23), ("llp", 1.37)):
        assert abs(avg4[strategy] - paper_value) < 0.3 * paper_value

    benchmark.pedantic(
        lambda: runner.fig10_11_speedups(4), rounds=1, iterations=1,
        warmup_rounds=0,
    )
