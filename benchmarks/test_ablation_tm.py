"""Ablation: speculative DOALL under mis-speculation.

Paper Section 3/4.1: statistical DOALL loops run speculatively on the
low-cost TM; when the profile's independence claim fails at run time, the
TM rolls chunks back and ordered commit serializes them.  This bench
quantifies the cost curve: clean speculation ~ the DOALL win, heavy
conflicts degrade toward (but never below a constant factor of) serial
execution, and results stay exact throughout.
"""

from repro.arch.config import four_core, single_core
from repro.compiler import VoltronCompiler
from repro.isa import ProgramBuilder, run_program
from repro.sim import VoltronMachine

N = 96


def _histogram_program():
    """Histogram whose conflict rate depends on main's argument: arg is
    the number of hot iterations all hitting bin 0."""
    pb = ProgramBuilder("hist")
    idx = pb.alloc("idx", N, init=[(i * 11) % N for i in range(N)])
    bins = pb.alloc("bins", N)
    fb = pb.function("main", n_params=1)
    fb.block("entry")
    (hot,) = fb.function.params
    with fb.counted_loop("hist", 0, N) as i:
        raw = fb.load(idx.base, i)
        is_hot = fb.cmp_lt(i, hot)
        bin_index = fb.select(is_hot, 0, raw)
        count = fb.load(bins.base, bin_index)
        fb.store(bins.base, bin_index, fb.add(count, 1))
    fb.halt()
    return pb.finish()


def test_ablation_misspeculation_cost(benchmark):
    program = _histogram_program()
    compiler = VoltronCompiler(program, profile_args=(0,))
    compiled = compiler.compile("llp", four_core())
    table = compiled.attrs["regions"]
    assert any(e["strategy"] == "doall" for e in table.values())

    serial = VoltronMachine(
        compiler.compile("baseline", single_core()), single_core(), args=(0,)
    ).run().cycles

    print()
    print("Ablation: DOALL mis-speculation cost (4 cores)")
    rows = []
    for hot in (0, 8, 48, N):
        reference = run_program(program, (hot,))
        machine = VoltronMachine(compiled, four_core(), args=(hot,))
        stats = machine.run()
        assert machine.array_values("bins") == reference.array_values(
            program, "bins"
        )
        rows.append((hot, stats.tx_aborts, serial / stats.cycles))
        print(
            f"  hot={hot:3d}: {stats.tx_aborts} rollbacks, "
            f"speedup {serial / stats.cycles:.2f}"
        )

    clean_speedup = rows[0][2]
    worst_speedup = min(r[2] for r in rows)
    # Clean speculation wins; conflicts cost rollbacks; even fully
    # conflicting execution stays within a bounded factor of serial.
    assert clean_speedup > 1.2
    assert rows[-1][1] > 0  # the hot input really mis-speculates
    assert worst_speedup > 0.4

    benchmark.pedantic(
        lambda: VoltronMachine(compiled, four_core(), args=(N,)).run().cycles,
        rounds=1, iterations=1, warmup_rounds=0,
    )
