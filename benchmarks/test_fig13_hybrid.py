"""Figure 13: speedup exploiting hybrid parallelism with dual-mode
execution.

Paper: 2-core speedups range 1.13-1.98 (average 1.46); 4-core speedups
range 1.15-3.25 (average 1.83); hybrid execution beats every
single-parallelism compilation on average.
"""

from repro.harness import arithmean, render_table


def test_fig13_hybrid_speedups(benchmark, runner):
    hybrid = runner.fig13_hybrid()
    table = {
        name: {"2-core": v[2], "4-core": v[4]} for name, v in hybrid.items()
    }
    print()
    print(
        render_table(
            "Figure 13: hybrid (dual-mode) speedup on 2- and 4-core "
            "Voltron",
            table,
            columns=("2-core", "4-core"),
        )
    )
    h2 = [v[2] for v in hybrid.values()]
    h4 = [v[4] for v in hybrid.values()]

    # Magnitudes near the paper's averages (1.46 / 1.83).
    assert 1.2 < arithmean(h2) < 1.7
    assert 1.5 < arithmean(h4) < 2.2
    # 4-core range shape: some benchmark above 3x, none catastrophic.
    assert max(h4) > 2.8
    assert min(h4) > 0.95
    # Hybrid beats each individual strategy on average (the headline).
    singles4 = runner.fig10_11_speedups(4)
    for strategy in ("ilp", "tlp", "llp"):
        single_avg = arithmean([row[strategy] for row in singles4.values()])
        assert arithmean(h4) > single_avg
    # And 4 cores outperform 2 on average.
    assert arithmean(h4) > arithmean(h2)

    benchmark.pedantic(
        runner.fig13_hybrid, rounds=1, iterations=1, warmup_rounds=0
    )
