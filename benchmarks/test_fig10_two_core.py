"""Figure 10: speedup exploiting each parallelism type alone, 2 cores.

Paper averages: ILP 1.23, fine-grain TLP 1.16, LLP 1.18; 12/25 benchmarks
are best under ILP, 6 under fine-grain TLP, 7 under LLP.
"""

from repro.harness import arithmean, render_table

PAPER_AVG = {"ilp": 1.23, "tlp": 1.16, "llp": 1.18}


def test_fig10_two_core_speedups(benchmark, runner, small_runner):
    table = runner.fig10_11_speedups(2)
    print()
    print(
        render_table(
            "Figure 10: 2-core speedup per parallelism type "
            "(baseline: 1 core)",
            table,
            columns=("ilp", "tlp", "llp"),
        )
    )
    averages = {
        s: arithmean([row[s] for row in table.values()])
        for s in ("ilp", "tlp", "llp")
    }
    # Magnitudes: each average within 25% of the paper's.
    for strategy, paper_value in PAPER_AVG.items():
        assert abs(averages[strategy] - paper_value) < 0.25 * paper_value, (
            f"{strategy}: {averages[strategy]:.2f} vs paper {paper_value}"
        )
    # Diversity: each strategy is the best choice for several benchmarks.
    winners = {"ilp": 0, "tlp": 0, "llp": 0}
    for row in table.values():
        winners[max(row, key=row.get)] += 1
    assert all(count >= 2 for count in winners.values()), winners

    # Unit timed: one fresh 2-core compile+simulate of gsmdecode.
    def unit():
        fresh = type(small_runner)(benchmarks=["gsmdecode"])
        return fresh.run("gsmdecode", 2, "ilp").cycles

    benchmark.pedantic(unit, rounds=1, iterations=1, warmup_rounds=0)
