"""Figures 7-9: the paper's three worked loop examples on 2 cores.

Paper-measured speedups: Fig. 7 gsmdecode DOALL loop 1.9x (LLP); Fig. 8
164.gzip match loop 1.2x (fine-grain TLP strands); Fig. 9 gsmdecode
filter loop 1.78x (coupled ILP).
"""

import pytest

PAPER = {
    "fig7_gsm_llp": 1.9,
    "fig8_gzip_strands": 1.2,
    "fig9_gsm_ilp": 1.78,
}


def test_fig7_8_9_worked_examples(benchmark, runner):
    measured = runner.figure7_9_examples()
    print()
    print(f"{'example':22s}{'paper':>8s}{'measured':>10s}")
    for label, paper_value in PAPER.items():
        print(f"{label:22s}{paper_value:8.2f}{measured[label]:10.2f}")

    # Shape: every technique wins on its loop...
    for label in PAPER:
        assert measured[label] > 1.05, f"{label} shows no speedup"
    # ... and the relative ordering matches the paper: the DOALL loop
    # gains most, the strand loop least.
    assert measured["fig7_gsm_llp"] > measured["fig8_gzip_strands"]
    assert measured["fig9_gsm_ilp"] > measured["fig8_gzip_strands"]
    # Rough magnitude agreement (within 40% of the paper's numbers).
    for label, paper_value in PAPER.items():
        assert measured[label] == pytest.approx(paper_value, rel=0.4)

    benchmark.pedantic(
        runner.figure7_9_examples, rounds=1, iterations=1, warmup_rounds=0
    )
