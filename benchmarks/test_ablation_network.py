"""Ablation: the scalar operand network's latency is load-bearing.

The paper's motivation (Sections 1-2): conventional multicores
communicate operands *through memory*, which is far too slow for
fine-grain TLP.  This ablation re-runs decoupled fine-grain TLP with the
queue-mode network slowed to memory-like latency and shows the speedup
collapsing -- i.e. Voltron's gains come from the network, not merely
from having more cores.
"""

import dataclasses

import pytest

from repro.arch.config import MachineConfig, NetworkConfig, mesh, single_core
from repro.compiler import VoltronCompiler
from repro.sim import VoltronMachine
from repro.workloads.suite import build

#: Memory-like operand transport: dozens of cycles to move one value,
#: approximating communication through a shared cache line.
SLOW_NETWORK = NetworkConfig(
    queue_entry_cycles=20,
    queue_cycles_per_hop=2,
    queue_exit_cycles=20,
    queue_depth=16,
)


def _tlp_cycles(bench, network=None):
    config = mesh(4)
    if network is not None:
        config = dataclasses.replace(config, network=network)
    compiler = VoltronCompiler(bench.program)
    compiled = compiler.compile("tlp", config)
    machine = VoltronMachine(compiled, config, max_cycles=30_000_000)
    return machine.run().cycles


def test_ablation_queue_network_latency(benchmark):
    bench = build("164.gzip")  # its match loop communicates every iteration
    compiler = VoltronCompiler(bench.program)
    baseline = VoltronMachine(
        compiler.compile("baseline", single_core()), single_core()
    ).run().cycles

    fast = _tlp_cycles(bench)
    slow = _tlp_cycles(bench, SLOW_NETWORK)
    fast_speedup = baseline / fast
    slow_speedup = baseline / slow
    print()
    print("Ablation: queue-mode operand network latency (164.gzip, 4-core TLP)")
    print(f"  paper-network  (2 + hops cycles): speedup {fast_speedup:.2f}")
    print(f"  memory-like    (40 + 2/hop):      speedup {slow_speedup:.2f}")

    assert fast_speedup > 1.2  # the network enables fine-grain TLP...
    assert slow_speedup < fast_speedup - 0.2  # ...and slowing it hurts
    benchmark.pedantic(
        lambda: _tlp_cycles(bench), rounds=1, iterations=1, warmup_rounds=0
    )
