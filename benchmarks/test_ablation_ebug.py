"""Ablation: eBUG's three decoupled-mode factors (paper Section 4.1).

eBUG extends BUG with (1) heavy weights keeping likely-missing loads with
their consumers, (2) weights keeping dependent memory ops together, and
(3) a memory-balancing penalty that spreads independent streams so their
misses overlap.  Zeroing those terms reduces eBUG to plain BUG-for-
decoupled-mode; this ablation measures what that costs on the
miss-dominated 179.art.
"""

import pytest

from repro.arch.config import mesh, single_core
from repro.compiler import VoltronCompiler
from repro.compiler.partition.ebug import EBugPartitioner
from repro.sim import VoltronMachine
from repro.workloads.suite import build


def _tlp_cycles(program):
    config = mesh(4)
    compiled = VoltronCompiler(program).compile("tlp", config)
    machine = VoltronMachine(compiled, config, max_cycles=30_000_000)
    return machine.run().cycles


def test_ablation_ebug_weights(benchmark):
    bench = build("179.art")
    baseline = VoltronMachine(
        VoltronCompiler(bench.program).compile("baseline", single_core()),
        single_core(),
    ).run().cycles

    with_weights = _tlp_cycles(bench.program)

    saved = (
        EBugPartitioner.miss_edge_weight,
        EBugPartitioner.memory_dep_weight,
        EBugPartitioner.memory_balance_penalty,
    )
    try:
        EBugPartitioner.miss_edge_weight = 0.0
        EBugPartitioner.memory_dep_weight = 0.0
        EBugPartitioner.memory_balance_penalty = 0.0
        without_weights = _tlp_cycles(bench.program)
    finally:
        (
            EBugPartitioner.miss_edge_weight,
            EBugPartitioner.memory_dep_weight,
            EBugPartitioner.memory_balance_penalty,
        ) = saved

    speedup_with = baseline / with_weights
    speedup_without = baseline / without_weights
    print()
    print("Ablation: eBUG weights on 179.art (4-core fine-grain TLP)")
    print(f"  full eBUG:              speedup {speedup_with:.2f}")
    print(f"  weights zeroed (=BUG):  speedup {speedup_without:.2f}")

    # The weights must not hurt, and on a miss-dominated benchmark they
    # should pay for themselves.
    assert speedup_with >= speedup_without - 0.02
    benchmark.pedantic(
        lambda: _tlp_cycles(bench.program),
        rounds=1, iterations=1, warmup_rounds=0,
    )
