"""Program representation: basic blocks, functions (CFGs), whole programs.

A :class:`Function` is an ordered list of :class:`BasicBlock` forming a
control-flow graph.  Each block ends in at most one control operation; the
block records its ``taken`` successor (followed when the terminating branch
fires) and its ``fall`` successor (the fall-through).  Blocks carry region
annotations filled in by the compiler's selection pass: execution mode and
a region id, which the simulator uses to attribute time per mode (Fig. 14).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from .operations import CONTROL_OPCODES, Opcode, Operation, Reg
from .registers import RegisterAllocator

#: Opcodes that truly end a block.  CALL is control flow but resumes at the
#: next op, so it may appear mid-block.
TERMINATOR_OPCODES = frozenset({Opcode.BR, Opcode.RET, Opcode.HALT})


class BasicBlock:
    """A straight-line sequence of operations with one entry and one exit."""

    def __init__(self, label: str) -> None:
        self.label = label
        self.ops: List[Operation] = []
        self.taken: Optional[str] = None
        self.fall: Optional[str] = None
        # Compiler annotations.
        self.region: Optional[int] = None
        self.mode: str = "coupled"  # 'coupled' | 'decoupled'
        self.attrs: Dict[str, Any] = {}
        # Filled by the scheduler: number of issue slots (>= len of longest
        # per-core schedule within the block, NOP-padded in coupled mode).
        self.schedule_length: Optional[int] = None

    def append(self, op: Operation) -> Operation:
        self.ops.append(op)
        return op

    def terminator(self) -> Optional[Operation]:
        """The BR/RET/HALT ending this block, if any (CALL resumes
        mid-block and is not a terminator)."""
        for op in reversed(self.ops):
            if op.opcode in TERMINATOR_OPCODES:
                return op
        return None

    def successors(self) -> Tuple[str, ...]:
        succ = []
        if self.taken is not None:
            succ.append(self.taken)
        if self.fall is not None and self.fall != self.taken:
            succ.append(self.fall)
        return tuple(succ)

    def non_control_ops(self) -> List[Operation]:
        return [op for op in self.ops if op.opcode not in CONTROL_OPCODES]

    def __repr__(self) -> str:
        return f"<block {self.label}: {len(self.ops)} ops -> {self.successors()}>"


class Function:
    """A function: an entry block plus a CFG of basic blocks."""

    def __init__(self, name: str, params: Optional[List[Reg]] = None) -> None:
        self.name = name
        self.params: List[Reg] = list(params or [])
        self.blocks: Dict[str, BasicBlock] = {}
        self.block_order: List[str] = []
        self.entry: Optional[str] = None
        self.regs = RegisterAllocator()
        for reg in self.params:
            self.regs.reserve(reg)

    # -- construction ------------------------------------------------------

    def add_block(self, label: str) -> BasicBlock:
        if label in self.blocks:
            raise ValueError(f"duplicate block label {label!r} in {self.name}")
        block = BasicBlock(label)
        self.blocks[label] = block
        self.block_order.append(label)
        if self.entry is None:
            self.entry = label
        return block

    def remove_block(self, label: str) -> None:
        del self.blocks[label]
        self.block_order.remove(label)

    # -- queries -----------------------------------------------------------

    def block(self, label: str) -> BasicBlock:
        return self.blocks[label]

    def ordered_blocks(self) -> List[BasicBlock]:
        return [self.blocks[label] for label in self.block_order]

    def predecessors(self) -> Dict[str, Set[str]]:
        preds: Dict[str, Set[str]] = {label: set() for label in self.block_order}
        for block in self.ordered_blocks():
            for succ in block.successors():
                preds[succ].add(block.label)
        return preds

    def all_ops(self) -> Iterator[Operation]:
        for block in self.ordered_blocks():
            yield from block.ops

    def validate(self) -> None:
        """Raise if the CFG is structurally inconsistent."""
        if self.entry is None:
            raise ValueError(f"function {self.name} has no entry block")
        for block in self.ordered_blocks():
            for succ in block.successors():
                if succ not in self.blocks:
                    raise ValueError(
                        f"{self.name}:{block.label} targets unknown block {succ!r}"
                    )
            terminator = block.terminator()
            if terminator is not None and block.ops[-1] is not terminator:
                raise ValueError(
                    f"{self.name}:{block.label} has ops after its terminator"
                )
            if terminator is None and block.taken is not None:
                raise ValueError(
                    f"{self.name}:{block.label} has a taken edge but no branch"
                )
            for op in block.ops:
                if op.opcode is Opcode.PBR:
                    target = op.attrs.get("target")
                    if target is not None and target not in self.blocks:
                        raise ValueError(
                            f"{self.name}:{block.label} PBR to unknown "
                            f"block {target!r}"
                        )

    def __repr__(self) -> str:
        return f"<function {self.name}: {len(self.blocks)} blocks>"


@dataclass
class ArraySymbol:
    """A named region of the word-addressed memory."""

    name: str
    base: int
    size: int

    def addr(self, index: int) -> int:
        if not 0 <= index < self.size:
            raise IndexError(f"{self.name}[{index}] out of bounds (size {self.size})")
        return self.base + index


class Program:
    """A whole program: functions, an entry point, and a memory image."""

    def __init__(self, name: str = "program", entry: str = "main") -> None:
        self.name = name
        self.entry = entry
        self.functions: Dict[str, Function] = {}
        self.initial_memory: Dict[int, Any] = {}
        self.arrays: Dict[str, ArraySymbol] = {}
        self._heap_top = 0
        # One allocator for the whole program: virtual registers are
        # globally unique, so a callee never clobbers its caller's state
        # (there is no spill/calling-convention machinery in this ISA).
        self.regs = RegisterAllocator()

    def add_function(self, function: Function) -> Function:
        if function.name in self.functions:
            raise ValueError(f"duplicate function {function.name!r}")
        # Re-home the function onto the program-wide allocator so register
        # names stay globally unique across functions.
        function.regs = self.regs
        for reg in function.params:
            self.regs.reserve(reg)
        self.functions[function.name] = function
        return function

    def function(self, name: str) -> Function:
        return self.functions[name]

    def main(self) -> Function:
        return self.functions[self.entry]

    def alloc_array(
        self,
        name: str,
        size: int,
        init: Optional[Iterable[Any]] = None,
        align: int = 8,
    ) -> ArraySymbol:
        """Allocate a named array in the memory image.

        Arrays are aligned to cache-line (8-word) boundaries by default so
        that workloads control false sharing explicitly.
        """
        base = -(-self._heap_top // align) * align
        self._heap_top = base + size
        symbol = ArraySymbol(name, base, size)
        self.arrays[name] = symbol
        if init is not None:
            values = list(init)
            if len(values) > size:
                raise ValueError(f"initializer for {name} longer than array")
            for offset, value in enumerate(values):
                self.initial_memory[base + offset] = value
        return symbol

    def array(self, name: str) -> ArraySymbol:
        return self.arrays[name]

    def validate(self) -> None:
        if self.entry not in self.functions:
            raise ValueError(f"program entry {self.entry!r} not defined")
        for function in self.functions.values():
            function.validate()
            for op in function.all_ops():
                if op.opcode is Opcode.CALL:
                    callee = op.attrs.get("function")
                    if callee not in self.functions:
                        raise ValueError(
                            f"{function.name} calls unknown function {callee!r}"
                        )

    def __repr__(self) -> str:
        return f"<program {self.name}: {len(self.functions)} functions>"
