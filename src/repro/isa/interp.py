"""Functional (untimed) reference interpreter.

The interpreter executes an *unpartitioned* program with sequential
semantics.  It serves three roles in the reproduction:

1. **Correctness oracle** -- every compiler transformation is validated by
   comparing the cycle simulator's final architectural state against the
   interpreter's.
2. **Profiling substrate** -- the paper's compiler relies on memory
   profiling (statistical DOALL detection) and cache-miss profiling (eBUG
   edge weights, region selection).  Observers registered on the
   interpreter see every executed operation and every memory access.
3. **Dynamic weight source** -- per-operation execution counts weight the
   region selection policy the same way Trimaran's profiles weight the
   paper's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from .operations import (
    ALU_SEMANTICS,
    COMPARISONS,
    Imm,
    Opcode,
    Operand,
    Operation,
    Reg,
)
from .program import BasicBlock, Function, Program
from .registers import RegisterFile, Value

#: Observer signatures.
OpObserver = Callable[[Operation, "Frame"], None]
MemObserver = Callable[[Operation, int, bool, "Frame"], None]
BlockObserver = Callable[[BasicBlock, "Frame"], None]


class InterpreterError(Exception):
    pass


class OutOfFuel(InterpreterError):
    """The dynamic operation budget was exhausted (probable infinite loop)."""


@dataclass
class Frame:
    """One activation record."""

    function: Function
    block: BasicBlock
    op_index: int = 0
    return_dest: Optional[Reg] = None
    depth: int = 0  # call depth: 0 for main


@dataclass
class InterpResult:
    """Final architectural state plus dynamic statistics."""

    memory: Dict[int, Value]
    registers: RegisterFile
    dynamic_ops: int
    op_counts: Dict[int, int]
    block_counts: Dict[Tuple[str, str], int]
    return_value: Value = None

    def array_values(self, program: Program, name: str) -> List[Value]:
        symbol = program.array(name)
        return [self.memory.get(symbol.base + i, 0) for i in range(symbol.size)]


class Interpreter:
    """Sequential big-step interpreter over the virtual ISA."""

    def __init__(self, program: Program, fuel: int = 20_000_000) -> None:
        program.validate()
        self.program = program
        self.fuel = fuel
        self.op_observers: List[OpObserver] = []
        self.mem_observers: List[MemObserver] = []
        self.block_observers: List[BlockObserver] = []

    def observe_ops(self, observer: OpObserver) -> None:
        self.op_observers.append(observer)

    def observe_memory(self, observer: MemObserver) -> None:
        self.mem_observers.append(observer)

    def observe_blocks(self, observer: BlockObserver) -> None:
        self.block_observers.append(observer)

    # -- execution -----------------------------------------------------------

    def run(self, args: Tuple[Value, ...] = ()) -> InterpResult:
        memory: Dict[int, Value] = dict(self.program.initial_memory)
        registers = RegisterFile()
        main = self.program.main()
        if len(args) != len(main.params):
            raise InterpreterError(
                f"main expects {len(main.params)} args, got {len(args)}"
            )
        for reg, value in zip(main.params, args):
            registers.write(reg, value)

        stack: List[Frame] = [Frame(main, main.block(main.entry))]
        op_counts: Dict[int, int] = {}
        block_counts: Dict[Tuple[str, str], int] = {}
        dynamic_ops = 0
        return_value: Value = None
        self._notify_block(stack[-1])
        self._count_block(stack[-1], block_counts)

        while stack:
            frame = stack[-1]
            if frame.op_index >= len(frame.block.ops):
                # Implicit fall-through at the end of an unterminated block.
                next_label = frame.block.fall
                if next_label is None:
                    if len(stack) == 1:
                        break
                    raise InterpreterError(
                        f"control fell off {frame.function.name}:"
                        f"{frame.block.label}"
                    )
                self._enter_block(frame, next_label, block_counts)
                continue

            op = frame.block.ops[frame.op_index]
            dynamic_ops += 1
            if dynamic_ops > self.fuel:
                raise OutOfFuel(f"exceeded {self.fuel} dynamic operations")
            op_counts[op.uid] = op_counts.get(op.uid, 0) + 1
            for observer in self.op_observers:
                observer(op, frame)

            outcome = self._execute(op, frame, registers, memory, stack)
            if outcome == "halt":
                break
            if outcome == "redirect":
                self._count_block(stack[-1], block_counts)
                continue
            if outcome == "return":
                if not stack:
                    return_value = self._last_return
                    break
                # The caller's block was counted when first entered.
                continue
            frame.op_index += 1

        return InterpResult(
            memory=memory,
            registers=registers,
            dynamic_ops=dynamic_ops,
            op_counts=op_counts,
            block_counts=block_counts,
            return_value=return_value,
        )

    # -- helpers --------------------------------------------------------------

    def _enter_block(
        self,
        frame: Frame,
        label: str,
        block_counts: Dict[Tuple[str, str], int],
    ) -> None:
        frame.block = frame.function.block(label)
        frame.op_index = 0
        self._notify_block(frame)
        self._count_block(frame, block_counts)

    def _notify_block(self, frame: Frame) -> None:
        for observer in self.block_observers:
            observer(frame.block, frame)

    @staticmethod
    def _count_block(
        frame: Frame, block_counts: Dict[Tuple[str, str], int]
    ) -> None:
        key = (frame.function.name, frame.block.label)
        block_counts[key] = block_counts.get(key, 0) + 1

    def _read(self, registers: RegisterFile, operand: Operand) -> Value:
        if isinstance(operand, Imm):
            return operand.value
        return registers.read(operand)

    _last_return: Value = None

    def _execute(
        self,
        op: Operation,
        frame: Frame,
        registers: RegisterFile,
        memory: Dict[int, Value],
        stack: List[Frame],
    ) -> str:
        """Execute one op; returns 'next', 'redirect', 'return', or 'halt'."""
        opcode = op.opcode
        read = lambda operand: self._read(registers, operand)

        if opcode in ALU_SEMANTICS:
            registers.write(op.dest, ALU_SEMANTICS[opcode](*map(read, op.srcs)))
            return "next"
        if opcode in COMPARISONS:
            registers.write(op.dest, bool(COMPARISONS[opcode](*map(read, op.srcs))))
            return "next"
        if opcode in (Opcode.MOV, Opcode.FMOV, Opcode.PMOV):
            registers.write(op.dest, read(op.srcs[0]))
            return "next"
        if opcode is Opcode.ITOF:
            registers.write(op.dest, float(read(op.srcs[0])))
            return "next"
        if opcode is Opcode.FTOI:
            registers.write(op.dest, int(read(op.srcs[0])))
            return "next"
        if opcode is Opcode.PAND:
            registers.write(op.dest, bool(read(op.srcs[0]) and read(op.srcs[1])))
            return "next"
        if opcode is Opcode.POR:
            registers.write(op.dest, bool(read(op.srcs[0]) or read(op.srcs[1])))
            return "next"
        if opcode is Opcode.PNOT:
            registers.write(op.dest, not read(op.srcs[0]))
            return "next"
        if opcode is Opcode.SELECT:
            pred, a, b = map(read, op.srcs)
            registers.write(op.dest, a if pred else b)
            return "next"
        if opcode is Opcode.LOAD:
            addr = int(read(op.srcs[0])) + int(read(op.srcs[1]))
            for observer in self.mem_observers:
                observer(op, addr, False, frame)
            registers.write(op.dest, memory.get(addr, 0))
            return "next"
        if opcode is Opcode.STORE:
            addr = int(read(op.srcs[0])) + int(read(op.srcs[1]))
            for observer in self.mem_observers:
                observer(op, addr, True, frame)
            memory[addr] = read(op.srcs[2])
            return "next"
        if opcode is Opcode.PBR:
            registers.write(op.dest, op.attrs["target"])
            return "next"
        if opcode is Opcode.BR:
            target = read(op.srcs[0])
            taken = True if len(op.srcs) == 1 else bool(read(op.srcs[1]))
            if taken:
                frame.block = frame.function.block(target)
                frame.op_index = 0
                self._notify_block(frame)
                return "redirect"
            # Fall through past the terminator.
            next_label = frame.block.fall
            if next_label is None:
                raise InterpreterError(
                    f"{frame.function.name}:{frame.block.label} fell "
                    "through a branch with no fall edge"
                )
            frame.block = frame.function.block(next_label)
            frame.op_index = 0
            self._notify_block(frame)
            return "redirect"
        if opcode is Opcode.CALL:
            callee = self.program.function(op.attrs["function"])
            if len(op.srcs) != len(callee.params):
                raise InterpreterError(
                    f"call to {callee.name} with {len(op.srcs)} args, "
                    f"expects {len(callee.params)}"
                )
            arg_values = [read(src) for src in op.srcs]
            frame.op_index += 1  # resume after the call
            new_frame = Frame(
                callee,
                callee.block(callee.entry),
                return_dest=op.dest,
                depth=len(stack),
            )
            stack.append(new_frame)
            for reg, value in zip(callee.params, arg_values):
                registers.write(reg, value)
            self._notify_block(new_frame)
            return "redirect"
        if opcode is Opcode.RET:
            value = read(op.srcs[0]) if op.srcs else None
            done = stack.pop()
            self._last_return = value
            if stack and done.return_dest is not None:
                registers.write(done.return_dest, value)
            return "return"
        if opcode is Opcode.HALT:
            return "halt"
        if opcode is Opcode.NOP:
            return "next"
        raise InterpreterError(
            f"opcode {opcode.value!r} is not valid in unpartitioned programs"
        )


def run_program(program: Program, args: Tuple[Value, ...] = ()) -> InterpResult:
    """Run ``program`` sequentially and return its final state."""
    return Interpreter(program).run(args)
