"""Operation and operand model for the HPL-PD-flavoured virtual ISA.

The paper builds on the HPL-PD instruction set (Kathail, Schlansker, Rau)
with Voltron's extensions: the unbundled branch (``PBR``/``CMP``/``BR``),
the direct-mode network ops (``PUT``/``GET``/``BCAST``), the queue-mode ops
(``SEND``/``RECV``), fine-grain thread control (``SPAWN``/``SLEEP``/
``LISTEN``/``RELEASE``), ``MODE_SWITCH``, and the transactional-memory
bracket ops used by speculative DOALL loops.

Operands are either :class:`Reg` (a virtual register in one of the four
HPL-PD register files) or :class:`Imm` (a literal).  Non-value operands
(branch targets, mesh directions, core ids, modes) live in ``Operation.attrs``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum, unique
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union


@unique
class RegFile(Enum):
    """The four HPL-PD register files."""

    GPR = "r"  # general-purpose integer
    FPR = "f"  # floating point
    PR = "p"  # 1-bit predicates
    BTR = "b"  # branch-target registers


@dataclass(frozen=True, eq=False)
class Reg:
    """A virtual register.  Register allocation is per-core at runtime."""

    file: RegFile
    index: int

    def __post_init__(self) -> None:
        # Registers are hashed on every scoreboard probe and register-file
        # access, so the hash is computed once up front.
        object.__setattr__(self, "_hash", hash((self.file, self.index)))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Reg):
            return NotImplemented
        return self.file is other.file and self.index == other.index

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"{self.file.value}{self.index}"


@dataclass(frozen=True)
class Imm:
    """An immediate operand."""

    value: Union[int, float]

    def __repr__(self) -> str:
        return f"#{self.value}"


Operand = Union[Reg, Imm]


@unique
class Opcode(Enum):
    # Integer ALU
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    REM = "rem"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    MOV = "mov"
    # Floating point
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    FMOV = "fmov"
    ITOF = "itof"
    FTOI = "ftoi"
    # Comparisons (write a predicate register)
    CMP_EQ = "cmp_eq"
    CMP_NE = "cmp_ne"
    CMP_LT = "cmp_lt"
    CMP_LE = "cmp_le"
    CMP_GT = "cmp_gt"
    CMP_GE = "cmp_ge"
    # Predicate logic
    PAND = "pand"
    POR = "por"
    PNOT = "pnot"
    PMOV = "pmov"
    SELECT = "select"  # dest = srcs[0] ? srcs[1] : srcs[2]
    # Memory
    LOAD = "load"  # dest = MEM[srcs[0] + srcs[1]]
    STORE = "store"  # MEM[srcs[0] + srcs[1]] = srcs[2]
    # Control (unbundled HPL-PD branch)
    PBR = "pbr"  # dest BTR = attrs['target'] (a block label)
    BR = "br"  # branch to BTR srcs[0] if predicate srcs[1] (or always)
    CALL = "call"  # call attrs['function'](srcs...) -> dests[0]
    RET = "ret"  # return srcs[0] (optional)
    HALT = "halt"
    NOP = "nop"
    # Scalar operand network: direct mode (coupled execution)
    PUT = "put"  # put srcs[0] on wire attrs['direction']
    GET = "get"  # dest = value on wire attrs['direction']
    BCAST = "bcast"  # broadcast srcs[0] to all cores in the coupled group
    # Scalar operand network: queue mode (decoupled execution)
    SEND = "send"  # send srcs[0] to core attrs['target_core']
    RECV = "recv"  # dest = message from core attrs['source_core']
    # Fine-grain thread control
    SPAWN = "spawn"  # start attrs['target_block'] on core attrs['target_core']
    SLEEP = "sleep"  # end this fine-grain thread; core returns to listening
    LISTEN = "listen"  # wait for a SPAWN or RELEASE from the master core
    RELEASE = "release"  # release core attrs['target_core'] from its LISTEN
    MODE_SWITCH = "mode_switch"  # switch to attrs['mode'] ('coupled'|'decoupled')
    # Transactional memory (speculative DOALL)
    TX_BEGIN = "tx_begin"
    TX_COMMIT = "tx_commit"


#: Opcodes that read or write memory.
MEMORY_OPCODES = frozenset({Opcode.LOAD, Opcode.STORE})

#: Opcodes implementing inter-core communication.
COMM_OPCODES = frozenset(
    {
        Opcode.PUT,
        Opcode.GET,
        Opcode.BCAST,
        Opcode.SEND,
        Opcode.RECV,
        Opcode.SPAWN,
        Opcode.RELEASE,
    }
)

#: Opcodes that terminate or redirect control flow.
CONTROL_OPCODES = frozenset({Opcode.BR, Opcode.CALL, Opcode.RET, Opcode.HALT})

#: Comparison opcodes and their Python semantics.
COMPARISONS = {
    Opcode.CMP_EQ: lambda a, b: a == b,
    Opcode.CMP_NE: lambda a, b: a != b,
    Opcode.CMP_LT: lambda a, b: a < b,
    Opcode.CMP_LE: lambda a, b: a <= b,
    Opcode.CMP_GT: lambda a, b: a > b,
    Opcode.CMP_GE: lambda a, b: a >= b,
}

#: Integer/float ALU opcodes and their Python semantics.
ALU_SEMANTICS = {
    Opcode.ADD: lambda a, b: a + b,
    Opcode.SUB: lambda a, b: a - b,
    Opcode.MUL: lambda a, b: a * b,
    Opcode.DIV: lambda a, b: _int_div(a, b),
    Opcode.REM: lambda a, b: _int_rem(a, b),
    Opcode.AND: lambda a, b: a & b,
    Opcode.OR: lambda a, b: a | b,
    Opcode.XOR: lambda a, b: a ^ b,
    Opcode.SHL: lambda a, b: a << b,
    Opcode.SHR: lambda a, b: a >> b,
    Opcode.FADD: lambda a, b: a + b,
    Opcode.FSUB: lambda a, b: a - b,
    Opcode.FMUL: lambda a, b: a * b,
    Opcode.FDIV: lambda a, b: a / b,
}


def _int_div(a: Union[int, float], b: Union[int, float]) -> Union[int, float]:
    """C-style truncating division for integers."""
    quotient = a / b
    return int(quotient) if isinstance(a, int) and isinstance(b, int) else quotient


def _int_rem(a: int, b: int) -> int:
    """C-style remainder (sign follows the dividend)."""
    return a - _int_div(a, b) * b


_op_ids = itertools.count()


def fresh_uid() -> int:
    """A new unique operation id (used when cloning ops into machine code,
    where every clone needs its own identity)."""
    return next(_op_ids)


@dataclass(eq=False)
class Operation:
    """A single operation in the virtual ISA.  Identity semantics: two ops
    are never "equal" just because their fields coincide.

    Attributes:
        opcode: the :class:`Opcode`.
        dests: destination registers (at most one for all current opcodes).
        srcs: source operands, registers or immediates.
        attrs: non-value operands -- branch targets, directions, core ids.
        uid: unique id, stable across clones of the same logical operation.
        core: core assignment filled in by the partitioners.
        slot: issue cycle within its block, filled in by the scheduler.
    """

    opcode: Opcode
    dests: List[Reg] = field(default_factory=list)
    srcs: List[Operand] = field(default_factory=list)
    attrs: Dict[str, Any] = field(default_factory=dict)
    uid: int = field(default_factory=lambda: next(_op_ids))
    core: Optional[int] = None
    slot: Optional[int] = None

    def clone(self, **overrides: Any) -> "Operation":
        """Copy this operation, keeping its ``uid`` so clones stay linked."""
        op = Operation(
            opcode=self.opcode,
            dests=list(self.dests),
            srcs=list(self.srcs),
            attrs=dict(self.attrs),
            uid=self.uid,
            core=self.core,
            slot=self.slot,
        )
        for key, value in overrides.items():
            setattr(op, key, value)
        return op

    @property
    def dest(self) -> Optional[Reg]:
        return self.dests[0] if self.dests else None

    def src_regs(self) -> Tuple[Reg, ...]:
        return tuple(s for s in self.srcs if isinstance(s, Reg))

    def is_memory(self) -> bool:
        return self.opcode in MEMORY_OPCODES

    def is_control(self) -> bool:
        return self.opcode in CONTROL_OPCODES

    def is_comm(self) -> bool:
        return self.opcode in COMM_OPCODES

    def __repr__(self) -> str:
        parts = [self.opcode.value]
        if self.dests:
            parts.append(",".join(map(repr, self.dests)) + " =")
        if self.srcs:
            parts.append(", ".join(map(repr, self.srcs)))
        if self.attrs:
            rendered = ", ".join(f"{k}={v}" for k, v in sorted(self.attrs.items()))
            parts.append(f"[{rendered}]")
        return " ".join(parts)


def make_op(
    opcode: Opcode,
    dests: Optional[Sequence[Reg]] = None,
    srcs: Optional[Sequence[Operand]] = None,
    **attrs: Any,
) -> Operation:
    """Convenience constructor used throughout the compiler."""
    return Operation(
        opcode=opcode,
        dests=list(dests or []),
        srcs=list(srcs or []),
        attrs=dict(attrs),
    )
