"""Per-core machine code: the format the cycle simulator executes.

After partitioning and scheduling, every core owns a clone of each function
(the DVLIW organization of the paper: "separate instruction streams are
executed on each core, but these streams collectively function as a single
logical stream").  Block labels are identical across cores -- they denote
the same *logical* basic block at different physical addresses, exactly as
in the paper's distributed branch mechanism.

A :class:`CoreBlock` holds one issue slot per cycle (the cores are
single-issue); ``None`` slots are the NOPs the compiler pads coupled-mode
blocks with so schedule lengths match across cores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from .operations import Opcode, Operation
from .program import Program


@dataclass
class CoreBlock:
    """One core's schedule for one logical basic block."""

    label: str
    slots: List[Optional[Operation]] = field(default_factory=list)
    taken: Optional[str] = None
    fall: Optional[str] = None
    mode: str = "coupled"
    region: int = 0
    base_addr: int = 0
    #: (function name, label) attribution key, filled in by the simulator's
    #: pre-decode pass so per-cycle accounting never rebuilds the tuple.
    stat_key: Optional[Tuple[str, str]] = None
    #: (per-slot handlers, per-slot wire flags, per-slot register sources),
    #: filled in by the simulator's pre-decode pass; one attribute load on
    #: the issue path instead of a dictionary probe.  Handlers close only
    #: over static latencies, so machines sharing a compiled program can
    #: reuse each other's entries.
    decoded: Optional[Tuple[tuple, tuple, tuple]] = None

    def __len__(self) -> int:
        return len(self.slots)

    def ops(self) -> Iterator[Operation]:
        return (op for op in self.slots if op is not None)

    def op_addr(self, slot: int) -> int:
        return self.base_addr + slot


@dataclass
class CoreFunction:
    """One core's clone of a function."""

    name: str
    entry: str
    blocks: Dict[str, CoreBlock] = field(default_factory=dict)
    block_order: List[str] = field(default_factory=list)

    def add_block(self, block: CoreBlock) -> CoreBlock:
        if block.label in self.blocks:
            raise ValueError(f"duplicate core block {block.label!r}")
        self.blocks[block.label] = block
        self.block_order.append(block.label)
        return block

    def block(self, label: str) -> CoreBlock:
        return self.blocks[label]

    def ordered_blocks(self) -> List[CoreBlock]:
        return [self.blocks[label] for label in self.block_order]


class CompiledProgram:
    """Machine code for every core plus the original program's memory image."""

    def __init__(self, program: Program, n_cores: int) -> None:
        self.program = program
        self.n_cores = n_cores
        # streams[core][function_name] -> CoreFunction
        self.streams: List[Dict[str, CoreFunction]] = [
            {} for _ in range(n_cores)
        ]
        self.attrs: Dict[str, Any] = {}

    def add_function(self, core: int, function: CoreFunction) -> CoreFunction:
        if function.name in self.streams[core]:
            raise ValueError(
                f"core {core} already has function {function.name!r}"
            )
        self.streams[core][function.name] = function
        return function

    def core_function(self, core: int, name: str) -> CoreFunction:
        return self.streams[core][name]

    def entry_function(self, core: int) -> CoreFunction:
        return self.streams[core][self.program.entry]

    def assign_addresses(self) -> None:
        """Lay each core's stream out in its private instruction space."""
        for core_stream in self.streams:
            address = 0
            for function in core_stream.values():
                for block in function.ordered_blocks():
                    block.base_addr = address
                    address += max(len(block.slots), 1)

    def static_op_count(self) -> int:
        return sum(
            sum(1 for _ in block.ops())
            for stream in self.streams
            for function in stream.values()
            for block in function.ordered_blocks()
        )

    def validate(self) -> None:
        """Structural checks: targets exist; every core has every function."""
        names = set(self.program.functions)
        for core, stream in enumerate(self.streams):
            if set(stream) != names:
                missing = names - set(stream)
                raise ValueError(f"core {core} missing functions {missing}")
            for function in stream.values():
                for block in function.ordered_blocks():
                    for succ in (block.taken, block.fall):
                        if succ is not None and succ not in function.blocks:
                            raise ValueError(
                                f"core {core} {function.name}:{block.label} "
                                f"targets unknown block {succ!r}"
                            )
                    for slot, op in enumerate(block.slots):
                        if op is None:
                            continue
                        if op.opcode is Opcode.PBR:
                            target = op.attrs.get("target")
                            if target is not None and target not in function.blocks:
                                raise ValueError(
                                    f"core {core} {function.name}:{block.label} "
                                    f"PBR to unknown block {target!r}"
                                )

    def describe(self) -> str:
        """Human-readable dump (used by examples and debugging)."""
        lines = []
        for core, stream in enumerate(self.streams):
            lines.append(f"=== core {core} ===")
            for function in stream.values():
                lines.append(f"function {function.name} (entry {function.entry})")
                for block in function.ordered_blocks():
                    lines.append(
                        f"  {block.label} [{block.mode} region={block.region}]"
                        f" -> taken={block.taken} fall={block.fall}"
                    )
                    for slot, op in enumerate(block.slots):
                        text = "nop" if op is None else repr(op)
                        lines.append(f"    {slot:3d}: {text}")
        return "\n".join(lines)
