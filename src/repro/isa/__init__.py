"""HPL-PD-flavoured virtual ISA: operations, programs, builder, interpreter."""

from .operations import (
    COMM_OPCODES,
    CONTROL_OPCODES,
    MEMORY_OPCODES,
    Imm,
    Opcode,
    Operand,
    Operation,
    Reg,
    RegFile,
    make_op,
)
from .registers import RegisterAllocator, RegisterFile, UninitializedRegister, Value
from .program import ArraySymbol, BasicBlock, Function, Program
from .builder import FunctionBuilder, ProgramBuilder, as_operand
from .latencies import latency_of, scheduling_latency
from .interp import Interpreter, InterpResult, InterpreterError, OutOfFuel, run_program

__all__ = [
    "COMM_OPCODES",
    "CONTROL_OPCODES",
    "MEMORY_OPCODES",
    "Imm",
    "Opcode",
    "Operand",
    "Operation",
    "Reg",
    "RegFile",
    "make_op",
    "RegisterAllocator",
    "RegisterFile",
    "UninitializedRegister",
    "Value",
    "ArraySymbol",
    "BasicBlock",
    "Function",
    "Program",
    "FunctionBuilder",
    "ProgramBuilder",
    "as_operand",
    "latency_of",
    "scheduling_latency",
    "Interpreter",
    "InterpResult",
    "InterpreterError",
    "OutOfFuel",
    "run_program",
]
