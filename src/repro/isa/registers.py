"""Virtual register allocation and per-core register file state.

The compiler works on an unbounded supply of virtual registers in the four
HPL-PD files.  At run time each core owns an independent register file; a
virtual register name therefore denotes *per-core* storage, which is exactly
the property Voltron's partitioners rely on: after partitioning, the same
virtual register may hold (deliberately) different values on different cores
until a PUT/GET or SEND/RECV transfers it.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Union

from .operations import Reg, RegFile

Value = Union[int, float, bool, str, None]


class RegisterAllocator:
    """Hands out fresh virtual registers for a function."""

    def __init__(self) -> None:
        self._next: Dict[RegFile, int] = {file: 0 for file in RegFile}

    def fresh(self, file: RegFile) -> Reg:
        index = self._next[file]
        self._next[file] = index + 1
        return Reg(file, index)

    def gpr(self) -> Reg:
        return self.fresh(RegFile.GPR)

    def fpr(self) -> Reg:
        return self.fresh(RegFile.FPR)

    def pr(self) -> Reg:
        return self.fresh(RegFile.PR)

    def btr(self) -> Reg:
        return self.fresh(RegFile.BTR)

    def reserve(self, reg: Reg) -> None:
        """Ensure later ``fresh`` calls never collide with ``reg``."""
        if reg.index >= self._next[reg.file]:
            self._next[reg.file] = reg.index + 1


class RegisterFile:
    """The architected register state of one core.

    Reads of never-written registers raise: the simulator uses this to catch
    compiler bugs where a value was consumed on a core it was never
    communicated to.
    """

    def __init__(self, core_id: int = 0) -> None:
        self.core_id = core_id
        self._values: Dict[Reg, Value] = {}

    def read(self, reg: Reg) -> Value:
        try:
            return self._values[reg]
        except KeyError:
            raise UninitializedRegister(
                f"core {self.core_id} read uninitialized register {reg!r}"
            ) from None

    def write(self, reg: Reg, value: Value) -> None:
        self._values[reg] = value

    def defined(self, reg: Reg) -> bool:
        return reg in self._values

    def snapshot(self) -> Dict[Reg, Value]:
        """Copy of the architected state (used for TM register rollback)."""
        return dict(self._values)

    def restore(self, snapshot: Dict[Reg, Value]) -> None:
        self._values = dict(snapshot)

    def items(self) -> Iterator:
        return iter(self._values.items())

    def __len__(self) -> int:
        return len(self._values)


class UninitializedRegister(Exception):
    """A register was read before any write reached this core."""
