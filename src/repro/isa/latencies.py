"""Operation latencies.

The paper assumes "the latencies of the Itanium processor".  These values
are an Itanium-flavoured table: single-cycle integer ALU, multi-cycle
multiply/divide, 4-cycle floating-point adds/multiplies, and load latency
that excludes cache time (the memory system adds hit/miss cycles on top).

``latency_of`` returns the number of cycles after issue before the result
may be consumed.  Ops with no register result (stores, branches, comm
bookkeeping) return 1, i.e. they occupy their issue slot only.
"""

from __future__ import annotations

from typing import Dict

from .operations import Opcode

DEFAULT_LATENCIES: Dict[Opcode, int] = {
    # Integer
    Opcode.ADD: 1,
    Opcode.SUB: 1,
    Opcode.AND: 1,
    Opcode.OR: 1,
    Opcode.XOR: 1,
    Opcode.SHL: 1,
    Opcode.SHR: 1,
    Opcode.MOV: 1,
    Opcode.MUL: 3,
    Opcode.DIV: 12,
    Opcode.REM: 12,
    # Floating point
    Opcode.FADD: 4,
    Opcode.FSUB: 4,
    Opcode.FMUL: 4,
    Opcode.FDIV: 16,
    Opcode.FMOV: 1,
    Opcode.ITOF: 2,
    Opcode.FTOI: 2,
    # Compares / predicates
    Opcode.CMP_EQ: 1,
    Opcode.CMP_NE: 1,
    Opcode.CMP_LT: 1,
    Opcode.CMP_LE: 1,
    Opcode.CMP_GT: 1,
    Opcode.CMP_GE: 1,
    Opcode.PAND: 1,
    Opcode.POR: 1,
    Opcode.PNOT: 1,
    Opcode.PMOV: 1,
    Opcode.SELECT: 1,
    # Memory: issue-to-use on an L1 hit is 1 + L1 hit time (added by the
    # cache model); the scheduler plans for an L1 hit.
    Opcode.LOAD: 1,
    Opcode.STORE: 1,
    # Control
    Opcode.PBR: 1,
    Opcode.BR: 1,
    Opcode.CALL: 1,
    Opcode.RET: 1,
    Opcode.HALT: 1,
    Opcode.NOP: 1,
    # Network ops occupy one slot; transfer time is modelled by the network.
    Opcode.PUT: 1,
    Opcode.GET: 1,
    Opcode.BCAST: 1,
    Opcode.SEND: 1,
    Opcode.RECV: 1,
    Opcode.SPAWN: 1,
    Opcode.SLEEP: 1,
    Opcode.LISTEN: 1,
    Opcode.RELEASE: 1,
    Opcode.MODE_SWITCH: 1,
    Opcode.TX_BEGIN: 1,
    Opcode.TX_COMMIT: 1,
}

#: Load-to-use latency the static scheduler assumes (an L1 hit).
SCHEDULED_LOAD_LATENCY = 2


def latency_of(opcode: Opcode) -> int:
    return DEFAULT_LATENCIES[opcode]


def resolved_latencies() -> Dict[Opcode, int]:
    """A snapshot of the full opcode->latency table.

    The simulator's dispatch-table builder pre-resolves each opcode's
    latency through this at machine-construction time, so the per-cycle
    execute path never consults the table again."""
    return dict(DEFAULT_LATENCIES)


def scheduling_latency(opcode: Opcode) -> int:
    """Latency the list scheduler plans for (loads assume an L1 hit)."""
    if opcode is Opcode.LOAD:
        return SCHEDULED_LOAD_LATENCY
    return DEFAULT_LATENCIES[opcode]
