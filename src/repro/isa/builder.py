"""Fluent builder for authoring IR programs.

Workloads and tests author programs through :class:`ProgramBuilder` /
:class:`FunctionBuilder` rather than constructing operations by hand.  The
builder takes care of block termination (fall-through edges), virtual
register allocation, and the PBR/BR expansion of the HPL-PD unbundled
branch.

The :meth:`FunctionBuilder.counted_loop` helper emits the canonical counted
loop shape (``i = add i, step`` in the latch) that the compiler's induction
variable detector recognizes; the loop bound annotations it leaves in
``block.attrs`` are used only by tests to validate the detector, never by
the compiler itself.
"""

from __future__ import annotations

import contextlib
from typing import Any, Iterator, List, Optional, Sequence, Union

from .operations import (
    ALU_SEMANTICS,
    COMPARISONS,
    Imm,
    Opcode,
    Operand,
    Operation,
    Reg,
    RegFile,
    make_op,
)
from .program import BasicBlock, Function, Program

Src = Union[Reg, Imm, int, float]


def as_operand(value: Src) -> Operand:
    """Wrap Python literals as immediates."""
    if isinstance(value, (Reg, Imm)):
        return value
    if isinstance(value, bool):
        return Imm(int(value))
    if isinstance(value, (int, float)):
        return Imm(value)
    raise TypeError(f"cannot use {value!r} as an operand")


class FunctionBuilder:
    """Builds one function block by block."""

    def __init__(self, function: Function) -> None:
        self.function = function
        self.current: Optional[BasicBlock] = None
        self._label_counter = 0

    # -- blocks ------------------------------------------------------------

    def fresh_label(self, stem: str = "bb") -> str:
        self._label_counter += 1
        return f"{stem}_{self._label_counter}"

    def block(self, label: Optional[str] = None) -> BasicBlock:
        """Start a new block; the previous block falls through to it."""
        label = label or self.fresh_label()
        block = self.function.add_block(label)
        if self.current is not None and self.current.terminator() is None:
            if self.current.fall is None:
                self.current.fall = label
        elif self.current is not None and self.current.fall is None:
            # Terminated blocks may still fall through (conditional branch).
            terminator = self.current.terminator()
            if terminator is not None and terminator.opcode is Opcode.BR:
                if len(terminator.srcs) > 1:  # conditional: has a predicate
                    self.current.fall = label
        self.current = block
        return block

    def emit(self, op: Operation) -> Operation:
        if self.current is None:
            self.block("entry")
        assert self.current is not None
        return self.current.append(op)

    # -- register helpers ---------------------------------------------------

    def gpr(self) -> Reg:
        return self.function.regs.gpr()

    def fpr(self) -> Reg:
        return self.function.regs.fpr()

    def pr(self) -> Reg:
        return self.function.regs.pr()

    # -- arithmetic ---------------------------------------------------------

    def _binary(self, opcode: Opcode, a: Src, b: Src, dest: Optional[Reg]) -> Reg:
        if dest is None:
            is_float = opcode in (
                Opcode.FADD,
                Opcode.FSUB,
                Opcode.FMUL,
                Opcode.FDIV,
            )
            dest = self.fpr() if is_float else self.gpr()
        self.emit(make_op(opcode, [dest], [as_operand(a), as_operand(b)]))
        return dest

    def add(self, a: Src, b: Src, dest: Optional[Reg] = None) -> Reg:
        return self._binary(Opcode.ADD, a, b, dest)

    def sub(self, a: Src, b: Src, dest: Optional[Reg] = None) -> Reg:
        return self._binary(Opcode.SUB, a, b, dest)

    def mul(self, a: Src, b: Src, dest: Optional[Reg] = None) -> Reg:
        return self._binary(Opcode.MUL, a, b, dest)

    def div(self, a: Src, b: Src, dest: Optional[Reg] = None) -> Reg:
        return self._binary(Opcode.DIV, a, b, dest)

    def rem(self, a: Src, b: Src, dest: Optional[Reg] = None) -> Reg:
        return self._binary(Opcode.REM, a, b, dest)

    def and_(self, a: Src, b: Src, dest: Optional[Reg] = None) -> Reg:
        return self._binary(Opcode.AND, a, b, dest)

    def or_(self, a: Src, b: Src, dest: Optional[Reg] = None) -> Reg:
        return self._binary(Opcode.OR, a, b, dest)

    def xor(self, a: Src, b: Src, dest: Optional[Reg] = None) -> Reg:
        return self._binary(Opcode.XOR, a, b, dest)

    def shl(self, a: Src, b: Src, dest: Optional[Reg] = None) -> Reg:
        return self._binary(Opcode.SHL, a, b, dest)

    def shr(self, a: Src, b: Src, dest: Optional[Reg] = None) -> Reg:
        return self._binary(Opcode.SHR, a, b, dest)

    def fadd(self, a: Src, b: Src, dest: Optional[Reg] = None) -> Reg:
        return self._binary(Opcode.FADD, a, b, dest)

    def fsub(self, a: Src, b: Src, dest: Optional[Reg] = None) -> Reg:
        return self._binary(Opcode.FSUB, a, b, dest)

    def fmul(self, a: Src, b: Src, dest: Optional[Reg] = None) -> Reg:
        return self._binary(Opcode.FMUL, a, b, dest)

    def fdiv(self, a: Src, b: Src, dest: Optional[Reg] = None) -> Reg:
        return self._binary(Opcode.FDIV, a, b, dest)

    def mov(self, value: Src, dest: Optional[Reg] = None) -> Reg:
        dest = dest or self.gpr()
        self.emit(make_op(Opcode.MOV, [dest], [as_operand(value)]))
        return dest

    def fmov(self, value: Src, dest: Optional[Reg] = None) -> Reg:
        dest = dest or self.fpr()
        self.emit(make_op(Opcode.FMOV, [dest], [as_operand(value)]))
        return dest

    def itof(self, value: Src, dest: Optional[Reg] = None) -> Reg:
        dest = dest or self.fpr()
        self.emit(make_op(Opcode.ITOF, [dest], [as_operand(value)]))
        return dest

    def ftoi(self, value: Src, dest: Optional[Reg] = None) -> Reg:
        dest = dest or self.gpr()
        self.emit(make_op(Opcode.FTOI, [dest], [as_operand(value)]))
        return dest

    def select(self, pred: Reg, a: Src, b: Src, dest: Optional[Reg] = None) -> Reg:
        dest = dest or self.gpr()
        self.emit(
            make_op(Opcode.SELECT, [dest], [pred, as_operand(a), as_operand(b)])
        )
        return dest

    # -- comparisons --------------------------------------------------------

    def _compare(self, opcode: Opcode, a: Src, b: Src, dest: Optional[Reg]) -> Reg:
        dest = dest or self.pr()
        self.emit(make_op(opcode, [dest], [as_operand(a), as_operand(b)]))
        return dest

    def cmp_eq(self, a: Src, b: Src, dest: Optional[Reg] = None) -> Reg:
        return self._compare(Opcode.CMP_EQ, a, b, dest)

    def cmp_ne(self, a: Src, b: Src, dest: Optional[Reg] = None) -> Reg:
        return self._compare(Opcode.CMP_NE, a, b, dest)

    def cmp_lt(self, a: Src, b: Src, dest: Optional[Reg] = None) -> Reg:
        return self._compare(Opcode.CMP_LT, a, b, dest)

    def cmp_le(self, a: Src, b: Src, dest: Optional[Reg] = None) -> Reg:
        return self._compare(Opcode.CMP_LE, a, b, dest)

    def cmp_gt(self, a: Src, b: Src, dest: Optional[Reg] = None) -> Reg:
        return self._compare(Opcode.CMP_GT, a, b, dest)

    def cmp_ge(self, a: Src, b: Src, dest: Optional[Reg] = None) -> Reg:
        return self._compare(Opcode.CMP_GE, a, b, dest)

    def pand(self, a: Reg, b: Reg, dest: Optional[Reg] = None) -> Reg:
        dest = dest or self.pr()
        self.emit(make_op(Opcode.PAND, [dest], [a, b]))
        return dest

    def por(self, a: Reg, b: Reg, dest: Optional[Reg] = None) -> Reg:
        dest = dest or self.pr()
        self.emit(make_op(Opcode.POR, [dest], [a, b]))
        return dest

    def pnot(self, a: Reg, dest: Optional[Reg] = None) -> Reg:
        dest = dest or self.pr()
        self.emit(make_op(Opcode.PNOT, [dest], [a]))
        return dest

    # -- memory -------------------------------------------------------------

    def load(
        self, base: Src, offset: Src = 0, dest: Optional[Reg] = None, **attrs: Any
    ) -> Reg:
        dest = dest or self.gpr()
        op = make_op(
            Opcode.LOAD, [dest], [as_operand(base), as_operand(offset)], **attrs
        )
        self.emit(op)
        return dest

    def store(self, base: Src, offset: Src, value: Src, **attrs: Any) -> Operation:
        op = make_op(
            Opcode.STORE,
            [],
            [as_operand(base), as_operand(offset), as_operand(value)],
            **attrs,
        )
        return self.emit(op)

    # -- control ------------------------------------------------------------

    def branch_if(self, pred: Reg, target: str) -> None:
        """Conditional branch: taken -> ``target``, else fall to next block."""
        assert self.current is not None, "branch outside a block"
        btr = self.function.regs.btr()
        self.emit(make_op(Opcode.PBR, [btr], [], target=target))
        self.emit(make_op(Opcode.BR, [], [btr, pred]))
        self.current.taken = target

    def jump(self, target: str) -> None:
        assert self.current is not None, "jump outside a block"
        btr = self.function.regs.btr()
        self.emit(make_op(Opcode.PBR, [btr], [], target=target))
        self.emit(make_op(Opcode.BR, [], [btr]))
        self.current.taken = target
        self.current.fall = None

    def call(
        self,
        function: str,
        args: Sequence[Src] = (),
        dest: Optional[Reg] = None,
        want_result: bool = True,
    ) -> Optional[Reg]:
        dests: List[Reg] = []
        if want_result:
            dest = dest or self.gpr()
            dests = [dest]
        self.emit(
            make_op(
                Opcode.CALL,
                dests,
                [as_operand(a) for a in args],
                function=function,
            )
        )
        return dest if want_result else None

    def ret(self, value: Optional[Src] = None) -> None:
        srcs = [as_operand(value)] if value is not None else []
        self.emit(make_op(Opcode.RET, [], srcs))

    def halt(self) -> None:
        self.emit(make_op(Opcode.HALT))

    # -- loops ---------------------------------------------------------------

    @contextlib.contextmanager
    def counted_loop(
        self,
        name: str,
        start: Src,
        bound: Src,
        step: int = 1,
        down: bool = False,
    ) -> Iterator[Reg]:
        """Emit a canonical counted loop; yields the induction register.

        The body is a single block named ``name``.  The latch emitted on exit
        is ``i = add i, step; p = cmp i < bound; br p -> name``.  With
        ``down=True`` the loop counts down with ``cmp i > bound``.
        """
        induction = self.mov(start)
        body = self.block(name)
        body.attrs["loop_name"] = name
        body.attrs["loop_induction"] = induction
        body.attrs["loop_start"] = as_operand(start)
        body.attrs["loop_bound"] = as_operand(bound)
        body.attrs["loop_step"] = -step if down else step
        try:
            yield induction
        finally:
            actual_step = -step if down else step
            self.add(induction, actual_step, dest=induction)
            if down:
                pred = self.cmp_gt(induction, bound)
            else:
                pred = self.cmp_lt(induction, bound)
            self.branch_if(pred, name)
            self.block(self.fresh_label(f"{name}_exit"))


class ProgramBuilder:
    """Builds a whole program (functions + memory image)."""

    def __init__(self, name: str = "program", entry: str = "main") -> None:
        self.program = Program(name=name, entry=entry)

    def function(
        self, name: str, n_params: int = 0
    ) -> "FunctionBuilder":
        function = Function(name)
        self.program.add_function(function)  # re-homes onto the shared allocator
        function.params = [function.regs.gpr() for _ in range(n_params)]
        return FunctionBuilder(function)

    def alloc(self, name: str, size: int, init=None):
        return self.program.alloc_array(name, size, init)

    def finish(self) -> Program:
        self.program.validate()
        return self.program
