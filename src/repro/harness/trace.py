"""Execution tracing: a per-cycle, per-core timeline of a simulation.

Attach a :class:`Tracer` to a :class:`VoltronMachine` before running and
render the collected events as a text timeline -- a poor man's pipeline
diagram, invaluable for seeing lock-step PUT/GET alignment, queue-mode
decoupling, barriers, and transaction retries at a glance.

    machine = VoltronMachine(compiled, config)
    tracer = Tracer.attach(machine, limit=4000)
    machine.run()
    print(tracer.render(start=0, end=80))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..isa.operations import Opcode, Operation

#: Compact one/two-character mnemonics for the timeline cells.
_GLYPHS = {
    Opcode.PUT: "P>",
    Opcode.GET: "<G",
    Opcode.BCAST: "B*",
    Opcode.SEND: "s>",
    Opcode.RECV: "<r",
    Opcode.SPAWN: "sp",
    Opcode.SLEEP: "zz",
    Opcode.LISTEN: "li",
    Opcode.RELEASE: "rl",
    Opcode.MODE_SWITCH: "MS",
    Opcode.TX_BEGIN: "T(",
    Opcode.TX_COMMIT: ")T",
    Opcode.LOAD: "ld",
    Opcode.STORE: "st",
    Opcode.BR: "br",
    Opcode.PBR: "pb",
    Opcode.CALL: "cl",
    Opcode.RET: "rt",
    Opcode.HALT: "HH",
    Opcode.NOP: "..",
    Opcode.ADD: "+ ",
    Opcode.SUB: "- ",
    Opcode.MUL: "* ",
    Opcode.DIV: "/ ",
    Opcode.REM: "% ",
    Opcode.AND: "& ",
    Opcode.OR: "| ",
    Opcode.XOR: "^ ",
    Opcode.SHL: "<<",
    Opcode.SHR: ">>",
    Opcode.MOV: "mv",
    Opcode.FMOV: "fv",
    Opcode.FADD: "f+",
    Opcode.FSUB: "f-",
    Opcode.FMUL: "f*",
    Opcode.FDIV: "f/",
    Opcode.ITOF: "if",
    Opcode.FTOI: "fi",
    Opcode.CMP_EQ: "==",
    Opcode.CMP_NE: "!=",
    Opcode.CMP_LT: "c<",
    Opcode.CMP_LE: "<=",
    Opcode.CMP_GT: "c>",
    Opcode.CMP_GE: ">=",
    Opcode.PAND: "p&",
    Opcode.POR: "p|",
    Opcode.PNOT: "p!",
    Opcode.PMOV: "pv",
    Opcode.SELECT: "?:",
}


@dataclass
class TraceEvent:
    cycle: int
    core: int
    op: Operation

    @property
    def glyph(self) -> str:
        return _GLYPHS.get(self.op.opcode, "##")


@dataclass
class Tracer:
    """Collects (cycle, core, op) execution events from a machine."""

    n_cores: int
    limit: int = 100_000
    events: List[TraceEvent] = field(default_factory=list)
    truncated: bool = False
    #: Events discarded after the limit was hit (so a truncated render
    #: says how much of the run it is blind to).
    dropped: int = 0

    @classmethod
    def attach(cls, machine, limit: int = 100_000) -> "Tracer":
        tracer = cls(n_cores=machine.config.n_cores, limit=limit)
        machine.op_observers.append(tracer._record)
        return tracer

    def _record(self, cycle: int, core: int, op: Operation) -> None:
        if len(self.events) >= self.limit:
            self.truncated = True
            self.dropped += 1
            return
        self.events.append(TraceEvent(cycle, core, op))

    # -- queries -----------------------------------------------------------------

    def events_for(self, core: int) -> List[TraceEvent]:
        return [event for event in self.events if event.core == core]

    def cycles_spanned(self) -> int:
        if not self.events:
            return 0
        return self.events[-1].cycle - self.events[0].cycle + 1

    def opcode_histogram(self) -> Dict[Opcode, int]:
        histogram: Dict[Opcode, int] = {}
        for event in self.events:
            histogram[event.op.opcode] = histogram.get(event.op.opcode, 0) + 1
        return histogram

    # -- rendering -----------------------------------------------------------------

    def render(
        self,
        start: int = 0,
        end: Optional[int] = None,
        width: int = 40,
    ) -> str:
        """Text timeline: one row per core, one 2-char cell per cycle.

        Empty cells are stall/idle cycles ("  "); the glyph legend is
        appended below the grid.
        """
        if end is None:
            end = start + width
        grid: Dict[int, Dict[int, str]] = {
            core: {} for core in range(self.n_cores)
        }
        used = set()
        for event in self.events:
            if start <= event.cycle < end:
                grid[event.core][event.cycle] = event.glyph
                used.add(event.op.opcode)
        lines = [f"cycles {start}..{end - 1}"]
        header = "      " + "".join(
            f"{c % 100:02d}" if c % 5 == 0 else "  " for c in range(start, end)
        )
        lines.append(header)
        for core in range(self.n_cores):
            row = "".join(
                grid[core].get(cycle, "  ") for cycle in range(start, end)
            )
            lines.append(f"core{core} {row}")
        legend = ", ".join(
            f"{_GLYPHS.get(op, '##')}={op.value}" for op in sorted(
                used, key=lambda o: o.value
            )
        )
        if legend:
            lines.append(f"legend: {legend} (blank = stall/idle)")
        if self.truncated:
            lines.append(
                f"[trace truncated at {self.limit} events; "
                f"{self.dropped} dropped]"
            )
        return "\n".join(lines)
