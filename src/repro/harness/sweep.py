"""Design-space sweep driver: machine configs x workloads -> Pareto JSON.

The paper evaluates one machine shape per core count; this driver
explores the surrounding hardware design space.  A :class:`SweepSpec`
crosses up to seven machine axes -- mesh size (core count), coherence
protocol, operand-queue policy, operand-queue depth, queue-mode hop
latency, memory latency, and the TM commit budget -- against any mix of
named and generated workloads, runs every cell
through the cached parallel :class:`~repro.harness.experiments.ExperimentRunner`
(one runner per machine point, all sharing one content-hash result
cache, so a re-sweep only simulates what changed), and reduces the
results to per-strategy Pareto frontiers.

Dominance is resource-aware rather than scalarized: machine point A
dominates B for a strategy when A's geomean speedup is at least B's
while A spends no more of any *resource* (cores, queue entries) and
enjoys no better *penalty* figure (hop latency, memory latency, TM
commit cost) -- i.e. A performs at least as well on hardware that is no
more expensive in any dimension, strictly better somewhere.
*Categorical* axes (coherence protocol, queue policy) have no price
tag, so dominance additionally requires category equality and each
category contributes its own slice of the frontier.  The
surviving points are the interesting cost/performance trade-offs, and
the whole result (every point + the frontiers) serializes to one JSON
artifact for CI upload or notebook analysis.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .experiments import ExperimentRunner, geomean
from .journal import JournalReplay, RunJournal, flush_on_signals

#: Artifact schema: bump the major on breaking layout changes.
#: 1.1 added the categorical ``coherence``/``queue_policy`` machine axes.
SWEEP_SCHEMA_VERSION = "1.1"

#: Machine axes and their dominance direction.  ``resource`` axes are
#: hardware you pay for (less is cheaper); ``penalty`` axes are
#: slowness you suffer (more is cheaper hardware); ``categorical``
#: axes (coherence protocol, queue policy) have no cost ordering, so
#: dominance requires equality -- each category keeps its own frontier.
AXIS_KINDS: Dict[str, str] = {
    "cores": "resource",
    "coherence": "categorical",
    "queue_policy": "categorical",
    "queue_depth": "resource",
    "queue_cycles_per_hop": "penalty",
    "memory_latency": "penalty",
    "tm_commit_latency": "penalty",
}

#: Axis name -> MachineConfig override key (cores shapes the mesh
#: preset instead of overriding a field).
_OVERRIDE_AXES = (
    "coherence",
    "queue_policy",
    "queue_depth",
    "queue_cycles_per_hop",
    "memory_latency",
    "tm_commit_latency",
)


@dataclass(frozen=True)
class SweepSpec:
    """What to sweep: workloads x strategies x machine axes."""

    workloads: Tuple[str, ...]
    strategies: Tuple[str, ...] = ("ilp", "tlp", "llp", "hybrid")
    cores: Tuple[int, ...] = (2, 4)
    coherences: Tuple[str, ...] = ("snoop",)
    queue_policies: Tuple[str, ...] = ("pair",)
    queue_depths: Tuple[int, ...] = (16,)
    queue_cycles_per_hop: Tuple[int, ...] = (1,)
    memory_latencies: Tuple[int, ...] = (100,)
    tm_commit_latencies: Tuple[int, ...] = (4,)

    def __post_init__(self) -> None:
        if not self.workloads:
            raise ValueError("a sweep needs at least one workload")
        for name, values in self.axes().items():
            if not values:
                raise ValueError(f"axis {name} has no values")

    def axes(self) -> Dict[str, Tuple[object, ...]]:
        """Axis name -> swept values, in canonical order."""
        return {
            "cores": self.cores,
            "coherence": self.coherences,
            "queue_policy": self.queue_policies,
            "queue_depth": self.queue_depths,
            "queue_cycles_per_hop": self.queue_cycles_per_hop,
            "memory_latency": self.memory_latencies,
            "tm_commit_latency": self.tm_commit_latencies,
        }

    def varied_axes(self) -> List[str]:
        """Axes with more than one value (the sweep's real dimensions)."""
        return [name for name, values in self.axes().items() if len(values) > 1]

    def machine_points(self) -> List[Dict[str, object]]:
        """Every machine configuration in the cross product, as flat
        ``{axis: value}`` mappings."""
        names = list(self.axes())
        return [
            dict(zip(names, combo))
            for combo in itertools.product(*self.axes().values())
        ]


@dataclass
class SweepPoint:
    """One (machine point, strategy) result, aggregated over workloads."""

    machine: Dict[str, object]
    strategy: str
    #: Per-workload speedup over the same machine point's 1-core baseline.
    speedups: Dict[str, float] = field(default_factory=dict)
    #: Per-workload simulated cycles.
    cycles: Dict[str, int] = field(default_factory=dict)
    geomean_speedup: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "machine": self.machine,
            "strategy": self.strategy,
            "speedups": self.speedups,
            "cycles": self.cycles,
            "geomean_speedup": self.geomean_speedup,
        }


def dominates(a: SweepPoint, b: SweepPoint) -> bool:
    """Resource-aware Pareto dominance (same strategy assumed)."""
    if a.geomean_speedup < b.geomean_speedup:
        return False
    strictly_better = a.geomean_speedup > b.geomean_speedup
    for axis, kind in AXIS_KINDS.items():
        va, vb = a.machine[axis], b.machine[axis]
        if kind == "categorical":
            # No cost ordering between protocols/policies: points only
            # compete within the same category.
            if va != vb:
                return False
        elif kind == "resource":
            if va > vb:
                return False
            strictly_better = strictly_better or va < vb
        else:  # penalty: tolerating more latency = cheaper hardware
            if va < vb:
                return False
            strictly_better = strictly_better or va > vb
    return strictly_better


def pareto_frontier(points: Sequence[SweepPoint]) -> List[int]:
    """Indices (into ``points``) of the non-dominated set, stable order."""
    return [
        index
        for index, point in enumerate(points)
        if not any(
            dominates(other, point)
            for j, other in enumerate(points)
            if j != index
        )
    ]


def run_sweep(
    spec: SweepSpec,
    *,
    seed: int = 1,
    max_cycles: int = 50_000_000,
    cache_dir: Optional[Union[str, Path]] = None,
    jobs: int = 1,
    cell_timeout: Optional[float] = None,
    journal: Optional[Union[str, Path]] = None,
    resume: bool = False,
    heartbeat_timeout: Optional[float] = None,
) -> Dict[str, object]:
    """Execute the sweep and assemble the JSON-ready result document.

    One :class:`ExperimentRunner` per distinct override combination (so
    every core count at that point shares the runner's builds and the
    1-core baseline), all pointed at the same ``cache_dir``.  Returns::

        {
          "schema_version": ..., "spec": {...}, "axes": {...},
          "points": [SweepPoint...],             # every cell, aggregated
          "frontiers": {strategy: [point index...]},
          "cache": {"hits": ..., "misses": ...},
          "journal": {...},                      # only when journaling
        }

    With ``journal=`` every runner writes through one shared write-ahead
    :class:`RunJournal` (content-hash keys disambiguate cells across
    machine points), SIGTERM/SIGINT flush it before exit, and
    ``resume=True`` replays an interrupted journal against the result
    cache so only cells without a durable ``completed`` record are
    re-dispatched -- the resumed document is identical to an
    uninterrupted sweep's modulo the ``cache``/``journal`` tallies.
    """
    axes = spec.axes()
    override_combos = [
        dict(zip(_OVERRIDE_AXES, combo))
        for combo in itertools.product(
            *(axes[name] for name in _OVERRIDE_AXES)
        )
    ]
    run_journal: Optional[RunJournal] = None
    replay: Optional[JournalReplay] = None
    if journal is not None:
        journal_path = Path(journal)
        if resume and journal_path.exists():
            replay = JournalReplay.from_path(journal_path)
        run_journal = RunJournal(
            journal_path,
            resume=resume and journal_path.exists(),
            context={"driver": "sweep"},
        )
    points: List[SweepPoint] = []
    cache_hits = cache_misses = 0
    journal_stats = {"replayed": 0, "rerun": 0, "abandoned": 0}
    try:
        with flush_on_signals(run_journal):
            for overrides in override_combos:
                runner = ExperimentRunner(
                    benchmarks=list(spec.workloads),
                    seed=seed,
                    max_cycles=max_cycles,
                    cache_dir=cache_dir,
                    jobs=jobs,
                    cell_timeout=cell_timeout,
                    config_overrides=overrides,
                    journal=run_journal,
                    replay=replay,
                    heartbeat_timeout=heartbeat_timeout,
                )
                runner.prefetch(
                    [(name, 1, "baseline") for name in spec.workloads]
                    + [
                        (name, n_cores, strategy)
                        for name in spec.workloads
                        for n_cores in spec.cores
                        for strategy in spec.strategies
                    ]
                )
                for n_cores in spec.cores:
                    for strategy in spec.strategies:
                        point = SweepPoint(
                            machine={"cores": n_cores, **overrides},
                            strategy=strategy,
                        )
                        for name in spec.workloads:
                            result = runner.run(name, n_cores, strategy)
                            point.cycles[name] = result.cycles
                            point.speedups[name] = (
                                runner.baseline(name).cycles / result.cycles
                            )
                        point.geomean_speedup = geomean(
                            list(point.speedups.values())
                        )
                        points.append(point)
                if runner.cache is not None:
                    cache_hits += runner.cache.hits
                    cache_misses += runner.cache.misses
                for stat, value in runner.journal_stats.items():
                    journal_stats[stat] += value
    finally:
        if run_journal is not None:
            run_journal.close()
    frontiers = {
        strategy: [
            by_strategy[local]
            for local in pareto_frontier(
                [points[i] for i in by_strategy]
            )
        ]
        for strategy, by_strategy in _indices_by_strategy(points).items()
    }
    document = {
        "schema_version": SWEEP_SCHEMA_VERSION,
        "spec": {
            "workloads": list(spec.workloads),
            "strategies": list(spec.strategies),
        },
        "axes": {name: list(values) for name, values in axes.items()},
        "varied_axes": spec.varied_axes(),
        "points": [point.to_dict() for point in points],
        "frontiers": frontiers,
        "cache": {"hits": cache_hits, "misses": cache_misses},
    }
    if run_journal is not None:
        document["journal"] = {
            "path": str(run_journal.path),
            "resumed": bool(replay is not None),
            **journal_stats,
        }
    return document


def _indices_by_strategy(points: Sequence[SweepPoint]) -> Dict[str, List[int]]:
    table: Dict[str, List[int]] = {}
    for index, point in enumerate(points):
        table.setdefault(point.strategy, []).append(index)
    return table


def write_sweep(document: Dict[str, object], path: Union[str, Path]) -> Path:
    """Write one sweep document as the JSON artifact CI uploads."""
    path = Path(path)
    if path.parent != Path("."):
        path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
    return path


def render_frontiers(document: Dict[str, object]) -> str:
    """Human summary of a sweep document's Pareto frontiers."""
    points = document["points"]
    lines = [
        f"sweep     : {len(points)} points over axes "
        + ", ".join(document["varied_axes"] or ["(none varied)"])
    ]
    for strategy, indices in sorted(document["frontiers"].items()):
        lines.append(f"frontier [{strategy}] ({len(indices)} points):")
        for index in indices:
            point = points[index]
            machine = point["machine"]
            shape = " ".join(f"{k}={v}" for k, v in machine.items())
            lines.append(
                f"  {point['geomean_speedup']:6.2f}x  {shape}"
            )
    return "\n".join(lines)
