"""Write-ahead run journal: crash-safe, resumable experiment execution.

The experiment drivers (``ExperimentRunner.prefetch``/``run``,
``run_sweep``, the fuzz campaign) can lose minutes of simulation when a
worker segfaults mid-round or the driver itself is SIGKILLed.  The
:class:`RunJournal` closes that gap: an append-only JSONL file with one
fsynced record per cell lifecycle event, written by the *driver* (a
single writer -- workers only touch the result cache and their heartbeat
files), so at any instant the journal on disk is a complete, durable
account of what was planned, what finished, and what was given up on.

Lifecycle events (``cell`` is the ``[benchmark, cores, strategy]``
triple, ``key`` its content-hash cache key)::

    planned     the driver committed to producing this cell
    dispatched  an attempt started (``mode``: pool round or serial)
    completed   the result is durable in the result cache
    failed      one attempt died (timeout, heartbeat loss, pool breakage)
    abandoned   every attempt exhausted; the cell has no result

plus meta records that never affect replay state: ``start`` (journal
header: version, wall-clock stamp, free-form context), ``interrupted``
(a SIGTERM/SIGINT handler flushed the journal before exit), ``note``.

Durability discipline mirrors the result cache's: ``completed`` is
recorded strictly *after* the cache store, so a ``completed`` record
implies a durable (fsynced, atomically renamed) cache entry.  Resume is
then a pure replay: re-dispatch exactly the planned cells without a
``completed`` record, let the cache serve the rest, and the merged run
is bit-identical to an uninterrupted one.

Timestamps are ``time.monotonic()`` -- strictly ordered within one
driver process, meaningless across a restart (each process also logs a
``start`` record, so per-process deltas stay interpretable).
"""

from __future__ import annotations

import contextlib
import json
import os
import signal
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

#: Bump on breaking record-layout changes; replay rejects a foreign major.
JOURNAL_VERSION = 1

#: Events that advance a cell's replay state, in escalation order.
LIFECYCLE_EVENTS = ("planned", "dispatched", "completed", "failed", "abandoned")

#: Events replay ignores (headers, signal flushes, annotations).
META_EVENTS = ("start", "interrupted", "note", "heartbeat")

#: States replay treats as final: the cell needs no further attempts.
TERMINAL_STATES = frozenset({"completed", "abandoned"})


class RunJournal:
    """Append-only JSONL journal with one fsync per record.

    Open with ``resume=True`` to append to an existing journal (the
    resume path); the default truncates, so ``--journal`` always starts
    a fresh history.  ``fsync=False`` drops the per-record fsync for
    throughput-sensitive tests -- production callers keep the default,
    which is what makes a SIGKILLed driver resumable.
    """

    def __init__(
        self,
        path: Union[str, Path],
        *,
        resume: bool = False,
        fsync: bool = True,
        context: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.path = Path(path)
        self.fsync = fsync
        if self.path.parent != Path("."):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        if resume:
            # Appending after a torn tail (the one artifact a SIGKILL
            # mid-write can leave) would strand the new records behind
            # an unparseable line and make the whole journal
            # unreplayable -- trim the tail first.
            _trim_torn_tail(self.path)
        self._handle = open(self.path, "a" if resume else "w")
        _fsync_dir(self.path.parent)
        self.records_written = 0
        self.record(
            "start",
            journal_version=JOURNAL_VERSION,
            resumed=resume,
            wall_time=time.time(),
            **(context or {}),
        )

    def record(self, event: str, **fields: Any) -> None:
        """Append one record and make it durable before returning."""
        if self._handle is None:
            return  # closed (signal handler already flushed): drop late writes
        payload = {"event": event, "t": time.monotonic(), **fields}
        self._handle.write(json.dumps(payload, separators=(",", ":")) + "\n")
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        self.records_written += 1

    # -- lifecycle vocabulary (cell is the (benchmark, cores, strategy) triple) --

    def planned(self, cell: Tuple[str, int, str], key: Optional[str]) -> None:
        self.record("planned", cell=list(cell), key=key)

    def dispatched(
        self, cell: Tuple[str, int, str], key: Optional[str],
        attempt: int, mode: str,
    ) -> None:
        self.record(
            "dispatched", cell=list(cell), key=key, attempt=attempt, mode=mode
        )

    def completed(
        self, cell: Tuple[str, int, str], key: Optional[str],
        source: str, attempt: int = 0,
    ) -> None:
        self.record(
            "completed", cell=list(cell), key=key, source=source,
            attempt=attempt,
        )

    def failed(
        self, cell: Tuple[str, int, str], key: Optional[str], reason: str,
        attempt: int = 0,
    ) -> None:
        self.record(
            "failed", cell=list(cell), key=key, reason=reason, attempt=attempt
        )

    def abandoned(
        self, cell: Tuple[str, int, str], key: Optional[str], reason: str
    ) -> None:
        self.record("abandoned", cell=list(cell), key=key, reason=reason)

    def close(self) -> None:
        if self._handle is not None:
            handle, self._handle = self._handle, None
            handle.flush()
            if self.fsync:
                with contextlib.suppress(OSError):
                    os.fsync(handle.fileno())
            handle.close()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _trim_torn_tail(path: Path) -> None:
    """Truncate a torn *final* record so a resumed journal stays
    replayable.  Only the tail is ever trimmed: a torn line with valid
    records after it means out-of-order durability, and the file is
    left untouched for :func:`read_journal` to reject loudly."""
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError:
        return
    torn_offset: Optional[int] = None
    offset = 0
    for line in data.splitlines(keepends=True):
        stripped = line.strip()
        if stripped:
            try:
                json.loads(stripped)
            except (json.JSONDecodeError, UnicodeDecodeError):
                if torn_offset is None:
                    torn_offset = offset
            else:
                if torn_offset is not None:
                    return  # torn mid-file: not ours to repair
        offset += len(line)
    if torn_offset is not None:
        with open(path, "r+b") as handle:
            handle.truncate(torn_offset)
        _fsync_file(path)
    elif data and not data.endswith(b"\n"):
        # Complete final record, torn newline: appending would glue the
        # next record onto it -- restore the separator.
        with open(path, "ab") as handle:
            handle.write(b"\n")
        _fsync_file(path)


def _fsync_file(path: Path) -> None:
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _fsync_dir(path: Path) -> None:
    """fsync a directory entry so a just-created/renamed file survives
    power loss.  Best effort: not every platform/filesystem allows
    opening a directory for fsync."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def read_journal(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Parse a journal file, tolerating a torn final line.

    A driver killed between ``write`` and ``fsync`` can leave a partial
    last record; everything before it was fsynced in order, so the torn
    tail is dropped (never an exception).  A torn line anywhere *else*
    would mean out-of-order durability and raises -- that journal cannot
    be trusted for replay.
    """
    records: List[Dict[str, Any]] = []
    torn_at: Optional[int] = None
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if torn_at is None:
                    torn_at = lineno
                    continue
                raise ValueError(
                    f"{path}: torn record at line {torn_at} is not the "
                    f"final line (line {lineno} follows); journal is "
                    "not replayable"
                )
            if torn_at is not None:
                raise ValueError(
                    f"{path}: torn record at line {torn_at} is not the "
                    f"final line (line {lineno} follows); journal is "
                    "not replayable"
                )
            records.append(record)
    return records


class JournalReplay:
    """The per-cell state machine distilled from a journal's records.

    Cells are keyed by their content-hash cache key (two sweep runners
    can plan the same ``(benchmark, cores, strategy)`` triple under
    different machine overrides -- the key disambiguates).  Records
    without a key (journaling with the cache disabled) fall back to the
    rendered cell triple.
    """

    def __init__(self, records: Iterable[Dict[str, Any]]) -> None:
        #: key -> last lifecycle event seen for that cell.
        self.states: Dict[str, str] = {}
        #: key -> the cell triple (for rendering).
        self.cells: Dict[str, List[Any]] = {}
        #: key -> dispatch attempts recorded across the whole history.
        self.attempts: Dict[str, int] = {}
        self.interrupted = False
        for record in records:
            event = record.get("event")
            if event == "start":
                version = record.get("journal_version")
                if version != JOURNAL_VERSION:
                    raise ValueError(
                        f"unsupported journal_version {version!r} "
                        f"(this release reads {JOURNAL_VERSION})"
                    )
                continue
            if event == "interrupted":
                self.interrupted = True
                continue
            if event not in LIFECYCLE_EVENTS:
                continue  # meta/unknown records never affect replay
            key = self._key_of(record)
            if key is None:
                continue
            self.cells[key] = record.get("cell", [])
            if event == "dispatched":
                self.attempts[key] = self.attempts.get(key, 0) + 1
            # completed is sticky: a later planned/failed for the same key
            # (a paranoid re-run) must not demote a durable result.
            if self.states.get(key) == "completed" and event != "abandoned":
                continue
            self.states[key] = event

    @staticmethod
    def _key_of(record: Dict[str, Any]) -> Optional[str]:
        key = record.get("key")
        if key:
            return str(key)
        cell = record.get("cell")
        return f"cell:{cell!r}" if cell else None

    @classmethod
    def from_path(cls, path: Union[str, Path]) -> "JournalReplay":
        return cls(read_journal(path))

    def state(self, key: str) -> Optional[str]:
        return self.states.get(key)

    def is_completed(self, key: str) -> bool:
        return self.states.get(key) == "completed"

    def completed_keys(self) -> List[str]:
        return [k for k, s in self.states.items() if s == "completed"]

    def incomplete_keys(self) -> List[str]:
        """Cells that were planned/attempted but never reached a terminal
        state -- exactly what a resume must re-dispatch."""
        return [
            k for k, s in self.states.items() if s not in TERMINAL_STATES
        ]

    def accounting(self) -> Dict[str, int]:
        """Tallies for the replay-stats report line and the CI artifact."""
        counts = {"planned": len(self.states), "completed": 0,
                  "abandoned": 0, "incomplete": 0}
        for state in self.states.values():
            if state == "completed":
                counts["completed"] += 1
            elif state == "abandoned":
                counts["abandoned"] += 1
            else:
                counts["incomplete"] += 1
        return counts

    def balanced(self) -> bool:
        """The crash-chaos invariant: every planned cell is accounted for
        exactly once as completed or abandoned (nothing left dangling)."""
        return all(state in TERMINAL_STATES for state in self.states.values())


@contextlib.contextmanager
def flush_on_signals(journal: Optional[RunJournal], signals=(
    signal.SIGTERM, signal.SIGINT,
)):
    """Make Ctrl-C / SIGTERM resumable: on either signal, append one
    durable ``interrupted`` record *immediately* (every earlier record
    was fsynced at write time, so the journal is already consistent) and
    unwind via ``KeyboardInterrupt`` so pools and files clean up.  A
    follow-up SIGKILL during unwind loses nothing.  No-op without a
    journal or off the main thread (``signal.signal`` would raise)."""
    if journal is None:
        yield
        return
    previous = {}

    def _handler(signum, frame):
        journal.record("interrupted", signum=signum)
        journal.close()
        raise KeyboardInterrupt(f"signal {signum}: journal flushed")

    try:
        for signum in signals:
            previous[signum] = signal.signal(signum, _handler)
    except ValueError:  # not the main thread: rely on per-record fsync
        previous = {}
    try:
        yield
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
