"""Experiment harness regenerating the paper's figures."""

from .cache import ResultCache, cache_key, program_fingerprint, reference_key
from .experiments import (
    ExperimentRunner,
    RunResult,
    SINGLE_STRATEGIES,
    arithmean,
    geomean,
)
from .reporting import render_bar_breakdown, render_cache_line, render_table
from .trace import TraceEvent, Tracer

__all__ = [
    "ExperimentRunner",
    "ResultCache",
    "RunResult",
    "SINGLE_STRATEGIES",
    "arithmean",
    "cache_key",
    "geomean",
    "program_fingerprint",
    "reference_key",
    "render_bar_breakdown",
    "render_cache_line",
    "render_table",
    "TraceEvent",
    "Tracer",
]
