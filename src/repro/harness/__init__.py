"""Experiment harness regenerating the paper's figures."""

from .cache import (
    CACHE_VERSION,
    ResultCache,
    cache_key,
    program_fingerprint,
    reference_key,
)
from .experiments import (
    ExperimentRunner,
    FailureSummary,
    RunResult,
    SINGLE_STRATEGIES,
    arithmean,
    geomean,
)
from .journal import (
    JOURNAL_VERSION,
    JournalReplay,
    RunJournal,
    flush_on_signals,
    read_journal,
)
from .reporting import (
    render_bar_breakdown,
    render_cache_line,
    render_failure_line,
    render_fault_line,
    render_journal_line,
    render_recovery_line,
    render_table,
)
from .trace import TraceEvent, Tracer

__all__ = [
    "CACHE_VERSION",
    "ExperimentRunner",
    "FailureSummary",
    "JOURNAL_VERSION",
    "JournalReplay",
    "ResultCache",
    "RunJournal",
    "RunResult",
    "SINGLE_STRATEGIES",
    "arithmean",
    "cache_key",
    "flush_on_signals",
    "geomean",
    "program_fingerprint",
    "read_journal",
    "reference_key",
    "render_bar_breakdown",
    "render_cache_line",
    "render_failure_line",
    "render_fault_line",
    "render_journal_line",
    "render_recovery_line",
    "render_table",
    "TraceEvent",
    "Tracer",
]
