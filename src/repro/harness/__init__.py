"""Experiment harness regenerating the paper's figures."""

from .experiments import (
    ExperimentRunner,
    RunResult,
    SINGLE_STRATEGIES,
    arithmean,
    geomean,
)
from .reporting import render_bar_breakdown, render_table
from .trace import TraceEvent, Tracer

__all__ = [
    "ExperimentRunner",
    "RunResult",
    "SINGLE_STRATEGIES",
    "arithmean",
    "geomean",
    "render_bar_breakdown",
    "render_table",
    "TraceEvent",
    "Tracer",
]
