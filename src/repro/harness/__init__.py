"""Experiment harness regenerating the paper's figures."""

from .cache import (
    CACHE_VERSION,
    ResultCache,
    cache_key,
    program_fingerprint,
    reference_key,
)
from .experiments import (
    ExperimentRunner,
    FailureSummary,
    RunResult,
    SINGLE_STRATEGIES,
    arithmean,
    geomean,
)
from .reporting import (
    render_bar_breakdown,
    render_cache_line,
    render_failure_line,
    render_fault_line,
    render_recovery_line,
    render_table,
)
from .trace import TraceEvent, Tracer

__all__ = [
    "CACHE_VERSION",
    "ExperimentRunner",
    "FailureSummary",
    "ResultCache",
    "RunResult",
    "SINGLE_STRATEGIES",
    "arithmean",
    "cache_key",
    "geomean",
    "program_fingerprint",
    "reference_key",
    "render_bar_breakdown",
    "render_cache_line",
    "render_failure_line",
    "render_fault_line",
    "render_recovery_line",
    "render_table",
    "TraceEvent",
    "Tracer",
]
