"""On-disk result cache for simulation runs.

A run is fully determined by the benchmark *program* (every op, block
edge, and the initial memory image), the *machine configuration*, and the
build *seed* -- so cache keys are sha256 content hashes of exactly that
fingerprint, plus the (n_cores, strategy, max_cycles) cell coordinates.
Content hashing (rather than keying on the benchmark name) means a
workload-generator change invalidates stale entries automatically, and
sha256 (rather than Python's per-process randomized ``hash()``) keeps
keys stable across processes, so parallel workers and later invocations
share one cache.

Each entry is one JSON file ``<key>.json`` under the cache root, written
atomically (temp file + rename) so concurrent workers never observe a
torn entry.  Entries are wrapped in a ``{"cache_version", "payload"}``
envelope; a read that finds anything else -- truncated JSON, a raw
payload from an older layout, the wrong version -- is a *miss*, never an
exception, and the offending file is quarantined (renamed to
``<name>.corrupt``) so it cannot poison the next probe.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional

from ..arch.config import MachineConfig
from ..isa.program import Program

#: Bump when the cached payload layout changes: old entries simply miss.
#: 3: RunResult payloads gained schema_version + metrics; v2 entries are
#: quarantined as misses on first probe (same path as corrupt files).
CACHE_VERSION = 3


def program_fingerprint(program: Program) -> str:
    """A deterministic text rendering of everything that affects a run:
    functions (in definition order), block structure and annotations, every
    operation, the arrays, and the initial memory image."""
    lines = [f"program {program.name} entry={program.entry}"]
    for name, function in program.functions.items():
        lines.append(f"function {name} params={function.params!r}")
        for block in function.ordered_blocks():
            lines.append(
                f" block {block.label} taken={block.taken} fall={block.fall}"
                f" mode={block.mode} region={block.region}"
            )
            for op in block.ops:
                lines.append(f"  {op!r}")
    for name in sorted(program.arrays):
        symbol = program.arrays[name]
        lines.append(f"array {name} base={symbol.base} size={symbol.size}")
    for addr in sorted(program.initial_memory):
        lines.append(f"mem {addr}={program.initial_memory[addr]!r}")
    return "\n".join(lines)


def cache_key(
    program: Program,
    config: MachineConfig,
    seed: int,
    strategy: str,
    max_cycles: int,
    extra: str = "",
) -> str:
    """sha256 over the full run fingerprint.  ``MachineConfig`` is a frozen
    dataclass tree, so its repr is a complete, stable rendering.  ``extra``
    folds in any additional run-shaping state (e.g. a fault-injection
    configuration) so perturbed runs never share entries with clean ones."""
    digest = hashlib.sha256()
    digest.update(f"v{CACHE_VERSION}\n".encode())
    digest.update(program_fingerprint(program).encode())
    digest.update(f"\nconfig {config!r}".encode())
    digest.update(f"\nseed {seed} strategy {strategy} "
                  f"max_cycles {max_cycles}".encode())
    if extra:
        digest.update(f"\n{extra}".encode())
    return digest.hexdigest()


def reference_key(program: Program) -> str:
    """Cache key for the reference interpreter's output arrays: they
    depend only on the program itself, not on any machine or strategy."""
    digest = hashlib.sha256()
    digest.update(f"v{CACHE_VERSION} reference\n".encode())
    digest.update(program_fingerprint(program).encode())
    return digest.hexdigest()


class ResultCache:
    """A directory of JSON run results, keyed by content hash."""

    def __init__(self, root: Path, durable: bool = True) -> None:
        self.root = Path(root)
        #: fsync file + directory on every store (the crash-safety
        #: contract).  Off only for throughput-sensitive tests.
        self.durable = durable
        self.hits = 0
        self.misses = 0
        self.quarantined = 0

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def load(self, key: str) -> Optional[Dict[str, Any]]:
        path = self._path(key)
        try:
            with open(path) as handle:
                envelope = json.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            # Truncated/garbled entry (a worker killed mid-write before the
            # atomic rename existed, disk trouble, manual tampering): treat
            # as a miss and move the file aside so it never re-offends.
            self.misses += 1
            self._quarantine(path)
            return None
        if (
            not isinstance(envelope, dict)
            or envelope.get("cache_version") != CACHE_VERSION
            or "payload" not in envelope
        ):
            # Parseable but not ours: raw pre-envelope payloads, foreign
            # JSON, or an entry from a different CACHE_VERSION.
            self.misses += 1
            self._quarantine(path)
            return None
        self.hits += 1
        return envelope["payload"]

    def store(self, key: str, payload: Dict[str, Any]) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        envelope = {"cache_version": CACHE_VERSION, "payload": payload}
        # Atomic, *durable* publish: the temp file is fsynced before the
        # rename and the directory entry after it, so a concurrent reader
        # sees the old entry or the new one -- and a SIGKILL or power
        # loss immediately after store() cannot leave a zero-length or
        # torn file behind the rename.  The run journal leans on this:
        # its ``completed`` records promise a durable cache entry.
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(envelope, handle)
                handle.flush()
                if self.durable:
                    os.fsync(handle.fileno())
            os.replace(tmp, self._path(key))
            if self.durable:
                self._fsync_root()
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _fsync_root(self) -> None:
        """fsync the cache directory so a just-renamed entry's name is
        durable too.  Best effort: some platforms/filesystems refuse
        directory fsync, and durability there degrades gracefully."""
        try:
            dir_fd = os.open(self.root, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(dir_fd)
        except OSError:
            pass
        finally:
            os.close(dir_fd)

    def _quarantine(self, path: Path) -> None:
        """Rename a bad entry to ``<name>.corrupt`` (unlink if the rename
        itself fails); quarantine never raises -- a cache problem must
        degrade to a miss, not kill the experiment."""
        self.quarantined += 1
        try:
            os.replace(path, path.with_name(path.name + ".corrupt"))
        except OSError:
            try:
                os.unlink(path)
            except OSError:
                pass
