"""Experiment drivers: one entry point per paper figure.

Every simulation is functionally checked against the reference
interpreter (a run with wrong output arrays is a harness failure, not a
data point).  Results are memoized per (benchmark, cores, strategy) so
the figure drivers can share runs.

Two optional layers speed up suite-scale experiments:

* ``cache_dir`` enables the on-disk :class:`~repro.harness.cache.ResultCache`
  (content-hash keyed, stable across processes), so repeated figure runs
  re-simulate only what changed;
* ``jobs > 1`` fans independent (benchmark, cores, strategy) cells out to
  a ``ProcessPoolExecutor``; every figure driver prefetches its cell list
  through the pool before assembling the table.

The parallel path is hardened against a hostile environment: every worker
task carries a wall-clock deadline (``cell_timeout`` per cell), overdue
or crashed tasks are retried with exponential backoff up to ``retries``
times, a broken pool (a worker killed by the OOM killer, a segfault, an
``os._exit``) degrades the remaining work to an in-process serial re-run
instead of aborting the figure, and everything that went wrong is
tallied in a :class:`FailureSummary` the reporting layer renders.

An optional :class:`~repro.sim.faults.FaultConfig` runs every simulation
under deterministic fault injection (chaos mode).  The functional check
against the reference interpreter still applies -- faults must perturb
timing, never results -- so a chaos figure run doubles as a whole-suite
differential test.
"""

from __future__ import annotations

import hashlib
import random
import tempfile
import threading
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..arch.config import MachineConfig, apply_overrides, mesh, single_core
from ..compiler.driver import VoltronCompiler
from ..isa.interp import run_program
from ..isa.registers import Value
from ..sim.faults import FaultConfig, FaultPlan
from ..sim.machine import VoltronMachine
from ..sim.stats import MachineStats, STALL_CATEGORIES
from ..workloads.suite import BENCHMARKS, Benchmark, build
from .cache import ResultCache, cache_key, reference_key
from .journal import JournalReplay, RunJournal

#: Strategies evaluated per figure.
SINGLE_STRATEGIES = ("ilp", "tlp", "llp")

#: One simulation cell: (benchmark, n_cores, strategy).
Cell = Tuple[str, int, str]

#: Result-schema version carried by every serialized RunResult.  The
#: major is a compatibility contract: ``from_dict`` rejects payloads
#: from a different major (or from before versioning existed).  3.0:
#: added schema_version itself and the optional observability metrics.
SCHEMA_VERSION = "3.0"


@dataclass
class RunResult:
    benchmark: str
    n_cores: int
    strategy: str
    cycles: int
    stats: MachineStats
    correct: bool
    #: (function, machine label) -> region descriptor (rid/strategy/origin).
    region_table: Dict[Tuple[str, str], Dict[str, object]]
    #: Observability payload (series + reconciled timeline) when the run
    #: was profiled via ``obs=``; None for ordinary runs.
    metrics: Optional[Dict[str, object]] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema_version": SCHEMA_VERSION,
            "benchmark": self.benchmark,
            "n_cores": self.n_cores,
            "strategy": self.strategy,
            "cycles": self.cycles,
            "stats": self.stats.to_dict(),
            "correct": self.correct,
            "region_table": [
                [function, label, descriptor]
                for (function, label), descriptor in self.region_table.items()
            ],
            "metrics": self.metrics,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunResult":
        version = data.get("schema_version")
        major = str(version).split(".", 1)[0] if version is not None else None
        if major != SCHEMA_VERSION.split(".", 1)[0]:
            raise ValueError(
                f"unsupported RunResult schema_version {version!r} "
                f"(this release reads major {SCHEMA_VERSION.split('.')[0]})"
            )
        return cls(
            benchmark=data["benchmark"],
            n_cores=data["n_cores"],
            strategy=data["strategy"],
            cycles=data["cycles"],
            stats=MachineStats.from_dict(data["stats"]),
            correct=data["correct"],
            region_table={
                (function, label): descriptor
                for function, label, descriptor in data["region_table"]
            },
            metrics=data.get("metrics"),
        )


def _config_for(n_cores: int) -> MachineConfig:
    return single_core() if n_cores == 1 else mesh(n_cores)


@dataclass
class FailureSummary:
    """What went wrong (and was absorbed) during a hardened prefetch.

    ``timed_out``/``retried``/``degraded`` hold human-readable cell or
    benchmark labels; ``worker_crashes`` counts pool breakages.  A clean
    run leaves every field empty -- ``any()`` gates the report line."""

    timed_out: List[str] = field(default_factory=list)
    retried: List[str] = field(default_factory=list)
    degraded: List[str] = field(default_factory=list)
    worker_crashes: int = 0
    #: Cache entries moved aside as unreadable (mirrors
    #: ``ResultCache.quarantined``; synced by ``failure_summary``).
    cache_quarantined: int = 0
    #: Cells given up on entirely (every pool round *and* the serial
    #: fallback failed); the journal records them as ``abandoned``.
    abandoned: List[str] = field(default_factory=list)
    #: Cell label -> how many attempts (pool dispatches + serial runs)
    #: it took.  A clean run leaves every count at 1; the count is
    #: bookkeeping, not a failure, so ``any()`` ignores it.
    attempts: Dict[str, int] = field(default_factory=dict)

    def any(self) -> bool:
        return bool(
            self.timed_out
            or self.retried
            or self.degraded
            or self.worker_crashes
            or self.cache_quarantined
            or self.abandoned
        )

    def max_attempts(self) -> int:
        """The worst per-cell attempt count (0 with no attempts tracked)."""
        return max(self.attempts.values(), default=0)


def _cell_label(name: str, n_cores: int, strategy: str) -> str:
    return f"{name}[{n_cores}-{strategy}]"


def _heartbeat_path(hb_dir: Union[str, Path], name: str) -> Path:
    """The heartbeat file for one worker task, keyed by its benchmark
    (the fan-out unit, unique within a pool round)."""
    digest = hashlib.sha256(name.encode()).hexdigest()[:12]
    return Path(hb_dir) / f"hb-{digest}"


def _write_heartbeat(path: Path) -> None:
    try:
        path.write_text(repr(time.time()))
    except OSError:
        pass  # a lost beat only risks a spurious retry, never corruption


def _read_heartbeat(path: Path) -> Optional[float]:
    try:
        return float(path.read_text())
    except (OSError, ValueError):
        return None  # absent or torn mid-write: no verdict either way


def _run_cells_worker(spec: Tuple) -> List[Dict[str, object]]:
    """Pool worker: simulate one benchmark's cells in a fresh runner and
    hand the results back as plain dicts (JSON-safe, cheap to pickle).
    The fan-out unit is a benchmark, not a cell, so the build, the
    compiler, and the reference-interpreter run are paid once per worker
    task instead of once per (cores, strategy) point.  Top-level so
    ProcessPoolExecutor can address it by qualified name.

    When the spec carries a heartbeat assignment (``spec[7]``: a
    ``(dir, interval)`` pair), a daemon thread touches this task's
    heartbeat file every ``interval`` seconds for as long as the task
    runs, so the driver's supervisor can tell a slow-but-alive worker
    from a hung or frozen one without waiting out the full deadline."""
    name, cells, seed, max_cycles, cache_dir, fault_config = spec[:6]
    config_overrides = spec[6] if len(spec) > 6 else None
    heartbeat = spec[7] if len(spec) > 7 else None
    stop = None
    if heartbeat is not None:
        hb_dir, interval = heartbeat
        hb_file = _heartbeat_path(hb_dir, name)
        stop = threading.Event()

        def _beat() -> None:
            _write_heartbeat(hb_file)
            while not stop.wait(interval):
                _write_heartbeat(hb_file)

        threading.Thread(target=_beat, daemon=True).start()
    try:
        runner = ExperimentRunner(
            benchmarks=[name],
            seed=seed,
            max_cycles=max_cycles,
            cache_dir=cache_dir,
            faults=fault_config,
            config_overrides=config_overrides,
        )
        return [
            runner.run(name, n_cores, strategy).to_dict()
            for n_cores, strategy in cells
        ]
    finally:
        if stop is not None:
            stop.set()


class ExperimentRunner:
    """Builds, compiles, simulates, and caches the whole suite."""

    def __init__(
        self,
        benchmarks: Optional[Sequence[str]] = None,
        seed: int = 1,
        max_cycles: int = 50_000_000,
        cache_dir: Optional[Union[str, Path]] = None,
        jobs: int = 1,
        cell_timeout: Optional[float] = None,
        retries: int = 2,
        retry_backoff: float = 0.25,
        faults: Optional[FaultConfig] = None,
        obs=None,
        config_overrides: Optional[Dict[str, object]] = None,
        journal: Optional[Union[str, Path, RunJournal]] = None,
        resume: bool = False,
        replay: Optional[JournalReplay] = None,
        heartbeat_timeout: Optional[float] = None,
        heartbeat_interval: float = 0.2,
        backoff_seed: Optional[int] = None,
        max_abandoned: int = 0,
    ) -> None:
        if obs is not None:
            # An Observability bus observes exactly one run, and a cached
            # or pooled result would come back without its events -- so a
            # profiling runner is strictly serial and uncached.
            if cache_dir is not None:
                raise ValueError(
                    "observability runs bypass the result cache; "
                    "pass cache_dir=None with obs"
                )
            if jobs > 1:
                raise ValueError(
                    "observability runs are single-process; pass jobs=1 "
                    "with obs"
                )
        self.names = list(benchmarks) if benchmarks is not None else list(
            BENCHMARKS
        )
        self.seed = seed
        self.max_cycles = max_cycles
        self.jobs = max(1, jobs)
        #: Wall-clock seconds each simulation cell may take on the pool
        #: before its task is abandoned and retried (None = no deadline).
        self.cell_timeout = cell_timeout
        #: Pool rounds after the first before degrading to serial.
        self.retries = max(0, retries)
        #: Base of the exponential backoff slept between pool rounds.
        self.retry_backoff = retry_backoff
        self.fault_config = faults
        #: Hung-worker detection: a pool task whose heartbeat file goes
        #: stale past this many seconds is declared dead and retried,
        #: without waiting out the (much longer) cell deadline.  None
        #: disables supervision.
        self.heartbeat_timeout = heartbeat_timeout
        self.heartbeat_interval = heartbeat_interval
        #: Seed of the deterministic retry-backoff jitter (defaults to
        #: the build seed): decorrelates retry storms across concurrent
        #: drivers while keeping every sleep reproducible.
        self.backoff_seed = seed if backoff_seed is None else backoff_seed
        self._backoff_rng = random.Random(self.backoff_seed)
        #: How many abandoned cells a prefetch absorbs before the next
        #: one re-raises (0 = the first serial-fallback failure still
        #: propagates immediately, after being journaled).
        self.max_abandoned = max(0, max_abandoned)
        #: Flat machine-config overrides (queue depth, hop latency, TM
        #: commit cost, ...) applied on top of the per-core-count default
        #: shape; the sweep driver explores the design space through
        #: this.  Folded into every cache key via the config's repr.
        self.config_overrides = dict(config_overrides) if config_overrides else None
        #: Observability bus for the next simulated cell (single-use: the
        #: first uncached simulation consumes it).
        self.obs = obs
        #: Total injected perturbations across this runner's fault runs.
        self.fault_injections = 0
        self.failures = FailureSummary()
        self.cache = ResultCache(Path(cache_dir)) if cache_dir else None
        self._cache_dir = str(cache_dir) if cache_dir else None
        #: Replay state from a prior (interrupted) journal: loaded from
        #: the journal path under ``resume=True``, or injected directly
        #: (the sweep driver shares one replay across its runners).
        self._replay = replay
        self._owns_journal = False
        if journal is not None and not isinstance(journal, RunJournal):
            journal_path = Path(journal)
            if resume and self._replay is None and journal_path.exists():
                self._replay = JournalReplay.from_path(journal_path)
            journal = RunJournal(
                journal_path, resume=resume and journal_path.exists()
            )
            self._owns_journal = True
        #: Write-ahead run journal (driver-side single writer); every
        #: lifecycle record is fsynced before the run proceeds, so a
        #: SIGKILLed driver resumes from a consistent history.
        self.journal: Optional[RunJournal] = journal
        #: Resume/replay tallies for the report line and sweep artifact.
        self.journal_stats: Dict[str, int] = {
            "replayed": 0, "rerun": 0, "abandoned": 0,
        }
        #: Keys already planned this run (a retry round must not re-plan).
        self._planned_keys: set = set()
        #: Supervision scratch dir for worker heartbeat files.
        self._hb_dir: Optional[str] = None
        #: The pool entry point; tests swap in crashing/hanging doubles.
        self._worker_fn = _run_cells_worker
        self._built: Dict[str, Benchmark] = {}
        #: Cell -> content-hash key; the fingerprint render is not free,
        #: and every cell is keyed at least twice (probe + store).
        self._keys: Dict[Cell, str] = {}
        self._compilers: Dict[str, VoltronCompiler] = {}
        self._references: Dict[str, Dict[str, List[Value]]] = {}
        self._runs: Dict[Cell, RunResult] = {}

    # -- building blocks -----------------------------------------------------------

    def benchmark(self, name: str) -> Benchmark:
        if name not in self._built:
            self._built[name] = build(name, self.seed)
        return self._built[name]

    def machine_config(self, n_cores: int) -> MachineConfig:
        """The machine shape simulated for ``n_cores``: the standard
        mesh preset with this runner's overrides applied on top."""
        return apply_overrides(_config_for(n_cores), self.config_overrides)

    def compiler(self, name: str) -> VoltronCompiler:
        if name not in self._compilers:
            self._compilers[name] = VoltronCompiler(self.benchmark(name).program)
        return self._compilers[name]

    def reference_outputs(self, name: str) -> Dict[str, List[Value]]:
        if name not in self._references:
            bench = self.benchmark(name)
            key = reference_key(bench.program) if self.cache else None
            if key is not None:
                payload = self.cache.load(key)
                if payload is not None:
                    self._references[name] = payload["arrays"]
                    return self._references[name]
            result = run_program(bench.program)
            self._references[name] = {
                array: result.array_values(bench.program, array)
                for array in bench.outputs
            }
            if key is not None:
                self.cache.store(key, {"arrays": self._references[name]})
        return self._references[name]

    def _cell_key(self, name: str, n_cores: int, strategy: str) -> str:
        cell = (name, n_cores, strategy)
        key = self._keys.get(cell)
        if key is None:
            key = cache_key(
                self.benchmark(name).program,
                self.machine_config(n_cores),
                self.seed,
                strategy,
                self.max_cycles,
                # FaultConfig is frozen, so its repr is a complete stable
                # rendering; chaos runs never share entries with clean ones.
                extra=(
                    f"faults {self.fault_config!r}"
                    if self.fault_config is not None
                    else ""
                ),
            )
            self._keys[cell] = key
        return key

    def _fault_plan(self, name: str, n_cores: int, strategy: str) -> Optional[FaultPlan]:
        """A fresh, deterministic plan for one cell: plans are stateful
        (countdowns advance as they fire), so each simulation needs its
        own, and the seed is decorrelated per cell so every cell sees a
        different arrival pattern while staying reproducible."""
        if self.fault_config is None:
            return None
        digest = hashlib.sha256(
            f"{self.fault_config.seed}:{name}:{n_cores}:{strategy}".encode()
        ).digest()
        cell_seed = int.from_bytes(digest[:4], "big")
        return FaultPlan(replace(self.fault_config, seed=cell_seed))

    # -- journal bookkeeping -----------------------------------------------------

    def close_journal(self) -> None:
        """Close the journal if this runner opened it (constructed from a
        path rather than handed a shared :class:`RunJournal`); a no-op
        otherwise -- the owner (e.g. the sweep driver) closes shared ones."""
        if self.journal is not None and self._owns_journal:
            self.journal.close()

    def _journal_key(self, cell: Cell) -> Optional[str]:
        """The cell's content-hash key, computed only when some layer
        (cache or journal) will use it."""
        if self.cache is None and self.journal is None and self._replay is None:
            return None
        return self._cell_key(*cell)

    def _note_planned(self, cell: Cell, key: Optional[str]) -> None:
        """Journal ``planned`` exactly once per cell per run, and count
        the resume bookkeeping: a cell with prior journal history that
        still needs dispatching is a *re-run*."""
        if self.journal is None and self._replay is None:
            return
        marker = key or _cell_label(*cell)
        if marker in self._planned_keys:
            return
        self._planned_keys.add(marker)
        if self._replay is not None and self._replay.state(marker) is not None:
            self.journal_stats["rerun"] += 1
        if self.journal is not None:
            self.journal.planned(cell, key)

    def _note_dispatched(self, cell: Cell, key: Optional[str], mode: str) -> None:
        label = _cell_label(*cell)
        attempt = self.failures.attempts.get(label, 0) + 1
        self.failures.attempts[label] = attempt
        if self.journal is not None:
            self.journal.dispatched(cell, key, attempt=attempt, mode=mode)

    def _note_completed(self, cell: Cell, key: Optional[str], source: str) -> None:
        """Record durable completion -- called strictly *after* the
        result is in the cache (or, uncached, in the run memo), so a
        ``completed`` record always implies a recoverable result."""
        if self.journal is not None:
            self.journal.completed(
                cell, key, source=source,
                attempt=self.failures.attempts.get(_cell_label(*cell), 0),
            )

    def _note_failed(self, cell: Cell, reason: str) -> None:
        if self.journal is not None:
            self.journal.failed(
                cell, self._journal_key(cell), reason=reason,
                attempt=self.failures.attempts.get(_cell_label(*cell), 0),
            )

    def _abandon(self, cell: Cell, error: Exception) -> None:
        """Terminal escalation: journal the cell as ``abandoned`` (the
        journal must account for every planned cell) and tally it."""
        self.failures.abandoned.append(_cell_label(*cell))
        self.journal_stats["abandoned"] += 1
        if self.journal is not None:
            self.journal.abandoned(
                cell, self._journal_key(cell),
                reason=f"{type(error).__name__}: {error}",
            )

    def run(self, benchmark: str, cores: int, strategy: str) -> RunResult:
        cell = (benchmark, cores, strategy)
        if cell in self._runs:
            return self._runs[cell]
        if self._resolve_cached([cell]):
            try:
                self._run_uncached(cell)
            except Exception as error:
                self._abandon(cell, error)
                raise
        return self._runs[cell]

    def _simulate(self, name: str, n_cores: int, strategy: str) -> RunResult:
        bench = self.benchmark(name)
        config = self.machine_config(n_cores)
        compiled = self.compiler(name).compile(strategy, config)
        plan = self._fault_plan(name, n_cores, strategy)
        obs, self.obs = self.obs, None  # single-use: first simulation wins
        machine = VoltronMachine(
            compiled, config, max_cycles=self.max_cycles, faults=plan, obs=obs
        )
        stats = machine.run()
        if plan is not None:
            self.fault_injections += plan.injections()
        reference = self.reference_outputs(name)
        correct = all(
            machine.array_values(array) == values
            for array, values in reference.items()
        )
        if not correct:
            # Under fault injection this is the determinism invariant
            # breaking, not a data point -- fail loudly either way.
            raise AssertionError(
                f"{name} [{n_cores}-core {strategy}] produced wrong output"
            )
        metrics: Optional[Dict[str, object]] = None
        if obs is not None:
            # Reconcile the observed timeline against the simulator's own
            # accounting before anything downstream trusts the metrics.
            from ..obs import reconcile, summarize

            reconcile(summarize(obs), stats)
            metrics = obs.metrics()
        result = RunResult(
            benchmark=name,
            n_cores=n_cores,
            strategy=strategy,
            cycles=stats.cycles,
            stats=stats,
            correct=correct,
            region_table=compiled.attrs.get("regions", {}),
            metrics=metrics,
        )
        return result

    def prefetch(self, cells: Sequence[Cell]) -> None:
        """Populate the run memo for ``cells``, fanning cache misses out to
        a process pool when ``jobs > 1``.  Serial fallback otherwise -- the
        figure drivers call this unconditionally."""
        pending = self._resolve_cached(cells)
        if not pending:
            return
        if self.jobs == 1 or len({name for name, _, _ in pending}) == 1:
            # The cache was already probed above, so simulate directly
            # (run() would re-probe and double-count the miss).
            for cell in pending:
                try:
                    self._run_uncached(cell)
                except Exception as error:
                    self._abandon(cell, error)
                    raise
            return
        self._prefetch_parallel(pending)

    # -- hardened parallel prefetch ---------------------------------------------

    def _resolve_cached(self, cells: Sequence[Cell]) -> List[Cell]:
        """Memoize every cached cell in-process (where the reporting layer
        can see the hit/miss tallies) and return the true misses.

        This is also where the journal learns about cells: a cache hit
        whose key the replayed journal already marks ``completed`` is a
        pure *replay* (no new records, counted in ``journal_stats``);
        any other hit records ``planned`` + ``completed``; a miss
        records ``planned`` and joins the dispatch list."""
        pending: List[Cell] = []
        seen = set()
        for cell in cells:
            if cell in self._runs or cell in seen:
                continue
            seen.add(cell)
            key = self._journal_key(cell)
            if self.cache is not None:
                payload = self.cache.load(key)
                if payload is not None:
                    self._runs[cell] = RunResult.from_dict(payload)
                    if (
                        self._replay is not None
                        and key is not None
                        and self._replay.is_completed(key)
                        and key not in self._planned_keys
                    ):
                        # Journaled complete + durable in cache: replayed
                        # without re-simulation, exactly as promised.
                        self._planned_keys.add(key)
                        self.journal_stats["replayed"] += 1
                    else:
                        self._note_planned(cell, key)
                        self._note_completed(cell, key, source="cache")
                    continue
            self._note_planned(cell, key)
            pending.append(cell)
        return pending

    def _run_uncached(self, cell: Cell) -> None:
        """Simulate one cell in-process and publish it to the cache (the
        cache store is fsync-durable, so the ``completed`` record that
        follows it never lies)."""
        key = self._journal_key(cell)
        self._note_dispatched(cell, key, mode="serial")
        result = self._simulate(*cell)
        if self.cache is not None:
            self.cache.store(key, result.to_dict())
        self._runs[cell] = result
        self._note_completed(cell, key, source="serial")

    def _heartbeat_spec(self) -> Optional[Tuple[str, float]]:
        """The ``(dir, interval)`` heartbeat assignment workers carry, or
        None when supervision is off.  The scratch dir rides the cache
        root when there is one (shared with workers anyway), a temp dir
        otherwise."""
        if self.heartbeat_timeout is None:
            return None
        if self._hb_dir is None:
            if self._cache_dir is not None:
                hb_dir = Path(self._cache_dir) / ".hb"
                hb_dir.mkdir(parents=True, exist_ok=True)
                self._hb_dir = str(hb_dir)
            else:
                self._hb_dir = tempfile.mkdtemp(prefix="repro-hb-")
        return (self._hb_dir, self.heartbeat_interval)

    def _specs_for(self, cells: Sequence[Cell]) -> List[Tuple]:
        by_name: Dict[str, List[Tuple[int, str]]] = {}
        for name, n_cores, strategy in cells:
            by_name.setdefault(name, []).append((n_cores, strategy))
        heartbeat = self._heartbeat_spec()
        return [
            (
                name,
                name_cells,
                self.seed,
                self.max_cycles,
                self._cache_dir,
                self.fault_config,
                self.config_overrides,
                heartbeat,
            )
            for name, name_cells in by_name.items()
        ]

    def _backoff_delay(self, round_index: int) -> float:
        """Exponential backoff with deterministic seeded jitter: the
        base doubles per round, and a [1.0, 2.0) multiplier drawn from
        ``backoff_seed`` desynchronizes retry storms across drivers that
        share a machine, while keeping each driver's sleeps replayable."""
        base = self.retry_backoff * (2 ** (round_index - 1))
        return base * (1.0 + self._backoff_rng.random())

    def _prefetch_parallel(self, pending: List[Cell]) -> None:
        """Fan ``pending`` out to worker processes, surviving hangs and
        crashes: each pool round enforces per-task deadlines (plus
        heartbeat supervision when armed), overdue tasks are retried in
        the next round after a jittered exponential backoff, and once
        ``retries`` rounds are spent (or the pool breaks) the leftovers
        run serially in-process -- slower, never wrong.  A cell that
        fails even serially is journaled ``abandoned``; up to
        ``max_abandoned`` of those are absorbed before re-raising."""
        for round_index in range(self.retries + 1):
            if round_index:
                time.sleep(self._backoff_delay(round_index))
                self.failures.retried.extend(
                    _cell_label(*cell) for cell in pending
                )
            leftovers = self._pool_round(self._specs_for(pending))
            if not leftovers:
                return
            # A timed-out worker may still have finished the store before
            # we stopped waiting; the cache probe rescues those cells.
            pending = self._resolve_cached(
                [
                    (name, n_cores, strategy)
                    for name, name_cells, *_ in leftovers
                    for n_cores, strategy in name_cells
                ]
            )
            if not pending:
                return
        for cell in pending:
            self._run_degraded(cell)

    def _run_degraded(self, cell: Cell) -> None:
        """Serial re-run of one cell after pool trouble; a cell that
        fails even here escalates to ``abandoned`` (bounded by
        ``max_abandoned``, so one poisoned cell cannot silently eat the
        whole grid -- but a chaos run can finish around it)."""
        self.failures.degraded.append(_cell_label(*cell))
        try:
            self._run_uncached(cell)
        except Exception as error:
            self._abandon(cell, error)
            if len(self.failures.abandoned) > self.max_abandoned:
                raise

    def _spec_cells(self, spec: Tuple) -> List[Cell]:
        name = spec[0]
        return [(name, n_cores, strategy) for n_cores, strategy in spec[1]]

    def _fail_spec(self, spec: Tuple, reason: str) -> None:
        for cell in self._spec_cells(spec):
            self._note_failed(cell, reason)

    def _pool_round(self, specs: List[Tuple]) -> List[Tuple]:
        """One pool pass over ``specs``.  Returns the specs that blew
        their deadline or lost their heartbeat (for the caller to
        retry).  A broken pool sends every unfinished spec straight to
        the serial fallback -- the pool machinery itself is no longer
        trusted this round."""
        pool = ProcessPoolExecutor(max_workers=self.jobs)
        started = time.monotonic()
        supervising = self.heartbeat_timeout is not None
        futures = {}
        deadlines = {}
        timed_out: List[Tuple] = []
        broken = False
        unsubmitted: List[Tuple] = []
        for index, spec in enumerate(specs):
            if supervising and self._hb_dir is not None:
                # A beat left over from an earlier round must not read
                # as instantly stale for this round's worker.
                try:
                    _heartbeat_path(self._hb_dir, spec[0]).unlink()
                except OSError:
                    pass
            try:
                future = pool.submit(self._worker_fn, spec)
            except BrokenProcessPool:
                # A worker died while the round was still being fed (an
                # instant crash can poison the pool between submits);
                # nothing more can be submitted this round.
                broken = True
                self.failures.worker_crashes += 1
                unsubmitted = specs[index:]
                break
            futures[future] = spec
            for cell in self._spec_cells(spec):
                self._note_dispatched(cell, self._journal_key(cell), mode="pool")
            if self.cell_timeout is not None:
                deadlines[future] = started + self.cell_timeout * max(
                    1, len(spec[1])
                )
        if broken:
            for spec in list(futures.values()) + unsubmitted:
                self._fail_spec(spec, "pool-broken")
                self._serial_fallback(spec)
            futures.clear()
        try:
            while futures:
                budget = None
                if deadlines:
                    budget = max(
                        0.0,
                        min(
                            deadlines[f] for f in futures if f in deadlines
                        ) - time.monotonic(),
                    )
                if supervising:
                    # Wake often enough to notice a silenced heartbeat
                    # long before any cell deadline would.
                    poll = max(0.05, self.heartbeat_timeout / 4.0)
                    budget = poll if budget is None else min(budget, poll)
                done, _ = wait(
                    set(futures), timeout=budget, return_when=FIRST_COMPLETED
                )
                if supervising:
                    # Supervisor pass: a task that has beaten at least
                    # once but has now been silent past the heartbeat
                    # deadline is declared hung/killed and abandoned for
                    # this round (cancel() cannot interrupt it).
                    now_wall = time.time()
                    for future in list(futures):
                        if future in done:
                            continue
                        spec = futures[future]
                        beat = _read_heartbeat(
                            _heartbeat_path(self._hb_dir, spec[0])
                        )
                        if (
                            beat is not None
                            and now_wall - beat > self.heartbeat_timeout
                        ):
                            futures.pop(future)
                            future.cancel()
                            timed_out.append(spec)
                            self.failures.timed_out.append(spec[0])
                            self._fail_spec(spec, "heartbeat-lost")
                if not done:
                    # Deadline expiry.  cancel() cannot interrupt a running
                    # worker process, so the task is abandoned: its future
                    # is dropped and the pool torn down without waiting.
                    now = time.monotonic()
                    for future in list(futures):
                        if deadlines.get(future, now + 1) <= now:
                            spec = futures.pop(future)
                            future.cancel()
                            timed_out.append(spec)
                            self.failures.timed_out.append(spec[0])
                            self._fail_spec(spec, "timeout")
                    continue
                for future in done:
                    if future not in futures:
                        continue  # reaped by the supervisor this wake
                    spec = futures.pop(future)
                    try:
                        payloads = future.result()
                    except BrokenProcessPool:
                        # A worker died mid-task (segfault, OOM kill,
                        # os._exit); every sibling future is now poisoned.
                        broken = True
                        self.failures.worker_crashes += 1
                        self._fail_spec(spec, "worker-crashed")
                        self._serial_fallback(spec)
                        for other_spec in futures.values():
                            self._fail_spec(other_spec, "pool-broken")
                            self._serial_fallback(other_spec)
                        futures.clear()
                        break
                    self._absorb(spec, payloads)
        finally:
            pool.shutdown(wait=not timed_out and not broken, cancel_futures=True)
        return timed_out

    def _absorb(self, spec: Tuple, payloads: List[Dict[str, object]]) -> None:
        name = spec[0]
        for (n_cores, strategy), payload in zip(spec[1], payloads):
            cell = (name, n_cores, strategy)
            self._runs[cell] = RunResult.from_dict(payload)
            # The worker stored the result durably before returning it
            # (same content-hash key), so completion is safe to journal.
            self._note_completed(cell, self._journal_key(cell), source="worker")

    def _serial_fallback(self, spec: Tuple) -> None:
        """Run one spec's cells in-process after pool trouble (re-probing
        the cache first -- the worker may have finished some cells)."""
        for cell in self._resolve_cached(self._spec_cells(spec)):
            self._run_degraded(cell)

    def baseline(self, name: str) -> RunResult:
        return self.run(name, 1, "baseline")

    def speedup(self, benchmark: str, cores: int, strategy: str) -> float:
        return (
            self.baseline(benchmark).cycles
            / self.run(benchmark, cores, strategy).cycles
        )

    def failure_summary(self) -> FailureSummary:
        """The failure ledger with the cache's quarantine tally synced in
        (the cache counts its own quarantines; the summary mirrors them
        so one object describes everything absorbed)."""
        if self.cache is not None:
            self.failures.cache_quarantined = self.cache.quarantined
        return self.failures

    def recovery_totals(self) -> Dict[str, int]:
        """Destructive-fault recovery counters summed over every run this
        session has seen (memoized, cached, or pooled alike -- the
        counters ride ``MachineStats.recovery`` through serialization)."""
        totals: Dict[str, int] = {}
        for result in self._runs.values():
            for counter, value in result.stats.recovery.items():
                totals[counter] = totals.get(counter, 0) + value
        return totals

    # -- figures ------------------------------------------------------------------

    def fig10_11_speedups(
        self, cores: Optional[int] = None
    ) -> Dict[str, Dict[str, float]]:
        """Figure 10 (2 cores) / Figure 11 (4 cores): per-benchmark speedup
        when exploiting each parallelism type individually."""
        n_cores = 4 if cores is None else cores
        self.prefetch(
            [(name, 1, "baseline") for name in self.names]
            + [
                (name, n_cores, strategy)
                for name in self.names
                for strategy in SINGLE_STRATEGIES
            ]
        )
        table: Dict[str, Dict[str, float]] = {}
        for name in self.names:
            table[name] = {
                strategy: self.speedup(name, n_cores, strategy)
                for strategy in SINGLE_STRATEGIES
            }
        return table

    def fig12_stalls(
        self, cores: Optional[int] = None
    ) -> Dict[str, Dict[str, Dict[str, float]]]:
        """Figure 12: stall cycles (per-core mean) under coupled-mode ILP
        vs decoupled fine-grain TLP, normalized to serial execution time."""
        n_cores = 4 if cores is None else cores
        self.prefetch(
            [(name, 1, "baseline") for name in self.names]
            + [
                (name, n_cores, strategy)
                for name in self.names
                for strategy in ("ilp", "tlp")
            ]
        )
        table: Dict[str, Dict[str, Dict[str, float]]] = {}
        for name in self.names:
            serial = self.baseline(name).cycles
            row: Dict[str, Dict[str, float]] = {}
            for strategy, label in (("ilp", "coupled"), ("tlp", "decoupled")):
                stats = self.run(name, n_cores, strategy).stats
                row[label] = {
                    category: stats.mean_stalls(category) / serial
                    for category in STALL_CATEGORIES
                }
            table[name] = row
        return table

    def fig13_hybrid(
        self, cores: Sequence[int] = (2, 4)
    ) -> Dict[str, Dict[int, float]]:
        """Figure 13: hybrid speedups on 2- and 4-core Voltron (or any
        other set of core counts, e.g. ``(16, 32)`` for scaled meshes)."""
        counts = tuple(cores)
        self.prefetch(
            [(name, 1, "baseline") for name in self.names]
            + [(name, n, "hybrid") for name in self.names for n in counts]
        )
        return {
            name: {
                n: self.speedup(name, n, "hybrid")
                for n in counts
            }
            for name in self.names
        }

    def fig_scaling(
        self, cores: Sequence[int] = (4, 16, 32)
    ) -> Dict[str, Dict[int, Dict[str, float]]]:
        """Beyond the paper's grid: per-benchmark speedup for every
        strategy at each mesh size, ``{name: {cores: {strategy: x}}}``.

        The paper stops at 4 cores; this cell exposes which strategies
        keep scaling on 16/32-core meshes (statistical LLP regions with
        wide DOALL loops) and which saturate (ILP limited by the
        program's dependence height)."""
        counts = tuple(cores)
        strategies = SINGLE_STRATEGIES + ("hybrid",)
        self.prefetch(
            [(name, 1, "baseline") for name in self.names]
            + [
                (name, n, strategy)
                for name in self.names
                for n in counts
                for strategy in strategies
            ]
        )
        return {
            name: {
                n: {
                    strategy: self.speedup(name, n, strategy)
                    for strategy in strategies
                }
                for n in counts
            }
            for name in self.names
        }

    def fig14_mode_time(
        self, cores: Optional[int] = None
    ) -> Dict[str, Dict[str, float]]:
        """Figure 14: fraction of hybrid execution spent in each mode."""
        n_cores = 4 if cores is None else cores
        self.prefetch([(name, n_cores, "hybrid") for name in self.names])
        table = {}
        for name in self.names:
            stats = self.run(name, n_cores, "hybrid").stats
            table[name] = {
                "coupled": stats.mode_fraction("coupled"),
                "decoupled": stats.mode_fraction("decoupled"),
            }
        return table

    def fig3_breakdown(
        self, cores: Optional[int] = None
    ) -> Dict[str, Dict[str, float]]:
        """Figure 3: fraction of serial execution best accelerated by each
        parallelism type on a 4-core system.

        Methodology mirrors the paper: each region is timed under each
        single-strategy compilation; the region's serial-time fraction is
        attributed to the type that ran it fastest (or to "single core"
        when no strategy beats the baseline)."""
        n_cores = 4 if cores is None else cores
        self.prefetch(
            [(name, 1, "baseline") for name in self.names]
            + [
                (name, n_cores, strategy)
                for name in self.names
                for strategy in SINGLE_STRATEGIES
            ]
        )
        table: Dict[str, Dict[str, float]] = {}
        for name in self.names:
            base = self.baseline(name)
            base_groups = _group_cycles(base)
            total = sum(base_groups.values()) or 1
            strategy_groups = {
                strategy: _group_cycles(self.run(name, n_cores, strategy))
                for strategy in SINGLE_STRATEGIES
            }
            fractions = {"ilp": 0.0, "tlp": 0.0, "llp": 0.0, "single": 0.0}
            for origin, serial_cycles in base_groups.items():
                times = {
                    strategy: groups.get(origin, serial_cycles)
                    for strategy, groups in strategy_groups.items()
                }
                best_strategy = min(times, key=lambda s: times[s])
                weight = serial_cycles / total
                if times[best_strategy] < serial_cycles:
                    fractions[best_strategy] += weight
                else:
                    fractions["single"] += weight
            table[name] = fractions
        return table

    def figure7_9_examples(self) -> Dict[str, float]:
        """Paper Sections 4.2 examples: measured 2-core speedups for the
        Fig. 7 (DOALL), Fig. 8 (strands), and Fig. 9 (ILP) loop shapes,
        computed from the kernels that embody them."""
        from ..workloads.kernels import KernelContext
        from ..isa.builder import ProgramBuilder
        from ..workloads import doall_kernel, ilp_kernel, match_kernel

        results = {}
        for label, kernel, kwargs, strategy in (
            ("fig7_gsm_llp", doall_kernel, {"trips": 256, "work": 3}, "llp"),
            ("fig8_gzip_strands", match_kernel, {"length": 320}, "tlp"),
            (
                "fig9_gsm_ilp",
                ilp_kernel,
                # The paper's Fig. 9 filter: four independent multiply
                # chains (no cross-chain shuffle), compiled coupled.
                {"trips": 200, "chains": 4, "depth": 5, "shuffle": False},
                "ilp",
            ),
        ):
            pb = ProgramBuilder(label)
            fb = pb.function("main")
            fb.block("entry")
            ctx = KernelContext(pb=pb, fb=fb, seed=7)
            out = kernel(ctx, **kwargs)
            fb.halt()
            program = pb.finish()
            reference = run_program(program)
            compiler = VoltronCompiler(program)
            base_machine = VoltronMachine(
                compiler.compile("baseline", single_core()), single_core()
            )
            base = base_machine.run().cycles
            config = mesh(2)
            machine = VoltronMachine(compiler.compile(strategy, config), config)
            cycles = machine.run().cycles
            assert machine.array_values(out) == reference.array_values(
                program, out
            )
            results[label] = base / cycles
        return results


def _group_cycles(result: RunResult) -> Dict[str, int]:
    """Aggregate block cycles by original region label."""
    groups: Dict[str, int] = {}
    for (function, label), cycles in result.stats.block_cycles.items():
        descriptor = result.region_table.get((function, label))
        origin = descriptor["origin"] if descriptor else label
        key = f"{function}:{origin}"
        groups[key] = groups.get(key, 0) + cycles
    return groups


def geomean(values: Sequence[float]) -> float:
    product = 1.0
    count = 0
    for value in values:
        product *= value
        count += 1
    return product ** (1.0 / count) if count else 0.0


def arithmean(values: Sequence[float]) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0
