"""Experiment drivers: one entry point per paper figure.

Every simulation is functionally checked against the reference
interpreter (a run with wrong output arrays is a harness failure, not a
data point).  Results are memoized per (benchmark, cores, strategy) so
the figure drivers can share runs.

Two optional layers speed up suite-scale experiments:

* ``cache_dir`` enables the on-disk :class:`~repro.harness.cache.ResultCache`
  (content-hash keyed, stable across processes), so repeated figure runs
  re-simulate only what changed;
* ``jobs > 1`` fans independent (benchmark, cores, strategy) cells out to
  a ``ProcessPoolExecutor``; every figure driver prefetches its cell list
  through the pool before assembling the table.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..arch.config import MachineConfig, mesh, single_core
from ..compiler.driver import VoltronCompiler
from ..isa.interp import run_program
from ..isa.registers import Value
from ..sim.machine import VoltronMachine
from ..sim.stats import MachineStats, STALL_CATEGORIES
from ..workloads.suite import BENCHMARKS, Benchmark, build
from .cache import ResultCache, cache_key, reference_key

#: Strategies evaluated per figure.
SINGLE_STRATEGIES = ("ilp", "tlp", "llp")

#: One simulation cell: (benchmark, n_cores, strategy).
Cell = Tuple[str, int, str]


@dataclass
class RunResult:
    benchmark: str
    n_cores: int
    strategy: str
    cycles: int
    stats: MachineStats
    correct: bool
    #: (function, machine label) -> region descriptor (rid/strategy/origin).
    region_table: Dict[Tuple[str, str], Dict[str, object]]

    def to_dict(self) -> Dict[str, object]:
        return {
            "benchmark": self.benchmark,
            "n_cores": self.n_cores,
            "strategy": self.strategy,
            "cycles": self.cycles,
            "stats": self.stats.to_dict(),
            "correct": self.correct,
            "region_table": [
                [function, label, descriptor]
                for (function, label), descriptor in self.region_table.items()
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunResult":
        return cls(
            benchmark=data["benchmark"],
            n_cores=data["n_cores"],
            strategy=data["strategy"],
            cycles=data["cycles"],
            stats=MachineStats.from_dict(data["stats"]),
            correct=data["correct"],
            region_table={
                (function, label): descriptor
                for function, label, descriptor in data["region_table"]
            },
        )


def _config_for(n_cores: int) -> MachineConfig:
    return single_core() if n_cores == 1 else mesh(n_cores)


def _run_cells_worker(spec: Tuple) -> List[Dict[str, object]]:
    """Pool worker: simulate one benchmark's cells in a fresh runner and
    hand the results back as plain dicts (JSON-safe, cheap to pickle).
    The fan-out unit is a benchmark, not a cell, so the build, the
    compiler, and the reference-interpreter run are paid once per worker
    task instead of once per (cores, strategy) point.  Top-level so
    ProcessPoolExecutor can address it by qualified name."""
    name, cells, seed, max_cycles, cache_dir = spec
    runner = ExperimentRunner(
        benchmarks=[name],
        seed=seed,
        max_cycles=max_cycles,
        cache_dir=cache_dir,
    )
    return [
        runner.run(name, n_cores, strategy).to_dict()
        for n_cores, strategy in cells
    ]


class ExperimentRunner:
    """Builds, compiles, simulates, and caches the whole suite."""

    def __init__(
        self,
        benchmarks: Optional[Sequence[str]] = None,
        seed: int = 1,
        max_cycles: int = 50_000_000,
        cache_dir: Optional[Union[str, Path]] = None,
        jobs: int = 1,
    ) -> None:
        self.names = list(benchmarks) if benchmarks is not None else list(
            BENCHMARKS
        )
        self.seed = seed
        self.max_cycles = max_cycles
        self.jobs = max(1, jobs)
        self.cache = ResultCache(Path(cache_dir)) if cache_dir else None
        self._cache_dir = str(cache_dir) if cache_dir else None
        self._built: Dict[str, Benchmark] = {}
        #: Cell -> content-hash key; the fingerprint render is not free,
        #: and every cell is keyed at least twice (probe + store).
        self._keys: Dict[Cell, str] = {}
        self._compilers: Dict[str, VoltronCompiler] = {}
        self._references: Dict[str, Dict[str, List[Value]]] = {}
        self._runs: Dict[Cell, RunResult] = {}

    # -- building blocks -----------------------------------------------------------

    def benchmark(self, name: str) -> Benchmark:
        if name not in self._built:
            self._built[name] = build(name, self.seed)
        return self._built[name]

    def compiler(self, name: str) -> VoltronCompiler:
        if name not in self._compilers:
            self._compilers[name] = VoltronCompiler(self.benchmark(name).program)
        return self._compilers[name]

    def reference_outputs(self, name: str) -> Dict[str, List[Value]]:
        if name not in self._references:
            bench = self.benchmark(name)
            key = reference_key(bench.program) if self.cache else None
            if key is not None:
                payload = self.cache.load(key)
                if payload is not None:
                    self._references[name] = payload["arrays"]
                    return self._references[name]
            result = run_program(bench.program)
            self._references[name] = {
                array: result.array_values(bench.program, array)
                for array in bench.outputs
            }
            if key is not None:
                self.cache.store(key, {"arrays": self._references[name]})
        return self._references[name]

    def _cell_key(self, name: str, n_cores: int, strategy: str) -> str:
        cell = (name, n_cores, strategy)
        key = self._keys.get(cell)
        if key is None:
            key = cache_key(
                self.benchmark(name).program,
                _config_for(n_cores),
                self.seed,
                strategy,
                self.max_cycles,
            )
            self._keys[cell] = key
        return key

    def run(self, name: str, n_cores: int, strategy: str) -> RunResult:
        key = (name, n_cores, strategy)
        if key in self._runs:
            return self._runs[key]
        if self.cache is not None:
            payload = self.cache.load(self._cell_key(name, n_cores, strategy))
            if payload is not None:
                result = RunResult.from_dict(payload)
                self._runs[key] = result
                return result
        result = self._simulate(name, n_cores, strategy)
        if self.cache is not None:
            self.cache.store(
                self._cell_key(name, n_cores, strategy), result.to_dict()
            )
        self._runs[key] = result
        return result

    def _simulate(self, name: str, n_cores: int, strategy: str) -> RunResult:
        bench = self.benchmark(name)
        config = _config_for(n_cores)
        compiled = self.compiler(name).compile(strategy, config)
        machine = VoltronMachine(compiled, config, max_cycles=self.max_cycles)
        stats = machine.run()
        reference = self.reference_outputs(name)
        correct = all(
            machine.array_values(array) == values
            for array, values in reference.items()
        )
        if not correct:
            raise AssertionError(
                f"{name} [{n_cores}-core {strategy}] produced wrong output"
            )
        result = RunResult(
            benchmark=name,
            n_cores=n_cores,
            strategy=strategy,
            cycles=stats.cycles,
            stats=stats,
            correct=correct,
            region_table=compiled.attrs.get("regions", {}),
        )
        return result

    def prefetch(self, cells: Sequence[Cell]) -> None:
        """Populate the run memo for ``cells``, fanning cache misses out to
        a process pool when ``jobs > 1``.  Serial fallback otherwise -- the
        figure drivers call this unconditionally."""
        pending: List[Cell] = []
        seen = set()
        for cell in cells:
            if cell in self._runs or cell in seen:
                continue
            seen.add(cell)
            name, n_cores, strategy = cell
            if self.cache is not None:
                # Resolve hits in-process (and count them here, where the
                # reporting layer can see the tallies); only true misses
                # are worth a worker.
                payload = self.cache.load(self._cell_key(*cell))
                if payload is not None:
                    self._runs[cell] = RunResult.from_dict(payload)
                    continue
            pending.append(cell)
        if not pending:
            return
        if self.jobs == 1 or len({name for name, _, _ in pending}) == 1:
            # The cache was already probed above, so simulate directly
            # (run() would re-probe and double-count the miss).
            for cell in pending:
                result = self._simulate(*cell)
                if self.cache is not None:
                    self.cache.store(self._cell_key(*cell), result.to_dict())
                self._runs[cell] = result
            return
        by_name: Dict[str, List[Tuple[int, str]]] = {}
        for name, n_cores, strategy in pending:
            by_name.setdefault(name, []).append((n_cores, strategy))
        specs = [
            (name, cells, self.seed, self.max_cycles, self._cache_dir)
            for name, cells in by_name.items()
        ]
        # Workers store their own results in the shared on-disk cache; the
        # parent's miss tally was taken at probe time above.
        with ProcessPoolExecutor(max_workers=self.jobs) as pool:
            for spec, payloads in zip(specs, pool.map(_run_cells_worker, specs)):
                name = spec[0]
                for (n_cores, strategy), payload in zip(spec[1], payloads):
                    self._runs[(name, n_cores, strategy)] = (
                        RunResult.from_dict(payload)
                    )

    def baseline(self, name: str) -> RunResult:
        return self.run(name, 1, "baseline")

    def speedup(self, name: str, n_cores: int, strategy: str) -> float:
        return self.baseline(name).cycles / self.run(name, n_cores, strategy).cycles

    # -- figures ------------------------------------------------------------------

    def fig10_11_speedups(self, n_cores: int) -> Dict[str, Dict[str, float]]:
        """Figure 10 (2 cores) / Figure 11 (4 cores): per-benchmark speedup
        when exploiting each parallelism type individually."""
        self.prefetch(
            [(name, 1, "baseline") for name in self.names]
            + [
                (name, n_cores, strategy)
                for name in self.names
                for strategy in SINGLE_STRATEGIES
            ]
        )
        table: Dict[str, Dict[str, float]] = {}
        for name in self.names:
            table[name] = {
                strategy: self.speedup(name, n_cores, strategy)
                for strategy in SINGLE_STRATEGIES
            }
        return table

    def fig12_stalls(self, n_cores: int = 4) -> Dict[str, Dict[str, Dict[str, float]]]:
        """Figure 12: stall cycles (per-core mean) under coupled-mode ILP
        vs decoupled fine-grain TLP, normalized to serial execution time."""
        self.prefetch(
            [(name, 1, "baseline") for name in self.names]
            + [
                (name, n_cores, strategy)
                for name in self.names
                for strategy in ("ilp", "tlp")
            ]
        )
        table: Dict[str, Dict[str, Dict[str, float]]] = {}
        for name in self.names:
            serial = self.baseline(name).cycles
            row: Dict[str, Dict[str, float]] = {}
            for strategy, label in (("ilp", "coupled"), ("tlp", "decoupled")):
                stats = self.run(name, n_cores, strategy).stats
                row[label] = {
                    category: stats.mean_stalls(category) / serial
                    for category in STALL_CATEGORIES
                }
            table[name] = row
        return table

    def fig13_hybrid(self) -> Dict[str, Dict[int, float]]:
        """Figure 13: hybrid speedups on 2- and 4-core Voltron."""
        self.prefetch(
            [(name, 1, "baseline") for name in self.names]
            + [(name, n, "hybrid") for name in self.names for n in (2, 4)]
        )
        return {
            name: {
                n: self.speedup(name, n, "hybrid")
                for n in (2, 4)
            }
            for name in self.names
        }

    def fig14_mode_time(self, n_cores: int = 4) -> Dict[str, Dict[str, float]]:
        """Figure 14: fraction of hybrid execution spent in each mode."""
        self.prefetch([(name, n_cores, "hybrid") for name in self.names])
        table = {}
        for name in self.names:
            stats = self.run(name, n_cores, "hybrid").stats
            table[name] = {
                "coupled": stats.mode_fraction("coupled"),
                "decoupled": stats.mode_fraction("decoupled"),
            }
        return table

    def fig3_breakdown(self, n_cores: int = 4) -> Dict[str, Dict[str, float]]:
        """Figure 3: fraction of serial execution best accelerated by each
        parallelism type on a 4-core system.

        Methodology mirrors the paper: each region is timed under each
        single-strategy compilation; the region's serial-time fraction is
        attributed to the type that ran it fastest (or to "single core"
        when no strategy beats the baseline)."""
        self.prefetch(
            [(name, 1, "baseline") for name in self.names]
            + [
                (name, n_cores, strategy)
                for name in self.names
                for strategy in SINGLE_STRATEGIES
            ]
        )
        table: Dict[str, Dict[str, float]] = {}
        for name in self.names:
            base = self.baseline(name)
            base_groups = _group_cycles(base)
            total = sum(base_groups.values()) or 1
            strategy_groups = {
                strategy: _group_cycles(self.run(name, n_cores, strategy))
                for strategy in SINGLE_STRATEGIES
            }
            fractions = {"ilp": 0.0, "tlp": 0.0, "llp": 0.0, "single": 0.0}
            for origin, serial_cycles in base_groups.items():
                times = {
                    strategy: groups.get(origin, serial_cycles)
                    for strategy, groups in strategy_groups.items()
                }
                best_strategy = min(times, key=lambda s: times[s])
                weight = serial_cycles / total
                if times[best_strategy] < serial_cycles:
                    fractions[best_strategy] += weight
                else:
                    fractions["single"] += weight
            table[name] = fractions
        return table

    def figure7_9_examples(self) -> Dict[str, float]:
        """Paper Sections 4.2 examples: measured 2-core speedups for the
        Fig. 7 (DOALL), Fig. 8 (strands), and Fig. 9 (ILP) loop shapes,
        computed from the kernels that embody them."""
        from ..workloads.kernels import KernelContext
        from ..isa.builder import ProgramBuilder
        from ..workloads import doall_kernel, ilp_kernel, match_kernel

        results = {}
        for label, kernel, kwargs, strategy in (
            ("fig7_gsm_llp", doall_kernel, {"trips": 256, "work": 3}, "llp"),
            ("fig8_gzip_strands", match_kernel, {"length": 320}, "tlp"),
            (
                "fig9_gsm_ilp",
                ilp_kernel,
                # The paper's Fig. 9 filter: four independent multiply
                # chains (no cross-chain shuffle), compiled coupled.
                {"trips": 200, "chains": 4, "depth": 5, "shuffle": False},
                "ilp",
            ),
        ):
            pb = ProgramBuilder(label)
            fb = pb.function("main")
            fb.block("entry")
            ctx = KernelContext(pb=pb, fb=fb, seed=7)
            out = kernel(ctx, **kwargs)
            fb.halt()
            program = pb.finish()
            reference = run_program(program)
            compiler = VoltronCompiler(program)
            base_machine = VoltronMachine(
                compiler.compile("baseline", single_core()), single_core()
            )
            base = base_machine.run().cycles
            config = mesh(2)
            machine = VoltronMachine(compiler.compile(strategy, config), config)
            cycles = machine.run().cycles
            assert machine.array_values(out) == reference.array_values(
                program, out
            )
            results[label] = base / cycles
        return results


def _group_cycles(result: RunResult) -> Dict[str, int]:
    """Aggregate block cycles by original region label."""
    groups: Dict[str, int] = {}
    for (function, label), cycles in result.stats.block_cycles.items():
        descriptor = result.region_table.get((function, label))
        origin = descriptor["origin"] if descriptor else label
        key = f"{function}:{origin}"
        groups[key] = groups.get(key, 0) + cycles
    return groups


def geomean(values: Sequence[float]) -> float:
    product = 1.0
    count = 0
    for value in values:
        product *= value
        count += 1
    return product ** (1.0 / count) if count else 0.0


def arithmean(values: Sequence[float]) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0
