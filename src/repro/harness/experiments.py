"""Experiment drivers: one entry point per paper figure.

Every simulation is functionally checked against the reference
interpreter (a run with wrong output arrays is a harness failure, not a
data point).  Results are memoized per (benchmark, cores, strategy) so
the figure drivers can share runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..arch.config import MachineConfig, mesh, single_core
from ..compiler.driver import VoltronCompiler
from ..isa.interp import run_program
from ..isa.registers import Value
from ..sim.machine import VoltronMachine
from ..sim.stats import MachineStats, STALL_CATEGORIES
from ..workloads.suite import BENCHMARKS, Benchmark, build

#: Strategies evaluated per figure.
SINGLE_STRATEGIES = ("ilp", "tlp", "llp")


@dataclass
class RunResult:
    benchmark: str
    n_cores: int
    strategy: str
    cycles: int
    stats: MachineStats
    correct: bool
    #: (function, machine label) -> region descriptor (rid/strategy/origin).
    region_table: Dict[Tuple[str, str], Dict[str, object]]


class ExperimentRunner:
    """Builds, compiles, simulates, and caches the whole suite."""

    def __init__(
        self,
        benchmarks: Optional[Sequence[str]] = None,
        seed: int = 1,
        max_cycles: int = 50_000_000,
    ) -> None:
        self.names = list(benchmarks) if benchmarks is not None else list(
            BENCHMARKS
        )
        self.seed = seed
        self.max_cycles = max_cycles
        self._built: Dict[str, Benchmark] = {}
        self._compilers: Dict[str, VoltronCompiler] = {}
        self._references: Dict[str, Dict[str, List[Value]]] = {}
        self._runs: Dict[Tuple[str, int, str], RunResult] = {}

    # -- building blocks -----------------------------------------------------------

    def benchmark(self, name: str) -> Benchmark:
        if name not in self._built:
            self._built[name] = build(name, self.seed)
        return self._built[name]

    def compiler(self, name: str) -> VoltronCompiler:
        if name not in self._compilers:
            self._compilers[name] = VoltronCompiler(self.benchmark(name).program)
        return self._compilers[name]

    def reference_outputs(self, name: str) -> Dict[str, List[Value]]:
        if name not in self._references:
            bench = self.benchmark(name)
            result = run_program(bench.program)
            self._references[name] = {
                array: result.array_values(bench.program, array)
                for array in bench.outputs
            }
        return self._references[name]

    def run(self, name: str, n_cores: int, strategy: str) -> RunResult:
        key = (name, n_cores, strategy)
        if key in self._runs:
            return self._runs[key]
        bench = self.benchmark(name)
        config = single_core() if n_cores == 1 else mesh(n_cores)
        compiled = self.compiler(name).compile(strategy, config)
        machine = VoltronMachine(compiled, config, max_cycles=self.max_cycles)
        stats = machine.run()
        reference = self.reference_outputs(name)
        correct = all(
            machine.array_values(array) == values
            for array, values in reference.items()
        )
        if not correct:
            raise AssertionError(
                f"{name} [{n_cores}-core {strategy}] produced wrong output"
            )
        result = RunResult(
            benchmark=name,
            n_cores=n_cores,
            strategy=strategy,
            cycles=stats.cycles,
            stats=stats,
            correct=correct,
            region_table=compiled.attrs.get("regions", {}),
        )
        self._runs[key] = result
        return result

    def baseline(self, name: str) -> RunResult:
        return self.run(name, 1, "baseline")

    def speedup(self, name: str, n_cores: int, strategy: str) -> float:
        return self.baseline(name).cycles / self.run(name, n_cores, strategy).cycles

    # -- figures ------------------------------------------------------------------

    def fig10_11_speedups(self, n_cores: int) -> Dict[str, Dict[str, float]]:
        """Figure 10 (2 cores) / Figure 11 (4 cores): per-benchmark speedup
        when exploiting each parallelism type individually."""
        table: Dict[str, Dict[str, float]] = {}
        for name in self.names:
            table[name] = {
                strategy: self.speedup(name, n_cores, strategy)
                for strategy in SINGLE_STRATEGIES
            }
        return table

    def fig12_stalls(self, n_cores: int = 4) -> Dict[str, Dict[str, Dict[str, float]]]:
        """Figure 12: stall cycles (per-core mean) under coupled-mode ILP
        vs decoupled fine-grain TLP, normalized to serial execution time."""
        table: Dict[str, Dict[str, Dict[str, float]]] = {}
        for name in self.names:
            serial = self.baseline(name).cycles
            row: Dict[str, Dict[str, float]] = {}
            for strategy, label in (("ilp", "coupled"), ("tlp", "decoupled")):
                stats = self.run(name, n_cores, strategy).stats
                row[label] = {
                    category: stats.mean_stalls(category) / serial
                    for category in STALL_CATEGORIES
                }
            table[name] = row
        return table

    def fig13_hybrid(self) -> Dict[str, Dict[int, float]]:
        """Figure 13: hybrid speedups on 2- and 4-core Voltron."""
        return {
            name: {
                n: self.speedup(name, n, "hybrid")
                for n in (2, 4)
            }
            for name in self.names
        }

    def fig14_mode_time(self, n_cores: int = 4) -> Dict[str, Dict[str, float]]:
        """Figure 14: fraction of hybrid execution spent in each mode."""
        table = {}
        for name in self.names:
            stats = self.run(name, n_cores, "hybrid").stats
            table[name] = {
                "coupled": stats.mode_fraction("coupled"),
                "decoupled": stats.mode_fraction("decoupled"),
            }
        return table

    def fig3_breakdown(self, n_cores: int = 4) -> Dict[str, Dict[str, float]]:
        """Figure 3: fraction of serial execution best accelerated by each
        parallelism type on a 4-core system.

        Methodology mirrors the paper: each region is timed under each
        single-strategy compilation; the region's serial-time fraction is
        attributed to the type that ran it fastest (or to "single core"
        when no strategy beats the baseline)."""
        table: Dict[str, Dict[str, float]] = {}
        for name in self.names:
            base = self.baseline(name)
            base_groups = _group_cycles(base)
            total = sum(base_groups.values()) or 1
            strategy_groups = {
                strategy: _group_cycles(self.run(name, n_cores, strategy))
                for strategy in SINGLE_STRATEGIES
            }
            fractions = {"ilp": 0.0, "tlp": 0.0, "llp": 0.0, "single": 0.0}
            for origin, serial_cycles in base_groups.items():
                times = {
                    strategy: groups.get(origin, serial_cycles)
                    for strategy, groups in strategy_groups.items()
                }
                best_strategy = min(times, key=lambda s: times[s])
                weight = serial_cycles / total
                if times[best_strategy] < serial_cycles:
                    fractions[best_strategy] += weight
                else:
                    fractions["single"] += weight
            table[name] = fractions
        return table

    def figure7_9_examples(self) -> Dict[str, float]:
        """Paper Sections 4.2 examples: measured 2-core speedups for the
        Fig. 7 (DOALL), Fig. 8 (strands), and Fig. 9 (ILP) loop shapes,
        computed from the kernels that embody them."""
        from ..workloads.kernels import KernelContext
        from ..isa.builder import ProgramBuilder
        from ..workloads import doall_kernel, ilp_kernel, match_kernel

        results = {}
        for label, kernel, kwargs, strategy in (
            ("fig7_gsm_llp", doall_kernel, {"trips": 256, "work": 3}, "llp"),
            ("fig8_gzip_strands", match_kernel, {"length": 320}, "tlp"),
            (
                "fig9_gsm_ilp",
                ilp_kernel,
                # The paper's Fig. 9 filter: four independent multiply
                # chains (no cross-chain shuffle), compiled coupled.
                {"trips": 200, "chains": 4, "depth": 5, "shuffle": False},
                "ilp",
            ),
        ):
            pb = ProgramBuilder(label)
            fb = pb.function("main")
            fb.block("entry")
            ctx = KernelContext(pb=pb, fb=fb, seed=7)
            out = kernel(ctx, **kwargs)
            fb.halt()
            program = pb.finish()
            reference = run_program(program)
            compiler = VoltronCompiler(program)
            base_machine = VoltronMachine(
                compiler.compile("baseline", single_core()), single_core()
            )
            base = base_machine.run().cycles
            config = mesh(2)
            machine = VoltronMachine(compiler.compile(strategy, config), config)
            cycles = machine.run().cycles
            assert machine.array_values(out) == reference.array_values(
                program, out
            )
            results[label] = base / cycles
        return results


def _group_cycles(result: RunResult) -> Dict[str, int]:
    """Aggregate block cycles by original region label."""
    groups: Dict[str, int] = {}
    for (function, label), cycles in result.stats.block_cycles.items():
        descriptor = result.region_table.get((function, label))
        origin = descriptor["origin"] if descriptor else label
        key = f"{function}:{origin}"
        groups[key] = groups.get(key, 0) + cycles
    return groups


def geomean(values: Sequence[float]) -> float:
    product = 1.0
    count = 0
    for value in values:
        product *= value
        count += 1
    return product ** (1.0 / count) if count else 0.0


def arithmean(values: Sequence[float]) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0
