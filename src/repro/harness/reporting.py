"""ASCII rendering of experiment results in the paper's row format."""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

from .experiments import arithmean


def render_table(
    title: str,
    rows: Mapping[str, Mapping[str, float]],
    columns: Sequence[str],
    fmt: str = "{:.2f}",
    average_row: bool = True,
) -> str:
    """Render {benchmark: {column: value}} as a fixed-width table."""
    name_width = max([len(name) for name in rows] + [len("benchmark"), 12])
    col_width = max([len(c) for c in columns] + [8])
    lines = [title]
    header = "benchmark".ljust(name_width) + "".join(
        column.rjust(col_width + 2) for column in columns
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name, row in rows.items():
        cells = "".join(
            fmt.format(row.get(column, float("nan"))).rjust(col_width + 2)
            for column in columns
        )
        lines.append(name.ljust(name_width) + cells)
    if average_row:
        lines.append("-" * len(header))
        cells = "".join(
            fmt.format(
                arithmean([row.get(column, 0.0) for row in rows.values()])
            ).rjust(col_width + 2)
            for column in columns
        )
        lines.append("average".ljust(name_width) + cells)
    return "\n".join(lines)


def render_cache_line(runner) -> str:
    """The harness's cache-traffic line: hits/misses and the cache root,
    or an explicit marker when caching is off (``--no-cache``)."""
    cache = getattr(runner, "cache", None)
    if cache is None:
        return "cache     : disabled"
    return (
        f"cache     : {cache.hits} hit(s), {cache.misses} miss(es) "
        f"in {cache.root}"
    )


def render_bar_breakdown(
    title: str,
    rows: Mapping[str, Mapping[str, float]],
    columns: Sequence[str],
    scale: float = 100.0,
    suffix: str = "%",
) -> str:
    """Render stacked-percentage rows (Fig. 3 / Fig. 14 style)."""
    scaled = {
        name: {column: row.get(column, 0.0) * scale for column in columns}
        for name, row in rows.items()
    }
    return render_table(title, scaled, columns, fmt="{:.1f}" + suffix)
