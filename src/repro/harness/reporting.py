"""ASCII rendering of experiment results in the paper's row format."""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

from ..sim.recovery import REMAP_HOPS_PREFIX
from .experiments import arithmean


def render_table(
    title: str,
    rows: Mapping[str, Mapping[str, float]],
    columns: Sequence[str],
    fmt: str = "{:.2f}",
    average_row: bool = True,
) -> str:
    """Render {benchmark: {column: value}} as a fixed-width table."""
    name_width = max([len(name) for name in rows] + [len("benchmark"), 12])
    col_width = max([len(c) for c in columns] + [8])
    lines = [title]
    header = "benchmark".ljust(name_width) + "".join(
        column.rjust(col_width + 2) for column in columns
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name, row in rows.items():
        cells = "".join(
            fmt.format(row.get(column, float("nan"))).rjust(col_width + 2)
            for column in columns
        )
        lines.append(name.ljust(name_width) + cells)
    if average_row:
        lines.append("-" * len(header))
        cells = "".join(
            fmt.format(
                arithmean([row.get(column, 0.0) for row in rows.values()])
            ).rjust(col_width + 2)
            for column in columns
        )
        lines.append("average".ljust(name_width) + cells)
    return "\n".join(lines)


def render_cache_line(runner) -> str:
    """The harness's cache-traffic line: hits/misses, how many entries
    were quarantined as unreadable, and the cache root -- or an explicit
    marker when caching is off (``--no-cache``)."""
    cache = getattr(runner, "cache", None)
    if cache is None:
        return "cache     : disabled"
    return (
        f"cache     : {cache.hits} hit(s), {cache.misses} miss(es), "
        f"quarantined={cache.quarantined} in {cache.root}"
    )


def render_failure_line(runner) -> str:
    """One line summarizing what the hardened prefetch had to absorb --
    timeouts, retries, serial degradations, worker crashes -- or an
    explicit all-clear (silence would be ambiguous after a chaos run)."""
    summary = getattr(runner, "failure_summary", None)
    failures = summary() if callable(summary) else getattr(
        runner, "failures", None
    )
    if failures is None or not failures.any():
        return "failures  : none"
    parts = []
    if failures.worker_crashes:
        parts.append(f"{failures.worker_crashes} worker crash(es)")
    if failures.cache_quarantined:
        parts.append(
            f"{failures.cache_quarantined} quarantined cache entry(ies)"
        )
    if failures.timed_out:
        parts.append(f"{len(failures.timed_out)} timeout(s)")
    if failures.retried:
        parts.append(f"{len(failures.retried)} retried cell(s)")
    if failures.degraded:
        parts.append(
            f"{len(failures.degraded)} cell(s) re-run serially "
            f"[{', '.join(failures.degraded)}]"
        )
    if failures.abandoned:
        parts.append(
            f"{len(failures.abandoned)} cell(s) abandoned "
            f"[{', '.join(failures.abandoned)}]"
        )
    max_attempts = failures.max_attempts()
    if max_attempts > 1:
        worst = sum(1 for count in failures.attempts.values() if count > 1)
        parts.append(
            f"up to {max_attempts} attempt(s) over {worst} cell(s)"
        )
    return "failures  : " + "; ".join(parts)


def render_journal_line(runner) -> str:
    """The resumability line (empty without a journal): the replay
    bookkeeping -- how many cells were replayed straight from the
    journal+cache, re-run after incomplete history, or abandoned -- and
    where the journal lives, so the resume command is obvious."""
    journal = getattr(runner, "journal", None)
    stats = getattr(runner, "journal_stats", None)
    if journal is None or stats is None:
        return ""
    return (
        f"journal   : {stats['replayed']} replayed / "
        f"{stats['rerun']} re-run / {stats['abandoned']} abandoned "
        f"({journal.path})"
    )


def render_fault_line(runner) -> str:
    """The chaos-mode line (empty when fault injection is off): the
    configuration needed to reproduce the run, plus how many faults
    actually landed."""
    config = getattr(runner, "fault_config", None)
    if config is None:
        return ""
    return (
        f"faults    : profile={config.profile} seed={config.seed} "
        f"rate={config.rate} tm_rate={config.tm_rate} -> "
        f"{getattr(runner, 'fault_injections', 0)} injection(s)"
    )


def render_recovery_line(runner) -> str:
    """The destructive-chaos report line (empty unless the session armed
    destructive faults): every detection/repair counter the recovery
    subsystem accumulated, summed across the session's runs.  Example::

        recovery  : crc_errors=12 drops=9 retransmits=21 fallbacks=0 \
blackouts=4 (86 cycles dark) watchdog=4 rollbacks=4 remaps=2 degraded=0
    """
    config = getattr(runner, "fault_config", None)
    if config is None or getattr(config, "profile", "timing") == "timing":
        return ""
    totals = runner.recovery_totals()
    get = totals.get
    line = (
        f"recovery  : crc_errors={get('crc_errors', 0)} "
        f"drops={get('drops', 0)} retransmits={get('retransmits', 0)} "
        f"fallbacks={get('fallbacks', 0)} blackouts={get('blackouts', 0)} "
        f"({get('blackout_cycles', 0)} cycles dark) "
        f"watchdog={get('watchdog_detections', 0)} "
        f"rollbacks={get('chunk_rollbacks', 0)} "
        f"remaps={get('chunks_remapped', 0)} "
        f"degraded={get('regions_degraded', 0)}"
    )
    # Scale-out channels and the remap-distance histogram only appear
    # when they fired, so snoop/per-pair sessions keep the exact line
    # existing goldens pin down.
    if get("directory_scrubs", 0):
        line += f" dir_scrubs={totals['directory_scrubs']}"
    if get("vlink_reclaims", 0):
        line += f" vlink_reclaims={totals['vlink_reclaims']}"
    histogram = {
        int(key[len(REMAP_HOPS_PREFIX):]): value
        for key, value in totals.items()
        if key.startswith(REMAP_HOPS_PREFIX) and value
    }
    if histogram:
        line += " remap_hops=" + ",".join(
            f"{hops}:{count}" for hops, count in sorted(histogram.items())
        )
    return line


def render_bar_breakdown(
    title: str,
    rows: Mapping[str, Mapping[str, float]],
    columns: Sequence[str],
    scale: float = 100.0,
    suffix: str = "%",
) -> str:
    """Render stacked-percentage rows (Fig. 3 / Fig. 14 style)."""
    scaled = {
        name: {column: row.get(column, 0.0) * scale for column in columns}
        for name, row in rows.items()
    }
    return render_table(title, scaled, columns, fmt="{:.1f}" + suffix)
