"""Command-line interface to the reproduction.

    python -m repro.harness.cli list --generated 3
    python -m repro.harness.cli run --benchmark gsmdecode --machine 4 \
        --strategy hybrid
    python -m repro.harness.cli run --benchmark gen:7 --machine mesh16
    python -m repro.harness.cli run --benchmark epic \
        --machine mesh32-directory --strategy llp
    python -m repro.harness.cli figure --figure 10 --jobs 4
    python -m repro.harness.cli figure --figure 13 --benchmarks gsmdecode epic
    python -m repro.harness.cli figure --figure scaling --machine 16
    python -m repro.harness.cli verify --report findings.json
    python -m repro.harness.cli verify --machine mesh16-directory --dynamic
    python -m repro.harness.cli sweep --generated 4 --machines 2 4 mesh16 \
        --coherences snoop directory --queue-depths 4 16 --out sweep.json

Every ``--benchmark``/``--benchmarks``/``--workloads`` slot accepts
generated-workload handles (``gen:<seed>[:<knobs-hash>]``, see
:mod:`repro.workloads.generator`) interchangeably with suite names.

``--machine SPEC`` is the canonical machine spelling everywhere: an
integer core count (any size -- primes get a near-square mesh with
holes) or a preset name from ``repro.list_presets()`` such as
``four``, ``mesh16``, or ``mesh32-directory``.  The older ``--cores``
flags remain as aliases where they existed.

``sweep`` crosses machine-design axes (mesh size, coherence protocol,
operand-queue policy and depth, queue-mode hop latency, memory latency,
TM commit budget) against the selected workloads through the cached
parallel runner and writes the per-strategy Pareto frontiers --
resource-aware dominance over the swept axes, with categorical axes
(coherence, queue policy) keeping per-category frontiers -- as one JSON
artifact.

Simulation results are cached on disk (``.repro-cache/`` by default, keyed
by a content hash of program + config + seed) so a repeated figure run is
nearly free; pass ``--no-cache`` to force fresh simulations.  ``--jobs N``
fans independent (benchmark, cores, strategy) cells out over N worker
processes; ``--cell-timeout`` bounds each cell's wall-clock time on the
pool (overdue or crashed cells are retried, then re-run serially);
``--heartbeat-timeout`` additionally reaps workers that go silent.

``--journal FILE`` makes ``run``/``figure``/``sweep`` crash-safe: every
cell lifecycle event (planned/dispatched/completed/failed/abandoned) is
appended to a write-ahead JSONL journal and fsynced before the run
proceeds, and SIGTERM/Ctrl-C flush it before exiting.  After a crash or
kill, ``--resume FILE`` replays the journal against the result cache
and re-dispatches only the cells without a durable ``completed``
record -- the resumed output is identical to an uninterrupted run's.

``--faults`` turns on deterministic fault injection (chaos mode): every
simulation runs under a seeded fault plan (``--fault-seed``,
``--fault-rate``) that perturbs timing while the harness still checks
outputs against the reference interpreter.  ``--fault-profile`` selects
which fault families are armed: ``timing`` (the default delay-only
channels), ``destructive`` (corrupted/dropped messages and core
blackouts, repaired by the architectural recovery layer --
:mod:`repro.sim.recovery`), or ``both``.  Destructive runs print a
``recovery :`` report line tallying every detection and repair.

``run --trace-out trace.json`` profiles the run through the
observability layer (:mod:`repro.obs`) and writes a Perfetto-loadable
trace; ``--metrics-out metrics.json`` writes the sampled time series and
the reconciled per-mode timeline.  Profiled runs always simulate fresh
(the cache cannot carry a cycle-accurate event record).

``verify`` runs the voltlint static checks (:mod:`repro.analysis`) over
every compiled cell in the grid -- channel balance, DVLIW alignment,
memory-sync coverage, mode barriers, TM brackets -- and exits 1 on any
unsuppressed finding; ``--dynamic`` additionally executes each cell
under the happens-before race sanitizer, ``--report FILE`` writes the
merged findings document CI uploads, and ``--suppress
kind[:function[:block]]`` tolerates known findings.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import List, Optional, Sequence

from .. import api
from ..arch.config import MachineConfig, resolve_machine
from ..sim.faults import FAULT_PROFILES, FaultConfig
from ..sim.stats import STALL_CATEGORIES
from ..workloads.generator import generate_handles, is_generated, parse_handle
from ..workloads.suite import BENCHMARKS
from .experiments import SINGLE_STRATEGIES
from .journal import flush_on_signals
from .reporting import (
    render_bar_breakdown,
    render_cache_line,
    render_failure_line,
    render_fault_line,
    render_journal_line,
    render_recovery_line,
    render_table,
)

FIGURES = api.FIGURES

DEFAULT_CACHE_DIR = ".repro-cache"


def _machine_spec(value: str):
    """argparse type for --machine: an int core count or a preset name."""
    try:
        return int(value)
    except ValueError:
        return value


def _add_machine_option(subparser: argparse.ArgumentParser, help_tail="") -> None:
    subparser.add_argument(
        "--machine",
        type=_machine_spec,
        default=None,
        metavar="SPEC",
        help="machine spec: a core count (any size) or a preset name "
        "from repro.list_presets(), e.g. mesh16 or mesh32-directory"
        + help_tail,
    )


def _resolve_machine_flag(args, out) -> Optional[MachineConfig]:
    """Resolve --machine/--cores to a MachineConfig, or None on error
    (already reported).  --cores stays as a legacy alias; passing both
    is an error."""
    machine = getattr(args, "machine", None)
    cores = getattr(args, "cores", None)
    if machine is not None and cores is not None:
        print("pass either --machine or --cores, not both", file=out)
        return None
    spec = machine if machine is not None else (cores or 4)
    try:
        return resolve_machine(spec)
    except (TypeError, ValueError) as error:
        print(f"bad --machine spec: {error}", file=out)
        return None


def _add_runner_options(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for independent simulation cells (default 1)",
    )
    subparser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the on-disk result cache",
    )
    subparser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"result cache directory (default {DEFAULT_CACHE_DIR})",
    )
    subparser.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock deadline per simulation cell on the worker pool "
        "(overdue cells are retried, then run serially; default none)",
    )
    subparser.add_argument(
        "--journal",
        default=None,
        metavar="FILE",
        help="write-ahead run journal (fsynced JSONL, one record per cell "
        "lifecycle event) making this run crash-safe; starts a fresh "
        "journal at FILE -- use --resume to continue one",
    )
    subparser.add_argument(
        "--resume",
        default=None,
        metavar="FILE",
        help="resume an interrupted run from its journal: replay FILE "
        "against the result cache, re-dispatch only cells without a "
        "durable completed record, and keep journaling to FILE",
    )
    subparser.add_argument(
        "--heartbeat-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="arm worker supervision: a pool worker silent past this many "
        "seconds is declared hung/killed and its cells retried, without "
        "waiting out the full --cell-timeout (default off)",
    )
    subparser.add_argument(
        "--backoff-seed",
        type=int,
        default=None,
        help="seed of the deterministic retry-backoff jitter (default: "
        "the build seed)",
    )
    subparser.add_argument(
        "--faults",
        action="store_true",
        help="run every simulation under deterministic fault injection "
        "(chaos mode); outputs are still checked against the reference",
    )
    subparser.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="fault-plan RNG seed (default 0); same seed => same faults",
    )
    subparser.add_argument(
        "--fault-rate",
        type=float,
        default=0.01,
        help="per-event fault probability for --faults (default 0.01)",
    )
    subparser.add_argument(
        "--fault-profile",
        choices=FAULT_PROFILES,
        default="timing",
        help="fault families armed under --faults: timing delays only, "
        "destructive (corrupt/drop/blackout with architectural recovery), "
        "or both (default timing)",
    )


def _make_runner(args, benchmarks, machine=None):
    faults = None
    if args.faults:
        faults = FaultConfig(
            seed=args.fault_seed,
            rate=args.fault_rate,
            profile=args.fault_profile,
        )
    return api.session(
        benchmarks,
        machine=machine,
        cache_dir=None if args.no_cache else args.cache_dir,
        jobs=args.jobs,
        cell_timeout=args.cell_timeout,
        faults=faults,
        journal=args.resume or args.journal,
        resume=bool(args.resume),
        heartbeat_timeout=args.heartbeat_timeout,
        backoff_seed=args.backoff_seed,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.harness.cli",
        description="Voltron (HPCA 2007) reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    listing = sub.add_parser(
        "list",
        help="list the benchmark suite (and generated handles)",
        description="Print the 25 named benchmarks; --generated N appends "
        "N generated-workload handles (gen:<seed>:<knobs-hash>) for "
        "consecutive seeds, usable anywhere a benchmark name is.",
    )
    listing.add_argument(
        "--generated",
        type=int,
        default=0,
        metavar="N",
        help="also print N generated-workload handles (default 0)",
    )
    listing.add_argument(
        "--gen-seed",
        type=int,
        default=1,
        help="first generator seed for --generated (default 1)",
    )

    run = sub.add_parser("run", help="run one benchmark end to end")
    run.add_argument(
        "--benchmark",
        required=True,
        metavar="NAME",
        help="a suite benchmark or a generated handle "
        "(gen:<seed>[:<knobs-hash>])",
    )
    _add_machine_option(run, help_tail=" (default: 4 cores)")
    run.add_argument(
        "--cores",
        type=int,
        default=None,
        metavar="N",
        help="legacy alias for --machine N",
    )
    run.add_argument(
        "--strategy",
        default="hybrid",
        choices=("baseline", "ilp", "tlp", "llp", "hybrid"),
    )
    run.add_argument(
        "--queue-policy",
        default=None,
        choices=("pair", "vlink"),
        help="override the machine's operand receive-queue policy: "
        "per-pair reserved FIFOs or shared Virtual-Link pools",
    )
    run.add_argument(
        "--stalls", action="store_true", help="print the stall breakdown"
    )
    run.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="profile the run and write a Perfetto/Chrome trace JSON",
    )
    run.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="profile the run and write the metrics time series + "
        "reconciled timeline as JSON",
    )
    run.add_argument(
        "--obs-stride",
        type=int,
        default=64,
        metavar="CYCLES",
        help="metrics-series sampling period in cycles (default 64)",
    )
    _add_runner_options(run)

    figure = sub.add_parser("figure", help="regenerate one paper figure")
    figure.add_argument("--figure", required=True, choices=FIGURES)
    figure.add_argument(
        "--benchmarks",
        nargs="*",
        default=None,
        help="restrict to a subset of names or generated handles "
        "(default: all 25)",
    )
    _add_machine_option(
        figure,
        help_tail="; overrides the figure's core count where it has one "
        "and applies the spec's machine knobs to every cell",
    )
    _add_runner_options(figure)

    sweep = sub.add_parser(
        "sweep",
        help="sweep machine configs x workloads; Pareto frontiers as JSON",
        description="Cross machine-design axes (mesh size, coherence "
        "protocol, operand-queue policy and depth, queue-mode hop "
        "latency, memory latency, TM commit budget) against named and/or "
        "generated workloads through the cached parallel runner, and "
        "report per-strategy Pareto frontiers (resource-aware dominance: "
        "at least the speedup on hardware no more expensive in any axis; "
        "categorical axes keep per-category frontiers).",
    )
    sweep.add_argument(
        "--workloads",
        nargs="*",
        default=(),
        metavar="NAME",
        help="suite benchmarks and/or generated handles to sweep",
    )
    sweep.add_argument(
        "--generated",
        type=int,
        default=0,
        metavar="N",
        help="additionally generate N seeded workloads (default 0)",
    )
    sweep.add_argument(
        "--gen-seed",
        type=int,
        default=1,
        help="first generator seed for --generated (default 1)",
    )
    sweep.add_argument(
        "--strategies",
        nargs="*",
        default=("ilp", "tlp", "llp", "hybrid"),
        choices=("ilp", "tlp", "llp", "hybrid"),
        help="strategies to frontier (default: all four)",
    )
    sweep.add_argument(
        "--machines",
        nargs="*",
        type=_machine_spec,
        default=None,
        metavar="SPEC",
        help="machine specs spanning the mesh-size axis: core counts "
        "and/or preset names (default 2 4); coherence-variant presets "
        "seed the coherence axis unless --coherences pins it",
    )
    sweep.add_argument(
        "--cores",
        nargs="*",
        type=int,
        default=None,
        metavar="N",
        help="legacy alias for --machines",
    )
    sweep.add_argument(
        "--coherences",
        nargs="*",
        default=None,
        choices=("snoop", "directory"),
        help="coherence protocols to sweep (default: those named by "
        "--machines entries, i.e. snoop unless a -directory preset "
        "appears)",
    )
    sweep.add_argument(
        "--queue-policies",
        nargs="*",
        default=("pair",),
        choices=("pair", "vlink"),
        help="operand-queue policies to sweep: per-pair reserved queues "
        "or Virtual-Link shared receiver pools (default pair)",
    )
    sweep.add_argument(
        "--queue-depths",
        nargs="*",
        type=int,
        default=(16,),
        help="operand-queue depths to sweep (default 16)",
    )
    sweep.add_argument(
        "--hop-latencies",
        nargs="*",
        type=int,
        default=(1,),
        metavar="CYCLES",
        help="queue-mode cycles per hop to sweep (default 1)",
    )
    sweep.add_argument(
        "--memory-latencies",
        nargs="*",
        type=int,
        default=(100,),
        metavar="CYCLES",
        help="main-memory latencies to sweep (default 100)",
    )
    sweep.add_argument(
        "--tm-commit-latencies",
        nargs="*",
        type=int,
        default=(4,),
        metavar="CYCLES",
        help="TM commit-check budgets to sweep (default 4)",
    )
    sweep.add_argument(
        "--out",
        default="sweep.json",
        metavar="FILE",
        help="Pareto/sweep JSON artifact path (default sweep.json)",
    )
    _add_runner_options(sweep)

    verify = sub.add_parser(
        "verify",
        help="statically verify compiled communication (voltlint)",
        description="Run the voltlint static verifier over every "
        "(benchmark, cores, strategy) cell: queue-channel balance, "
        "lock-step PUT/GET alignment, sync coverage of cross-core memory "
        "dependences, MODE_SWITCH bracketing, and DOALL speculation "
        "brackets.  Exit status 1 when any unsuppressed finding remains.",
    )
    verify.add_argument(
        "--benchmarks",
        nargs="*",
        default=None,
        help="restrict to a subset (default: all 25)",
    )
    _add_machine_option(
        verify,
        help_tail="; sets the core counts to verify (unless --cores "
        "overrides them) and applies the spec's machine knobs "
        "(coherence, queue policy, ...) to every cell",
    )
    verify.add_argument(
        "--cores",
        nargs="*",
        type=int,
        default=None,
        metavar="N",
        help="restrict to these core counts, any mesh size "
        "(default: the paper grid 1 2 4, or --machine's count)",
    )
    verify.add_argument(
        "--strategies",
        nargs="*",
        default=None,
        choices=("baseline", "ilp", "tlp", "llp", "hybrid"),
        help="restrict to these strategies (default: the paper grid -- "
        "baseline on 1 core, ilp/tlp/llp on 2 and 4)",
    )
    verify.add_argument(
        "--dynamic",
        action="store_true",
        help="additionally execute each cell under the race sanitizer "
        "(shadow-memory happens-before over cross-core accesses)",
    )
    verify.add_argument(
        "--suppress",
        nargs="*",
        default=(),
        metavar="PATTERN",
        help="tolerate findings matching kind, kind:function, or "
        "kind:function:block",
    )
    verify.add_argument(
        "--report",
        default=None,
        metavar="FILE",
        help="write the merged findings report as JSON (the CI artifact)",
    )
    verify.add_argument(
        "--verbose",
        action="store_true",
        help="print every cell's report, not just failures",
    )
    return parser


def _check_workloads(names, out) -> bool:
    """Validate a mixed list of suite names and generated handles; any
    bad entry is reported (a malformed handle says why)."""
    bad = []
    for name in names:
        if name in BENCHMARKS:
            continue
        if is_generated(name):
            try:
                parse_handle(name)
                continue
            except (KeyError, ValueError) as error:
                bad.append(f"{name} ({error})")
                continue
        bad.append(name)
    if bad:
        print(f"unknown benchmarks: {', '.join(bad)}", file=out)
    return not bad


def _cmd_list(args, out) -> int:
    for name in api.list_benchmarks(
        generated=args.generated, gen_seed=args.gen_seed
    ):
        print(name, file=out)
    return 0


def _cmd_run(args, out) -> int:
    if not _check_workloads([args.benchmark], out):
        return 2
    machine = _resolve_machine_flag(args, out)
    if machine is None:
        return 2
    policy = getattr(args, "queue_policy", None)
    if policy is not None and policy != machine.network.queue_policy:
        machine = dataclasses.replace(
            machine,
            network=dataclasses.replace(
                machine.network, queue_policy=policy
            ),
        )
    obs = None
    if args.trace_out or args.metrics_out:
        from ..obs import Observability, ObsConfig

        obs = Observability(ObsConfig(sample_stride=args.obs_stride))
        # Profiled runs always simulate fresh: a cached result would come
        # back without its cycle-accurate event record.
        args.no_cache = True
    runner = _make_runner(args, [args.benchmark], machine=machine)
    runner.obs = obs
    n_cores = machine.n_cores
    strategy = "baseline" if n_cores == 1 else args.strategy
    try:
        with flush_on_signals(runner.journal):
            result = runner.run(args.benchmark, n_cores, strategy)
            base = runner.baseline(args.benchmark)
    finally:
        runner.close_journal()
    stats = result.stats
    print(f"benchmark : {args.benchmark}", file=out)
    machine_line = f"{n_cores} core(s), strategy {strategy}"
    if machine.coherence != "snoop":
        machine_line += f", {machine.coherence} coherence"
    if machine.network.queue_policy != "pair":
        machine_line += f", {machine.network.queue_policy} queues"
    print(f"machine   : {machine_line}", file=out)
    print(f"cycles    : {stats.cycles} (baseline {base.cycles}, "
          f"speedup {base.cycles / stats.cycles:.2f}x)", file=out)
    print(f"mode time : {stats.mode_fraction('coupled'):.0%} coupled / "
          f"{stats.mode_fraction('decoupled'):.0%} decoupled", file=out)
    print(f"txns      : {stats.tx_commits} commits, {stats.tx_aborts} "
          f"aborts; {stats.spawns} spawns", file=out)
    print("correct   : outputs match the reference interpreter", file=out)
    print(render_cache_line(runner), file=out)
    fault_line = render_fault_line(runner)
    if fault_line:
        print(fault_line, file=out)
    recovery_line = render_recovery_line(runner)
    if recovery_line:
        print(recovery_line, file=out)
    print(render_failure_line(runner), file=out)
    journal_line = render_journal_line(runner)
    if journal_line:
        print(journal_line, file=out)
    if args.stalls:
        for category in STALL_CATEGORIES:
            mean = stats.mean_stalls(category)
            if mean:
                print(f"  stall {category:10s}: {mean:10.1f} "
                      "cycles/core", file=out)
    if obs is not None:
        if args.trace_out:
            from ..obs import write_trace

            write_trace(obs, args.trace_out)
            print(f"trace     : {args.trace_out} "
                  "(load in ui.perfetto.dev)", file=out)
        if args.metrics_out:
            with open(args.metrics_out, "w", encoding="utf-8") as handle:
                json.dump(result.metrics, handle)
            print(f"metrics   : {args.metrics_out} (timeline reconciled "
                  "against machine stats)", file=out)
    return 0


def _cmd_sweep(args, out) -> int:
    from .sweep import render_frontiers

    if args.faults:
        # A chaos sweep would fold fault timing noise into every Pareto
        # point; keep the design-space story clean.
        print("sweep does not support --faults", file=out)
        return 2
    workloads = list(args.workloads)
    if args.generated:
        workloads.extend(generate_handles(args.generated, args.gen_seed))
    if not workloads:
        print("sweep needs --workloads and/or --generated N", file=out)
        return 2
    if not _check_workloads(workloads, out):
        return 2
    if args.machines is not None and args.cores is not None:
        print("pass either --machines or --cores, not both", file=out)
        return 2
    machines = args.machines if args.machines is not None else args.cores
    try:
        document = api.sweep(
            workloads,
            strategies=args.strategies,
            machines=machines,
            coherences=args.coherences,
            queue_policies=args.queue_policies,
            queue_depths=args.queue_depths,
            queue_cycles_per_hop=args.hop_latencies,
            memory_latencies=args.memory_latencies,
            tm_commit_latencies=args.tm_commit_latencies,
            cache_dir=None if args.no_cache else args.cache_dir,
            jobs=args.jobs,
            cell_timeout=args.cell_timeout,
            journal=args.resume or args.journal,
            resume=bool(args.resume),
            heartbeat_timeout=args.heartbeat_timeout,
            out=args.out,
        )
    except ValueError as error:
        print(f"bad sweep spec: {error}", file=out)
        return 2
    print(render_frontiers(document), file=out)
    cache = document["cache"]
    if args.no_cache:
        print("cache     : disabled", file=out)
    else:
        print(
            f"cache     : {cache['hits']} hit(s), {cache['misses']} miss(es) "
            f"({args.cache_dir})",
            file=out,
        )
    journal_doc = document.get("journal")
    if journal_doc:
        print(
            f"journal   : {journal_doc['replayed']} replayed / "
            f"{journal_doc['rerun']} re-run / "
            f"{journal_doc['abandoned']} abandoned "
            f"({journal_doc['path']})",
            file=out,
        )
    print(f"artifact  : {args.out}", file=out)
    return 0


def _cmd_figure(args, out) -> int:
    if args.benchmarks and not _check_workloads(args.benchmarks, out):
        return 2
    machine = None
    if args.machine is not None:
        try:
            machine = resolve_machine(args.machine)
        except (TypeError, ValueError) as error:
            print(f"bad --machine spec: {error}", file=out)
            return 2
    runner = _make_runner(args, args.benchmarks, machine=machine)
    try:
        with flush_on_signals(runner.journal):
            _render_figure(
                runner,
                args.figure,
                out,
                machine.n_cores if machine is not None else None,
            )
    finally:
        runner.close_journal()
    print(render_cache_line(runner), file=out)
    fault_line = render_fault_line(runner)
    if fault_line:
        print(fault_line, file=out)
    recovery_line = render_recovery_line(runner)
    if recovery_line:
        print(recovery_line, file=out)
    print(render_failure_line(runner), file=out)
    journal_line = render_journal_line(runner)
    if journal_line:
        print(journal_line, file=out)
    return 0


def _render_figure(runner, figure, out, n=None) -> None:
    if figure == "3":
        print(
            render_bar_breakdown(
                f"Figure 3: parallelism breakdown ({n or 4} cores)",
                runner.fig3_breakdown(n or 4),
                columns=("ilp", "tlp", "llp", "single"),
            ),
            file=out,
        )
    elif figure == "7-9":
        for label, value in runner.figure7_9_examples().items():
            print(f"{label:22s} {value:.2f}x", file=out)
    elif figure in ("10", "11"):
        n_cores = 2 if figure == "10" else 4
        print(
            render_table(
                f"Figure {figure}: {n_cores}-core speedups per type",
                runner.fig10_11_speedups(n_cores),
                columns=SINGLE_STRATEGIES,
            ),
            file=out,
        )
    elif figure == "12":
        table = runner.fig12_stalls(n)
        flat = {
            f"{name} [{mode[:3]}]": row[mode]
            for name, row in table.items()
            for mode in ("coupled", "decoupled")
        }
        print(
            render_table(
                f"Figure 12: stalls / serial time ({n or 4} cores)",
                flat,
                columns=("istall", "dstall", "recv_data", "recv_pred",
                         "call_sync"),
                fmt="{:.3f}",
                average_row=False,
            ),
            file=out,
        )
    elif figure == "13":
        counts = (n,) if n is not None else (2, 4)
        hybrid = runner.fig13_hybrid(counts)
        print(
            render_table(
                "Figure 13: hybrid speedups",
                {
                    name: {f"{c}core": row[c] for c in counts}
                    for name, row in hybrid.items()
                },
                columns=tuple(f"{c}core" for c in counts),
            ),
            file=out,
        )
    elif figure == "scaling":
        counts = (n,) if n is not None else (4, 16, 32)
        table = runner.fig_scaling(counts)
        strategies = SINGLE_STRATEGIES + ("hybrid",)
        for count in counts:
            print(
                render_table(
                    f"Scaling: {count}-core speedups per strategy",
                    {name: row[count] for name, row in table.items()},
                    columns=strategies,
                ),
                file=out,
            )
    elif figure == "14":
        print(
            render_bar_breakdown(
                f"Figure 14: time per execution mode (hybrid, {n or 4} "
                "cores)",
                runner.fig14_mode_time(n),
                columns=("coupled", "decoupled"),
            ),
            file=out,
        )


def _verify_grid(args, machine=None) -> List[tuple]:
    """(cores, strategy) cells to verify: the paper grid by default, or
    --machine's core count, or an explicit --cores list (any mesh size)."""
    if machine is None and args.cores is None and args.strategies is None:
        return [(1, "baseline")] + [
            (n, s) for n in (2, 4) for s in ("ilp", "tlp", "llp")
        ]
    if args.cores is not None:
        cores_list = args.cores
    elif machine is not None:
        cores_list = [machine.n_cores]
    else:
        cores_list = [1, 2, 4]
    strategies = args.strategies or ["baseline", "ilp", "tlp", "llp"]
    grid = []
    for n in cores_list:
        for strategy in strategies:
            # baseline is the 1-core cell; parallel strategies need >1.
            if (strategy == "baseline") != (n == 1):
                continue
            grid.append((n, strategy))
    return grid


def _cmd_verify(args, out) -> int:
    from ..analysis import merge_reports, verify_compiled
    from ..arch.config import (
        apply_overrides,
        machine_overrides,
        mesh,
        single_core,
    )
    from ..compiler.driver import VoltronCompiler
    from ..workloads.suite import build

    names = list(args.benchmarks or BENCHMARKS)
    if not _check_workloads(names, out):
        return 2
    machine = None
    if args.machine is not None:
        try:
            machine = resolve_machine(args.machine)
        except (TypeError, ValueError) as error:
            print(f"bad --machine spec: {error}", file=out)
            return 2
    overrides = (
        machine_overrides(machine, include_shape=False) if machine else {}
    )
    grid = _verify_grid(args, machine)
    reports = []
    failed = 0
    for name in names:
        bench = build(name)
        # One compiler per benchmark: the profile is computed once and
        # shared by every cell.
        compiler = VoltronCompiler(bench.program)
        for cores, strategy in grid:
            config = single_core() if cores == 1 else mesh(cores)
            config = apply_overrides(config, overrides)
            compiled = compiler.compile(strategy, config)
            report = verify_compiled(compiled, config, args.suppress)
            report.benchmark = name
            report.strategy = strategy
            if args.dynamic:
                from ..analysis import RaceSanitizer
                from ..analysis.findings import match_suppression
                from ..sim.machine import VoltronMachine

                sanitizer = RaceSanitizer()
                machine = VoltronMachine(compiled, config, sanitizer=sanitizer)
                machine.run()
                report.count("dynamic_accesses", sanitizer.checked_accesses)
                for finding in sanitizer.findings:
                    finding.suppressed = match_suppression(
                        finding, args.suppress
                    )
                    report.add(finding)
            reports.append(report)
            if not report.ok:
                failed += 1
                print(report.render(), file=out)
            elif args.verbose:
                print(report.render(), file=out)
    document = merge_reports(reports)
    checks = "static" + (" + dynamic" if args.dynamic else "")
    print(
        f"verify    : {document['total_cells']} cells ({checks}), "
        f"{failed} with findings "
        f"({document['total_findings']} unsuppressed finding(s))",
        file=out,
    )
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2)
        print(f"report    : {args.report}", file=out)
    return 0 if document["ok"] else 1


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list(args, out)
        if args.command == "run":
            return _cmd_run(args, out)
        if args.command == "figure":
            return _cmd_figure(args, out)
        if args.command == "sweep":
            return _cmd_sweep(args, out)
        if args.command == "verify":
            return _cmd_verify(args, out)
    except KeyboardInterrupt:
        # SIGTERM/SIGINT land here after flush_on_signals has written a
        # durable ``interrupted`` record and closed the journal, so the
        # interrupted run is always resumable.
        journal = getattr(args, "resume", None) or getattr(
            args, "journal", None
        )
        if journal:
            print(
                f"interrupted: journal flushed -- resume with "
                f"--resume {journal}",
                file=out,
            )
        else:
            print("interrupted", file=out)
        return 130
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    raise SystemExit(main())
