"""The stable public API of the reproduction.

Everything a script, notebook, or test needs lives behind four calls --
no consumer has to reach into harness internals or remember constructor
spellings:

    import repro

    repro.list_benchmarks()
    result = repro.run_cell("gsmdecode", machine=4, strategy="hybrid")
    table = repro.run_figure("13")

Profiling a run attaches an observability bus (see :mod:`repro.obs`):

    from repro.obs import Observability, write_trace

    obs = Observability()
    result = repro.run_cell("rawcaudio", 4, "hybrid", obs=obs)
    write_trace(obs, "trace.json")     # load in ui.perfetto.dev
    result.metrics["timeline"]         # reconciled per-mode summary

These signatures are the compatibility contract: the canonical machine
spelling is ``machine=`` everywhere -- an int core count, a preset name
(``"mesh16"``, ``"mesh32-directory"``, see :func:`list_presets`), or a
full :class:`~repro.arch.MachineConfig`.  The former ``cores=`` keyword
still works with a ``DeprecationWarning`` (passing both spellings is a
``TypeError``), following the same migration pattern as the retired
``n_cores=`` / ``name=`` / ``fault_config=`` aliases.  ``faults=`` is
canonical for fault configs, and serialized results carry
``schema_version`` (see
:data:`repro.harness.experiments.SCHEMA_VERSION`).
"""

from __future__ import annotations

import warnings
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from .arch.config import (
    MachineSpec,
    machine_overrides,
    resolve_machine,
)
from .arch.config import list_presets as _arch_list_presets
from .compiler.driver import VoltronCompiler
from .harness.experiments import ExperimentRunner, RunResult
from .sim.faults import FaultConfig
from .workloads.generator import GenKnobs, generate_handles, make_handle
from .workloads.suite import BENCHMARKS, build

#: Figure identifiers accepted by :func:`run_figure`.  ``"3"``-``"14"``
#: reproduce the paper; ``"scaling"`` is this repo's extension column
#: set (speedups at 4/16/32 cores for every strategy).
FIGURES = ("3", "7-9", "10", "11", "12", "13", "14", "scaling")

#: Sentinel distinguishing "not passed" from any real value in the
#: machine=/cores= deprecation shims.
_UNSET = object()


def _machine_arg(caller, machine, cores, *, default=None):
    """Resolve the ``machine=``/deprecated ``cores=`` pair one way.

    Exactly mirrors the PR 3/4 kwarg-unification pattern: both
    spellings together is a :class:`TypeError`, ``cores=`` alone warns
    and is honored, and a missing spec falls back to ``default`` (or
    raises when there is none).
    """
    if cores is not _UNSET:
        if machine is not _UNSET:
            raise TypeError(
                f"{caller}() got both 'machine' and the deprecated "
                "'cores'; pass only machine="
            )
        warnings.warn(
            f"{caller}(cores=...) is deprecated; pass machine= "
            "(a core count, preset name, or MachineConfig)",
            DeprecationWarning,
            stacklevel=3,
        )
        machine = cores
    if machine is _UNSET:
        if default is None:
            raise TypeError(
                f"{caller}() needs a machine spec: pass machine="
            )
        machine = default
    return resolve_machine(machine)


def list_presets() -> List[str]:
    """Names accepted wherever ``machine=`` takes a preset string:
    ``single``/``two``/``four``/``mesh16``/``mesh32``/``mesh64``, each
    also in ``-snoop``/``-directory`` coherence variants."""
    return _arch_list_presets()


def list_benchmarks(
    *,
    generated: int = 0,
    gen_seed: int = 1,
    knobs: Optional[GenKnobs] = None,
) -> List[str]:
    """Names of the benchmark suite, in canonical order.

    With ``generated=N`` the list additionally surfaces N generated
    workload handles (``gen:<seed>:<knobs-hash>`` for consecutive seeds
    starting at ``gen_seed``), interchangeable with named benchmarks in
    every ``benchmark=`` slot of this API, the CLI, and the result
    cache.  ``knobs`` selects a custom generator configuration
    (registered as a side effect so the returned handles resolve).
    """
    names = list(BENCHMARKS)
    if generated:
        names.extend(generate_handles(generated, gen_seed, knobs))
    return names


def generate_workload(seed: int = 1, knobs: Optional[GenKnobs] = None) -> str:
    """Mint (and register) the handle of one generated workload.

    The returned ``gen:<seed>:<knobs-hash>`` string is a first-class
    benchmark name: pass it to :func:`run_cell`, :func:`verify_benchmark`,
    :func:`compile_benchmark`, :func:`sweep`, or the CLI.  The handle
    alone pins the program bit-for-bit (generation never consults global
    randomness), so its cache keys are stable across sessions.
    """
    return make_handle(seed, knobs)


def compile_benchmark(
    benchmark: str,
    machine: MachineSpec = _UNSET,
    strategy: str = "hybrid",
    *,
    seed: int = 1,
    cores=_UNSET,
):
    """Build one benchmark and compile it for a machine spec.

    ``machine`` is an int core count, a preset name, or a full
    :class:`~repro.arch.MachineConfig` (default: the 4-core mesh).
    Returns the :class:`~repro.isa.machinecode.CompiledProgram` -- useful
    for inspecting per-core instruction streams or constructing a
    :class:`~repro.sim.machine.VoltronMachine` directly.
    """
    config = _machine_arg("compile_benchmark", machine, cores, default=4)
    bench = build(benchmark, seed)
    return VoltronCompiler(bench.program).compile(strategy, config)


def verify_benchmark(
    benchmark: str,
    machine: MachineSpec = _UNSET,
    strategy: str = "hybrid",
    *,
    seed: int = 1,
    dynamic: bool = False,
    suppressions: Sequence[str] = (),
    max_cycles: int = 50_000_000,
    cores=_UNSET,
):
    """Statically verify one compiled cell's communication structure.

    Runs the voltlint checks (:mod:`repro.analysis`): queue-channel
    balance (orphan SEND = leak, orphan RECV = deadlock), lock-step
    PUT/GET alignment, sync coverage of cross-core memory dependences,
    MODE_SWITCH bracketing, and DOALL speculation brackets.  Returns the
    :class:`~repro.analysis.VerificationReport`; ``report.ok`` is the
    pass/fail verdict and ``report.render()`` the human summary.

    With ``dynamic=True`` the cell is additionally *executed* under the
    race sanitizer (shadow-memory happens-before over cross-core
    accesses); any dynamic race and any message left in a queue at halt
    are appended to the same report.

    ``suppressions`` entries name findings to tolerate, as ``kind``,
    ``kind:function``, or ``kind:function:block``.
    """
    from .analysis import RaceSanitizer, verify_compiled
    from .analysis.findings import Finding, match_suppression

    config = _machine_arg("verify_benchmark", machine, cores, default=4)
    bench = build(benchmark, seed)
    compiled = VoltronCompiler(bench.program).compile(strategy, config)
    report = verify_compiled(compiled, config, suppressions)
    report.benchmark = benchmark
    report.strategy = strategy
    if dynamic:
        from .sim.machine import VoltronMachine

        sanitizer = RaceSanitizer()
        machine = VoltronMachine(
            compiled, config, max_cycles=max_cycles, sanitizer=sanitizer
        )
        machine.run()
        report.count("dynamic_accesses", sanitizer.checked_accesses)
        for finding in sanitizer.findings:
            finding.suppressed = match_suppression(finding, suppressions)
            report.add(finding)
        if not machine.network.quiescent():
            leak = Finding(
                kind="message-leak",
                function="<machine>",
                block="<halt>",
                region=0,
                core=None,
                message="messages still queued or in flight after halt "
                "(orphaned SEND reached the network)",
            )
            leak.suppressed = match_suppression(leak, suppressions)
            report.add(leak)
    return report


def session(
    benchmarks: Optional[Sequence[str]] = None,
    *,
    machine: Optional[MachineSpec] = None,
    seed: int = 1,
    max_cycles: int = 50_000_000,
    cache_dir: Optional[Union[str, Path]] = None,
    jobs: int = 1,
    cell_timeout: Optional[float] = None,
    faults: Optional[FaultConfig] = None,
    config_overrides: Optional[Dict[str, object]] = None,
    journal: Optional[Union[str, Path]] = None,
    resume: bool = False,
    heartbeat_timeout: Optional[float] = None,
    backoff_seed: Optional[int] = None,
    max_abandoned: int = 0,
) -> ExperimentRunner:
    """A reusable experiment session (shared builds, cache, worker pool).

    Use this instead of constructing :class:`ExperimentRunner` directly;
    the keyword names here are the stable ones.  ``machine=`` shapes
    every cell the session runs: its non-default knobs (coherence
    protocol, queue policy, latencies, ...) apply at *every* core count
    the session touches -- a session serves figures spanning several
    core counts, so the spec's own core count and mesh shape stay per
    cell.  ``config_overrides`` applies flat machine-config tweaks
    (``queue_depth``, ``queue_cycles_per_hop``, ``memory_latency``,
    ``tm_commit_latency``, ...) on top -- the knob the design-space
    sweep turns; explicit overrides win over ``machine=``-derived ones.

    ``journal=`` arms the crash-safe write-ahead
    :class:`~repro.harness.journal.RunJournal`: one fsynced JSONL record
    per cell lifecycle event, so an interrupted session resumes with
    ``resume=True`` (cells with a durable ``completed`` record replay
    from the cache, bit-identical, with zero re-simulation).
    ``heartbeat_timeout`` arms worker supervision (hung/frozen pool
    workers are detected and retried before their full deadline);
    ``backoff_seed`` pins the deterministic retry-backoff jitter;
    ``max_abandoned`` bounds how many poisoned cells a prefetch absorbs
    as ``abandoned`` before raising.
    """
    if machine is not None:
        derived = machine_overrides(
            resolve_machine(machine), include_shape=False
        )
        config_overrides = {**derived, **(config_overrides or {})} or None
    return ExperimentRunner(
        benchmarks=benchmarks,
        seed=seed,
        max_cycles=max_cycles,
        cache_dir=cache_dir,
        jobs=jobs,
        cell_timeout=cell_timeout,
        faults=faults,
        config_overrides=config_overrides,
        journal=journal,
        resume=resume,
        heartbeat_timeout=heartbeat_timeout,
        backoff_seed=backoff_seed,
        max_abandoned=max_abandoned,
    )


def run_cell(
    benchmark: str,
    machine: MachineSpec = _UNSET,
    strategy: str = "hybrid",
    *,
    faults: Optional[FaultConfig] = None,
    obs=None,
    seed: int = 1,
    max_cycles: int = 50_000_000,
    cache_dir: Optional[Union[str, Path]] = None,
    cores=_UNSET,
) -> RunResult:
    """Simulate one (benchmark, machine, strategy) cell end to end.

    ``machine`` is required: an int core count, a preset name (e.g.
    ``"mesh16-directory"``), or a full
    :class:`~repro.arch.MachineConfig`.  The run is functionally checked
    against the reference interpreter.  Pass an
    :class:`~repro.obs.Observability` bus via ``obs=`` to profile
    the run: the result then carries ``metrics`` (sampled series plus a
    timeline summary reconciled against the machine stats), and the bus
    itself can be exported with :func:`repro.obs.write_trace`.  Profiled
    runs always simulate fresh -- ``cache_dir`` must stay None with
    ``obs`` (cached results cannot carry a cycle-accurate event record).
    """
    config = _machine_arg("run_cell", machine, cores)
    runner = ExperimentRunner(
        benchmarks=[benchmark],
        seed=seed,
        max_cycles=max_cycles,
        cache_dir=None if obs is not None else cache_dir,
        faults=faults,
        obs=obs,
        config_overrides=machine_overrides(config) or None,
    )
    return runner.run(benchmark, config.n_cores, strategy)


def run_figure(
    figure: str,
    *,
    benchmarks: Optional[Sequence[str]] = None,
    machine: Optional[MachineSpec] = None,
    seed: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    jobs: int = 1,
    cell_timeout: Optional[float] = None,
    faults: Optional[FaultConfig] = None,
    runner: Optional[ExperimentRunner] = None,
    journal: Optional[Union[str, Path]] = None,
    resume: bool = False,
    cores=_UNSET,
) -> Dict:
    """Reproduce one paper figure; returns its data table.

    ``figure`` is one of :data:`FIGURES`.  ``machine`` overrides the
    figure's default core count where it has one (figures 3, 12, 13, 14,
    scaling; 10 and 11 fix their own) and applies the spec's non-default
    machine knobs (coherence, queue policy, ...) to every cell.  Pass an
    existing ``runner`` (from :func:`session`) to share builds and cache
    across several figures -- hand the machine spec to the session in
    that case.  ``journal=``/``resume=`` make the figure run crash-safe
    and resumable (see :func:`session`).
    """
    if figure not in FIGURES:
        raise ValueError(f"unknown figure {figure!r}; expected one of {FIGURES}")
    if cores is not _UNSET and cores is not None:
        if machine is not None:
            raise TypeError(
                "run_figure() got both 'machine' and the deprecated "
                "'cores'; pass only machine="
            )
        warnings.warn(
            "run_figure(cores=...) is deprecated; pass machine=",
            DeprecationWarning,
            stacklevel=2,
        )
        machine = cores
    config = resolve_machine(machine) if machine is not None else None
    overrides = (
        machine_overrides(config, include_shape=False)
        if config is not None
        else {}
    )
    if runner is None:
        runner = session(
            benchmarks,
            seed=seed,
            cache_dir=cache_dir,
            jobs=jobs,
            cell_timeout=cell_timeout,
            faults=faults,
            journal=journal,
            resume=resume,
            config_overrides=overrides or None,
        )
    elif overrides:
        raise ValueError(
            "this machine spec carries config overrides; pass machine= "
            "to session() instead when sharing a runner across figures"
        )
    n = config.n_cores if config is not None else None
    if figure == "3":
        return runner.fig3_breakdown(n if n is not None else 4)
    if figure == "7-9":
        return runner.figure7_9_examples()
    if figure == "10":
        return runner.fig10_11_speedups(2)
    if figure == "11":
        return runner.fig10_11_speedups(4)
    if figure == "12":
        return runner.fig12_stalls(n if n is not None else 4)
    if figure == "13":
        return runner.fig13_hybrid((n,) if n is not None else (2, 4))
    if figure == "scaling":
        return runner.fig_scaling((n,) if n is not None else (4, 16, 32))
    return runner.fig14_mode_time(n if n is not None else 4)


def sweep(
    workloads: Sequence[str],
    *,
    machines: Optional[Sequence[MachineSpec]] = None,
    strategies: Sequence[str] = ("ilp", "tlp", "llp", "hybrid"),
    coherences: Optional[Sequence[str]] = None,
    queue_policies: Sequence[str] = ("pair",),
    queue_depths: Sequence[int] = (16,),
    queue_cycles_per_hop: Sequence[int] = (1,),
    memory_latencies: Sequence[int] = (100,),
    tm_commit_latencies: Sequence[int] = (4,),
    seed: int = 1,
    max_cycles: int = 50_000_000,
    cache_dir: Optional[Union[str, Path]] = None,
    jobs: int = 1,
    cell_timeout: Optional[float] = None,
    out: Optional[Union[str, Path]] = None,
    journal: Optional[Union[str, Path]] = None,
    resume: bool = False,
    heartbeat_timeout: Optional[float] = None,
    cores=_UNSET,
) -> Dict:
    """Sweep machine configurations across workloads; Pareto per strategy.

    ``workloads`` mixes named benchmarks and generated handles freely.
    ``machines`` spans the mesh-size axis: each entry is an int core
    count, a preset name, or a :class:`~repro.arch.MachineConfig`
    (default ``(2, 4)``, the paper's grid); entries naming a coherence
    variant seed the coherence axis unless ``coherences=`` pins it
    explicitly.  The machine axes (mesh size, coherence protocol,
    operand-queue policy and depth, queue-mode hop latency, memory
    latency, TM commit budget) are crossed into a full grid; every
    (workload, machine, strategy) cell runs through the cached parallel
    runner, so repeated sweeps only simulate new points.  Returns the
    sweep document (see :mod:`repro.harness.sweep` for the schema) and,
    with ``out=``, writes it as a JSON artifact.

    ``journal=`` makes the sweep crash-safe: every cell's lifecycle is
    write-ahead journaled (fsynced JSONL), Ctrl-C/SIGTERM flush before
    exit, and ``resume=True`` replays an interrupted sweep so only
    cells without a durable ``completed`` record re-simulate; the
    resulting Pareto document matches an uninterrupted sweep's.
    """
    from .harness.sweep import SweepSpec, run_sweep, write_sweep

    if cores is not _UNSET:
        if machines is not None:
            raise TypeError(
                "sweep() got both 'machines' and the deprecated "
                "'cores'; pass only machines="
            )
        warnings.warn(
            "sweep(cores=...) is deprecated; pass machines= (core "
            "counts, preset names, or MachineConfigs)",
            DeprecationWarning,
            stacklevel=2,
        )
        machines = cores
    resolved = [
        resolve_machine(machine)
        for machine in (machines if machines is not None else (2, 4))
    ]
    core_axis = tuple(dict.fromkeys(config.n_cores for config in resolved))
    for config in resolved:
        extra = machine_overrides(config, include_shape=False)
        extra.pop("coherence", None)
        if extra:
            raise ValueError(
                "sweep machine entries may only vary core count and "
                f"coherence; put {sorted(extra)} on the dedicated sweep "
                "axes instead"
            )
    if coherences is None:
        coherences = tuple(
            dict.fromkeys(config.coherence for config in resolved)
        )
    spec = SweepSpec(
        workloads=tuple(workloads),
        strategies=tuple(strategies),
        cores=core_axis,
        coherences=tuple(coherences),
        queue_policies=tuple(queue_policies),
        queue_depths=tuple(queue_depths),
        queue_cycles_per_hop=tuple(queue_cycles_per_hop),
        memory_latencies=tuple(memory_latencies),
        tm_commit_latencies=tuple(tm_commit_latencies),
    )
    document = run_sweep(
        spec,
        seed=seed,
        max_cycles=max_cycles,
        cache_dir=cache_dir,
        jobs=jobs,
        cell_timeout=cell_timeout,
        journal=journal,
        resume=resume,
        heartbeat_timeout=heartbeat_timeout,
    )
    if out is not None:
        write_sweep(document, out)
    return document


__all__ = [
    "FIGURES",
    "RunResult",
    "compile_benchmark",
    "generate_workload",
    "list_benchmarks",
    "list_presets",
    "run_cell",
    "run_figure",
    "session",
    "sweep",
    "verify_benchmark",
]
