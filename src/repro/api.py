"""The stable public API of the reproduction.

Everything a script, notebook, or test needs lives behind four calls --
no consumer has to reach into harness internals or remember constructor
spellings:

    import repro

    repro.list_benchmarks()
    result = repro.run_cell("gsmdecode", cores=4, strategy="hybrid")
    table = repro.run_figure("13")

Profiling a run attaches an observability bus (see :mod:`repro.obs`):

    from repro.obs import Observability, write_trace

    obs = Observability()
    result = repro.run_cell("rawcaudio", 4, "hybrid", obs=obs)
    write_trace(obs, "trace.json")     # load in ui.perfetto.dev
    result.metrics["timeline"]         # reconciled per-mode summary

These signatures are the compatibility contract: canonical keyword
spellings are ``cores=`` and ``faults=`` everywhere (the deprecated
``n_cores=`` / ``name=`` / ``fault_config=`` aliases shipped their
``DeprecationWarning`` release and have been removed), and serialized
results carry ``schema_version`` (see
:data:`repro.harness.experiments.SCHEMA_VERSION`).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from .arch.config import mesh, single_core
from .compiler.driver import VoltronCompiler
from .harness.experiments import ExperimentRunner, RunResult
from .sim.faults import FaultConfig
from .workloads.generator import GenKnobs, generate_handles, make_handle
from .workloads.suite import BENCHMARKS, build

#: Figure identifiers accepted by :func:`run_figure`.
FIGURES = ("3", "7-9", "10", "11", "12", "13", "14")


def list_benchmarks(
    *,
    generated: int = 0,
    gen_seed: int = 1,
    knobs: Optional[GenKnobs] = None,
) -> List[str]:
    """Names of the benchmark suite, in canonical order.

    With ``generated=N`` the list additionally surfaces N generated
    workload handles (``gen:<seed>:<knobs-hash>`` for consecutive seeds
    starting at ``gen_seed``), interchangeable with named benchmarks in
    every ``benchmark=`` slot of this API, the CLI, and the result
    cache.  ``knobs`` selects a custom generator configuration
    (registered as a side effect so the returned handles resolve).
    """
    names = list(BENCHMARKS)
    if generated:
        names.extend(generate_handles(generated, gen_seed, knobs))
    return names


def generate_workload(seed: int = 1, knobs: Optional[GenKnobs] = None) -> str:
    """Mint (and register) the handle of one generated workload.

    The returned ``gen:<seed>:<knobs-hash>`` string is a first-class
    benchmark name: pass it to :func:`run_cell`, :func:`verify_benchmark`,
    :func:`compile_benchmark`, :func:`sweep`, or the CLI.  The handle
    alone pins the program bit-for-bit (generation never consults global
    randomness), so its cache keys are stable across sessions.
    """
    return make_handle(seed, knobs)


def compile_benchmark(
    benchmark: str,
    cores: int = 4,
    strategy: str = "hybrid",
    *,
    seed: int = 1,
):
    """Build one benchmark and compile it for a machine shape.

    Returns the :class:`~repro.isa.machinecode.CompiledProgram` -- useful
    for inspecting per-core instruction streams or constructing a
    :class:`~repro.sim.machine.VoltronMachine` directly.
    """
    bench = build(benchmark, seed)
    config = single_core() if cores == 1 else mesh(cores)
    return VoltronCompiler(bench.program).compile(strategy, config)


def verify_benchmark(
    benchmark: str,
    cores: int = 4,
    strategy: str = "hybrid",
    *,
    seed: int = 1,
    dynamic: bool = False,
    suppressions: Sequence[str] = (),
    max_cycles: int = 50_000_000,
):
    """Statically verify one compiled cell's communication structure.

    Runs the voltlint checks (:mod:`repro.analysis`): queue-channel
    balance (orphan SEND = leak, orphan RECV = deadlock), lock-step
    PUT/GET alignment, sync coverage of cross-core memory dependences,
    MODE_SWITCH bracketing, and DOALL speculation brackets.  Returns the
    :class:`~repro.analysis.VerificationReport`; ``report.ok`` is the
    pass/fail verdict and ``report.render()`` the human summary.

    With ``dynamic=True`` the cell is additionally *executed* under the
    race sanitizer (shadow-memory happens-before over cross-core
    accesses); any dynamic race and any message left in a queue at halt
    are appended to the same report.

    ``suppressions`` entries name findings to tolerate, as ``kind``,
    ``kind:function``, or ``kind:function:block``.
    """
    from .analysis import RaceSanitizer, verify_compiled
    from .analysis.findings import Finding, match_suppression

    bench = build(benchmark, seed)
    config = single_core() if cores == 1 else mesh(cores)
    compiled = VoltronCompiler(bench.program).compile(strategy, config)
    report = verify_compiled(compiled, config, suppressions)
    report.benchmark = benchmark
    report.strategy = strategy
    if dynamic:
        from .sim.machine import VoltronMachine

        sanitizer = RaceSanitizer()
        machine = VoltronMachine(
            compiled, config, max_cycles=max_cycles, sanitizer=sanitizer
        )
        machine.run()
        report.count("dynamic_accesses", sanitizer.checked_accesses)
        for finding in sanitizer.findings:
            finding.suppressed = match_suppression(finding, suppressions)
            report.add(finding)
        if not machine.network.quiescent():
            leak = Finding(
                kind="message-leak",
                function="<machine>",
                block="<halt>",
                region=0,
                core=None,
                message="messages still queued or in flight after halt "
                "(orphaned SEND reached the network)",
            )
            leak.suppressed = match_suppression(leak, suppressions)
            report.add(leak)
    return report


def session(
    benchmarks: Optional[Sequence[str]] = None,
    *,
    seed: int = 1,
    max_cycles: int = 50_000_000,
    cache_dir: Optional[Union[str, Path]] = None,
    jobs: int = 1,
    cell_timeout: Optional[float] = None,
    faults: Optional[FaultConfig] = None,
    config_overrides: Optional[Dict[str, object]] = None,
    journal: Optional[Union[str, Path]] = None,
    resume: bool = False,
    heartbeat_timeout: Optional[float] = None,
    backoff_seed: Optional[int] = None,
    max_abandoned: int = 0,
) -> ExperimentRunner:
    """A reusable experiment session (shared builds, cache, worker pool).

    Use this instead of constructing :class:`ExperimentRunner` directly;
    the keyword names here are the stable ones.  ``config_overrides``
    applies flat machine-config tweaks (``queue_depth``,
    ``queue_cycles_per_hop``, ``memory_latency``, ``tm_commit_latency``,
    ...) on top of the standard mesh presets -- the knob the design-space
    sweep turns.

    ``journal=`` arms the crash-safe write-ahead
    :class:`~repro.harness.journal.RunJournal`: one fsynced JSONL record
    per cell lifecycle event, so an interrupted session resumes with
    ``resume=True`` (cells with a durable ``completed`` record replay
    from the cache, bit-identical, with zero re-simulation).
    ``heartbeat_timeout`` arms worker supervision (hung/frozen pool
    workers are detected and retried before their full deadline);
    ``backoff_seed`` pins the deterministic retry-backoff jitter;
    ``max_abandoned`` bounds how many poisoned cells a prefetch absorbs
    as ``abandoned`` before raising.
    """
    return ExperimentRunner(
        benchmarks=benchmarks,
        seed=seed,
        max_cycles=max_cycles,
        cache_dir=cache_dir,
        jobs=jobs,
        cell_timeout=cell_timeout,
        faults=faults,
        config_overrides=config_overrides,
        journal=journal,
        resume=resume,
        heartbeat_timeout=heartbeat_timeout,
        backoff_seed=backoff_seed,
        max_abandoned=max_abandoned,
    )


def run_cell(
    benchmark: str,
    cores: int,
    strategy: str,
    *,
    faults: Optional[FaultConfig] = None,
    obs=None,
    seed: int = 1,
    max_cycles: int = 50_000_000,
    cache_dir: Optional[Union[str, Path]] = None,
) -> RunResult:
    """Simulate one (benchmark, cores, strategy) cell end to end.

    The run is functionally checked against the reference interpreter.
    Pass an :class:`~repro.obs.Observability` bus via ``obs=`` to profile
    the run: the result then carries ``metrics`` (sampled series plus a
    timeline summary reconciled against the machine stats), and the bus
    itself can be exported with :func:`repro.obs.write_trace`.  Profiled
    runs always simulate fresh -- ``cache_dir`` must stay None with
    ``obs`` (cached results cannot carry a cycle-accurate event record).
    """
    runner = ExperimentRunner(
        benchmarks=[benchmark],
        seed=seed,
        max_cycles=max_cycles,
        cache_dir=None if obs is not None else cache_dir,
        faults=faults,
        obs=obs,
    )
    return runner.run(benchmark, cores, strategy)


def run_figure(
    figure: str,
    *,
    benchmarks: Optional[Sequence[str]] = None,
    cores: Optional[int] = None,
    seed: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    jobs: int = 1,
    cell_timeout: Optional[float] = None,
    faults: Optional[FaultConfig] = None,
    runner: Optional[ExperimentRunner] = None,
    journal: Optional[Union[str, Path]] = None,
    resume: bool = False,
) -> Dict:
    """Reproduce one paper figure; returns its data table.

    ``figure`` is one of :data:`FIGURES`.  ``cores`` overrides the
    figure's default core count where it has one (figures 3, 12, 14; 10
    and 11 fix their own).  Pass an existing ``runner`` (from
    :func:`session`) to share builds and cache across several figures.
    ``journal=``/``resume=`` make the figure run crash-safe and
    resumable (see :func:`session`).
    """
    if figure not in FIGURES:
        raise ValueError(f"unknown figure {figure!r}; expected one of {FIGURES}")
    if runner is None:
        runner = session(
            benchmarks,
            seed=seed,
            cache_dir=cache_dir,
            jobs=jobs,
            cell_timeout=cell_timeout,
            faults=faults,
            journal=journal,
            resume=resume,
        )
    if figure == "3":
        return runner.fig3_breakdown(cores if cores is not None else 4)
    if figure == "7-9":
        return runner.figure7_9_examples()
    if figure == "10":
        return runner.fig10_11_speedups(2)
    if figure == "11":
        return runner.fig10_11_speedups(4)
    if figure == "12":
        return runner.fig12_stalls(cores if cores is not None else 4)
    if figure == "13":
        return runner.fig13_hybrid()
    return runner.fig14_mode_time(cores if cores is not None else 4)


def sweep(
    workloads: Sequence[str],
    *,
    strategies: Sequence[str] = ("ilp", "tlp", "llp", "hybrid"),
    cores: Sequence[int] = (2, 4),
    queue_depths: Sequence[int] = (16,),
    queue_cycles_per_hop: Sequence[int] = (1,),
    memory_latencies: Sequence[int] = (100,),
    tm_commit_latencies: Sequence[int] = (4,),
    seed: int = 1,
    max_cycles: int = 50_000_000,
    cache_dir: Optional[Union[str, Path]] = None,
    jobs: int = 1,
    cell_timeout: Optional[float] = None,
    out: Optional[Union[str, Path]] = None,
    journal: Optional[Union[str, Path]] = None,
    resume: bool = False,
    heartbeat_timeout: Optional[float] = None,
) -> Dict:
    """Sweep machine configurations across workloads; Pareto per strategy.

    ``workloads`` mixes named benchmarks and generated handles freely.
    The machine axes (mesh size via ``cores``, operand-queue depth,
    queue-mode hop latency, memory latency, TM commit budget) are
    crossed into a full grid; every (workload, machine, strategy) cell
    runs through the cached parallel runner, so repeated sweeps only
    simulate new points.  Returns the sweep document (see
    :mod:`repro.harness.sweep` for the schema) and, with ``out=``,
    writes it as a JSON artifact.

    ``journal=`` makes the sweep crash-safe: every cell's lifecycle is
    write-ahead journaled (fsynced JSONL), Ctrl-C/SIGTERM flush before
    exit, and ``resume=True`` replays an interrupted sweep so only
    cells without a durable ``completed`` record re-simulate; the
    resulting Pareto document matches an uninterrupted sweep's.
    """
    from .harness.sweep import SweepSpec, run_sweep, write_sweep

    spec = SweepSpec(
        workloads=tuple(workloads),
        strategies=tuple(strategies),
        cores=tuple(cores),
        queue_depths=tuple(queue_depths),
        queue_cycles_per_hop=tuple(queue_cycles_per_hop),
        memory_latencies=tuple(memory_latencies),
        tm_commit_latencies=tuple(tm_commit_latencies),
    )
    document = run_sweep(
        spec,
        seed=seed,
        max_cycles=max_cycles,
        cache_dir=cache_dir,
        jobs=jobs,
        cell_timeout=cell_timeout,
        journal=journal,
        resume=resume,
        heartbeat_timeout=heartbeat_timeout,
    )
    if out is not None:
        write_sweep(document, out)
    return document


__all__ = [
    "FIGURES",
    "RunResult",
    "compile_benchmark",
    "generate_workload",
    "list_benchmarks",
    "run_cell",
    "run_figure",
    "session",
    "sweep",
    "verify_benchmark",
]
