"""The full fuzzing oracle: voltlint + race sanitizer + bit-identity.

The generator (:mod:`repro.workloads.generator`) emits programs no one
has ever hand-checked, so "correct" has to be decided mechanically.
This module chains the three independent referees the repo already
trusts into one verdict per program:

1. **Static** -- every compiled cell passes the voltlint verifier
   (channel balance, DVLIW alignment, sync coverage, mode barriers, TM
   brackets).
2. **Dynamic** -- the cell executes under the vector-clock race
   sanitizer with no findings and a quiescent network at halt.
3. **Bit-identity** -- every output array's final memory matches the
   sequential reference interpreter exactly.

A program that passes all three on every requested cell is a valid data
point for the sweep driver; a program that fails any is a compiler bug
find, and the failure string is precise enough for the shrinker to
minimize against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..arch.config import mesh, single_core
from ..compiler.driver import VoltronCompiler
from ..isa.interp import run_program
from ..isa.program import Program
from ..sim.machine import VoltronMachine
from .sanitizer import RaceSanitizer
from .verifier import verify_compiled

#: Cells the oracle checks by default: the static pass sweeps every
#: paper strategy on both mesh sizes; the (more expensive) dynamic +
#: bit-identity pass exercises the hybrid cell, whose mode switches
#: cover all communication flavours at once.
STATIC_CELLS: Tuple[Tuple[int, str], ...] = tuple(
    (n, s) for n in (2, 4) for s in ("ilp", "tlp", "llp", "hybrid")
)
DYNAMIC_CELLS: Tuple[Tuple[int, str], ...] = ((4, "hybrid"),)


@dataclass
class OracleVerdict:
    """One program's pass/fail, with enough context to debug a fail."""

    ok: bool
    #: Which referee rejected: "static", "dynamic", or "bit-identity"
    #: (empty on a pass).
    stage: str = ""
    #: The offending (cores, strategy) cell, or None on a pass.
    cell: Optional[Tuple[int, str]] = None
    detail: str = ""
    #: Cells checked, for the fuzz suite's coverage accounting.
    static_cells: int = 0
    dynamic_cells: int = 0

    def __bool__(self) -> bool:
        return self.ok

    def describe(self) -> str:
        if self.ok:
            return (
                f"ok ({self.static_cells} static, "
                f"{self.dynamic_cells} dynamic cells)"
            )
        cores, strategy = self.cell if self.cell else ("?", "?")
        return f"{self.stage} failure [{cores}-core {strategy}]: {self.detail}"


def check_program(
    program: Program,
    outputs: Sequence[str],
    *,
    static_cells: Sequence[Tuple[int, str]] = STATIC_CELLS,
    dynamic_cells: Sequence[Tuple[int, str]] = DYNAMIC_CELLS,
    max_cycles: int = 50_000_000,
    mutate: Optional[Callable[[object], object]] = None,
) -> OracleVerdict:
    """Run the full oracle over one program; stops at the first failure.

    ``outputs`` names the arrays whose final contents define functional
    correctness (``Benchmark.outputs``).  One compiler instance is
    shared across cells so the profile is computed once, mirroring the
    experiment runner.

    ``mutate`` is the adversarial hook: a callable applied to every
    freshly compiled cell before it is checked.  Tests plant the PR-5
    mutation-harness miscompiles through it to prove the oracle (and
    the shrinker driving it) still has teeth.
    """
    compiler = VoltronCompiler(program)
    checked_static = 0
    for cores, strategy in static_cells:
        config = single_core() if cores == 1 else mesh(cores)
        compiled = compiler.compile(strategy, config)
        if mutate is not None:
            mutate(compiled)
        report = verify_compiled(compiled, config)
        checked_static += 1
        if not report.ok:
            findings = [f for f in report.findings if not f.suppressed]
            return OracleVerdict(
                ok=False,
                stage="static",
                cell=(cores, strategy),
                detail="; ".join(
                    f"{f.kind} in {f.function}:{f.block}" for f in findings[:3]
                ),
                static_cells=checked_static,
            )

    reference = run_program(program)
    expected = {
        name: reference.array_values(program, name) for name in outputs
    }
    checked_dynamic = 0
    for cores, strategy in dynamic_cells:
        config = single_core() if cores == 1 else mesh(cores)
        compiled = compiler.compile(strategy, config)
        if mutate is not None:
            mutate(compiled)
        sanitizer = RaceSanitizer()
        machine = VoltronMachine(
            compiled, config, max_cycles=max_cycles, sanitizer=sanitizer
        )
        machine.run()
        checked_dynamic += 1
        races = [f for f in sanitizer.findings if not f.suppressed]
        if races:
            return OracleVerdict(
                ok=False,
                stage="dynamic",
                cell=(cores, strategy),
                detail="; ".join(
                    f"{f.kind} in {f.function}:{f.block}" for f in races[:3]
                ),
                static_cells=checked_static,
                dynamic_cells=checked_dynamic,
            )
        if not machine.network.quiescent():
            return OracleVerdict(
                ok=False,
                stage="dynamic",
                cell=(cores, strategy),
                detail="messages still queued or in flight after halt",
                static_cells=checked_static,
                dynamic_cells=checked_dynamic,
            )
        mismatched: List[str] = [
            name
            for name, values in expected.items()
            if machine.array_values(name) != values
        ]
        if mismatched:
            return OracleVerdict(
                ok=False,
                stage="bit-identity",
                cell=(cores, strategy),
                detail=(
                    "final memory diverged from the reference interpreter "
                    f"in array(s): {', '.join(mismatched)}"
                ),
                static_cells=checked_static,
                dynamic_cells=checked_dynamic,
            )
    return OracleVerdict(
        ok=True,
        static_cells=checked_static,
        dynamic_cells=checked_dynamic,
    )


def check_benchmark(bench, **kwargs) -> OracleVerdict:
    """Oracle over anything with ``.program`` and ``.outputs`` (a suite
    :class:`~repro.workloads.suite.Benchmark` or a generated one)."""
    return check_program(bench.program, bench.outputs, **kwargs)
