"""Findings and reports for the voltlint verifier and race sanitizer.

A :class:`Finding` names the smallest unit a human needs to locate the
problem: the function, the machine-level block label, the region id from
``compiled.attrs["regions"]``, the core, and (when one op is to blame)
the op itself.  The mutation harness asserts on exactly these fields, so
diagnostics are part of the verifier's contract, not cosmetics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class Finding:
    """One verifier diagnostic.

    ``kind`` is a stable machine-readable tag (``orphan-send``,
    ``missing-sync``, ...); ``message`` is the human explanation.  ``core``
    is None only for whole-block findings with no single core to blame.
    """

    kind: str
    function: str
    block: str
    region: int
    core: Optional[int]
    message: str
    op: Optional[str] = None
    suppressed: bool = False

    def location(self) -> str:
        where = f"{self.function}:{self.block} region={self.region}"
        if self.core is not None:
            where += f" core={self.core}"
        return where

    def render(self) -> str:
        text = f"[{self.kind}] {self.location()}: {self.message}"
        if self.op is not None:
            text += f" ({self.op})"
        if self.suppressed:
            text = f"(suppressed) {text}"
        return text

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "function": self.function,
            "block": self.block,
            "region": self.region,
            "core": self.core,
            "message": self.message,
            "op": self.op,
            "suppressed": self.suppressed,
        }


def match_suppression(finding: Finding, patterns: Sequence[str]) -> bool:
    """A suppression names a finding by ``kind``, ``kind:function``, or
    ``kind:function:block``; the longest spelling wins nothing -- any
    match suppresses."""
    keys = {
        finding.kind,
        f"{finding.kind}:{finding.function}",
        f"{finding.kind}:{finding.function}:{finding.block}",
    }
    return any(pattern in keys for pattern in patterns)


@dataclass
class VerificationReport:
    """The result of verifying one compiled program (one cell)."""

    benchmark: Optional[str] = None
    cores: int = 0
    strategy: Optional[str] = None
    findings: List[Finding] = field(default_factory=list)
    #: How much work the checks did -- a report that "passed" because it
    #: looked at nothing should be distinguishable from a clean pass.
    checked: Dict[str, int] = field(default_factory=dict)

    def add(self, finding: Finding) -> Finding:
        self.findings.append(finding)
        return finding

    def count(self, what: str, n: int = 1) -> None:
        self.checked[what] = self.checked.get(what, 0) + n

    @property
    def ok(self) -> bool:
        return not any(not f.suppressed for f in self.findings)

    def active_findings(self) -> List[Finding]:
        return [f for f in self.findings if not f.suppressed]

    def by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.active_findings():
            counts[finding.kind] = counts.get(finding.kind, 0) + 1
        return counts

    def cell(self) -> str:
        parts = []
        if self.benchmark:
            parts.append(self.benchmark)
        if self.cores:
            parts.append(f"{self.cores}-core")
        if self.strategy:
            parts.append(self.strategy)
        return " ".join(parts) or "<program>"

    def render(self) -> str:
        lines = [
            f"verify {self.cell()}: "
            + ("OK" if self.ok else f"{len(self.active_findings())} finding(s)")
        ]
        if self.checked:
            checked = ", ".join(
                f"{name}={count}" for name, count in sorted(self.checked.items())
            )
            lines.append(f"  checked: {checked}")
        for finding in self.findings:
            lines.append(f"  {finding.render()}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "benchmark": self.benchmark,
            "cores": self.cores,
            "strategy": self.strategy,
            "ok": self.ok,
            "checked": dict(self.checked),
            "findings": [f.to_dict() for f in self.findings],
        }


def merge_reports(
    reports: Sequence[VerificationReport],
) -> Dict[str, object]:
    """Fold per-cell reports into the JSON document the CI job uploads."""
    cells = [report.to_dict() for report in reports]
    active = sum(len(report.active_findings()) for report in reports)
    return {
        "schema": 1,
        "total_cells": len(cells),
        "total_findings": active,
        "ok": active == 0,
        "cells": cells,
    }
