"""Mutation harness: prove the static verifier has teeth.

Each mutator takes a known-good :class:`CompiledProgram`, breaks its
communication in one targeted way (the classic miscompiles: a dropped or
duplicated queue op, a send routed to the wrong core, a PUT knocked off
its lock-step cycle, a deleted memory-sync pair, a missing MODE_SWITCH,
a lost TX_COMMIT), and returns a :class:`MutationRecord` naming the
mutated site plus the finding kinds the verifier must now report there.
The tests assert the verifier flags every mutation with a diagnostic
naming the mutated region and core -- if a mutator ever stops being
caught, the corresponding check has silently lost coverage.

Mutators edit the compiled streams in place (callers compile a fresh
program per mutation) and return ``None`` when the program has no
applicable site, so the harness can sweep benchmarks with different
region mixes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..isa.machinecode import CompiledProgram, CoreBlock
from ..isa.operations import Opcode, Operation


@dataclass
class MutationRecord:
    """What was broken, where, and what the verifier must say about it."""

    name: str
    function: str
    block: str
    region: int
    core: int
    description: str
    #: The verifier must report at least one finding with a kind in this
    #: set, in this region.
    expect_kinds: Tuple[str, ...]
    #: Acceptable ``Finding.core`` values for that finding (a pair
    #: mutation may legitimately be blamed on either endpoint).
    expect_cores: Tuple[int, ...]

    def matches(self, finding) -> bool:
        return (
            finding.kind in self.expect_kinds
            and finding.region == self.region
            and finding.core in self.expect_cores
        )


def _iter_ops(
    compiled: CompiledProgram,
) -> Iterator[Tuple[int, str, CoreBlock, Operation]]:
    for core, stream in enumerate(compiled.streams):
        for name, function in stream.items():
            for label in function.block_order:
                block = function.blocks[label]
                for op in block.slots:
                    if op is not None:
                        yield core, name, block, op


def _remove(block: CoreBlock, op: Operation) -> None:
    index = next(i for i, slot in enumerate(block.slots) if slot is op)
    del block.slots[index]


def drop_send(compiled: CompiledProgram) -> Optional[MutationRecord]:
    """Delete one SEND: its RECV starves forever (deadlock)."""
    for core, name, block, op in _iter_ops(compiled):
        if op.opcode is Opcode.SEND:
            dst = op.attrs["target_core"]
            _remove(block, op)
            return MutationRecord(
                name="drop_send",
                function=name,
                block=block.label,
                region=block.region,
                core=core,
                description=f"deleted {op!r} (core {core} -> {dst})",
                expect_kinds=("orphan-recv",),
                expect_cores=(dst,),
            )
    return None


def drop_recv(compiled: CompiledProgram) -> Optional[MutationRecord]:
    """Delete one RECV: the SEND's message leaks, and any value it was
    to deliver is never defined on the receiving core."""
    for core, name, block, op in _iter_ops(compiled):
        if op.opcode is Opcode.RECV:
            src = op.attrs["source_core"]
            _remove(block, op)
            return MutationRecord(
                name="drop_recv",
                function=name,
                block=block.label,
                region=block.region,
                core=core,
                description=f"deleted {op!r} (core {src} -> {core})",
                expect_kinds=("orphan-send", "unrouted-value"),
                expect_cores=(src, core),
            )
    return None


def retarget_send(compiled: CompiledProgram) -> Optional[MutationRecord]:
    """Swap a SEND's queue id: the intended receiver starves while the
    accidental one leaks (or, on 2 cores, the send targets itself)."""
    n = compiled.n_cores
    if n < 2:
        return None
    for core, name, block, op in _iter_ops(compiled):
        if op.opcode is Opcode.SEND:
            old = op.attrs["target_core"]
            new = next(
                (c for c in range(n) if c != old and c != core),
                next(c for c in range(n) if c != old),
            )
            op.attrs["target_core"] = new
            return MutationRecord(
                name="retarget_send",
                function=name,
                block=block.label,
                region=block.region,
                core=core,
                description=f"retargeted {op!r} from core {old} to {new}",
                expect_kinds=("orphan-recv", "orphan-send", "self-send"),
                expect_cores=(old, new, core),
            )
    return None


def duplicate_send(compiled: CompiledProgram) -> Optional[MutationRecord]:
    """Issue a SEND twice: one extra message leaks on the channel."""
    for core, name, block, op in _iter_ops(compiled):
        if op.opcode is Opcode.SEND:
            index = next(
                i for i, slot in enumerate(block.slots) if slot is op
            )
            block.slots.insert(index + 1, op.clone())
            return MutationRecord(
                name="duplicate_send",
                function=name,
                block=block.label,
                region=block.region,
                core=core,
                description=f"duplicated {op!r}",
                expect_kinds=("orphan-send",),
                expect_cores=(core,),
            )
    return None


def misalign_put(compiled: CompiledProgram) -> Optional[MutationRecord]:
    """Push a PUT one lock-step cycle late: its GET samples an undriven
    wire (the DVLIW alignment contract)."""
    for core, name, block, op in _iter_ops(compiled):
        if op.opcode is Opcode.PUT and block.mode == "coupled":
            align = op.attrs.get("align")
            partner_cores = tuple(
                ocore
                for ocore, oname, oblock, oop in _iter_ops(compiled)
                if oname == name
                and oblock.label == block.label
                and oop.attrs.get("align") == align
            )
            index = next(
                i for i, slot in enumerate(block.slots) if slot is op
            )
            block.slots.insert(index, None)
            return MutationRecord(
                name="misalign_put",
                function=name,
                block=block.label,
                region=block.region,
                core=core,
                description=(
                    f"delayed {op!r} by one cycle (align group {align})"
                ),
                expect_kinds=("misaligned-pair",),
                expect_cores=partner_cores,
            )
    return None


def drop_sync_pair(compiled: CompiledProgram) -> Optional[MutationRecord]:
    """Delete a memory-sync SEND *and* its RECV: the channels stay
    balanced, but the cross-core memory dependence the pair ordered is
    now a data race only the happens-before analysis can see."""
    for core, name, block, op in _iter_ops(compiled):
        if op.opcode is Opcode.SEND and op.attrs.get("sync") == "mem":
            dst = op.attrs["target_core"]
            recv_site = next(
                (
                    (rcore, rblock, rop)
                    for rcore, rname, rblock, rop in _iter_ops(compiled)
                    if rname == name
                    and rop.opcode is Opcode.RECV
                    and rop.attrs.get("sync") == "mem"
                    and rcore == dst
                    and rop.attrs["source_core"] == core
                ),
                None,
            )
            if recv_site is None:
                continue
            _remove(block, op)
            _remove(recv_site[1], recv_site[2])
            return MutationRecord(
                name="drop_sync_pair",
                function=name,
                block=block.label,
                region=block.region,
                core=core,
                description=(
                    f"deleted mem-sync pair core {core} -> {dst} "
                    f"({op!r} / {recv_site[2]!r})"
                ),
                expect_kinds=("missing-sync",),
                expect_cores=(core, dst),
            )
    return None


def drop_mode_switch(compiled: CompiledProgram) -> Optional[MutationRecord]:
    """Delete one core's MODE_SWITCH: that core misses the barrier and
    diverges from the machine's execution mode."""
    for core, name, block, op in _iter_ops(compiled):
        if op.opcode is Opcode.MODE_SWITCH:
            _remove(block, op)
            return MutationRecord(
                name="drop_mode_switch",
                function=name,
                block=block.label,
                region=block.region,
                core=core,
                description=(
                    f"deleted {op!r} "
                    f"(-> {op.attrs.get('mode')}) on core {core}"
                ),
                expect_kinds=("missing-mode-switch",),
                expect_cores=(core,),
            )
    return None


def drop_tx_commit(compiled: CompiledProgram) -> Optional[MutationRecord]:
    """Delete one core's TX_COMMIT: its DOALL chunk never leaves
    speculation (and its writes never publish)."""
    for core, name, block, op in _iter_ops(compiled):
        if op.opcode is Opcode.TX_COMMIT:
            _remove(block, op)
            return MutationRecord(
                name="drop_tx_commit",
                function=name,
                block=block.label,
                region=block.region,
                core=core,
                description=f"deleted {op!r} on core {core}",
                expect_kinds=("missing-tx",),
                expect_cores=(core,),
            )
    return None


MUTATIONS: Dict[str, Callable[[CompiledProgram], Optional[MutationRecord]]] = {
    "drop_send": drop_send,
    "drop_recv": drop_recv,
    "retarget_send": retarget_send,
    "duplicate_send": duplicate_send,
    "misalign_put": misalign_put,
    "drop_sync_pair": drop_sync_pair,
    "drop_mode_switch": drop_mode_switch,
    "drop_tx_commit": drop_tx_commit,
}


def apply_mutation(
    compiled: CompiledProgram, name: str
) -> Optional[MutationRecord]:
    """Apply one named mutation in place; None if no applicable site."""
    return MUTATIONS[name](compiled)
