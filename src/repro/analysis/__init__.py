"""voltlint: static communication verification + dynamic race sanitizing.

The compiler's output is only correct if its orchestrated communication
is: matched queue pairs, cycle-aligned wires, sync-covered memory
dependences, mode barriers, and TM-bracketed DOALL chunks.  This package
proves those properties -- statically over a :class:`CompiledProgram`
(:func:`verify_compiled`), dynamically over a real execution
(:class:`RaceSanitizer`), and adversarially against itself
(:mod:`repro.analysis.mutate`).

Entry points:

* ``repro.api.verify_benchmark(...)`` -- one benchmark cell.
* ``python -m repro.harness.cli verify`` -- the whole grid, CI-style.
"""

from .findings import Finding, VerificationReport, merge_reports
from .mutate import MUTATIONS, MutationRecord, apply_mutation
from .oracle import OracleVerdict, check_benchmark, check_program
from .sanitizer import RaceSanitizer
from .verifier import ProgramVerifier, verify_compiled

__all__ = [
    "Finding",
    "MUTATIONS",
    "MutationRecord",
    "OracleVerdict",
    "ProgramVerifier",
    "RaceSanitizer",
    "VerificationReport",
    "apply_mutation",
    "check_benchmark",
    "check_program",
    "merge_reports",
    "verify_compiled",
]
