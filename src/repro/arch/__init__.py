"""Machine descriptions: configurations and the 2-D mesh topology."""

from .mesh import DIRECTIONS, Mesh, opposite

# Imported after the .mesh submodule so the `mesh` *function* wins the
# package attribute (the submodule stays importable via its full path).
from .config import (
    CacheConfig,
    MachineConfig,
    MachineSpec,
    NetworkConfig,
    apply_overrides,
    four_core,
    list_presets,
    machine_overrides,
    mesh,
    preset,
    resolve_machine,
    single_core,
    two_core,
)

__all__ = [
    "CacheConfig",
    "MachineConfig",
    "MachineSpec",
    "NetworkConfig",
    "apply_overrides",
    "four_core",
    "list_presets",
    "machine_overrides",
    "mesh",
    "preset",
    "resolve_machine",
    "single_core",
    "two_core",
    "DIRECTIONS",
    "Mesh",
    "opposite",
]
