"""Machine configuration for Voltron systems.

Defaults follow the paper's evaluation setup (Section 5.1): single-issue
cores, 4 kB 2-way L1 instruction and data caches, a shared 128 kB 4-way L2,
direct-mode network latency of 1 cycle/hop, queue-mode latency of
2 cycles + 1 cycle/hop, and coupled groups of at most 4 cores.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Mapping, Optional, Tuple


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level (sizes in words; 1 word = 4 bytes)."""

    size_words: int
    associativity: int
    line_words: int = 8
    hit_latency: int = 1

    def __post_init__(self) -> None:
        if self.size_words % (self.line_words * self.associativity):
            raise ValueError("cache size must be a multiple of way size")

    @property
    def n_sets(self) -> int:
        return self.size_words // (self.line_words * self.associativity)


@dataclass(frozen=True)
class NetworkConfig:
    """Scalar operand network parameters (paper Section 3.1)."""

    direct_cycles_per_hop: int = 1
    queue_entry_cycles: int = 1  # write into the send queue
    queue_cycles_per_hop: int = 1
    queue_exit_cycles: int = 1  # read from the receive queue
    queue_depth: int = 16

    def queue_latency(self, hops: int) -> int:
        """End-to-end queue-mode latency: 2 + hops for adjacent cores."""
        return self.queue_entry_cycles + hops * self.queue_cycles_per_hop + (
            self.queue_exit_cycles
        )


@dataclass(frozen=True)
class MachineConfig:
    """A Voltron machine: cores on a 2-D mesh plus memory system parameters."""

    n_cores: int = 4
    mesh_shape: Tuple[int, int] = (2, 2)
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_words=1024, associativity=2)
    )
    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_words=1024, associativity=2)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_words=32768, associativity=4, hit_latency=7
        )
    )
    memory_latency: int = 100
    l2_banks: int = 4
    network: NetworkConfig = field(default_factory=NetworkConfig)
    coupled_group_size: int = 4  # stall bus reaches at most 4 cores (Sec. 3.2)
    tm_commit_latency: int = 4  # low-cost TM commit check
    i_fetch_words_per_op: int = 1

    def __post_init__(self) -> None:
        rows, cols = self.mesh_shape
        if rows * cols < self.n_cores:
            raise ValueError(
                f"mesh {self.mesh_shape} too small for {self.n_cores} cores"
            )
        if self.n_cores < 1:
            raise ValueError("need at least one core")


def single_core() -> MachineConfig:
    """The paper's baseline: one single-issue core, same cache sizes."""
    return MachineConfig(n_cores=1, mesh_shape=(1, 1))


def two_core() -> MachineConfig:
    return MachineConfig(n_cores=2, mesh_shape=(1, 2))


def four_core() -> MachineConfig:
    return MachineConfig(n_cores=4, mesh_shape=(2, 2))


#: Flat override keys accepted by :func:`apply_overrides`, split by the
#: dataclass they land on.  Network knobs are addressable without the
#: ``network.`` prefix so sweep specs stay one flat mapping.
_NETWORK_FIELDS = frozenset(f.name for f in fields(NetworkConfig))
_MACHINE_FIELDS = frozenset(
    f.name for f in fields(MachineConfig) if f.name != "network"
)


def apply_overrides(
    config: MachineConfig, overrides: Optional[Mapping[str, object]]
) -> MachineConfig:
    """A copy of ``config`` with flat field overrides applied.

    Accepts top-level :class:`MachineConfig` fields (``memory_latency``,
    ``tm_commit_latency``, ...) and :class:`NetworkConfig` fields
    (``queue_depth``, ``queue_cycles_per_hop``, ...) in one mapping --
    the shape the design-space sweep driver explores.  Unknown keys
    raise so a typo'd axis never silently sweeps nothing.
    """
    if not overrides:
        return config
    unknown = sorted(
        key
        for key in overrides
        if key not in _NETWORK_FIELDS and key not in _MACHINE_FIELDS
    )
    if unknown:
        raise ValueError(
            f"unknown machine-config override(s): {', '.join(unknown)}"
        )
    network_kwargs = {
        key: value
        for key, value in overrides.items()
        if key in _NETWORK_FIELDS
    }
    machine_kwargs = {
        key: value
        for key, value in overrides.items()
        if key in _MACHINE_FIELDS
    }
    if network_kwargs:
        machine_kwargs["network"] = replace(config.network, **network_kwargs)
    return replace(config, **machine_kwargs)


def mesh(n_cores: int) -> MachineConfig:
    """A machine with ``n_cores`` arranged in the most square *exact*
    rectangle (every grid position holds a core, keeping XY routing
    complete)."""
    presets = {1: single_core, 2: two_core, 4: four_core}
    if n_cores in presets:
        return presets[n_cores]()
    rows = 1
    for candidate in range(1, int(n_cores**0.5) + 1):
        if n_cores % candidate == 0:
            rows = candidate
    return MachineConfig(n_cores=n_cores, mesh_shape=(rows, n_cores // rows))
