"""Machine configuration for Voltron systems.

Defaults follow the paper's evaluation setup (Section 5.1): single-issue
cores, 4 kB 2-way L1 instruction and data caches, a shared 128 kB 4-way L2,
direct-mode network latency of 1 cycle/hop, queue-mode latency of
2 cycles + 1 cycle/hop, and coupled groups of at most 4 cores.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Union


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level (sizes in words; 1 word = 4 bytes)."""

    size_words: int
    associativity: int
    line_words: int = 8
    hit_latency: int = 1

    def __post_init__(self) -> None:
        if self.size_words % (self.line_words * self.associativity):
            raise ValueError("cache size must be a multiple of way size")

    @property
    def n_sets(self) -> int:
        return self.size_words // (self.line_words * self.associativity)


@dataclass(frozen=True)
class NetworkConfig:
    """Scalar operand network parameters (paper Section 3.1)."""

    direct_cycles_per_hop: int = 1
    queue_entry_cycles: int = 1  # write into the send queue
    queue_cycles_per_hop: int = 1
    queue_exit_cycles: int = 1  # read from the receive queue
    queue_depth: int = 16
    #: Receive-queue organization.  ``pair`` is the paper's machine: one
    #: private FIFO per (src, dst) pair, each ``queue_depth`` deep --
    #: storage grows quadratically with the mesh.  ``vlink`` models a
    #: Virtual-Link-style multi-producer queue: every receiver owns one
    #: ``queue_depth``-entry pool shared by all senders, plus one
    #: reserved slot per producer so an arbitrary consumption order can
    #: never deadlock a producer out of the pool.
    queue_policy: str = "pair"

    def __post_init__(self) -> None:
        if self.queue_policy not in ("pair", "vlink"):
            raise ValueError(
                f"unknown queue_policy {self.queue_policy!r}; "
                "expected 'pair' or 'vlink'"
            )
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be at least 1")

    def queue_latency(self, hops: int) -> int:
        """End-to-end queue-mode latency: 2 + hops for adjacent cores."""
        return self.queue_entry_cycles + hops * self.queue_cycles_per_hop + (
            self.queue_exit_cycles
        )


@dataclass(frozen=True)
class MachineConfig:
    """A Voltron machine: cores on a 2-D mesh plus memory system parameters."""

    n_cores: int = 4
    mesh_shape: Tuple[int, int] = (2, 2)
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_words=1024, associativity=2)
    )
    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_words=1024, associativity=2)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_words=32768, associativity=4, hit_latency=7
        )
    )
    memory_latency: int = 100
    l2_banks: int = 4
    network: NetworkConfig = field(default_factory=NetworkConfig)
    coupled_group_size: int = 4  # stall bus reaches at most 4 cores (Sec. 3.2)
    tm_commit_latency: int = 4  # low-cost TM commit check
    i_fetch_words_per_op: int = 1
    #: Cache-coherence organization.  ``snoop`` is the paper's bus-snooping
    #: MOESI; ``directory`` tracks sharers/owner in an explicit directory
    #: so the protocol scales past a handful of cores.  Timing-only: the
    #: two protocols are architecturally equivalent and must produce
    #: bit-identical final memory.
    coherence: str = "snoop"
    #: Cycles per directory lookup/update on an L1 miss or upgrade
    #: (charged instead of the free broadcast snoop).
    directory_latency: int = 2
    #: Extra cycles a cross-cluster stall costs in clustered coupled
    #: mode: within a 4-core cluster the 1-bit stall bus is free, but
    #: propagating a stall through the cluster-level network above it
    #: is not.  Charged once per stall episode per blocked core.
    cluster_stall_latency: int = 2

    def __post_init__(self) -> None:
        rows, cols = self.mesh_shape
        if rows * cols < self.n_cores:
            raise ValueError(
                f"mesh {self.mesh_shape} too small for {self.n_cores} cores"
            )
        if self.n_cores < 1:
            raise ValueError("need at least one core")
        if self.coherence not in ("snoop", "directory"):
            raise ValueError(
                f"unknown coherence {self.coherence!r}; "
                "expected 'snoop' or 'directory'"
            )
        if self.directory_latency < 0:
            raise ValueError("directory_latency cannot be negative")
        if self.cluster_stall_latency < 0:
            raise ValueError("cluster_stall_latency cannot be negative")
        if self.coupled_group_size < 1:
            raise ValueError("coupled_group_size must be at least 1")


def single_core() -> MachineConfig:
    """The paper's baseline: one single-issue core, same cache sizes."""
    return MachineConfig(n_cores=1, mesh_shape=(1, 1))


def two_core() -> MachineConfig:
    return MachineConfig(n_cores=2, mesh_shape=(1, 2))


def four_core() -> MachineConfig:
    return MachineConfig(n_cores=4, mesh_shape=(2, 2))


#: Flat override keys accepted by :func:`apply_overrides`, split by the
#: dataclass they land on.  Network knobs are addressable without the
#: ``network.`` prefix so sweep specs stay one flat mapping.
_NETWORK_FIELDS = frozenset(f.name for f in fields(NetworkConfig))
_MACHINE_FIELDS = frozenset(
    f.name for f in fields(MachineConfig) if f.name != "network"
)


def apply_overrides(
    config: MachineConfig, overrides: Optional[Mapping[str, object]]
) -> MachineConfig:
    """A copy of ``config`` with flat field overrides applied.

    Accepts top-level :class:`MachineConfig` fields (``memory_latency``,
    ``tm_commit_latency``, ...) and :class:`NetworkConfig` fields
    (``queue_depth``, ``queue_cycles_per_hop``, ...) in one mapping --
    the shape the design-space sweep driver explores.  Unknown keys
    raise so a typo'd axis never silently sweeps nothing.
    """
    if not overrides:
        return config
    unknown = sorted(
        key
        for key in overrides
        if key not in _NETWORK_FIELDS and key not in _MACHINE_FIELDS
    )
    if unknown:
        raise ValueError(
            f"unknown machine-config override(s): {', '.join(unknown)}"
        )
    network_kwargs = {
        key: value
        for key, value in overrides.items()
        if key in _NETWORK_FIELDS
    }
    machine_kwargs = {
        key: value
        for key, value in overrides.items()
        if key in _MACHINE_FIELDS
    }
    if network_kwargs:
        machine_kwargs["network"] = replace(config.network, **network_kwargs)
    return replace(config, **machine_kwargs)


def mesh(n_cores: int) -> MachineConfig:
    """A machine with ``n_cores`` on the smallest near-square mesh.

    Composite counts get their most square *exact* rectangle.  Counts
    with no square-ish factorization (primes, 2*prime, ...) would
    degenerate to a 1xN chain with worst-case hop latency, so they get
    the smallest enclosing near-square rectangle instead: cores fill
    row-major and the unoccupied tail positions are holes the router
    detours around (XY falls back to YX, which always works because
    holes only ever occupy the end of the last row).
    """
    presets = {1: single_core, 2: two_core, 4: four_core}
    if n_cores in presets:
        return presets[n_cores]()
    if n_cores < 1:
        raise ValueError("need at least one core")
    root = int(n_cores**0.5)
    best: Optional[Tuple[Tuple[int, int, int], Tuple[int, int]]] = None
    for rows in range(max(1, root - 1), root + 2):
        cols = -(-n_cores // rows)  # ceil division
        # Rank by mesh diameter, then fewest holes, then the repo's
        # wider-than-tall convention (2x3, not 3x2).
        key = (rows + cols, rows * cols - n_cores, rows)
        if best is None or key < best[0]:
            best = (key, (rows, cols))
    assert best is not None
    return MachineConfig(n_cores=n_cores, mesh_shape=best[1])


#: Named machine presets: the paper's three shapes plus the scaled
#: meshes this repo adds beyond the paper's grid.  Each base name also
#: exists in ``-snoop`` / ``-directory`` coherence variants (the bare
#: name is the snoop default).
_BASE_PRESETS: Dict[str, Callable[[], MachineConfig]] = {
    "single": single_core,
    "two": two_core,
    "four": four_core,
    "mesh16": lambda: mesh(16),
    "mesh32": lambda: mesh(32),
    "mesh64": lambda: mesh(64),
}

_COHERENCE_VARIANTS = ("snoop", "directory")


def list_presets() -> List[str]:
    """Every accepted preset name, base names first."""
    names = list(_BASE_PRESETS)
    for base in _BASE_PRESETS:
        names.extend(f"{base}-{variant}" for variant in _COHERENCE_VARIANTS)
    return names


def preset(name: str) -> MachineConfig:
    """Look up a named machine preset (see :func:`list_presets`).

    ``"<base>"`` is the snoop-coherence machine; ``"<base>-directory"``
    and ``"<base>-snoop"`` pin the coherence protocol explicitly.
    """
    base, dash, variant = name.partition("-")
    factory = _BASE_PRESETS.get(base)
    if factory is None or (dash and variant not in _COHERENCE_VARIANTS):
        raise KeyError(
            f"unknown machine preset {name!r}; "
            f"expected one of: {', '.join(list_presets())}"
        )
    config = factory()
    if dash:
        config = replace(config, coherence=variant)
    return config


MachineSpec = Union[int, str, MachineConfig]


def resolve_machine(machine: MachineSpec) -> MachineConfig:
    """Normalize any machine spelling to a :class:`MachineConfig`.

    Accepts a core count (the standard mesh preset for that count), a
    preset name from :func:`list_presets`, or a full config (returned
    as-is).  This is the single entry point behind every ``machine=``
    API parameter.
    """
    if isinstance(machine, MachineConfig):
        return machine
    if isinstance(machine, bool):
        raise TypeError(f"machine spec cannot be a bool: {machine!r}")
    if isinstance(machine, int):
        return mesh(machine)
    if isinstance(machine, str):
        try:
            return preset(machine)
        except KeyError as error:
            raise ValueError(str(error)) from None
    raise TypeError(
        "machine must be an int core count, a preset name, or a "
        f"MachineConfig, not {type(machine).__name__}"
    )


def machine_overrides(
    config: MachineConfig, *, include_shape: bool = True
) -> Dict[str, object]:
    """Flat override mapping reducing ``config`` to (n_cores, diffs).

    The diffs are relative to the standard :func:`mesh` preset for the
    config's core count, in exactly the shape :func:`apply_overrides`
    accepts -- so any machine spec can ride the existing
    ``config_overrides`` plumbing (runners, workers, cache keys).  With
    ``include_shape=False`` the mesh shape is left to the per-core-count
    default, for drivers that re-derive machines at several core counts
    (figure grids) from one override set.
    """
    base = mesh(config.n_cores)
    overrides: Dict[str, object] = {}
    for spec in fields(MachineConfig):
        if spec.name in ("n_cores", "network"):
            continue
        if not include_shape and spec.name == "mesh_shape":
            continue
        value = getattr(config, spec.name)
        if value != getattr(base, spec.name):
            overrides[spec.name] = value
    for spec in fields(NetworkConfig):
        value = getattr(config.network, spec.name)
        if value != getattr(base.network, spec.name):
            overrides[spec.name] = value
    return overrides
