"""Two-dimensional mesh topology and XY routing.

The scalar operand network connects the cores in a grid (paper Fig. 4a)
with two sets of wires between each pair of adjacent cores (one per
direction).  Direct mode moves one hop per cycle along compiler-chosen
PUT/GET chains; queue mode routes messages with dimension-order (XY)
routing, the deterministic policy implied by "the router will find a path
from the sender to the receiver".
"""

from __future__ import annotations

from typing import Dict, List, Tuple

DIRECTIONS = ("east", "west", "north", "south")

#: (d_row, d_col) for each direction; north decreases the row index.
_DELTAS: Dict[str, Tuple[int, int]] = {
    "east": (0, 1),
    "west": (0, -1),
    "north": (-1, 0),
    "south": (1, 0),
}

_OPPOSITE = {"east": "west", "west": "east", "north": "south", "south": "north"}


def opposite(direction: str) -> str:
    return _OPPOSITE[direction]


class Mesh:
    """Core placement and routing on a rows x cols grid."""

    def __init__(self, rows: int, cols: int, n_cores: int) -> None:
        if rows * cols < n_cores:
            raise ValueError("mesh too small")
        self.rows = rows
        self.cols = cols
        self.n_cores = n_cores

    def position(self, core: int) -> Tuple[int, int]:
        self._check(core)
        return divmod(core, self.cols)

    def core_at(self, row: int, col: int) -> int:
        core = row * self.cols + col
        self._check(core)
        return core

    def neighbor(self, core: int, direction: str) -> int:
        """Core one hop away in ``direction``; raises if off the mesh."""
        row, col = self.position(core)
        d_row, d_col = _DELTAS[direction]
        new_row, new_col = row + d_row, col + d_col
        if not (0 <= new_row < self.rows and 0 <= new_col < self.cols):
            raise ValueError(f"no neighbor {direction} of core {core}")
        neighbor = new_row * self.cols + new_col
        if neighbor >= self.n_cores:
            raise ValueError(f"no core {direction} of core {core}")
        return neighbor

    def neighbors(self, core: int) -> Dict[str, int]:
        result = {}
        for direction in DIRECTIONS:
            try:
                result[direction] = self.neighbor(core, direction)
            except ValueError:
                continue
        return result

    def hops(self, src: int, dst: int) -> int:
        """Manhattan distance between two cores."""
        (r1, c1), (r2, c2) = self.position(src), self.position(dst)
        return abs(r1 - r2) + abs(c1 - c2)

    def route(self, src: int, dst: int) -> List[int]:
        """Dimension-order route: XY (column first), falling back to YX
        when the mesh's last row is partial and the XY path would cross a
        position with no core.  Returns the cores visited, excluding
        ``src`` and including ``dst``; empty when ``src == dst``.
        """
        self._check(src)
        self._check(dst)
        for column_first in (True, False):
            try:
                return self._dimension_route(src, dst, column_first)
            except ValueError:
                continue
        raise ValueError(f"no dimension-order route from {src} to {dst}")

    def _dimension_route(
        self, src: int, dst: int, column_first: bool
    ) -> List[int]:
        path: List[int] = []
        row, col = self.position(src)
        dst_row, dst_col = self.position(dst)

        def walk_cols() -> None:
            nonlocal col
            while col != dst_col:
                col += 1 if dst_col > col else -1
                path.append(self.core_at(row, col))

        def walk_rows() -> None:
            nonlocal row
            while row != dst_row:
                row += 1 if dst_row > row else -1
                path.append(self.core_at(row, col))

        if column_first:
            walk_cols()
            walk_rows()
        else:
            walk_rows()
            walk_cols()
        return path

    def direct_path_directions(self, src: int, dst: int) -> List[str]:
        """Directions for a PUT/GET hop chain along the XY route."""
        directions: List[str] = []
        current = src
        for nxt in self.route(src, dst):
            for direction in DIRECTIONS:
                try:
                    if self.neighbor(current, direction) == nxt:
                        directions.append(direction)
                        break
                except ValueError:
                    continue
            else:
                raise AssertionError("route step is not a mesh hop")
            current = nxt
        return directions

    def _check(self, core: int) -> None:
        if not 0 <= core < self.n_cores:
            raise ValueError(f"core {core} out of range (n={self.n_cores})")
