"""repro: reproduction of Voltron (HPCA 2007).

Voltron extends a conventional multicore with a dual-mode scalar operand
network and two execution modes (coupled DVLIW / decoupled fine-grain
threads) to exploit hybrid parallelism -- ILP, fine-grain TLP, and
statistical loop-level parallelism -- in single-thread applications.

Public API layers:

* :mod:`repro.isa` -- the HPL-PD-flavoured virtual ISA, IR builder, and
  reference interpreter.
* :mod:`repro.arch` -- machine configurations (cores, mesh, caches, network).
* :mod:`repro.sim` -- the cycle-level Voltron simulator.
* :mod:`repro.compiler` -- BUG/eBUG/DSWP/DOALL partitioners, the joint VLIW
  scheduler, communication insertion, and the parallelism selection driver.
* :mod:`repro.workloads` -- the 25-benchmark synthetic suite standing in for
  the paper's SPEC/MediaBench programs.
* :mod:`repro.harness` -- experiment drivers regenerating each paper figure.
"""

__version__ = "1.0.0"
