"""repro: reproduction of Voltron (HPCA 2007).

Voltron extends a conventional multicore with a dual-mode scalar operand
network and two execution modes (coupled DVLIW / decoupled fine-grain
threads) to exploit hybrid parallelism -- ILP, fine-grain TLP, and
statistical loop-level parallelism -- in single-thread applications.

The stable entry points live in :mod:`repro.api` and are re-exported
here: ``repro.run_cell(...)``, ``repro.run_figure(...)``,
``repro.list_benchmarks()``, ``repro.compile_benchmark(...)``, and
``repro.session(...)``.

Internal layers (importable, but their signatures are not the contract):

* :mod:`repro.isa` -- the HPL-PD-flavoured virtual ISA, IR builder, and
  reference interpreter.
* :mod:`repro.arch` -- machine configurations (cores, mesh, caches, network).
* :mod:`repro.sim` -- the cycle-level Voltron simulator.
* :mod:`repro.obs` -- observability: event probes, metrics series, and
  Perfetto trace export.
* :mod:`repro.analysis` -- voltlint: the static communication verifier,
  the dynamic race sanitizer, and the mutation harness that keeps both
  honest.
* :mod:`repro.compiler` -- BUG/eBUG/DSWP/DOALL partitioners, the joint VLIW
  scheduler, communication insertion, and the parallelism selection driver.
* :mod:`repro.workloads` -- the 25-benchmark synthetic suite standing in for
  the paper's SPEC/MediaBench programs.
* :mod:`repro.harness` -- experiment drivers regenerating each paper figure.
"""

__version__ = "1.0.0"

#: Facade names resolved lazily (PEP 562): ``import repro`` stays cheap
#: for consumers that only want a submodule, while ``repro.run_cell``
#: et al. pull in the harness on first touch.
_API_EXPORTS = (
    "FIGURES",
    "RunResult",
    "compile_benchmark",
    "generate_workload",
    "list_benchmarks",
    "list_presets",
    "run_cell",
    "run_figure",
    "session",
    "sweep",
    "verify_benchmark",
)

__all__ = list(_API_EXPORTS) + ["__version__"]


def __getattr__(name):
    if name in _API_EXPORTS:
        from . import api

        return getattr(api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_API_EXPORTS))
