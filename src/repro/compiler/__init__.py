"""The Voltron compiler: analysis, partitioning, scheduling, lowering."""

from .codegen import Codegen, LoweringError
from .dependence import (
    ConstantTracker,
    SymbolicAddress,
    analyze_block_addresses,
    may_alias,
    memory_dependences,
    resolve_address,
)
from .dfg import (
    ANTI,
    CARRIED,
    FLOW,
    MEMORY,
    OUTPUT,
    DependenceGraph,
    build_block_dfg,
    carried_memory_pairs,
    carried_register_edges,
)
from .doall import COMBINABLE, DoallPlan, plan_doall
from .driver import VoltronCompiler, compile_program
from .loops import (
    Accumulator,
    InductionVariable,
    Loop,
    dominators,
    find_loops,
    live_in_regs,
    live_out_regs,
)
from .partition import (
    BugPartitioner,
    DswpPartition,
    DswpPartitioner,
    EBugPartitioner,
    PartitionResult,
)
from .profiling import ExecutionProfile, LoopProfile, Profiler, profile_program
from .regions import Region, STRATEGIES, estimated_miss_fraction, select_regions
from .schedule import schedule_coupled, schedule_decoupled

__all__ = [
    "Codegen",
    "LoweringError",
    "ConstantTracker",
    "SymbolicAddress",
    "analyze_block_addresses",
    "may_alias",
    "memory_dependences",
    "resolve_address",
    "ANTI",
    "CARRIED",
    "FLOW",
    "MEMORY",
    "OUTPUT",
    "DependenceGraph",
    "build_block_dfg",
    "carried_memory_pairs",
    "carried_register_edges",
    "COMBINABLE",
    "DoallPlan",
    "plan_doall",
    "VoltronCompiler",
    "compile_program",
    "Accumulator",
    "InductionVariable",
    "Loop",
    "dominators",
    "find_loops",
    "live_in_regs",
    "live_out_regs",
    "BugPartitioner",
    "DswpPartition",
    "DswpPartitioner",
    "EBugPartitioner",
    "PartitionResult",
    "ExecutionProfile",
    "LoopProfile",
    "Profiler",
    "profile_program",
    "Region",
    "STRATEGIES",
    "estimated_miss_fraction",
    "select_regions",
    "schedule_coupled",
    "schedule_decoupled",
]
