"""Loop analysis: natural loops, induction variables, accumulators.

The DOALL and DSWP transforms target the canonical counted loop the IR
builder emits (single-block body, ``i = add i, step`` latch update, a
compare feeding the back branch), mirroring the affine loops the paper's
DOALL detection handles.  Detection works from the IR itself -- the
builder's annotations are used only by tests to validate it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..isa.operations import (
    COMPARISONS,
    Imm,
    Opcode,
    Operand,
    Operation,
    Reg,
)
from ..isa.program import BasicBlock, Function

_ACCUMULATING = {
    Opcode.ADD,
    Opcode.SUB,
    Opcode.MUL,
    Opcode.FADD,
    Opcode.FSUB,
    Opcode.FMUL,
    Opcode.AND,
    Opcode.OR,
    Opcode.XOR,
}


@dataclass
class InductionVariable:
    reg: Reg
    step: int
    update: Operation  # the 'i = add i, step' op
    init: Optional[Operand] = None  # initial value (from the preheader)
    bound: Optional[Operand] = None  # loop bound (from the latch compare)
    compare: Optional[Operation] = None

    def trip_count(self) -> Optional[int]:
        """Static trip count when init/bound are constants."""
        if (
            isinstance(self.init, Imm)
            and isinstance(self.bound, Imm)
            and self.step != 0
        ):
            span = self.bound.value - self.init.value
            count = -(-span // self.step) if self.step > 0 else -(
                -(-span) // (-self.step)
            )
            return max(int(count), 0)
        return None


@dataclass
class Accumulator:
    reg: Reg
    op: Operation  # the reduction op, e.g. 'a = add a, x'

    @property
    def opcode(self) -> Opcode:
        return self.op.opcode

    def identity(self):
        """Identity element for expanding this reduction across cores."""
        if self.opcode in (Opcode.MUL, Opcode.FMUL):
            return 1
        return 0  # add/sub/or/xor start from zero; AND is rejected upstream


@dataclass
class Loop:
    header: str
    blocks: Set[str]
    back_edges: List[Tuple[str, str]]
    preheader: Optional[str] = None
    exit: Optional[str] = None
    induction: Optional[InductionVariable] = None
    accumulators: List[Accumulator] = field(default_factory=list)

    @property
    def is_single_block(self) -> bool:
        return len(self.blocks) == 1


def dominators(function: Function) -> Dict[str, Set[str]]:
    """Classic iterative dominator computation."""
    labels = function.block_order
    preds = function.predecessors()
    entry = function.entry
    dom: Dict[str, Set[str]] = {label: set(labels) for label in labels}
    dom[entry] = {entry}
    changed = True
    while changed:
        changed = False
        for label in labels:
            if label == entry:
                continue
            pred_doms = [dom[p] for p in preds[label]]
            new = set.intersection(*pred_doms) if pred_doms else set()
            new.add(label)
            if new != dom[label]:
                dom[label] = new
                changed = True
    return dom


def find_loops(function: Function) -> List[Loop]:
    """Natural loops, outermost first (by header program order)."""
    dom = dominators(function)
    preds = function.predecessors()
    loops: Dict[str, Loop] = {}

    for block in function.ordered_blocks():
        for succ in block.successors():
            if succ in dom[block.label]:  # back edge: succ dominates block
                loop = loops.setdefault(
                    succ, Loop(header=succ, blocks={succ}, back_edges=[])
                )
                loop.back_edges.append((block.label, succ))
                # Collect the loop body by walking predecessors from the latch.
                stack = [block.label]
                while stack:
                    current = stack.pop()
                    if current in loop.blocks:
                        continue
                    loop.blocks.add(current)
                    stack.extend(preds[current])

    result = []
    for header in function.block_order:
        if header not in loops:
            continue
        loop = loops[header]
        _find_preheader(function, loop, preds)
        _find_exit(function, loop)
        if loop.is_single_block:
            _analyze_single_block(function, loop)
        result.append(loop)
    return result


def _find_preheader(
    function: Function, loop: Loop, preds: Dict[str, Set[str]]
) -> None:
    outside = [p for p in preds[loop.header] if p not in loop.blocks]
    if len(outside) == 1:
        loop.preheader = outside[0]


def _find_exit(function: Function, loop: Loop) -> None:
    exits = set()
    for label in loop.blocks:
        for succ in function.block(label).successors():
            if succ not in loop.blocks:
                exits.add(succ)
    if len(exits) == 1:
        loop.exit = exits.pop()


def _definitions(ops: Sequence[Operation]) -> Dict[Reg, List[Operation]]:
    defs: Dict[Reg, List[Operation]] = {}
    for op in ops:
        for reg in op.dests:
            defs.setdefault(reg, []).append(op)
    return defs


def _analyze_single_block(function: Function, loop: Loop) -> None:
    block = function.block(loop.header)
    ops = block.ops
    defs = _definitions(ops)

    # Induction variable: single def of the form 'i = add i, #step'.
    induction = None
    for reg, reg_defs in defs.items():
        if len(reg_defs) != 1:
            continue
        op = reg_defs[0]
        if (
            op.opcode is Opcode.ADD
            and op.dest == reg
            and len(op.srcs) == 2
            and op.srcs[0] == reg
            and isinstance(op.srcs[1], Imm)
            and isinstance(op.srcs[1].value, int)
        ):
            candidate = InductionVariable(reg=reg, step=op.srcs[1].value, update=op)
            _attach_bound(block, candidate)
            if candidate.compare is not None:
                induction = candidate
                break
    loop.induction = induction
    if induction is not None and loop.preheader is not None:
        _attach_init(function.block(loop.preheader), induction)

    # Accumulators: 'a = op a, x' where a has one def and no other use
    # inside the loop (besides the reduction itself).
    for reg, reg_defs in defs.items():
        if len(reg_defs) != 1:
            continue
        op = reg_defs[0]
        if (
            op.opcode in _ACCUMULATING
            and op.dest == reg
            and len(op.srcs) == 2
            and op.srcs[0] == reg
            and op.srcs[1] != reg
        ):
            other_uses = [
                other
                for other in ops
                if other is not op and reg in other.src_regs()
            ]
            if not other_uses and (induction is None or reg != induction.reg):
                loop.accumulators.append(Accumulator(reg=reg, op=op))


def _attach_bound(block: BasicBlock, induction: InductionVariable) -> None:
    """Find the compare feeding the back branch and extract the bound."""
    terminator = block.terminator()
    if terminator is None or terminator.opcode is not Opcode.BR:
        return
    if len(terminator.srcs) < 2:
        return
    pred_reg = terminator.srcs[1]
    for op in reversed(block.ops):
        if op.dest == pred_reg and op.opcode in COMPARISONS:
            if op.srcs[0] == induction.reg:
                induction.bound = op.srcs[1]
                induction.compare = op
            return


def _attach_init(preheader: BasicBlock, induction: InductionVariable) -> None:
    for op in reversed(preheader.ops):
        if op.dest == induction.reg:
            # Only a plain MOV gives a trustworthy initial operand; any
            # other defining op leaves the init symbolic (runtime value).
            if op.opcode is Opcode.MOV:
                induction.init = op.srcs[0]
            return


def split_loop_latch(
    block: BasicBlock, loop: Optional[Loop]
) -> Tuple[List[Operation], List[Operation], bool]:
    """Split a region block into (body ops, latch ops, replicate_latch).

    For a canonical counted loop the latch is the induction update, the
    latch compare, and the PBR/BR -- all of which every participating core
    replicates so the branch condition is computed locally (paper Fig. 5c).
    Otherwise only the PBR/BR are replicated and the predicate must be
    communicated (Fig. 5b).
    """
    latch: List[Operation] = []
    replicate = False
    induction = loop.induction if loop is not None else None
    if induction is not None and induction.compare is not None:
        latch = [induction.update, induction.compare]
        replicate = True
    control = [
        op
        for op in block.ops
        if op.opcode in (Opcode.PBR, Opcode.BR, Opcode.RET, Opcode.HALT)
        and op not in latch
    ]
    latch.extend(control)
    latch_ids = {id(op) for op in latch}
    body = [op for op in block.ops if id(op) not in latch_ids]
    return body, latch, replicate


def live_out_regs(function: Function, loop: Loop) -> Set[Reg]:
    """Registers defined inside the loop and read after it (approximate:
    any read anywhere outside the loop's blocks)."""
    defined: Set[Reg] = set()
    for label in loop.blocks:
        for op in function.block(label).ops:
            defined.update(op.dests)
    used_outside: Set[Reg] = set()
    for block in function.ordered_blocks():
        if block.label in loop.blocks:
            continue
        for op in block.ops:
            used_outside.update(op.src_regs())
    return defined & used_outside


def live_in_regs(function: Function, loop: Loop) -> Set[Reg]:
    """Registers read inside the loop before any def inside it (approximate:
    read by the loop and defined outside it)."""
    read: Set[Reg] = set()
    defined: Set[Reg] = set()
    for label in loop.blocks:
        block = function.block(label)
        for op in block.ops:
            for reg in op.src_regs():
                if reg not in defined:
                    read.add(reg)
            defined.update(op.dests)
    return read
