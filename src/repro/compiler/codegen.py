"""Lowering: from the IR to per-core machine code.

The pipeline per function:

1. **Plan** every block: partition ops across cores (BUG for coupled
   fabric, eBUG for strand regions, DSWP stages for pipelined loops, chunk
   cloning for DOALL), replicate the control ops coupled mode needs on
   every core, and build the derived region blocks (mode-switch brackets,
   DOALL dispatch/join, prologue/epilogue).
2. **Aggregate** register use sites per core (function-wide and per
   region).
3. **Insert communication**: def-site PUT/GET chains and BCASTs in coupled
   blocks, SEND/RECV pairs plus dummy memory synchronization in decoupled
   blocks, region live-out forwarding before each exit barrier.
4. **Schedule**: jointly (lock-step, NOP-padded, aligned branches) for
   coupled blocks; per-core, order-preserving for decoupled blocks.
5. **Assemble** :class:`CompiledProgram` streams.

The input :class:`~repro.isa.program.Program` is never mutated: every op
entering machine code is a fresh-uid clone carrying ``attrs['origin']``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..arch.config import MachineConfig
from ..arch.mesh import Mesh
from ..isa.machinecode import CompiledProgram, CoreBlock, CoreFunction
from ..isa.operations import (
    Imm,
    Opcode,
    Operand,
    Operation,
    Reg,
    RegFile,
    fresh_uid,
    make_op,
)
from ..isa.program import BasicBlock, Function, Program
from .comm import (
    coupled_transfer,
    decoupled_transfer,
    memory_sync_pair,
    recv_value,
    send_value,
)
from .dependence import memory_dependences
from .dfg import build_block_dfg, carried_register_edges
from .doall import COMBINABLE, DoallPlan
from .loops import split_loop_latch
from .partition.bug import BugPartitioner
from .partition.ebug import EBugPartitioner
from .profiling import ExecutionProfile
from .regions import Region, select_regions
from .schedule import fresh_align_id, schedule_coupled, schedule_decoupled

#: Control ops replicated on every core in coupled mode.
REPLICATED_CONTROL = frozenset(
    {Opcode.PBR, Opcode.BR, Opcode.CALL, Opcode.RET, Opcode.HALT}
)


class LoweringError(Exception):
    pass


def _clone(op: Operation, core: int, **extra) -> Operation:
    mc = op.clone(core=core)
    mc.attrs["origin"] = op.uid
    mc.uid = fresh_uid()
    for key, value in extra.items():
        mc.attrs[key] = value
    return mc


def _mk(opcode: Opcode, core: int, dests=None, srcs=None, **attrs) -> Operation:
    op = make_op(opcode, dests, srcs, **attrs)
    op.core = core
    return op


@dataclass
class PlannedBlock:
    """A machine-level block before communication insertion/scheduling."""

    label: str
    mode: str  # 'coupled' | 'decoupled'
    region: int  # 0 = default coupled fabric
    ops: List[Operation] = field(default_factory=list)
    taken: Optional[str] = None
    fall: Optional[str] = None
    cores_present: Optional[Set[int]] = None  # None = every core
    per_core_taken: Dict[int, Optional[str]] = field(default_factory=dict)
    per_core_fall: Dict[int, Optional[str]] = field(default_factory=dict)
    no_transfers: bool = False  # DOALL-internal blocks are pre-wired
    #: (reg, source core) candidates forwarded before this block's barrier.
    liveouts: List[Tuple[Reg, int]] = field(default_factory=list)

    def present_on(self, core: int) -> bool:
        return self.cores_present is None or core in self.cores_present

    def taken_for(self, core: int) -> Optional[str]:
        return self.per_core_taken.get(core, self.taken)

    def fall_for(self, core: int) -> Optional[str]:
        return self.per_core_fall.get(core, self.fall)


class Codegen:
    """Compiles one program for one machine configuration and strategy."""

    def __init__(
        self,
        program: Program,
        config: MachineConfig,
        profile: ExecutionProfile,
        strategy: str = "hybrid",
    ) -> None:
        program.validate()
        # Past one stall-bus group (> coupled_group_size cores) the
        # machine runs clustered coupled mode: the joint DVLIW schedule
        # and multi-hop PUT/GET chains generalize unchanged, and the
        # simulator charges the cluster-level stall network's
        # propagation penalty, so the compiler needs no special casing.
        self.program = program
        self.config = config
        self.n_cores = config.n_cores
        rows, cols = config.mesh_shape
        self.mesh = Mesh(rows, cols, config.n_cores)
        self.profile = profile
        self.strategy = strategy
        #: 'llp' runs non-region code serially on core 0 so the LLP-only
        #: experiment isolates loop-level parallelism (and 'baseline' is by
        #: definition one core).
        self.serial_fabric = strategy == "llp"
        self.region_table: Dict[Tuple[str, str], Dict[str, object]] = {}

    # -- public API ---------------------------------------------------------------

    def compile(self) -> CompiledProgram:
        compiled = CompiledProgram(self.program, self.n_cores)
        # One id allocator per compilation: region ids (and the R<id>_*
        # labels built from them) depend only on the program, never on
        # earlier compilations in the same process.
        self._region_ids = itertools.count(1)
        for function in self.program.functions.values():
            self._lower_function(function, compiled)
        compiled.attrs["strategy"] = self.strategy
        compiled.attrs["regions"] = self.region_table
        compiled.validate()
        return compiled

    # -- per-function lowering -------------------------------------------------------

    def _lower_function(self, function: Function, compiled: CompiledProgram) -> None:
        self._current_function = function
        regions = select_regions(
            self.program, function, self.profile, self.n_cores, self.strategy,
            ids=self._region_ids,
        )
        region_by_block = {region.block: region for region in regions}

        planned: Dict[str, PlannedBlock] = {}
        order: List[str] = []
        entry = function.entry
        #: Extra (reg, core) use sites registered by region planners.
        self._extra_uses: List[Tuple[Reg, int]] = []
        #: Per-region local register use maps (for in-region transfers).
        self._region_uses: Dict[int, Dict[Reg, Set[int]]] = {}

        def add(block: PlannedBlock) -> PlannedBlock:
            if block.label in planned:
                raise LoweringError(f"duplicate planned block {block.label}")
            planned[block.label] = block
            order.append(block.label)
            return block

        for block in function.ordered_blocks():
            region = region_by_block.get(block.label)
            if region is None:
                add(self._plan_coupled_block(function, block))
                continue
            derived = self._plan_region(function, block, region)
            for planned_block in derived:
                add(planned_block)
            if block.label == entry:
                entry = f"R{region.rid}_enter"
            for fn_label in derived:
                self.region_table[(function.name, fn_label.label)] = {
                    "rid": region.rid,
                    "strategy": region.strategy,
                    "origin": region.block,
                }

        self._rewire_region_entries(planned, regions)
        use_all, use_by_region = self._collect_uses(planned)
        for block in planned.values():
            self._insert_transfers(block, use_all, use_by_region)
        self._assemble(function, planned, order, entry, compiled)

    # -- coupled fabric ---------------------------------------------------------------

    def _fabric_partition(
        self, function: Function, ops: Sequence[Operation]
    ) -> Dict[int, int]:
        """Core assignment for a coupled block's computational ops."""
        if self.serial_fabric or self.n_cores == 1 or not ops:
            return {op.uid: 0 for op in ops}
        # Carried edges (use-before-def registers) give BUG cross-iteration
        # and cross-block affinity hints.
        carried = carried_register_edges(ops)
        graph = build_block_dfg(self.program, ops, carried_regs=carried)
        partitioner = BugPartitioner(self.mesh, self.n_cores)
        return partitioner.partition(graph).assignment

    def _plan_coupled_block(
        self, function: Function, block: BasicBlock, label: Optional[str] = None
    ) -> PlannedBlock:
        computational = [
            op for op in block.ops if op.opcode not in REPLICATED_CONTROL
        ]
        assignment = self._fabric_partition(function, computational)
        flat: List[Operation] = []
        for op in block.ops:
            if op.opcode in REPLICATED_CONTROL:
                flat.extend(self._replicate(op))
            else:
                flat.append(_clone(op, assignment[op.uid]))
        planned = PlannedBlock(
            label=label or block.label,
            mode="coupled",
            region=0,
            ops=flat,
            taken=block.taken,
            fall=block.fall,
        )
        return planned

    def _replicate(self, op: Operation, align: bool = True) -> List[Operation]:
        """One clone per core; BR/CALL/RET/HALT clones co-issue."""
        align_id = fresh_align_id() if align and op.opcode is not Opcode.PBR else None
        clones = []
        for core in range(self.n_cores):
            clone = _clone(op, core, replicated=True)
            if align_id is not None:
                clone.attrs["align"] = align_id
            clones.append(clone)
        return clones

    def _mode_switch_block(
        self,
        label: str,
        target_mode: str,
        region: int,
        cores: Optional[Set[int]] = None,
    ) -> PlannedBlock:
        align_id = fresh_align_id() if target_mode == "decoupled" else None
        ops = []
        for core in range(self.n_cores):
            if cores is not None and core not in cores:
                continue
            op = _mk(Opcode.MODE_SWITCH, core, mode=target_mode)
            op.attrs["replicated"] = True
            if align_id is not None:
                op.attrs["align"] = align_id
            ops.append(op)
        # The block *entering* decoupled mode executes in coupled mode;
        # the barrier back runs decoupled.
        mode = "coupled" if target_mode == "decoupled" else "decoupled"
        return PlannedBlock(
            label=label, mode=mode, region=region, ops=ops, cores_present=cores
        )

    # -- region planning ------------------------------------------------------------

    def _plan_region(
        self, function: Function, block: BasicBlock, region: Region
    ) -> List[PlannedBlock]:
        if region.strategy == "doall":
            return self._plan_doall(function, block, region)
        if region.strategy == "dswp":
            return self._plan_pipelined(function, block, region)
        if region.strategy in ("strand", "strand_block"):
            return self._plan_strands(function, block, region)
        raise LoweringError(f"unknown region strategy {region.strategy!r}")

    # ...... strands (eBUG) and DSWP share most machinery ......................

    def _latch_split(
        self, function: Function, block: BasicBlock, region: Region
    ) -> Tuple[List[Operation], List[Operation], bool]:
        return split_loop_latch(block, region.loop)

    def _record_region_use(self, rid: int, op: Operation) -> None:
        table = self._region_uses.setdefault(rid, {})
        for reg in op.src_regs():
            table.setdefault(reg, set()).add(op.core)

    def _plan_strands(
        self, function: Function, block: BasicBlock, region: Region
    ) -> List[PlannedBlock]:
        rid = region.rid
        is_loop = region.loop is not None
        body, latch, replicate_latch = self._latch_split(function, block, region)

        induction_regs: Set[Reg] = set()
        if replicate_latch and region.loop and region.loop.induction:
            induction_regs = {region.loop.induction.reg}
        carried = carried_register_edges(block.ops, exclude=induction_regs)
        graph = build_block_dfg(self.program, block.ops, carried_regs=carried)
        self._add_carried_memory(graph, block.ops)

        partitioner = EBugPartitioner(self.mesh, self.profile, self.n_cores)
        assignment = partitioner.partition(graph).assignment

        # A CALL inside a decoupled region is a barrier every live core must
        # join (paper: "synchronization before function calls and returns"),
        # so call-bearing regions involve every core and replicate the call.
        has_call = any(op.opcode is Opcode.CALL for op in body)
        if has_call:
            participants = list(range(self.n_cores))
        else:
            participants = sorted({assignment[op.uid] for op in body}) or [0]
        participant_set = set(participants)

        flat: List[Operation] = []
        clone_of: Dict[int, Operation] = {}
        for op in body:
            if op.opcode is Opcode.CALL:
                for core in participants:
                    flat.append(_clone(op, core, replicated=True))
                continue
            clone = _clone(op, assignment[op.uid])
            clone_of[op.uid] = clone
            flat.append(clone)
        # Latch: replicate per participant (counted loops) or communicate
        # the predicate (the def-site rule handles the SEND/RECV).
        for op in latch:
            if op.opcode in (Opcode.PBR, Opcode.BR) or replicate_latch:
                for core in participants:
                    clone = _clone(op, core, replicated=True)
                    flat.append(clone)
            else:
                clone = _clone(op, assignment.get(op.uid, participants[0]))
                clone_of[op.uid] = clone
                flat.append(clone)

        self._check_no_cross_core_carried(carried, assignment)
        self._insert_memory_sync(function, flat)

        for op in flat:
            self._record_region_use(rid, op)

        body_block = PlannedBlock(
            label=block.label,
            mode="decoupled",
            region=rid,
            ops=flat,
            taken=block.taken if is_loop else None,
            fall=f"R{rid}_exit",
            cores_present=participant_set,
        )
        if not is_loop and block.taken is not None:
            raise LoweringError(
                "strand blocks with conditional exits are not supported; "
                f"{function.name}:{block.label} has a taken edge"
            )

        enter = self._mode_switch_block(f"R{rid}_enter", "decoupled", rid)
        for core in range(self.n_cores):
            enter.per_core_fall[core] = (
                block.label if core in participant_set else f"R{rid}_exit"
            )
        exit_block = self._mode_switch_block(f"R{rid}_exit", "coupled", rid)
        exit_block.fall = self._region_successor(function, block, region)
        exit_block.liveouts = self._region_liveout_candidates(flat)
        return [enter, body_block, exit_block]

    def _plan_pipelined(
        self, function: Function, block: BasicBlock, region: Region
    ) -> List[PlannedBlock]:
        rid = region.rid
        dswp = region.dswp
        assert dswp is not None and region.loop is not None
        body, latch, replicate_latch = self._latch_split(function, block, region)

        assignment: Dict[int, int] = {}
        for op in body:
            if op.uid not in dswp.stage_of:
                raise LoweringError(
                    f"DSWP partition is missing op {op!r} in {block.label}"
                )
            assignment[op.uid] = dswp.stage_of[op.uid]
        participants = sorted(set(assignment.values())) or [0]
        participant_set = set(participants)

        induction_regs: Set[Reg] = set()
        if replicate_latch and region.loop.induction is not None:
            induction_regs = {region.loop.induction.reg}
        carried = carried_register_edges(block.ops, exclude=induction_regs)

        flat: List[Operation] = []
        clone_of: Dict[int, Operation] = {}

        # Loop-carried values crossing stages: receive at the top of each
        # iteration (matching the previous iteration's post-definition
        # send), primed by a prologue send and drained in the epilogue.
        carried_channels: List[Tuple[Reg, int, int]] = []  # (reg, src, dst)
        for reg, (definition, users) in carried.items():
            src = assignment.get(definition.uid)
            if src is None:
                continue  # the definition is latch-replicated
            consumer_cores = {
                assignment[user.uid]
                for user in users
                if user.uid in assignment
            } - {src}
            for dst in sorted(consumer_cores):
                carried_channels.append((reg, src, dst))
                flat.append(
                    recv_value(dst, src, reg, tag=f"carried_{reg}")
                )

        for op in body:
            clone = _clone(op, assignment[op.uid])
            clone_of[op.uid] = clone
            flat.append(clone)
            for reg, src, dst in carried_channels:
                if op is carried[reg][0]:
                    flat.append(send_value(src, dst, reg, tag=f"carried_{reg}"))

        for op in latch:
            if op.opcode in (Opcode.PBR, Opcode.BR) or replicate_latch:
                for core in participants:
                    flat.append(_clone(op, core, replicated=True))
            else:
                flat.append(_clone(op, assignment.get(op.uid, participants[0])))

        self._insert_memory_sync(function, flat)
        for op in flat:
            self._record_region_use(rid, op)

        blocks: List[PlannedBlock] = []
        enter = self._mode_switch_block(f"R{rid}_enter", "decoupled", rid)
        blocks.append(enter)

        first_label = block.label
        if carried_channels:
            prologue = PlannedBlock(
                label=f"R{rid}_pro",
                mode="decoupled",
                region=rid,
                ops=[
                    send_value(src, dst, reg, tag=f"carried_{reg}")
                    for reg, src, dst in carried_channels
                ],
                fall=block.label,
                cores_present=participant_set,
            )
            for reg, src, dst in carried_channels:
                self._extra_uses.append((reg, src))
            blocks.append(prologue)
            first_label = prologue.label

        for core in range(self.n_cores):
            enter.per_core_fall[core] = (
                first_label if core in participant_set else f"R{rid}_exit"
            )

        body_block = PlannedBlock(
            label=block.label,
            mode="decoupled",
            region=rid,
            ops=flat,
            taken=block.taken,
            fall=f"R{rid}_exit",
            cores_present=participant_set,
        )
        blocks.append(body_block)

        exit_block = self._mode_switch_block(f"R{rid}_exit", "coupled", rid)
        exit_block.fall = self._region_successor(function, block, region)
        exit_block.liveouts = self._region_liveout_candidates(flat)
        # Drain the final carried sends so the queues stay balanced (and
        # deliver the final value as a live-out for free).
        drains = [
            recv_value(dst, src, reg, tag=f"carried_{reg}")
            for reg, src, dst in carried_channels
        ]
        exit_block.ops = drains + exit_block.ops
        blocks.append(exit_block)
        return blocks

    # ...... DOALL ............................................................

    def _plan_doall(
        self, function: Function, block: BasicBlock, region: Region
    ) -> List[PlannedBlock]:
        rid = region.rid
        plan = region.doall
        assert plan is not None
        n = self.n_cores
        induction = plan.induction
        ind = induction.reg
        regs = function.regs

        hi = regs.gpr()
        saved_start = regs.gpr()
        acc_priv: Dict[Reg, Reg] = {
            acc.reg: regs.gpr() if acc.reg.file is RegFile.GPR else regs.fpr()
            for acc in plan.accumulators
        }

        enter = self._mode_switch_block(f"R{rid}_enter", "decoupled", rid)
        for core in range(n):
            enter.per_core_fall[core] = f"R{rid}_pro"

        # Dispatch: core 0 spawns the chunk threads; others listen.
        pro_ops: List[Operation] = [
            _mk(Opcode.MOV, 0, [saved_start], [ind]),
        ]
        for core in range(1, n):
            pro_ops.append(
                _mk(
                    Opcode.SPAWN,
                    0,
                    target_core=core,
                    target_block=f"R{rid}_chunk",
                )
            )
        for core in range(1, n):
            pro_ops.append(_mk(Opcode.LISTEN, core))
        pro = PlannedBlock(
            label=f"R{rid}_pro",
            mode="decoupled",
            region=rid,
            ops=pro_ops,
            no_transfers=True,
        )
        pro.per_core_fall[0] = f"R{rid}_chunk"
        for core in range(1, n):
            pro.per_core_fall[core] = f"R{rid}_exit"

        # Chunk setup per core: compute [lo, hi), init private accumulators,
        # open the transaction, pre-test emptiness.
        chunk_ops: List[Operation] = []
        for core in range(n):
            chunk_ops.extend(
                self._chunk_bounds_ops(plan, core, n, ind, hi)
            )
            for acc in plan.accumulators:
                priv = acc_priv[acc.reg]
                identity = acc.identity() if acc.opcode is not Opcode.AND else -1
                if priv.file is RegFile.FPR:
                    chunk_ops.append(
                        _mk(Opcode.FMOV, core, [priv], [Imm(float(identity))])
                    )
                else:
                    chunk_ops.append(
                        _mk(Opcode.MOV, core, [priv], [Imm(identity)])
                    )
            chunk_ops.append(
                _mk(
                    Opcode.TX_BEGIN,
                    core,
                    region=rid,
                    order=core,
                    chunks=n,
                    restart=f"R{rid}_chunk",
                )
            )
            pred = regs.pr()
            chunk_ops.append(_mk(Opcode.CMP_LT, core, [pred], [ind, hi]))
            btr = regs.btr()
            chunk_ops.append(_mk(Opcode.PBR, core, [btr], [], target=block.label))
            chunk_ops.append(_mk(Opcode.BR, core, [], [btr, pred]))
        chunk = PlannedBlock(
            label=f"R{rid}_chunk",
            mode="decoupled",
            region=rid,
            ops=chunk_ops,
            taken=block.label,
            fall=f"R{rid}_commit",
            no_transfers=True,
        )

        # Body: every core runs its own clone over its own bounds.
        body_ops: List[Operation] = []
        skip = {induction.update.uid, induction.compare.uid}
        terminator_uids = {
            op.uid
            for op in block.ops
            if op.opcode in (Opcode.PBR, Opcode.BR)
        }
        for core in range(n):
            for op in block.ops:
                if op.uid in skip or op.uid in terminator_uids:
                    continue
                clone = _clone(op, core)
                self._rewrite_accumulator(clone, acc_priv)
                body_ops.append(clone)
            body_ops.append(_clone(induction.update, core))
            pred = regs.pr()
            body_ops.append(_mk(Opcode.CMP_LT, core, [pred], [ind, hi]))
            btr = regs.btr()
            body_ops.append(_mk(Opcode.PBR, core, [btr], [], target=block.label))
            body_ops.append(_mk(Opcode.BR, core, [], [btr, pred]))
        body = PlannedBlock(
            label=block.label,
            mode="decoupled",
            region=rid,
            ops=body_ops,
            taken=block.label,
            fall=f"R{rid}_commit",
            no_transfers=True,
        )

        # Commit: finish the transaction; workers report partials and sleep.
        commit_ops: List[Operation] = []
        partial_regs: Dict[Tuple[int, Reg], Reg] = {}
        for core in range(n):
            commit_ops.append(_mk(Opcode.TX_COMMIT, core))
        for core in range(1, n):
            if plan.accumulators:
                for acc in plan.accumulators:
                    commit_ops.append(
                        send_value(core, 0, acc_priv[acc.reg])
                    )
            else:
                commit_ops.append(send_value(core, 0, Imm(1)))  # done token
            commit_ops.append(_mk(Opcode.SLEEP, core))
        commit = PlannedBlock(
            label=f"R{rid}_commit",
            mode="decoupled",
            region=rid,
            ops=commit_ops,
            no_transfers=True,
        )
        commit.per_core_fall[0] = f"R{rid}_join"
        for core in range(1, n):
            commit.per_core_fall[core] = None  # SLEEP redirects to LISTEN

        # Join (core 0): gather partials, fold reductions, finalize the
        # induction value, release the workers.
        join_ops: List[Operation] = []
        for acc in plan.accumulators:
            combine = COMBINABLE[acc.opcode]
            join_ops.append(
                make_combine(0, acc.reg, acc_priv[acc.reg], combine)
            )
        for core in range(1, n):
            if plan.accumulators:
                for acc in plan.accumulators:
                    tmp = (
                        regs.fpr()
                        if acc.reg.file is RegFile.FPR
                        else regs.gpr()
                    )
                    join_ops.append(recv_value(0, core, tmp))
                    join_ops.append(
                        make_combine(0, acc.reg, tmp, COMBINABLE[acc.opcode])
                    )
            else:
                tmp = regs.gpr()
                join_ops.append(recv_value(0, core, tmp))
        join_ops.extend(
            self._final_induction_ops(plan, ind, saved_start, regs)
        )
        for core in range(1, n):
            join_ops.append(_mk(Opcode.RELEASE, 0, target_core=core))
        join = PlannedBlock(
            label=f"R{rid}_join",
            mode="decoupled",
            region=rid,
            ops=join_ops,
            fall=f"R{rid}_exit",
            cores_present={0},
            no_transfers=True,
        )

        exit_block = self._mode_switch_block(f"R{rid}_exit", "coupled", rid)
        exit_block.fall = self._region_successor(function, block, region)
        exit_block.liveouts = [(acc.reg, 0) for acc in plan.accumulators] + [
            (ind, 0)
        ]

        # Register the body's live-in reads so upstream defs broadcast to
        # every chunk core (the induction and bound reach all cores too).
        for op in body_ops + chunk_ops:
            for reg in op.src_regs():
                self._extra_uses.append((reg, op.core))

        return [enter, pro, chunk, body, commit, join, exit_block]

    def _chunk_bounds_ops(
        self, plan: DoallPlan, core: int, n: int, ind: Reg, hi: Reg
    ) -> List[Operation]:
        """Set ``ind = lo_core`` and ``hi = hi_core`` on ``core``."""
        step = plan.step
        if plan.static_bounds is not None:
            start, bound = plan.static_bounds
            total = max(-(-(bound - start) // step), 0)
            per = -(-total // n)
            lo = start + core * per * step
            hi_val = min(lo + per * step, bound)
            return [
                _mk(Opcode.MOV, core, [ind], [Imm(lo)]),
                _mk(Opcode.MOV, core, [hi], [Imm(hi_val)]),
            ]
        bound = plan.induction.bound
        assert bound is not None
        ops: List[Operation] = []
        t_span = self._tmp(core)
        ops.append(_mk(Opcode.SUB, core, [t_span], [bound, ind]))
        t1 = self._tmp(core)
        ops.append(_mk(Opcode.ADD, core, [t1], [t_span, Imm(step - 1)]))
        t_iters = self._tmp(core)
        ops.append(_mk(Opcode.DIV, core, [t_iters], [t1, Imm(step)]))
        t2 = self._tmp(core)
        ops.append(_mk(Opcode.ADD, core, [t2], [t_iters, Imm(n - 1)]))
        t_per = self._tmp(core)
        ops.append(_mk(Opcode.DIV, core, [t_per], [t2, Imm(n)]))
        t_sz = self._tmp(core)
        ops.append(_mk(Opcode.MUL, core, [t_sz], [t_per, Imm(step)]))
        t_off = self._tmp(core)
        ops.append(_mk(Opcode.MUL, core, [t_off], [t_sz, Imm(core)]))
        t_lo = self._tmp(core)
        ops.append(_mk(Opcode.ADD, core, [t_lo], [ind, t_off]))
        t_hi0 = self._tmp(core)
        ops.append(_mk(Opcode.ADD, core, [t_hi0], [t_lo, t_sz]))
        pred = self._tmp_pr(core)
        ops.append(_mk(Opcode.CMP_LT, core, [pred], [t_hi0, bound]))
        ops.append(_mk(Opcode.SELECT, core, [hi], [pred, t_hi0, bound]))
        ops.append(_mk(Opcode.MOV, core, [ind], [t_lo]))
        return ops

    def _final_induction_ops(self, plan, ind: Reg, saved_start: Reg, regs):
        """Core 0 computes the induction's final value (its serial value
        after the last iteration)."""
        step = plan.step
        if plan.static_bounds is not None:
            start, bound = plan.static_bounds
            total = max(-(-(bound - start) // step), 0)
            return [_mk(Opcode.MOV, 0, [ind], [Imm(start + total * step)])]
        bound = plan.induction.bound
        ops = []
        t_span = self._tmp(0)
        ops.append(_mk(Opcode.SUB, 0, [t_span], [bound, saved_start]))
        t1 = self._tmp(0)
        ops.append(_mk(Opcode.ADD, 0, [t1], [t_span, Imm(step - 1)]))
        t_iters = self._tmp(0)
        ops.append(_mk(Opcode.DIV, 0, [t_iters], [t1, Imm(step)]))
        t_total = self._tmp(0)
        ops.append(_mk(Opcode.MUL, 0, [t_total], [t_iters, Imm(step)]))
        ops.append(_mk(Opcode.ADD, 0, [ind], [saved_start, t_total]))
        return ops

    def _tmp(self, core: int) -> Reg:
        function = self._current_function
        return function.regs.gpr()

    def _tmp_pr(self, core: int) -> Reg:
        return self._current_function.regs.pr()

    @staticmethod
    def _rewrite_accumulator(clone: Operation, acc_priv: Dict[Reg, Reg]) -> None:
        if clone.dest in acc_priv and clone.srcs and clone.srcs[0] == clone.dest:
            priv = acc_priv[clone.dest]
            clone.dests = [priv]
            clone.srcs = [priv] + list(clone.srcs[1:])

    # ...... shared region helpers .............................................

    def _region_successor(
        self, function: Function, block: BasicBlock, region: Region
    ) -> str:
        if region.loop is not None:
            if region.loop.exit is None:
                raise LoweringError(f"loop at {block.label} has no unique exit")
            return region.loop.exit
        if block.fall is None:
            raise LoweringError(f"region block {block.label} has no successor")
        return block.fall

    @staticmethod
    def _region_liveout_candidates(
        flat: Sequence[Operation],
    ) -> List[Tuple[Reg, int]]:
        last_def: Dict[Reg, int] = {}
        for op in flat:
            if op.attrs.get("transfer") or op.attrs.get("replicated"):
                continue
            for reg in op.dests:
                if reg.file is RegFile.BTR:
                    continue
                last_def[reg] = op.core
        return sorted(last_def.items(), key=lambda item: repr(item[0]))

    def _check_no_cross_core_carried(self, carried, assignment) -> None:
        for reg, (definition, users) in carried.items():
            src = assignment.get(definition.uid)
            for user in users:
                dst = assignment.get(user.uid)
                if src is not None and dst is not None and src != dst:
                    raise LoweringError(
                        f"strand partition split loop-carried register "
                        f"{reg!r} across cores {src} and {dst}"
                    )

    def _add_carried_memory(self, graph, ops) -> None:
        from .dfg import CARRIED, carried_memory_pairs

        for a, b in carried_memory_pairs(self.program, ops):
            if a is not b:
                graph.add_edge(b, a, CARRIED, delay=1)

    def _insert_memory_sync(
        self, function: Function, flat: List[Operation]
    ) -> None:
        """Dummy SEND/RECV pairs for cross-core memory dependences.

        Messages from one sender are matched FIFO on the receiver, so every
        RECV (data transfers included) is placed adjacent to its SEND in
        the flat program order: each core then consumes a channel in
        exactly the order the channel was fed, whatever mix of data and
        sync tokens flows through it.  One token per conflicting source
        access orders every dependent access behind it (the receiving core
        is in-order and the RECV precedes all of them)."""
        deps = memory_dependences(self.program, flat)
        position = {op.uid: i for i, op in enumerate(flat)}
        # (earlier uid, dst core) -> earlier op; one token per source
        # access per destination core.
        needed: Dict[Tuple[int, int], Operation] = {}
        for earlier, later in deps:
            if earlier.core == later.core:
                continue
            needed.setdefault((earlier.uid, later.core), earlier)
        inserts_after: Dict[int, List[Operation]] = {}
        inserts_before: Dict[int, List[Operation]] = {}
        for (earlier_uid, dst_core), earlier in needed.items():
            send, recv = memory_sync_pair(earlier.core, dst_core, function.regs)
            inserts_after.setdefault(position[earlier_uid], []).append(send)
            inserts_after[position[earlier_uid]].append(recv)
        if not inserts_after and not inserts_before:
            return
        rebuilt: List[Operation] = []
        for i, op in enumerate(flat):
            rebuilt.extend(inserts_before.get(i, []))
            rebuilt.append(op)
            rebuilt.extend(inserts_after.get(i, []))
        flat[:] = rebuilt

    # -- edge rewiring ------------------------------------------------------------

    def _rewire_region_entries(
        self, planned: Dict[str, PlannedBlock], regions: List[Region]
    ) -> None:
        redirect = {
            region.block: (f"R{region.rid}_enter", region.rid)
            for region in regions
        }
        for block in planned.values():
            for label, (target, rid) in redirect.items():
                if block.region == rid:
                    continue  # in-region references (back edges) stay
                if block.taken == label:
                    block.taken = target
                if block.fall == label:
                    block.fall = target
                for core, value in list(block.per_core_taken.items()):
                    if value == label:
                        block.per_core_taken[core] = target
                for core, value in list(block.per_core_fall.items()):
                    if value == label:
                        block.per_core_fall[core] = target
                for op in block.ops:
                    if (
                        op.opcode is Opcode.PBR
                        and op.attrs.get("target") == label
                    ):
                        op.attrs["target"] = target

    # -- use aggregation & transfer insertion ----------------------------------------

    def _collect_uses(
        self, planned: Dict[str, PlannedBlock]
    ) -> Tuple[Dict[Reg, Set[int]], Dict[int, Dict[Reg, Set[int]]]]:
        use_all: Dict[Reg, Set[int]] = {}
        use_by_region: Dict[int, Dict[Reg, Set[int]]] = {}
        for block in planned.values():
            for op in block.ops:
                for reg in op.src_regs():
                    use_all.setdefault(reg, set()).add(op.core)
                    use_by_region.setdefault(block.region, {}).setdefault(
                        reg, set()
                    ).add(op.core)
        for reg, core in self._extra_uses:
            if isinstance(reg, Reg):
                use_all.setdefault(reg, set()).add(core)
        return use_all, use_by_region

    def _insert_transfers(
        self,
        block: PlannedBlock,
        use_all: Dict[Reg, Set[int]],
        use_by_region: Dict[int, Dict[Reg, Set[int]]],
    ) -> None:
        rebuilt: List[Operation] = []
        switch_index: Optional[int] = None

        if not block.no_transfers:
            local_uses = (
                self._region_uses.get(block.region)
                if block.mode == "decoupled" and block.region
                else None
            )
            for op in block.ops:
                rebuilt.append(op)
                if op.attrs.get("transfer") or op.attrs.get("replicated"):
                    continue
                for reg in op.dests:
                    if reg.file is RegFile.BTR:
                        continue
                    scope = (
                        local_uses.get(reg, set())
                        if local_uses is not None
                        else use_all.get(reg, set())
                    )
                    targets = scope - {op.core}
                    if not targets:
                        continue
                    if block.mode == "coupled":
                        rebuilt.extend(
                            coupled_transfer(self.mesh, op.core, targets, reg)
                        )
                    else:
                        rebuilt.extend(
                            decoupled_transfer(op.core, targets, reg)
                        )
        else:
            rebuilt = list(block.ops)

        # Live-out forwarding: immediately before this block's barrier.
        if block.liveouts:
            transfers: List[Operation] = []
            for reg, src in block.liveouts:
                targets = use_all.get(reg, set()) - {src}
                if targets:
                    transfers.extend(decoupled_transfer(src, targets, reg))
            if transfers:
                switch_index = next(
                    (
                        i
                        for i, op in enumerate(rebuilt)
                        if op.opcode is Opcode.MODE_SWITCH
                    ),
                    len(rebuilt),
                )
                rebuilt = (
                    rebuilt[:switch_index] + transfers + rebuilt[switch_index:]
                )
        block.ops = rebuilt

    # -- scheduling & assembly ---------------------------------------------------------

    def _assemble(
        self,
        function: Function,
        planned: Dict[str, PlannedBlock],
        order: List[str],
        entry: str,
        compiled: CompiledProgram,
    ) -> None:
        core_functions = [
            CoreFunction(function.name, entry) for _ in range(self.n_cores)
        ]
        for label in order:
            block = planned[label]
            if block.mode == "coupled":
                slots = schedule_coupled(self.program, block.ops, self.n_cores)
            else:
                slots = schedule_decoupled(self.program, block.ops, self.n_cores)
            for core in range(self.n_cores):
                if not block.present_on(core):
                    continue
                core_block = CoreBlock(
                    label=block.label,
                    slots=list(slots[core]) if core < len(slots) else [],
                    taken=block.taken_for(core),
                    fall=block.fall_for(core),
                    mode=block.mode,
                    region=block.region,
                )
                core_functions[core].add_block(core_block)
        for core in range(self.n_cores):
            compiled.add_function(core, core_functions[core])

    # Set per function before region planning (used by _tmp helpers).
    _current_function: Function = None  # type: ignore[assignment]


def make_combine(core: int, dest: Reg, src: Reg, opcode: Opcode) -> Operation:
    return _mk(opcode, core, [dest], [dest, src])
