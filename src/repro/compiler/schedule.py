"""Static scheduling: joint cross-core VLIW scheduling (coupled mode) and
independent per-core scheduling (decoupled mode).

Input to both schedulers is a flat, program-ordered list of operations with
``op.core`` assigned.  Two attrs drive cross-core constraints:

* ``attrs['align']`` -- ops sharing an align id must issue in the *same
  cycle* on their respective cores.  Used for PUT/GET pairs (the direct
  network requires the two halves to execute simultaneously), BCAST/GET
  groups, and the replicated global ops of coupled mode (BR, CALL, RET,
  HALT, MODE_SWITCH: "BR operations are replicated across all cores and
  scheduled to execute in the same cycle").
* CALL acts as a scheduling fence on its core: nothing moves across it
  (the callee may touch any memory).

The coupled scheduler pads every core's schedule to a common length and
keeps the block terminator in the final slot, which is what lets the
simulator run the cores in lock-step.  The decoupled scheduler simply
packs each core's ops into latency-spaced slots.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..isa.latencies import scheduling_latency
from ..isa.operations import Opcode, Operation, Reg
from ..isa.program import Program
from .dependence import memory_dependences

#: Block terminator opcodes (scheduled into the final slot).
TERMINATORS = frozenset({Opcode.BR, Opcode.RET, Opcode.HALT})

_align_ids = itertools.count(1)


def fresh_align_id() -> int:
    return next(_align_ids)


@dataclass
class _Unit:
    """A co-issue group: one op, or several ops sharing an align id."""

    ops: List[Operation]
    is_terminator: bool = False
    # Scheduling state.
    n_preds: int = 0
    earliest: int = 0
    slot: Optional[int] = None
    height: int = 0
    succs: List[Tuple["_Unit", int]] = field(default_factory=list)

    @property
    def cores(self) -> Set[int]:
        return {op.core for op in self.ops}


def _build_units(ops: Sequence[Operation]) -> Tuple[List[_Unit], Dict[int, _Unit]]:
    by_align: Dict[int, _Unit] = {}
    units: List[_Unit] = []
    unit_of: Dict[int, _Unit] = {}
    for op in ops:
        align = op.attrs.get("align")
        if align is not None and align in by_align:
            unit = by_align[align]
            unit.ops.append(op)
        else:
            unit = _Unit(ops=[op])
            units.append(unit)
            if align is not None:
                by_align[align] = unit
        if op.opcode in TERMINATORS:
            unit.is_terminator = True
        unit_of[op.uid] = unit
    return units, unit_of


def _dependence_edges(
    program: Program, ops: Sequence[Operation]
) -> List[Tuple[Operation, Operation, int]]:
    """(src, dst, delay) edges: per-core register dependences, global memory
    ordering, and CALL fences."""
    edges: List[Tuple[Operation, Operation, int]] = []

    # Register dependences are per core (register files are private).
    last_def: Dict[Tuple[int, Reg], Operation] = {}
    uses_since: Dict[Tuple[int, Reg], List[Operation]] = {}
    per_core_prev_call: Dict[int, Operation] = {}
    per_core_since_call: Dict[int, List[Operation]] = {}

    for op in ops:
        core = op.core
        assert core is not None, f"unassigned op {op!r}"
        for reg in op.src_regs():
            key = (core, reg)
            producer = last_def.get(key)
            if producer is not None:
                edges.append(
                    (producer, op, scheduling_latency(producer.opcode))
                )
            uses_since.setdefault(key, []).append(op)
        for reg in op.dests:
            key = (core, reg)
            previous = last_def.get(key)
            if previous is not None and previous is not op:
                edges.append((previous, op, 1))
            for user in uses_since.get(key, []):
                if user is not op:
                    edges.append((user, op, 1))
            last_def[key] = op
            uses_since[key] = []
        # CALL fences (per core).
        fence = per_core_prev_call.get(core)
        if fence is not None and fence is not op:
            edges.append((fence, op, 1))
        per_core_since_call.setdefault(core, []).append(op)
        if op.opcode is Opcode.CALL:
            for earlier in per_core_since_call[core]:
                if earlier is not op:
                    edges.append((earlier, op, 1))
            per_core_prev_call[core] = op
            per_core_since_call[core] = [op]

    # Memory ordering spans cores ("dependent memory operations are
    # executed in subsequent cycles" in coupled mode).
    for earlier, later in memory_dependences(program, ops):
        edges.append((earlier, later, 1))
    return edges


def _prepare(
    program: Program, ops: Sequence[Operation]
) -> Tuple[List[_Unit], List[_Unit]]:
    """Build units with dependence counts; returns (units, terminator units)."""
    units, unit_of = _build_units(ops)
    seen_pairs: Set[Tuple[int, int]] = set()
    for src, dst, delay in _dependence_edges(program, ops):
        src_unit, dst_unit = unit_of[src.uid], unit_of[dst.uid]
        if src_unit is dst_unit:
            continue
        key = (id(src_unit), id(dst_unit))
        src_unit.succs.append((dst_unit, delay))
        if key not in seen_pairs:
            seen_pairs.add(key)
        dst_unit.n_preds += 1

    # Critical-path heights for priority.
    for unit in reversed(units):  # program order approximates topo order
        unit.height = max(
            (delay + succ.height for succ, delay in unit.succs), default=0
        )
    terminators = [unit for unit in units if unit.is_terminator]
    return units, terminators


def schedule_coupled(
    program: Program, ops: Sequence[Operation], n_cores: int
) -> List[List[Optional[Operation]]]:
    """Jointly schedule one block's ops across all cores in lock-step.

    Returns per-core slot lists of equal length, terminator in the last
    slot on every core that has one.
    """
    units, terminators = _prepare(program, ops)
    if len(terminators) > 1:
        raise ValueError("a block may have at most one terminator group")
    regular = [unit for unit in units if not unit.is_terminator]

    slots: List[List[Optional[Operation]]] = [[] for _ in range(n_cores)]
    core_free = [0] * n_cores
    pending = {id(unit): unit.n_preds for unit in units}
    unscheduled = set(map(id, regular))
    ready = [unit for unit in regular if unit.n_preds == 0]

    def place(unit: _Unit, slot: int) -> None:
        unit.slot = slot
        for core_slots in slots:
            while len(core_slots) <= slot:
                core_slots.append(None)
        for op in unit.ops:
            if slots[op.core][slot] is not None:
                raise ValueError(
                    f"slot collision on core {op.core} at {slot}: {op!r}"
                )
            op.slot = slot
            slots[op.core][slot] = op
            core_free[op.core] = max(core_free[op.core], slot + 1)
        for succ, delay in unit.succs:
            succ.earliest = max(succ.earliest, slot + delay)
            pending[id(succ)] -= 1
            if pending[id(succ)] == 0 and not succ.is_terminator:
                ready.append(succ)

    cycle = 0
    guard = 0
    while unscheduled:
        guard += 1
        if guard > 100_000:
            raise ValueError("coupled scheduler failed to converge")
        # Try to fill this cycle on every core, highest unit first.
        ready.sort(key=lambda unit: (-unit.height, min(unit.cores)))
        progressed = False
        for unit in list(ready):
            if unit.earliest > cycle:
                continue
            if any(core_free[core] > cycle for core in unit.cores):
                continue
            if any(
                len(slots[op.core]) > cycle and slots[op.core][cycle] is not None
                for op in unit.ops
            ):
                continue
            ready.remove(unit)
            unscheduled.discard(id(unit))
            place(unit, cycle)
            progressed = True
        cycle += 1

    # Terminator group: strictly after every other op, aligned on all cores.
    if terminators:
        unit = terminators[0]
        slot = max(
            [unit.earliest]
            + [core_free[core] for core in range(n_cores)]
        )
        place(unit, slot)

    length = max((len(core_slots) for core_slots in slots), default=0)
    for core_slots in slots:
        while len(core_slots) < length:
            core_slots.append(None)
    return slots


def schedule_decoupled(
    program: Program, ops: Sequence[Operation], n_cores: int
) -> List[List[Optional[Operation]]]:
    """Schedule each core's ops independently (queue-mode communication has
    no static alignment requirement).  Cross-core edges are enforced at run
    time by the SEND/RECV protocol, so only same-core edges matter here."""
    per_core: List[List[Operation]] = [[] for _ in range(n_cores)]
    for op in ops:
        assert op.core is not None
        per_core[op.core].append(op)

    slots: List[List[Optional[Operation]]] = []
    for core, core_ops in enumerate(per_core):
        earliest: Dict[int, int] = {op.uid: 0 for op in core_ops}
        core_edges = _dependence_edges(program, core_ops)
        by_uid = {op.uid: op for op in core_ops}
        # Terminator goes last on this core.
        terminator = next(
            (op for op in core_ops if op.opcode in TERMINATORS), None
        )
        deps: Dict[int, List[Tuple[int, int]]] = {op.uid: [] for op in core_ops}
        for src, dst, delay in core_edges:
            deps[dst.uid].append((src.uid, delay))

        core_slots: List[Optional[Operation]] = []
        finish: Dict[int, int] = {}
        next_slot = 0
        for op in core_ops:
            if op is terminator:
                continue
            start = max(
                [next_slot]
                + [finish[src] + delay for src, delay in deps[op.uid] if src in finish]
            )
            while len(core_slots) < start:
                core_slots.append(None)
            op.slot = start
            core_slots.append(op)
            finish[op.uid] = start
            next_slot = start + 1
        if terminator is not None:
            start = max(
                [next_slot]
                + [
                    finish[src] + delay
                    for src, delay in deps[terminator.uid]
                    if src in finish
                ]
            )
            while len(core_slots) < start:
                core_slots.append(None)
            terminator.slot = start
            core_slots.append(terminator)
        slots.append(core_slots)
    return slots
