"""Communication insertion: PUT/GET chains, BCAST groups, SEND/RECV pairs,
and dummy memory-synchronization pairs.

Transfer policy (both modes): a definition of register ``r`` on core ``c``
is forwarded *at the definition site* to every core that may consume ``r``.
Because a consuming core always executes the forwarding GET/RECV of the
reaching definition before the use (program order is preserved on each
core), the value arrives regardless of the control path taken -- the
property that makes the rule safe for arbitrary CFGs.

Queue-mode FIFO discipline: the receive queue CAM matches only on sender
id, so the k-th RECV from a sender must correspond to its k-th SEND.  Both
sides are emitted in the same program-order walk and the decoupled
scheduler never reorders ops, so the discipline holds by construction.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..arch.mesh import Mesh, opposite
from ..isa.operations import Imm, Opcode, Operation, Reg, RegFile, make_op
from ..isa.registers import RegisterAllocator
from .schedule import fresh_align_id

_temp_regs = itertools.count()


def coupled_transfer(
    mesh: Mesh, src_core: int, dst_cores: Iterable[int], reg: Reg
) -> List[Operation]:
    """Direct-mode transfer ops moving ``reg`` from ``src_core`` to each
    destination.  Predicate registers with several destinations use the
    one-cycle BCAST; scalar values use per-destination PUT/GET hop chains."""
    dst_cores = sorted(set(dst_cores) - {src_core})
    if not dst_cores:
        return []
    if reg.file is RegFile.PR and len(dst_cores) >= 1:
        return broadcast_group(src_core, dst_cores, reg)

    ops: List[Operation] = []
    for dst in dst_cores:
        current = src_core
        for direction in mesh.direct_path_directions(src_core, dst):
            align = fresh_align_id()
            neighbor = mesh.neighbor(current, direction)
            put = make_op(Opcode.PUT, [], [reg], direction=direction)
            put.core = current
            put.attrs["align"] = align
            put.attrs["transfer"] = True
            get = make_op(Opcode.GET, [reg], [], direction=opposite(direction))
            get.core = neighbor
            get.attrs["align"] = align
            get.attrs["transfer"] = True
            ops.extend((put, get))
            current = neighbor
    return ops


def broadcast_group(
    src_core: int, dst_cores: Iterable[int], reg: Reg
) -> List[Operation]:
    """BCAST on the source plus a same-cycle GET on every destination."""
    align = fresh_align_id()
    bcast = make_op(Opcode.BCAST, [], [reg])
    bcast.core = src_core
    bcast.attrs["align"] = align
    bcast.attrs["transfer"] = True
    ops = [bcast]
    for dst in sorted(set(dst_cores) - {src_core}):
        get = make_op(
            Opcode.GET, [reg], [], direction="bcast", bcast_src=src_core
        )
        get.core = dst
        get.attrs["align"] = align
        get.attrs["transfer"] = True
        ops.append(get)
    return ops


def decoupled_transfer(
    src_core: int,
    dst_cores: Iterable[int],
    reg: Reg,
    sync: Optional[str] = None,
) -> List[Operation]:
    """Queue-mode SEND on the source plus a RECV on each destination."""
    ops: List[Operation] = []
    for dst in sorted(set(dst_cores) - {src_core}):
        send = make_op(Opcode.SEND, [], [reg], target_core=dst)
        send.core = src_core
        send.attrs["transfer"] = True
        recv = make_op(Opcode.RECV, [reg], [], source_core=src_core)
        recv.core = dst
        recv.attrs["transfer"] = True
        if sync is not None:
            send.attrs["sync"] = sync
            recv.attrs["sync"] = sync
        ops.extend((send, recv))
    return ops


def memory_sync_pair(
    src_core: int, dst_core: int, regs: RegisterAllocator
) -> Tuple[Operation, Operation]:
    """Dummy SEND/RECV enforcing a cross-core memory dependence (paper
    Section 3.3).  The token value is meaningless; the RECV's completion
    orders the dependent access behind the source access."""
    send = make_op(Opcode.SEND, [], [Imm(0)], target_core=dst_core, sync="mem")
    send.core = src_core
    send.attrs["transfer"] = True
    scratch = regs.gpr()
    recv = make_op(Opcode.RECV, [scratch], [], source_core=src_core, sync="mem")
    recv.core = dst_core
    recv.attrs["transfer"] = True
    return send, recv


def send_value(
    src_core: int,
    dst_core: int,
    reg: Reg,
    sync: Optional[str] = None,
    tag: Optional[str] = None,
) -> Operation:
    op = make_op(Opcode.SEND, [], [reg], target_core=dst_core)
    op.core = src_core
    op.attrs["transfer"] = True
    if sync is not None:
        op.attrs["sync"] = sync
    if tag is not None:
        op.attrs["tag"] = tag
    return op


def recv_value(
    dst_core: int,
    src_core: int,
    reg: Reg,
    sync: Optional[str] = None,
    tag: Optional[str] = None,
) -> Operation:
    op = make_op(Opcode.RECV, [reg], [], source_core=src_core)
    op.core = dst_core
    op.attrs["transfer"] = True
    if sync is not None:
        op.attrs["sync"] = sync
    if tag is not None:
        op.attrs["tag"] = tag
    return op
