"""Memory dependence analysis.

The paper's compiler leans on sophisticated pointer analysis (Nystrom et
al.) to prune false memory dependences.  Our IR makes the common cases
analyzable with a light-weight symbolic evaluator: most addresses are
``array_base (immediate) + index (register)``, so two references provably
do not alias when they touch different arrays, or the same array at
provably different constant offsets.  Anything unresolved is conservatively
assumed to alias -- exactly the situation in which Voltron's compiler must
either keep the references on one core (eBUG) or synchronize them with a
dummy SEND/RECV pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..isa.operations import Imm, Opcode, Operand, Operation, Reg
from ..isa.program import ArraySymbol, Program


@dataclass(frozen=True)
class SymbolicAddress:
    """Partially-resolved address: ``array`` and/or constant ``addr``."""

    array: Optional[str]  # containing array, when the base is resolvable
    addr: Optional[int]  # exact word address, when fully constant

    @property
    def resolved(self) -> bool:
        return self.array is not None or self.addr is not None


class ConstantTracker:
    """Intra-block forward constant propagation over integer registers."""

    _FOLDABLE = {
        Opcode.ADD: lambda a, b: a + b,
        Opcode.SUB: lambda a, b: a - b,
        Opcode.MUL: lambda a, b: a * b,
        Opcode.SHL: lambda a, b: a << b,
        Opcode.SHR: lambda a, b: a >> b,
    }

    def __init__(self) -> None:
        self._known: Dict[Reg, int] = {}

    def value_of(self, operand: Operand) -> Optional[int]:
        if isinstance(operand, Imm):
            return operand.value if isinstance(operand.value, int) else None
        return self._known.get(operand)

    def observe(self, op: Operation) -> None:
        """Update known constants after ``op`` executes."""
        dest = op.dest
        if dest is None:
            return
        if op.opcode is Opcode.MOV:
            value = self.value_of(op.srcs[0])
        elif op.opcode in self._FOLDABLE:
            a = self.value_of(op.srcs[0])
            b = self.value_of(op.srcs[1])
            value = (
                self._FOLDABLE[op.opcode](a, b)
                if a is not None and b is not None
                else None
            )
        else:
            value = None
        if value is None:
            self._known.pop(dest, None)
        else:
            self._known[dest] = value


def _array_containing(program: Program, addr: int) -> Optional[str]:
    for symbol in program.arrays.values():
        if symbol.base <= addr < symbol.base + symbol.size:
            return symbol.name
    return None


def resolve_address(
    program: Program, op: Operation, tracker: ConstantTracker
) -> SymbolicAddress:
    """Resolve a LOAD/STORE's address as far as constants allow."""
    base = tracker.value_of(op.srcs[0])
    offset = tracker.value_of(op.srcs[1])
    if base is not None and offset is not None:
        addr = base + offset
        return SymbolicAddress(array=_array_containing(program, addr), addr=addr)
    if base is not None:
        return SymbolicAddress(array=_array_containing(program, base), addr=None)
    return SymbolicAddress(array=None, addr=None)


def analyze_block_addresses(
    program: Program, ops: Sequence[Operation]
) -> Dict[int, SymbolicAddress]:
    """Symbolic address for every memory op in a straight-line op list,
    keyed by ``op.uid``."""
    tracker = ConstantTracker()
    result: Dict[int, SymbolicAddress] = {}
    for op in ops:
        if op.is_memory():
            result[op.uid] = resolve_address(program, op, tracker)
        tracker.observe(op)
    return result


def may_alias(a: SymbolicAddress, b: SymbolicAddress) -> bool:
    """Conservative aliasing: only provable disjointness returns False."""
    if a.addr is not None and b.addr is not None:
        return a.addr == b.addr
    if a.array is not None and b.array is not None:
        return a.array == b.array
    return True


def memory_dependences(
    program: Program,
    ops: Sequence[Operation],
    profile_independent: Optional[Iterable[Tuple[int, int]]] = None,
) -> List[Tuple[Operation, Operation]]:
    """Ordered pairs (earlier, later) of memory ops that must stay ordered.

    ``profile_independent`` optionally names uid pairs a memory profile
    showed never conflicting -- those are still returned (the dependence
    is only *statistically* absent), but callers exploiting speculation
    (DOALL) filter on it.
    """
    addresses = analyze_block_addresses(program, ops)
    memory_ops = [op for op in ops if op.is_memory()]
    edges: List[Tuple[Operation, Operation]] = []
    for i, earlier in enumerate(memory_ops):
        for later in memory_ops[i + 1 :]:
            if earlier.opcode is Opcode.LOAD and later.opcode is Opcode.LOAD:
                continue
            if may_alias(addresses[earlier.uid], addresses[later.uid]):
                edges.append((earlier, later))
    return edges
