"""Dependence/dataflow graphs over straight-line op sequences.

Two users:

* the partitioners (BUG / eBUG / DSWP) consult register-flow and memory
  edges, critical-path heights, and (for DSWP) loop-carried edges;
* the schedulers honour the same edges plus anti/output dependences when
  packing ops into issue slots.

Edges carry a ``delay``: the minimum number of cycles between the issue of
the predecessor and the issue of the successor (flow edges use the
producer's latency; anti/output and memory-order edges use 1; "same cycle"
pairings used by the coupled scheduler are expressed separately).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..isa.latencies import scheduling_latency
from ..isa.operations import Opcode, Operation, Reg
from ..isa.program import Program
from .dependence import memory_dependences

#: Kinds of dependence edges.
FLOW = "flow"
ANTI = "anti"
OUTPUT = "output"
MEMORY = "memory"
CARRIED = "carried"  # loop-carried register flow (DSWP only)


@dataclass
class Edge:
    src: Operation
    dst: Operation
    kind: str
    delay: int
    reg: Optional[Reg] = None
    weight: float = 0.0  # partitioning weight (eBUG)


class DependenceGraph:
    """Dependences among a straight-line list of operations."""

    def __init__(self, ops: Sequence[Operation]) -> None:
        self.ops: List[Operation] = list(ops)
        self.index: Dict[int, int] = {op.uid: i for i, op in enumerate(self.ops)}
        self.succs: Dict[int, List[Edge]] = {op.uid: [] for op in self.ops}
        self.preds: Dict[int, List[Edge]] = {op.uid: [] for op in self.ops}

    def add_edge(
        self,
        src: Operation,
        dst: Operation,
        kind: str,
        delay: int,
        reg: Optional[Reg] = None,
    ) -> Edge:
        edge = Edge(src=src, dst=dst, kind=kind, delay=delay, reg=reg)
        self.succs[src.uid].append(edge)
        self.preds[dst.uid].append(edge)
        return edge

    def flow_edges(self) -> Iterable[Edge]:
        for edges in self.succs.values():
            for edge in edges:
                if edge.kind == FLOW:
                    yield edge

    def all_edges(self) -> Iterable[Edge]:
        for edges in self.succs.values():
            yield from edges

    # -- analyses ------------------------------------------------------------

    def critical_heights(self) -> Dict[int, int]:
        """Longest delay-weighted path from each op to any sink (ignores
        loop-carried edges, which may form cycles)."""
        heights: Dict[int, int] = {}

        order = self._topological(ignore_kinds={CARRIED})
        for op in reversed(order):
            best = 0
            for edge in self.succs[op.uid]:
                if edge.kind == CARRIED:
                    continue
                best = max(best, edge.delay + heights[edge.dst.uid])
            heights[op.uid] = best
        return heights

    def _topological(self, ignore_kinds: Set[str]) -> List[Operation]:
        in_degree = {op.uid: 0 for op in self.ops}
        for edge in self.all_edges():
            if edge.kind in ignore_kinds:
                continue
            in_degree[edge.dst.uid] += 1
        # Stable order: prefer original program order among ready ops.
        ready = [op for op in self.ops if in_degree[op.uid] == 0]
        result: List[Operation] = []
        while ready:
            op = ready.pop(0)
            result.append(op)
            for edge in self.succs[op.uid]:
                if edge.kind in ignore_kinds:
                    continue
                in_degree[edge.dst.uid] -= 1
                if in_degree[edge.dst.uid] == 0:
                    # Insert keeping program order among ready ops.
                    position = self.index[edge.dst.uid]
                    spot = next(
                        (
                            i
                            for i, r in enumerate(ready)
                            if self.index[r.uid] > position
                        ),
                        len(ready),
                    )
                    ready.insert(spot, edge.dst)
        if len(result) != len(self.ops):
            raise ValueError("dependence graph has an unexpected cycle")
        return result

    def strongly_connected_components(self) -> List[List[Operation]]:
        """Tarjan SCCs over *all* edges (including loop-carried), in a
        topological order of the condensation."""
        index_counter = [0]
        stack: List[int] = []
        lowlink: Dict[int, int] = {}
        number: Dict[int, int] = {}
        on_stack: Set[int] = set()
        components: List[List[Operation]] = []
        op_by_uid = {op.uid: op for op in self.ops}

        def strongconnect(uid: int) -> None:
            # Iterative Tarjan to avoid recursion limits on big blocks.
            work = [(uid, 0)]
            while work:
                node, edge_i = work[-1]
                if edge_i == 0:
                    number[node] = lowlink[node] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                recursed = False
                edges = self.succs[node]
                while edge_i < len(edges):
                    succ = edges[edge_i].dst.uid
                    edge_i += 1
                    if succ not in number:
                        work[-1] = (node, edge_i)
                        work.append((succ, 0))
                        recursed = True
                        break
                    if succ in on_stack:
                        lowlink[node] = min(lowlink[node], number[succ])
                if recursed:
                    continue
                if lowlink[node] == number[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(op_by_uid[member])
                        if member == node:
                            break
                    component.sort(key=lambda op: self.index[op.uid])
                    components.append(component)
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])

        for op in self.ops:
            if op.uid not in number:
                strongconnect(op.uid)
        # Tarjan emits SCCs in reverse topological order.
        components.reverse()
        return components


def carried_register_edges(
    ops: Sequence[Operation],
    exclude: Optional[Set[Reg]] = None,
) -> Dict[Reg, Tuple[Operation, List[Operation]]]:
    """Loop-carried register flow in a single-block loop body.

    A use whose reaching definition lies *after* it in the block (or is the
    op itself, as in ``a = add a, x``) reads the previous iteration's value:
    the last def in the block feeds it across the back edge.  ``exclude``
    lists registers handled specially (e.g. a replicated induction).
    """
    exclude = exclude or set()
    def_positions: Dict[Reg, List[int]] = {}
    for i, op in enumerate(ops):
        for reg in op.dests:
            def_positions.setdefault(reg, []).append(i)

    carried: Dict[Reg, Tuple[Operation, List[Operation]]] = {}
    for i, op in enumerate(ops):
        for reg in op.src_regs():
            if reg in exclude:
                continue
            positions = def_positions.get(reg)
            if not positions:
                continue  # pure live-in, never redefined: not carried
            if any(p < i for p in positions):
                continue  # reaching def is earlier this iteration
            last_def = ops[positions[-1]]
            entry = carried.setdefault(reg, (last_def, []))
            entry[1].append(op)
    return carried


def carried_memory_pairs(
    program: Program, ops: Sequence[Operation]
) -> List[Tuple[Operation, Operation]]:
    """Pairs of memory ops that may conflict across iterations (both
    directions of every alias pair involving a store, including an op with
    itself for stores)."""
    from .dependence import analyze_block_addresses, may_alias

    addresses = analyze_block_addresses(program, ops)
    memory_ops = [op for op in ops if op.is_memory()]
    pairs: List[Tuple[Operation, Operation]] = []
    for a in memory_ops:
        for b in memory_ops:
            if a.opcode is Opcode.LOAD and b.opcode is Opcode.LOAD:
                continue
            if a is b and a.opcode is not Opcode.STORE:
                continue
            if may_alias(addresses[a.uid], addresses[b.uid]):
                pairs.append((a, b))
    return pairs


def build_block_dfg(
    program: Program,
    ops: Sequence[Operation],
    carried_regs: Optional[Dict[Reg, Tuple[Operation, List[Operation]]]] = None,
    storage_edges: bool = True,
) -> DependenceGraph:
    """Build the dependence graph of a straight-line op list.

    ``carried_regs`` adds loop-carried flow edges for DSWP: maps a register
    to (defining op, uses at the top of the next iteration).

    ``storage_edges=False`` drops anti/output register dependences: DSWP
    partitions under that view because pipeline stages run in *separate*
    register files (communication renames values across stages), so only
    true value flow and memory ordering constrain the stages.
    """
    graph = DependenceGraph(ops)
    last_def: Dict[Reg, Operation] = {}
    uses_since_def: Dict[Reg, List[Operation]] = {}

    for op in ops:
        for reg in op.src_regs():
            producer = last_def.get(reg)
            if producer is not None:
                graph.add_edge(
                    producer,
                    op,
                    FLOW,
                    delay=scheduling_latency(producer.opcode),
                    reg=reg,
                )
            uses_since_def.setdefault(reg, []).append(op)
        for reg in op.dests:
            if storage_edges:
                previous = last_def.get(reg)
                if previous is not None and previous is not op:
                    graph.add_edge(previous, op, OUTPUT, delay=1, reg=reg)
                for user in uses_since_def.get(reg, []):
                    if user is not op:
                        graph.add_edge(user, op, ANTI, delay=1, reg=reg)
            last_def[reg] = op
            uses_since_def[reg] = []

    for earlier, later in memory_dependences(program, ops):
        graph.add_edge(earlier, later, MEMORY, delay=1)

    if carried_regs:
        for reg, (definition, users) in carried_regs.items():
            for user in users:
                graph.add_edge(definition, user, CARRIED, delay=1, reg=reg)

    return graph
