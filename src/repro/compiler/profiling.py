"""Profiling support: the compiler-side stand-in for Trimaran's profiles.

Three profiles drive the paper's compilation decisions, and all three are
gathered in one instrumented reference-interpreter run:

* **cache-miss profile** -- per-load/store miss rates from a serial L1
  simulation; eBUG weighs "likely missing loads" and the selection policy
  estimates each region's memory stall time from it;
* **memory-dependence profile** -- per-loop observation of cross-iteration
  conflicts; loops with none observed are *statistical DOALL* candidates;
* **execution profile** -- dynamic op/block counts and average trip counts
  that weight regions during selection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..arch.config import CacheConfig
from ..isa.interp import Frame, Interpreter
from ..isa.operations import Operation
from ..isa.program import BasicBlock, Program
from ..isa.registers import Value
from ..sim.caches import EXCLUSIVE, MODIFIED, SetAssocCache
from .loops import Loop, find_loops


@dataclass
class LoopProfile:
    function: str
    header: str
    entries: int = 0
    iterations: int = 0
    cross_iteration_conflicts: int = 0
    max_concurrent_addresses: int = 0

    @property
    def average_trip_count(self) -> float:
        return self.iterations / self.entries if self.entries else 0.0

    @property
    def observed_doall(self) -> bool:
        """No cross-iteration memory conflict was ever observed."""
        return self.iterations > 0 and self.cross_iteration_conflicts == 0


@dataclass
class ExecutionProfile:
    op_counts: Dict[int, int] = field(default_factory=dict)
    block_counts: Dict[Tuple[str, str], int] = field(default_factory=dict)
    load_accesses: Dict[int, int] = field(default_factory=dict)
    load_misses: Dict[int, int] = field(default_factory=dict)
    loop_profiles: Dict[Tuple[str, str], LoopProfile] = field(default_factory=dict)
    dynamic_ops: int = 0

    def miss_rate(self, op: Operation) -> float:
        accesses = self.load_accesses.get(op.uid, 0)
        if accesses == 0:
            return 0.0
        return self.load_misses.get(op.uid, 0) / accesses

    def likely_missing(self, op: Operation, threshold: float = 0.05) -> bool:
        return self.miss_rate(op) > threshold

    def loop_profile(self, function: str, header: str) -> Optional[LoopProfile]:
        return self.loop_profiles.get((function, header))

    def block_count(self, function: str, label: str) -> int:
        return self.block_counts.get((function, label), 0)


class _ActiveLoop:
    """Tracking state for one loop the profiled execution is inside."""

    def __init__(self, profile: LoopProfile, loop: Loop, depth: int) -> None:
        self.profile = profile
        self.loop = loop
        self.depth = depth
        self.iteration = 0
        # addr -> (last iteration stored, last iteration loaded)
        self.touched: Dict[int, Tuple[int, int]] = {}

    def observe(self, addr: int, is_store: bool) -> None:
        stored, loaded = self.touched.get(addr, (-1, -1))
        if is_store:
            if (stored >= 0 and stored < self.iteration) or (
                loaded >= 0 and loaded < self.iteration
            ):
                self.profile.cross_iteration_conflicts += 1
            self.touched[addr] = (self.iteration, loaded)
        else:
            if stored >= 0 and stored < self.iteration:
                self.profile.cross_iteration_conflicts += 1
            self.touched[addr] = (stored, self.iteration)


class Profiler:
    """Runs the program once and gathers all three profiles."""

    def __init__(
        self,
        program: Program,
        l1d: Optional[CacheConfig] = None,
    ) -> None:
        self.program = program
        self.l1d = l1d or CacheConfig(size_words=1024, associativity=2)
        self.profile = ExecutionProfile()
        self._cache = SetAssocCache(self.l1d)
        self._loops_by_function: Dict[str, List[Loop]] = {
            name: find_loops(function)
            for name, function in program.functions.items()
        }
        self._active: List[_ActiveLoop] = []

    def run(self, args: Tuple[Value, ...] = ()) -> ExecutionProfile:
        interpreter = Interpreter(self.program)
        interpreter.observe_blocks(self._on_block)
        interpreter.observe_memory(self._on_memory)
        result = interpreter.run(args)
        self.profile.op_counts = result.op_counts
        self.profile.block_counts = result.block_counts
        self.profile.dynamic_ops = result.dynamic_ops
        return self.profile

    # -- observers ---------------------------------------------------------------

    def _on_block(self, block: BasicBlock, frame: Frame) -> None:
        function = frame.function.name
        depth = frame.depth

        # Drop loops we returned past, and loops of this activation whose
        # body no longer contains this block.  Loops of *outer* frames stay
        # active: memory accesses made in a callee belong to the caller
        # loop's current iteration.
        still_active: List[_ActiveLoop] = []
        for state in self._active:
            if state.depth > depth:
                continue
            if state.depth == depth and block.label not in state.loop.blocks:
                continue
            still_active.append(state)
        self._active = still_active

        for loop in self._loops_by_function.get(function, []):
            if loop.header != block.label:
                continue
            state = next(
                (
                    s
                    for s in self._active
                    if s.loop is loop and s.depth == depth
                ),
                None,
            )
            if state is None:
                profile = self.profile.loop_profiles.setdefault(
                    (function, loop.header),
                    LoopProfile(function=function, header=loop.header),
                )
                profile.entries += 1
                profile.iterations += 1
                self._active.append(_ActiveLoop(profile, loop, depth))
            else:
                state.iteration += 1
                state.profile.iterations += 1

    def _on_memory(self, op: Operation, addr: int, is_store: bool, frame: Frame) -> None:
        line_addr = addr // self.l1d.line_words
        hit = self._cache.lookup(line_addr) is not None
        self._cache.insert(line_addr, MODIFIED if is_store else EXCLUSIVE)
        self.profile.load_accesses[op.uid] = (
            self.profile.load_accesses.get(op.uid, 0) + 1
        )
        if not hit:
            self.profile.load_misses[op.uid] = (
                self.profile.load_misses.get(op.uid, 0) + 1
            )
        for state in self._active:
            state.observe(addr, is_store)


def profile_program(
    program: Program, args: Tuple[Value, ...] = ()
) -> ExecutionProfile:
    """Convenience wrapper: profile ``program`` with default geometry."""
    return Profiler(program).run(args)
