"""Statistical DOALL loop detection and parallelization planning.

Paper Section 4.1 ("Extracting LLP from DOALL loops"): the compiler
memory-profiles loops, calls those with no observed cross-iteration
dependence *statistical DOALL*, applies induction-variable replication and
accumulator expansion to remove false register dependences, chunks the
iteration space across cores, and executes the chunks as ordered
transactions on the low-cost TM so that a mis-speculation rolls back.

``plan_doall`` performs the eligibility analysis; the codegen consumes the
returned plan.  Eligibility mirrors the paper's requirements plus the
restrictions of our canonical loop shape:

* single-block counted loop (``i = add i, #step`` with ``step > 0``,
  ``CMP_LT`` latch) with a unique preheader and exit;
* no calls inside the body (a callee could touch arbitrary state);
* every loop-carried register dependence is the induction variable or a
  recognized accumulator; every register live-out is one of those too;
* the memory profile observed no cross-iteration conflict and the average
  trip count clears the profitability threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from ..isa.operations import Imm, Opcode, Operation, Reg
from ..isa.program import Function, Program
from .dfg import carried_register_edges
from .loops import Accumulator, InductionVariable, Loop, live_out_regs
from .profiling import ExecutionProfile

#: Opcodes whose reductions we can expand across cores, with the opcode
#: used to combine per-core partials.
COMBINABLE = {
    Opcode.ADD: Opcode.ADD,
    Opcode.SUB: Opcode.ADD,  # partials accumulate the negated sum
    Opcode.FADD: Opcode.FADD,
    Opcode.FSUB: Opcode.FADD,
    Opcode.MUL: Opcode.MUL,
    Opcode.FMUL: Opcode.FMUL,
    Opcode.OR: Opcode.OR,
    Opcode.XOR: Opcode.XOR,
    Opcode.AND: Opcode.AND,
}


@dataclass
class DoallPlan:
    loop: Loop
    body_label: str
    induction: InductionVariable
    accumulators: List[Accumulator]
    #: (start, bound) as Python ints when both are compile-time constants.
    static_bounds: Optional[Tuple[int, int]]
    average_trip: float

    @property
    def step(self) -> int:
        return self.induction.step

    def static_trip_count(self) -> Optional[int]:
        if self.static_bounds is None:
            return None
        start, bound = self.static_bounds
        return max(-(-(bound - start) // self.step), 0)


def plan_doall(
    program: Program,
    function: Function,
    loop: Loop,
    profile: ExecutionProfile,
    n_cores: int,
    trip_threshold: Optional[float] = None,
) -> Optional[DoallPlan]:
    """Check eligibility; returns a plan or None with no side effects."""
    if n_cores < 2:
        return None
    if not loop.is_single_block or loop.preheader is None or loop.exit is None:
        return None
    induction = loop.induction
    if induction is None or induction.step <= 0 or induction.bound is None:
        return None
    if induction.compare is None or induction.compare.opcode is not Opcode.CMP_LT:
        return None

    block = function.block(loop.header)
    if block.taken != loop.header:
        return None  # canonical latch branches back to the body

    ops = block.ops
    if any(op.opcode in (Opcode.CALL, Opcode.RET, Opcode.HALT) for op in ops):
        return None

    accumulators = [
        acc for acc in loop.accumulators if acc.opcode in COMBINABLE
    ]
    special: Set[Reg] = {induction.reg} | {acc.reg for acc in accumulators}

    # Every carried register dependence must be induction or accumulator.
    carried = carried_register_edges(ops, exclude=special)
    if carried:
        return None

    # Register live-outs must be recoverable after chunked execution.
    for reg in live_out_regs(function, loop):
        if reg not in special:
            return None

    loop_profile = profile.loop_profile(function.name, loop.header)
    if loop_profile is None or not loop_profile.observed_doall:
        return None
    threshold = trip_threshold if trip_threshold is not None else 2.0 * n_cores
    if loop_profile.average_trip_count < threshold:
        return None

    static_bounds = None
    if (
        isinstance(induction.init, Imm)
        and isinstance(induction.bound, Imm)
        and isinstance(induction.init.value, int)
        and isinstance(induction.bound.value, int)
    ):
        static_bounds = (induction.init.value, induction.bound.value)

    return DoallPlan(
        loop=loop,
        body_label=loop.header,
        induction=induction,
        accumulators=accumulators,
        static_bounds=static_bounds,
        average_trip=loop_profile.average_trip_count,
    )
