"""The compiler façade: profile once, compile for any strategy/machine.

Strategies (matching the paper's experiments):

* ``baseline`` -- serial code for the single-core baseline machine;
* ``ilp``      -- coupled-mode ILP only (BUG across all cores, Fig. 10/11
  first bars);
* ``tlp``      -- fine-grain TLP only (DSWP + eBUG strands in decoupled
  mode; non-region code stays coupled, second bars);
* ``llp``      -- statistical DOALL loops only; all remaining code runs on
  one core (third bars);
* ``hybrid``   -- the full region-by-region selection policy with
  MODE_SWITCH-bracketed decoupled regions (Fig. 13/14).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..arch.config import MachineConfig, mesh, single_core
from ..isa.machinecode import CompiledProgram
from ..isa.program import Program
from ..isa.registers import Value
from .codegen import Codegen
from .profiling import ExecutionProfile, Profiler
from .regions import STRATEGIES


class VoltronCompiler:
    """Profiles a program once, then lowers it for any machine/strategy."""

    def __init__(
        self, program: Program, profile_args: Tuple[Value, ...] = ()
    ) -> None:
        program.validate()
        self.program = program
        self.profile_args = profile_args
        self._profile: Optional[ExecutionProfile] = None

    @property
    def profile(self) -> ExecutionProfile:
        if self._profile is None:
            self._profile = Profiler(self.program).run(self.profile_args)
        return self._profile

    def compile(
        self,
        strategy: str = "hybrid",
        config: Optional[MachineConfig] = None,
    ) -> CompiledProgram:
        if strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; pick one of {STRATEGIES}"
            )
        if strategy == "baseline":
            config = config or single_core()
            if config.n_cores != 1:
                raise ValueError("the baseline strategy targets one core")
        elif config is None:
            config = mesh(4)
        return Codegen(
            self.program, config, self.profile, strategy=strategy
        ).compile()


def compile_program(
    program: Program,
    n_cores: int = 4,
    strategy: str = "hybrid",
    profile_args: Tuple[Value, ...] = (),
) -> CompiledProgram:
    """One-shot convenience wrapper around :class:`VoltronCompiler`."""
    compiler = VoltronCompiler(program, profile_args)
    if strategy == "baseline" or n_cores == 1:
        return compiler.compile("baseline", single_core())
    return compiler.compile(strategy, mesh(n_cores))
