"""Decoupled Software Pipelining (DSWP) partitioning.

Following Ottoni et al. (cited as the paper's DSWP source): build the loop
body's dependence graph *including loop-carried dependences*, find strongly
connected components (every recurrence lands inside one SCC), condense to
an acyclic graph, and greedily assign SCCs to pipeline stages in
topological order, balancing estimated stage weights.  Each stage runs on
its own core; cross-stage dataflow travels forward through the queue-mode
operand network once per iteration, so stalls in one stage overlap with
work in the others.

The estimated speedup (total weight / max stage weight, discounted by a
per-stage communication charge) feeds the paper's 1.25 profitability
threshold in the selection policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ...isa.latencies import scheduling_latency
from ...isa.operations import Operation, Reg
from ...isa.program import Program
from ..dfg import (
    CARRIED,
    DependenceGraph,
    build_block_dfg,
    carried_memory_pairs,
    carried_register_edges,
)


@dataclass
class DswpPartition:
    """Stages of a pipelined loop body."""

    stages: List[List[Operation]]
    stage_of: Dict[int, int]
    stage_weights: List[float]
    estimated_speedup: float

    @property
    def n_stages(self) -> int:
        return len(self.stages)


class DswpPartitioner:
    """SCC condensation + greedy stage balancing."""

    #: Per-iteration charge for each pipeline boundary a value crosses.
    stage_comm_cost = 3.0  # queue mode: 2 cycles + 1 hop

    def __init__(self, program: Program, n_cores: int) -> None:
        self.program = program
        self.n_cores = n_cores

    def partition(
        self,
        ops: Sequence[Operation],
        replicated_regs: Optional[Set[Reg]] = None,
    ) -> Optional[DswpPartition]:
        """Partition a loop body; None when no multi-stage pipeline exists.

        ``replicated_regs`` are registers whose updates the codegen
        replicates on every stage (the induction variable and the latch
        predicate), so their carried dependences do not glue the graph
        into one SCC.
        """
        ops = list(ops)
        if not ops:
            return None
        carried = carried_register_edges(ops, exclude=replicated_regs)
        # Stages own private register files, so anti/output register
        # dependences do not constrain the pipeline (storage_edges=False).
        graph = build_block_dfg(
            self.program, ops, carried_regs=carried, storage_edges=False
        )
        for earlier, later in carried_memory_pairs(self.program, ops):
            if earlier is not later:
                graph.add_edge(later, earlier, CARRIED, delay=1)

        components = graph.strongly_connected_components()
        if len(components) < 2:
            return None

        weights = [self._weight(component) for component in components]
        stages = self._assign_stages(components, weights)
        if len(stages) < 2:
            return None

        stage_of: Dict[int, int] = {}
        stage_ops: List[List[Operation]] = []
        stage_weights: List[float] = []
        for stage_index, members in enumerate(stages):
            ops_here: List[Operation] = []
            weight = 0.0
            for component_index in members:
                ops_here.extend(components[component_index])
                weight += weights[component_index]
            ops_here.sort(key=lambda op: graph.index[op.uid])
            stage_ops.append(ops_here)
            stage_weights.append(weight)
            for op in ops_here:
                stage_of[op.uid] = stage_index

        total = sum(stage_weights)
        bottleneck = max(stage_weights) + self.stage_comm_cost
        speedup = total / bottleneck if bottleneck else 1.0
        return DswpPartition(
            stages=stage_ops,
            stage_of=stage_of,
            stage_weights=stage_weights,
            estimated_speedup=speedup,
        )

    # -- internals ---------------------------------------------------------------

    @staticmethod
    def _weight(component: Sequence[Operation]) -> float:
        return float(sum(scheduling_latency(op.opcode) for op in component))

    def _assign_stages(
        self, components: List[List[Operation]], weights: List[float]
    ) -> List[List[int]]:
        """Min-max contiguous partition of the topologically-ordered SCC
        list into at most ``n_cores`` stages (binary search over the
        bottleneck weight, the classic painter's-partition scheme)."""
        total = sum(weights)
        if total == 0:
            return [list(range(len(components)))]

        def cuts_for(limit: float) -> Optional[List[List[int]]]:
            stages: List[List[int]] = []
            current: List[int] = []
            current_weight = 0.0
            for index, weight in enumerate(weights):
                if current and current_weight + weight > limit:
                    stages.append(current)
                    current = []
                    current_weight = 0.0
                current.append(index)
                current_weight += weight
                if current_weight > limit and len(current) > 1:
                    return None
            if current:
                stages.append(current)
            return stages if len(stages) <= self.n_cores else None

        low = max(weights)
        high = total
        best = cuts_for(high)
        for _ in range(32):
            mid = (low + high) / 2
            attempt = cuts_for(mid)
            if attempt is not None:
                best = attempt
                high = mid
            else:
                low = mid
        assert best is not None
        return best
