"""Bottom-Up Greedy (BUG) partitioning for coupled-mode ILP.

The paper employs Ellis' BUG algorithm (Bulldog): operations are visited in
priority order (critical paths first, depth-first), and each is assigned to
the core minimizing its heuristically-estimated completion time, counting
the inter-core transfer latency for operands living on other cores and a
load-balance term for busy cores.

The partitioner works on one block's dependence graph.  Control ops that
coupled mode replicates on every core (PBR/BR/CALL/RET/HALT/MODE_SWITCH)
are not partitioned here; callers handle replication.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from ...arch.mesh import Mesh
from ...isa.latencies import scheduling_latency
from ...isa.operations import Operation
from ..dfg import FLOW, MEMORY, DependenceGraph


@dataclass
class PartitionResult:
    """core id per op uid, plus diagnostic estimates."""

    assignment: Dict[int, int]
    estimated_finish: Dict[int, int] = field(default_factory=dict)

    def core_of(self, op: Operation) -> int:
        return self.assignment[op.uid]

    def ops_on(self, ops: Sequence[Operation], core: int) -> List[Operation]:
        return [op for op in ops if self.assignment[op.uid] == core]


class BugPartitioner:
    """Greedy completion-time-estimate partitioner."""

    #: Estimated cycles to move a value one hop in the mode this
    #: partitioner targets (direct mode: 1 cycle per hop).
    comm_cost_per_hop = 1
    comm_cost_fixed = 0

    def __init__(self, mesh: Mesh, n_cores: Optional[int] = None) -> None:
        self.mesh = mesh
        self.n_cores = n_cores or mesh.n_cores

    # -- hooks for eBUG -----------------------------------------------------------

    def edge_penalty(self, src: Operation, dst: Operation, kind: str) -> float:
        """Extra cost added when this edge crosses cores."""
        return 0.0

    def core_penalty(self, op: Operation, core: int, state: "_State") -> float:
        """Extra cost for putting ``op`` on ``core``."""
        return 0.0

    def same_core_groups(
        self, graph: DependenceGraph
    ) -> Sequence[Sequence[Operation]]:
        """Groups of ops that must share a core (eBUG uses this for
        loop-carried dependences)."""
        return ()

    # -- the algorithm ----------------------------------------------------------------

    def partition(self, graph: DependenceGraph) -> PartitionResult:
        state = _State(self.n_cores)
        heights = graph.critical_heights()

        group_of: Dict[int, int] = {}
        for gid, group in enumerate(self.same_core_groups(graph)):
            for op in group:
                group_of[op.uid] = gid
        group_core: Dict[int, int] = {}

        # Visit order: depth-first along critical paths (highest first).
        order = self._priority_order(graph, heights)
        assignment: Dict[int, int] = {}
        finish: Dict[int, int] = {}

        for op in order:
            forced = None
            gid = group_of.get(op.uid)
            if gid is not None and gid in group_core:
                forced = group_core[gid]
            core = forced if forced is not None else self._best_core(
                op, graph, assignment, finish, state
            )
            assignment[op.uid] = core
            finish[op.uid] = self._completion(op, core, graph, assignment, finish, state)
            state.assign(op, core, finish[op.uid])
            if gid is not None:
                group_core[gid] = core

        return PartitionResult(assignment=assignment, estimated_finish=finish)

    def _priority_order(
        self, graph: DependenceGraph, heights: Dict[int, int]
    ) -> List[Operation]:
        """Topological order, preferring higher critical heights (a
        depth-first walk of critical paths, as in Bulldog)."""
        in_degree = {op.uid: 0 for op in graph.ops}
        for edge in graph.all_edges():
            if edge.kind == "carried":
                continue
            in_degree[edge.dst.uid] += 1
        ready = [op for op in graph.ops if in_degree[op.uid] == 0]
        result: List[Operation] = []
        while ready:
            ready.sort(
                key=lambda op: (-heights[op.uid], graph.index[op.uid])
            )
            op = ready.pop(0)
            result.append(op)
            for edge in graph.succs[op.uid]:
                if edge.kind == "carried":
                    continue
                in_degree[edge.dst.uid] -= 1
                if in_degree[edge.dst.uid] == 0:
                    ready.append(edge.dst)
        return result

    def _best_core(
        self,
        op: Operation,
        graph: DependenceGraph,
        assignment: Dict[int, int],
        finish: Dict[int, int],
        state: "_State",
    ) -> int:
        best_core = 0
        best_cost = None
        for core in range(self.n_cores):
            cost = self._completion(op, core, graph, assignment, finish, state)
            cost += self.core_penalty(op, core, state)
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_core = core
        return best_core

    def _comm_latency(self, src_core: int, dst_core: int) -> float:
        hops = self.mesh.hops(
            src_core % self.mesh.n_cores, dst_core % self.mesh.n_cores
        )
        return self.comm_cost_fixed + hops * self.comm_cost_per_hop

    def _completion(
        self,
        op: Operation,
        core: int,
        graph: DependenceGraph,
        assignment: Dict[int, int],
        finish: Dict[int, int],
        state: "_State",
    ) -> float:
        start = float(state.busy_until[core])
        penalty = 0.0
        for edge in graph.preds[op.uid]:
            src = edge.src
            if src.uid not in assignment:
                continue
            src_core = assignment[src.uid]
            if edge.kind == "carried":
                # Affinity only: splitting a recurrence (or a cross-block
                # flow) from its consumer costs a transfer every iteration.
                if src_core != core:
                    penalty += self._comm_latency(src_core, core)
                continue
            ready = finish[src.uid]
            if edge.kind == FLOW and src_core != core:
                ready += self._comm_latency(src_core, core)
            if src_core != core:
                penalty += self.edge_penalty(src, op, edge.kind)
            start = max(start, float(ready))
        # Successor affinity along carried edges already assigned.
        for edge in graph.succs[op.uid]:
            if edge.kind == "carried" and edge.dst.uid in assignment:
                if assignment[edge.dst.uid] != core:
                    penalty += self._comm_latency(core, assignment[edge.dst.uid])
        return start + scheduling_latency(op.opcode) + penalty


class _State:
    """Mutable per-core occupancy during partitioning."""

    def __init__(self, n_cores: int) -> None:
        self.n_cores = n_cores
        self.busy_until = [0.0] * n_cores
        self.op_count = [0] * n_cores
        self.memory_count = [0] * n_cores
        self.total_memory = 0

    def assign(self, op: Operation, core: int, finish: float) -> None:
        # Occupancy is one issue slot per op; operand readiness (not
        # latency) is what delays consumers, and that is tracked via
        # ``finish`` in the completion estimate.
        self.busy_until[core] += 1
        self.op_count[core] += 1
        if op.is_memory():
            self.memory_count[core] += 1
            self.total_memory += 1
