"""Operation partitioners: BUG (coupled ILP), eBUG (decoupled strands),
and DSWP (pipeline parallelism)."""

from .bug import BugPartitioner, PartitionResult
from .ebug import EBugPartitioner
from .dswp import DswpPartition, DswpPartitioner

__all__ = [
    "BugPartitioner",
    "PartitionResult",
    "EBugPartitioner",
    "DswpPartition",
    "DswpPartitioner",
]
