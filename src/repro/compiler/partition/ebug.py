"""Enhanced Bottom-Up Greedy (eBUG) for decoupled-mode strands.

The paper's Section 4.1 lists the three factors eBUG adds on top of BUG:

* **likely missing loads** -- heavy edge weights between loads the profile
  shows missing and their consumers, so a miss and its uses stay on one
  core (a cross-core miss would stall both sender and receiver);
* **memory dependences** -- heavy weights between dependent memory ops, so
  the dummy SEND/RECV synchronization is rarely needed;
* **memory balancing** -- a penalty for cores already holding the majority
  of memory operations, spreading the data footprint over the private L1s
  and letting stalls on different cores overlap.

Loop-carried dependences (register recurrences and carried memory aliases)
are *same-core groups*: splitting them would need a value to cross cores
between iterations, which the queue protocol cannot bootstrap for
iteration zero; the paper's eBUG likewise favours keeping them together.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ...arch.mesh import Mesh
from ...isa.operations import Opcode, Operation, Reg
from ..dfg import CARRIED, FLOW, MEMORY, DependenceGraph
from ..profiling import ExecutionProfile
from .bug import BugPartitioner, _State


class EBugPartitioner(BugPartitioner):
    """BUG with the paper's decoupled-mode weights."""

    # Queue-mode transfers cost 2 cycles + 1 per hop.
    comm_cost_per_hop = 1
    comm_cost_fixed = 2

    #: Edge weight for a likely-missing load feeding a consumer.
    miss_edge_weight = 50.0
    #: Edge weight for a memory dependence (dummy sync would be needed).
    memory_dep_weight = 12.0
    #: Penalty when a core holds more than its share of memory ops.
    memory_balance_penalty = 6.0

    def __init__(
        self,
        mesh: Mesh,
        profile: Optional[ExecutionProfile] = None,
        n_cores: Optional[int] = None,
        miss_threshold: float = 0.05,
    ) -> None:
        super().__init__(mesh, n_cores)
        self.profile = profile
        self.miss_threshold = miss_threshold

    # -- eBUG hooks -------------------------------------------------------------

    def edge_penalty(self, src: Operation, dst: Operation, kind: str) -> float:
        penalty = 0.0
        if kind == MEMORY:
            penalty += self.memory_dep_weight
        if (
            kind == FLOW
            and src.opcode is Opcode.LOAD
            and self._likely_missing(src)
        ):
            penalty += self.miss_edge_weight
        return penalty

    def core_penalty(self, op: Operation, core: int, state: _State) -> float:
        if not op.is_memory():
            return 0.0
        # Counting the op being placed, does this core exceed its fair
        # share of the memory ops seen so far?
        fair_share = (state.total_memory + 1) / self.n_cores
        excess = state.memory_count[core] + 1 - fair_share
        if excess > 0:
            return self.memory_balance_penalty * excess
        return 0.0

    def same_core_groups(
        self, graph: DependenceGraph
    ) -> Sequence[Sequence[Operation]]:
        """Union endpoints of loop-carried edges (register or memory)."""
        parent: Dict[int, int] = {op.uid: op.uid for op in graph.ops}

        def find(uid: int) -> int:
            while parent[uid] != uid:
                parent[uid] = parent[parent[uid]]
                uid = parent[uid]
            return uid

        def union(a: int, b: int) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb

        for edge in graph.all_edges():
            if edge.kind == CARRIED:
                union(edge.src.uid, edge.dst.uid)

        groups: Dict[int, List[Operation]] = {}
        for op in graph.ops:
            groups.setdefault(find(op.uid), []).append(op)
        return [group for group in groups.values() if len(group) > 1]

    # -- helpers -----------------------------------------------------------------

    def _likely_missing(self, op: Operation) -> bool:
        if self.profile is None:
            return False
        return self.profile.likely_missing(op, self.miss_threshold)
