"""Region identification and parallelism selection (paper Section 4.2).

A *region* is a unit of code compiled with one strategy.  In this
reproduction, decoupled regions are single basic blocks (a single-block
loop body, or a miss-heavy straight-line block); everything else is the
default coupled fabric, which handles arbitrary control flow.

Selection policy for the ``hybrid`` strategy, straight from the paper:

1. statistical DOALL loops with sufficient trip count -> LLP ("DOALL loops
   are parallelized first because they provide the most efficient
   parallelism");
2. otherwise, loops whose tentative DSWP partition is projected to beat a
   1.25x threshold -> pipeline fine-grain TLP;
3. otherwise, blocks whose profiled cache-miss time exceeds a fraction of
   their estimated execution time -> strand fine-grain TLP in decoupled
   mode ("the decoupled execution can tolerate memory latencies better");
4. everything else -> ILP in coupled mode ("it provides the lowest
   communication latency").

Single-strategy compiles (Figures 10-12) restrict the policy: ``ilp``
disables all decoupled regions, ``tlp`` disables DOALL and makes every
profitable loop/block decoupled, ``llp`` keeps only DOALL regions and runs
all remaining code on one core.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..isa.operations import Opcode
from ..isa.program import BasicBlock, Function, Program
from .doall import DoallPlan, plan_doall
from .loops import Loop, find_loops, split_loop_latch
from .partition.dswp import DswpPartition, DswpPartitioner
from .profiling import ExecutionProfile

STRATEGIES = ("baseline", "ilp", "tlp", "llp", "hybrid")

#: Paper's DSWP profitability threshold.
DSWP_SPEEDUP_THRESHOLD = 1.25
#: Fraction of estimated execution time spent on cache misses above which
#: a region is compiled as decoupled strands.
MISS_FRACTION_THRESHOLD = 0.15
#: Average L1-miss penalty (cycles) used by the selection estimate.
MISS_PENALTY_ESTIMATE = 10.0
#: Minimum dynamic executions for a block to be worth a decoupled region.
MIN_BLOCK_EXECUTIONS = 4
#: Minimum op count for a strand block.
MIN_STRAND_OPS = 6


@dataclass
class Region:
    rid: int
    strategy: str  # 'doall' | 'dswp' | 'strand' | 'strand_block'
    function: str
    block: str  # body block label
    loop: Optional[Loop] = None
    doall: Optional[DoallPlan] = None
    dswp: Optional[DswpPartition] = None

    @property
    def is_loop(self) -> bool:
        return self.loop is not None


def estimated_miss_fraction(
    function: Function, block: BasicBlock, profile: ExecutionProfile
) -> float:
    """Fraction of the block's estimated serial time lost to L1 misses."""
    executions = profile.block_count(function.name, block.label)
    if executions == 0:
        return 0.0
    total_misses = sum(
        profile.load_misses.get(op.uid, 0) for op in block.ops if op.is_memory()
    )
    exec_cycles = executions * max(len(block.ops), 1)
    return (total_misses * MISS_PENALTY_ESTIMATE) / exec_cycles


def _block_eligible_for_region(block: BasicBlock) -> bool:
    """Decoupled regions must not contain RET/HALT (regions end with a
    barrier back to coupled mode)."""
    return not any(
        op.opcode in (Opcode.RET, Opcode.HALT, Opcode.MODE_SWITCH)
        for op in block.ops
    )


def select_regions(
    program: Program,
    function: Function,
    profile: ExecutionProfile,
    n_cores: int,
    strategy: str,
    ids: Optional[Iterator[int]] = None,
) -> List[Region]:
    """Choose the decoupled regions of one function under ``strategy``.

    ``ids`` allocates region ids.  One :class:`~.codegen.Codegen` run
    passes a single fresh counter for the whole compilation, which makes
    rids -- and the ``R<id>_*`` labels derived from them -- a pure
    function of the program, not of how many compilations the process
    happened to run before (golden stats and cached results rely on
    that).  When omitted, a fresh per-call counter is used."""
    if ids is None:
        ids = itertools.count(1)
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}")
    if strategy in ("baseline", "ilp") or n_cores < 2:
        return []

    regions: List[Region] = []
    loops = find_loops(function)
    loop_body_labels: Set[str] = set()
    for loop in loops:
        loop_body_labels.update(loop.blocks)
    dswp_partitioner = DswpPartitioner(program, n_cores)

    for loop in loops:
        if not loop.is_single_block:
            continue
        block = function.block(loop.header)
        if not _block_eligible_for_region(block):
            continue
        # Canonical shape: the latch branch takes the back edge and falls
        # through to the unique exit.
        if block.taken != loop.header or loop.exit is None:
            continue
        if profile.block_count(function.name, loop.header) < MIN_BLOCK_EXECUTIONS:
            continue

        if strategy in ("llp", "hybrid"):
            doall = plan_doall(program, function, loop, profile, n_cores)
            if doall is not None:
                regions.append(
                    Region(
                        rid=next(ids),
                        strategy="doall",
                        function=function.name,
                        block=loop.header,
                        loop=loop,
                        doall=doall,
                    )
                )
                continue
        if strategy == "llp":
            continue

        # Fine-grain TLP: DSWP first, then miss-driven strands.
        if any(op.opcode is Opcode.CALL for op in block.ops):
            dswp = None  # a call would serialize the pipeline every iteration
        else:
            body_ops, _latch, _replicate = split_loop_latch(block, loop)
            replicated = (
                {loop.induction.reg} if loop.induction is not None else set()
            )
            dswp = dswp_partitioner.partition(
                body_ops, replicated_regs=replicated
            )
        if dswp is not None and dswp.estimated_speedup > DSWP_SPEEDUP_THRESHOLD:
            regions.append(
                Region(
                    rid=next(ids),
                    strategy="dswp",
                    function=function.name,
                    block=loop.header,
                    loop=loop,
                    dswp=dswp,
                )
            )
            continue

        miss_fraction = estimated_miss_fraction(function, block, profile)
        threshold = MISS_FRACTION_THRESHOLD
        has_call = any(op.opcode is Opcode.CALL for op in block.ops)
        _body, _latch, latch_replicable = split_loop_latch(block, loop)
        if strategy == "hybrid":
            if has_call:
                # A call inside a decoupled region costs a full barrier
                # per iteration; coupled mode handles it for free.
                continue
            if not latch_replicable:
                # The predicate round trip (2+hops cycles per iteration)
                # must be paid for by substantially more overlapped misses.
                threshold *= 2.5
        if strategy == "tlp" or miss_fraction > threshold:
            regions.append(
                Region(
                    rid=next(ids),
                    strategy="strand",
                    function=function.name,
                    block=loop.header,
                    loop=loop,
                )
            )

    if strategy in ("tlp", "hybrid"):
        claimed = {region.block for region in regions}
        for block in function.ordered_blocks():
            if block.label in claimed or block.label in loop_body_labels:
                continue
            if not _block_eligible_for_region(block):
                continue
            if block.taken is not None or block.fall is None:
                continue  # strand blocks must be straight fall-through
            if len(block.non_control_ops()) < MIN_STRAND_OPS:
                continue
            if (
                profile.block_count(function.name, block.label)
                < MIN_BLOCK_EXECUTIONS
            ):
                continue
            miss_fraction = estimated_miss_fraction(function, block, profile)
            if miss_fraction > MISS_FRACTION_THRESHOLD:
                regions.append(
                    Region(
                        rid=next(ids),
                        strategy="strand_block",
                        function=function.name,
                        block=block.label,
                    )
                )
    return regions
