"""The dual-mode scalar operand network (paper Section 3.1).

Direct mode: each pair of adjacent cores shares two uni-directional wires.
A ``PUT`` drives a wire during a cycle; the neighbouring core's ``GET``
executed the same cycle latches the value (the compiler aligns the pair;
misalignment is a compiler bug the simulator reports).  ``BCAST`` drives a
one-cycle broadcast seen by every core in the coupled group -- the same
single-cycle global-wire assumption the paper's 1-bit stall bus makes.

Queue mode: ``SEND`` writes a message into the core's send queue (1 cycle);
the router moves it one hop per cycle along the XY route; the receiver's
``RECV`` matches on the sender id (the receive queue is a CAM) and spends
one cycle reading it out -- 2 cycles + 1/hop end to end, as in the paper.
``SPAWN`` and ``RELEASE`` ride the same network as control messages.

Two receive-queue organizations (``NetworkConfig.queue_policy``):

* ``pair`` -- the paper's machine: one private ``queue_depth``-entry
  FIFO per (src, dst) pair.  Storage grows with the square of the core
  count, which is what the scaled meshes cannot afford.
* ``vlink`` -- a Virtual-Link-style multi-producer queue: each receiver
  owns a single ``queue_depth``-entry pool shared by every sender, plus
  one architecturally reserved slot per producer.  The reservation is
  the deadlock-freedom argument: a producer with nothing outstanding
  can always send one message, so a consumer draining channels in an
  order that differs from arrival order (e.g. a DOALL merge reading
  workers in index order) can never wedge the producer it is waiting
  for out of a pool filled by the others.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

from ..arch.config import NetworkConfig
from ..arch.mesh import Mesh
from ..isa.registers import Value
from .recovery import message_crc


class NetworkError(Exception):
    """A protocol violation -- always indicates a compiler bug."""


@dataclass
class Message:
    """A queue-mode message."""

    src: int
    dst: int
    value: Value
    kind: str = "data"  # 'data' | 'spawn' | 'release'
    ready_cycle: int = 0  # cycle at which RECV may consume it
    #: Optional channel tag: loop-carried value channels are primed with a
    #: prologue message, so they must not share FIFO order with ordinary
    #: transfers from the same sender (RAW-style static channels).
    tag: object = None
    #: Send serial number.  Delivery is ordered by (ready_cycle, seq) so a
    #: bulk deliver after a fast-forwarded stall window lands messages in
    #: exactly the order per-cycle delivery would have.
    seq: int = 0
    #: Link-layer CRC over (src, dst, kind, tag, seq, value), stamped at
    #: SEND time when destructive faults are armed (0 otherwise).
    crc: int = 0
    #: Transmission attempts so far (1 = the original send).  Past the
    #: retransmit budget the final attempt is delivered reliably.
    attempts: int = 1
    #: Which receive-side storage this message occupies under the vlink
    #: policy: ``'pool'`` (a shared-pool slot) or ``'reserved'`` (the
    #: producer's architecturally reserved slot).  None under the
    #: per-pair policy.  Exact per-message accounting is what lets the
    #: link layer reclaim slots instead of leaking credits on
    #: retransmission.
    slot: Optional[str] = None


class DirectWires:
    """Direct-mode wires: values driven for exactly one cycle."""

    def __init__(self, mesh: Mesh) -> None:
        self.mesh = mesh
        # (core, direction) -> (value, cycle driven)
        self._wires: Dict[Tuple[int, str], Tuple[Value, int]] = {}
        # src core -> (value, cycle driven)
        self._bcast: Dict[int, Tuple[Value, int]] = {}

    def put(self, core: int, direction: str, value: Value, cycle: int) -> None:
        self.mesh.neighbor(core, direction)  # validates the hop exists
        self._wires[(core, direction)] = (value, cycle)

    def get(
        self,
        core: int,
        direction: str,
        cycle: int,
        bcast_src: Optional[int] = None,
    ) -> Value:
        """Read the wire driven *toward* ``core`` from ``direction``."""
        if direction == "bcast":
            if bcast_src is None:
                fresh = [
                    value
                    for value, when in self._bcast.values()
                    if when == cycle
                ]
                if len(fresh) != 1:
                    raise NetworkError(
                        f"core {core} GET bcast at cycle {cycle} found "
                        f"{len(fresh)} broadcasts and no source id"
                    )
                return fresh[0]
            entry = self._bcast.get(bcast_src)
            if entry is None or entry[1] != cycle:
                raise NetworkError(
                    f"core {core} GET bcast at cycle {cycle} found no "
                    f"broadcast from core {bcast_src}"
                )
            return entry[0]
        driver = self.mesh.neighbor(core, direction)
        from ..arch.mesh import opposite

        entry = self._wires.get((driver, opposite(direction)))
        if entry is None or entry[1] != cycle:
            raise NetworkError(
                f"core {core} GET {direction} at cycle {cycle} found no PUT "
                f"from core {driver}"
            )
        return entry[0]

    def bcast(self, core: int, value: Value, cycle: int) -> None:
        self._bcast[core] = (value, cycle)

    def read_bcast(self, core: int, cycle: int, src: Optional[int] = None) -> Value:
        return self.get(core, "bcast", cycle, bcast_src=src)


class OperandNetwork:
    """Queue-mode transport plus the direct wires."""

    def __init__(self, mesh: Mesh, config: NetworkConfig) -> None:
        self.mesh = mesh
        self.config = config
        self.direct = DirectWires(mesh)
        self.receive_queues: List[List[Message]] = [
            [] for _ in range(mesh.n_cores)
        ]
        # Messages still travelling.
        self._in_flight: List[Message] = []
        # Credit-based flow control: a sender may have at most
        # ``queue_depth`` messages outstanding (in flight or queued) toward
        # one receiver; SEND stalls otherwise.  Per-pair credits keep a
        # flooding sender from head-of-line-blocking another sender's
        # messages out of the receive CAM.
        self._outstanding: Dict[Tuple[int, int], int] = {}
        # Virtual-Link policy: exact per-slot accounting (see module
        # docstring).  ``_pool_load`` counts only shared-pool occupancy
        # per receiver; ``_reserved`` holds the (src, dst) pairs whose
        # architecturally reserved slot is occupied.  A message is
        # tagged with the slot it took at send time (``Message.slot``),
        # so releases and retransmissions never double-charge the pool.
        # Both are unused under the per-pair policy.
        self._vlink = config.queue_policy == "vlink"
        self._pool_load: Dict[int, int] = {}
        self._reserved: set = set()
        self._seq = 0
        self.messages_delivered = 0
        self.send_stalls = 0
        self.total_message_latency = 0
        #: Optional :class:`~repro.sim.faults.FaultPlan`: when attached,
        #: messages occasionally spend extra cycles in flight (a chaos
        #: model of router contention); queue-mode RECVs must tolerate it.
        #: Delays never reorder a (src, dst) pair -- the physical channel
        #: is a FIFO, so a delayed message also delays its successors
        #: (_fifo_floor tracks the pair's latest arrival).
        self.faults = None
        self._fifo_floor: Dict[Tuple[int, int], int] = {}
        #: Optional :class:`~repro.sim.recovery.RecoveryManager`: when
        #: attached (destructive faults armed), SENDs stamp a CRC and
        #: every delivery becomes a transmission attempt the link layer
        #: adjudicates (CRC check / drop detection / retransmission).
        self.recovery = None
        #: Optional :class:`~repro.obs.events.Observability` event bus:
        #: when attached, sends and receives emit probe events.
        self.obs = None

    # -- queue mode -----------------------------------------------------------

    def can_send(self, src: int, dst: int) -> bool:
        if self._vlink:
            # Reserved slot first: a producer with nothing outstanding
            # may always send (the deadlock-freedom invariant); beyond
            # that it competes for the receiver's shared pool.
            return (
                self._outstanding.get((src, dst), 0) == 0
                or self._pool_load.get(dst, 0) < self.config.queue_depth
            )
        return (
            self._outstanding.get((src, dst), 0) < self.config.queue_depth
        )

    def send(
        self,
        src: int,
        dst: int,
        value: Value,
        cycle: int,
        kind: str = "data",
        tag: object = None,
    ) -> None:
        """SEND executed at ``cycle``: enters the send queue this cycle,
        routes one hop per cycle, then needs one read-out cycle."""
        if src == dst and kind == "data":
            raise NetworkError(f"core {src} sent a message to itself")
        if not self.can_send(src, dst):
            raise NetworkError(
                f"core {src} sent to core {dst} without credit "
                "(callers must check can_send and stall)"
            )
        self._outstanding[(src, dst)] = self._outstanding.get((src, dst), 0) + 1
        slot = None
        if self._vlink:
            # Exact slot assignment: take a shared-pool slot while one is
            # free; otherwise this send was admitted through the
            # producer's reserved slot (can_send guarantees it is free --
            # the producer had nothing outstanding).
            if self._pool_load.get(dst, 0) < self.config.queue_depth:
                slot = "pool"
                self._pool_load[dst] = self._pool_load.get(dst, 0) + 1
            else:
                slot = "reserved"
                self._reserved.add((src, dst))
        hops = self.mesh.hops(src, dst)
        arrival = (
            cycle
            + self.config.queue_entry_cycles
            + hops * self.config.queue_cycles_per_hop
        )
        if self.faults is not None:
            key = (src, dst)
            arrival += self.faults.net_delay()
            if self._vlink:
                # Pool contention: the message occasionally waits extra
                # cycles for its slot at the receiver.
                arrival += self.faults.vlink_hold()
            floor = self._fifo_floor.get(key)
            if floor is not None and arrival < floor:
                arrival = floor
            self._fifo_floor[key] = arrival
        self._seq += 1
        message = Message(
            src=src,
            dst=dst,
            value=value,
            kind=kind,
            ready_cycle=arrival,
            tag=tag,
            seq=self._seq,
            slot=slot,
        )
        if self.recovery is not None:
            message.crc = message_crc(message)
        self._in_flight.append(message)
        if self.obs is not None:
            self.obs.net_send(cycle, src, dst, kind, self._seq, arrival)

    def deliver(self, cycle: int) -> None:
        """Move arrived messages into receive queues (per-pair credits bound
        the queue population, so arrival is never refused).

        Arrivals land ordered by (ready_cycle, seq): with per-cycle
        delivery that is the natural append order, and it keeps a bulk
        deliver after a fast-forwarded stall window bit-identical to
        delivering cycle by cycle.
        """
        if not self._in_flight:
            return
        matured = [m for m in self._in_flight if m.ready_cycle <= cycle]
        if not matured:
            return
        self._in_flight = [m for m in self._in_flight if m.ready_cycle > cycle]
        matured.sort(key=lambda m: (m.ready_cycle, m.seq))
        recovery = self.recovery
        if recovery is None:
            for message in matured:
                self.receive_queues[message.dst].append(message)
            return
        # Destructive-fault link layer: each arrival is one transmission
        # attempt.  A failed attempt re-enters flight as a retransmission
        # and -- the physical channel being a FIFO -- drags every later
        # message of the same (src, dst) pair behind it: matured
        # successors are held here, in-flight successors inside
        # ``requeue`` (delivery sorts by (ready_cycle, seq), so equal
        # arrivals still unload in send order).
        held: Dict[Tuple[int, int], int] = {}
        for message in matured:
            key = (message.src, message.dst)
            floor = held.get(key)
            if floor is not None:
                message.ready_cycle = floor
                self._in_flight.append(message)
                continue
            if recovery.link_accept(self, message, cycle):
                self.receive_queues[message.dst].append(message)
            else:
                held[key] = message.ready_cycle

    def requeue(self, message: Message, cycle: int = 0) -> None:
        """Re-enter a failed transmission attempt as a retransmission
        arriving at its (already advanced) ``ready_cycle``.  Later
        messages of the same (src, dst) pair still in flight are pushed
        to arrive no earlier, and the pair's FIFO floor advances so
        future sends queue up behind the retransmission.

        Under the vlink policy the retransmission's slot is
        re-adjudicated: a message that was holding a shared-pool slot
        moves into its producer's reserved slot when that slot has freed
        up in the meantime (the producer's earlier reserved message was
        consumed during the backoff window).  The pool credit is
        returned immediately -- the retransmission buffers in the
        reserved slot -- instead of being held dark for the whole
        backoff, which on a contended 64-core pool is a real slot leak.
        """
        arrival = message.ready_cycle
        self._in_flight.append(message)
        if self._vlink and message.slot == "pool":
            key = (message.src, message.dst)
            if key not in self._reserved:
                self._pool_load[message.dst] = (
                    self._pool_load.get(message.dst, 1) - 1
                )
                self._reserved.add(key)
                message.slot = "reserved"
                if self.recovery is not None:
                    self.recovery.vlink_reclaim(message, cycle)
        for other in self._in_flight:
            if (
                other.seq > message.seq
                and other.src == message.src
                and other.dst == message.dst
                and other.ready_cycle < arrival
            ):
                other.ready_cycle = arrival
        key = (message.src, message.dst)
        floor = self._fifo_floor.get(key)
        if floor is None or arrival > floor:
            self._fifo_floor[key] = arrival

    def try_receive(
        self,
        core: int,
        src: int,
        cycle: int,
        kind: str = "data",
        tag: object = None,
    ) -> Optional[Message]:
        """CAM lookup by sender id (and channel tag); consumes and returns
        the oldest match."""
        queue = self.receive_queues[core]
        for i, message in enumerate(queue):
            if message.kind != kind:
                continue
            if kind == "data" and (message.src != src or message.tag != tag):
                continue
            if message.ready_cycle > cycle:
                continue
            del queue[i]
            self._release_credit(message)
            self.messages_delivered += 1
            self.total_message_latency += cycle - (
                message.ready_cycle
                - self.mesh.hops(message.src, message.dst)
                - self.config.queue_entry_cycles
            )
            if self.obs is not None:
                self.obs.net_recv(cycle, message.seq)
            return message
        return None

    def peek_control(self, core: int, cycle: int) -> Optional[Message]:
        """Oldest spawn/release message for a listening core."""
        queue = self.receive_queues[core]
        for i, message in enumerate(queue):
            if message.kind in ("spawn", "release") and message.ready_cycle <= cycle:
                del queue[i]
                self._release_credit(message)
                if self.obs is not None:
                    self.obs.net_recv(cycle, message.seq)
                return message
        return None

    def _release_credit(self, message: Message) -> None:
        key = (message.src, message.dst)
        self._outstanding[key] = self._outstanding.get(key, 1) - 1
        if self._vlink:
            # Free exactly the slot this message occupied.
            if message.slot == "reserved":
                self._reserved.discard(key)
            else:
                self._pool_load[message.dst] = (
                    self._pool_load.get(message.dst, 1) - 1
                )

    def next_data_arrival(
        self, core: int, src: int, tag: object = None
    ) -> Optional[int]:
        """Earliest ready_cycle of a data message matching a RECV on
        ``core`` from ``src`` with ``tag`` -- queued or still in flight --
        or None when no such message exists anywhere in the network.  Used
        by the fast-forward kernel to compute a blocked RECV's release."""
        best: Optional[int] = None
        for message in self.receive_queues[core]:
            if (
                message.kind == "data"
                and message.src == src
                and message.tag == tag
                and (best is None or message.ready_cycle < best)
            ):
                best = message.ready_cycle
        for message in self._in_flight:
            if (
                message.dst == core
                and message.kind == "data"
                and message.src == src
                and message.tag == tag
                and (best is None or message.ready_cycle < best)
            ):
                best = message.ready_cycle
        return best

    def next_control_arrival(self, core: int) -> Optional[int]:
        """Earliest ready_cycle of a spawn/release message for a listening
        ``core`` (queued or in flight), or None when there is none."""
        best: Optional[int] = None
        for message in self.receive_queues[core]:
            if message.kind in ("spawn", "release") and (
                best is None or message.ready_cycle < best
            ):
                best = message.ready_cycle
        for message in self._in_flight:
            if (
                message.dst == core
                and message.kind in ("spawn", "release")
                and (best is None or message.ready_cycle < best)
            ):
                best = message.ready_cycle
        return best

    def pending_for(self, core: int) -> int:
        return len(self.receive_queues[core]) + sum(
            1 for message in self._in_flight if message.dst == core
        )

    def quiescent(self) -> bool:
        return not self._in_flight and all(
            not queue for queue in self.receive_queues
        )

    def credits_balanced(self) -> bool:
        """Whether every flow-control credit has been returned: no
        outstanding per-pair credits, an empty shared pool, and no
        occupied reserved slots.  On a quiescent network anything else
        is a slot leak -- the chaos suite asserts this after every
        destructive run."""
        return (
            not any(self._outstanding.values())
            and not any(self._pool_load.values())
            and not self._reserved
        )
