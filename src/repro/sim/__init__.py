"""Cycle-level Voltron simulator."""

from .caches import (
    DirectoryCoherence,
    L1ICache,
    SetAssocCache,
    SharedL2,
    SnoopBus,
    make_coherence,
)
from .core import BARRIER_WAIT, HALTED, LISTENING, RUNNING, Core
from .faults import FAULT_PROFILES, FaultConfig, FaultPlan
from .machine import Deadlock, OutOfCycles, SimulatorError, VoltronMachine
from .memory import MainMemory, WriteBuffer
from .network import DirectWires, Message, NetworkError, OperandNetwork
from .recovery import RECOVERY_COUNTERS, RecoveryManager
from .stats import STALL_CATEGORIES, CoreStats, MachineStats
from .tm import TransactionError, TransactionalMemory

__all__ = [
    "DirectoryCoherence",
    "L1ICache",
    "SetAssocCache",
    "SharedL2",
    "SnoopBus",
    "make_coherence",
    "BARRIER_WAIT",
    "HALTED",
    "LISTENING",
    "RUNNING",
    "Core",
    "Deadlock",
    "FAULT_PROFILES",
    "FaultConfig",
    "FaultPlan",
    "OutOfCycles",
    "RECOVERY_COUNTERS",
    "RecoveryManager",
    "SimulatorError",
    "VoltronMachine",
    "MainMemory",
    "WriteBuffer",
    "DirectWires",
    "Message",
    "NetworkError",
    "OperandNetwork",
    "STALL_CATEGORIES",
    "CoreStats",
    "MachineStats",
    "TransactionError",
    "TransactionalMemory",
]
