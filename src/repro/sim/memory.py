"""Value storage: word-addressed main memory plus transactional overlays.

The simulator separates *values* from *timing*: :class:`MainMemory` holds
the architecturally visible words (updated in program order as the cores
commit stores), while :mod:`repro.sim.caches` models only tags, states,
and latencies.  This is the standard timing-directed simplification; the
coherence protocol still decides every access's latency, and the
compiler-enforced orderings are validated functionally by comparing final
memory against the reference interpreter.

Transactions (speculative DOALL chunks) write through a
:class:`WriteBuffer` overlay so aborts never pollute main memory.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

from ..isa.registers import Value


class MainMemory:
    """Word-addressed memory with zero-fill semantics."""

    def __init__(self, image: Optional[Dict[int, Value]] = None) -> None:
        self._words: Dict[int, Value] = dict(image or {})

    def load(self, addr: int) -> Value:
        return self._words.get(addr, 0)

    def store(self, addr: int, value: Value) -> None:
        self._words[addr] = value

    def as_dict(self) -> Dict[int, Value]:
        return dict(self._words)

    def __len__(self) -> int:
        return len(self._words)


class WriteBuffer:
    """Buffered writes of one in-flight transaction."""

    def __init__(self) -> None:
        self._words: Dict[int, Value] = {}
        self.read_set: Set[int] = set()
        self.write_set: Set[int] = set()

    def load(self, addr: int, memory: MainMemory) -> Value:
        self.read_set.add(addr)
        if addr in self._words:
            return self._words[addr]
        return memory.load(addr)

    def store(self, addr: int, value: Value) -> None:
        self.write_set.add(addr)
        self._words[addr] = value

    def publish(self, memory: MainMemory) -> None:
        for addr, value in self._words.items():
            memory.store(addr, value)

    def discard(self) -> None:
        self._words.clear()
        self.read_set.clear()
        self.write_set.clear()

    def conflicts_with(self, writes: Iterable[int]) -> bool:
        """True when another transaction's writes intersect our read set."""
        return any(addr in self.read_set for addr in writes)
