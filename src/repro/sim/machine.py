"""The Voltron machine: cycle-level simulation of dual-mode execution.

Orchestration responsibilities (paper Sections 3.2-3.3):

* **Coupled mode** -- all cores of a group advance in lock-step; the 1-bit
  stall bus is modelled by stalling the whole group whenever any member is
  blocked (cache miss, scoreboard interlock).  PUT/BCAST drive the direct
  wires in the first half of the cycle and GETs latch them in the second,
  which is how the compiler-aligned PUT/GET pairs meet in the same cycle.
* **Decoupled mode** -- cores step independently; RECV stalls only the
  receiving core; SPAWN/SLEEP/LISTEN/RELEASE implement the lightweight
  fine-grain thread protocol; CALL acts as a barrier ("synchronization
  before function calls and returns") after which the callee executes in
  lock-step and the pre-call mode is restored on return.
* **MODE_SWITCH** -- switching to decoupled happens in lock-step
  (compiler-aligned, takes effect next cycle); switching to coupled is a
  barrier: cores wait until the last one arrives, then resume lock-step.
* **Transactions** -- TX_BEGIN checkpoints registers (the compiler's
  register rollback) and opens a TM write buffer; TX_COMMIT enforces
  ordered commit and on conflict rolls the chunk back to its restart block.

Execution engine
----------------

Two layers keep the cycle loop fast without changing any observable
statistic:

* **Pre-decoded dispatch.**  ``__init__`` builds a dispatch table mapping
  each opcode to a handler closure with its result latency pre-resolved
  from :mod:`repro.isa.latencies`, then walks every core's instruction
  stream once, pre-decoding each block's slots into handler tuples.  The
  per-cycle execute path is a single indexed lookup instead of a long
  opcode if-chain plus a latency-table probe.

* **Stall fast-forwarding.**  Whenever *every* live core is provably
  blocked for the rest of the cycle -- cache-miss fills, RECV waits with
  the matching message still in flight, barrier/commit waits -- the
  machine computes each blocked core's release cycle, jumps the clock to
  the earliest one, and bulk-credits the skipped cycles to exactly the
  stall categories single-stepping would have recorded.
  ``MachineStats.summary()`` is bit-identical either way (the
  ``tests/properties/test_prop_fastpath.py`` differential suite enforces
  this); pass ``fast_forward=False`` to force the reference single-step
  kernel.  If every core is blocked and *no* release cycle exists, the
  machine raises :class:`Deadlock` immediately instead of spinning to
  ``max_cycles``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from ..arch.config import MachineConfig
from ..arch.mesh import Mesh
from ..isa.latencies import resolved_latencies
from ..isa.machinecode import CompiledProgram
from ..isa.operations import (
    ALU_SEMANTICS,
    COMPARISONS,
    Opcode,
    Operation,
    Reg,
    RegFile,
)
from ..isa.registers import Value
from .caches import L1ICache, make_coherence
from .core import BARRIER_WAIT, HALTED, LISTENING, RUNNING, Core
from .faults import FaultConfig, FaultPlan
from .memory import MainMemory
from .network import NetworkError, OperandNetwork
from .recovery import RecoveryManager
from .stats import MachineStats
from .tm import TransactionalMemory

#: Per-core instruction address spaces start here (clear of data addresses).
ICODE_BASE = 1 << 24

#: Dispatch-table entry: handler(machine, core, op) -> outcome string.
Handler = Callable[["VoltronMachine", Core, Operation], str]

#: Ops issued on the direct inter-core wires (coupled-mode phase A).
#: Tuples, not sets: enum membership in a short tuple is an identity scan,
#: while a set lookup pays a Python-level Enum.__hash__ call.
_WIRE_OPS = (Opcode.PUT, Opcode.BCAST)
#: Ops that enqueue onto the operand network (back-pressure checked).
_QUEUE_SEND_OPS = (Opcode.SEND, Opcode.SPAWN, Opcode.RELEASE)


class SimulatorError(Exception):
    pass


class OutOfCycles(SimulatorError):
    """The cycle budget was exhausted (likely deadlock or livelock)."""


class Deadlock(SimulatorError):
    pass


class VoltronMachine:
    """Executes a :class:`CompiledProgram` on a configured Voltron system."""

    def __init__(
        self,
        compiled: CompiledProgram,
        config: MachineConfig,
        max_cycles: int = 20_000_000,
        args: Tuple[Value, ...] = (),
        fast_forward: bool = True,
        faults: Optional[FaultPlan] = None,
        obs=None,
        sanitizer=None,
    ) -> None:
        if compiled.n_cores != config.n_cores:
            raise ValueError(
                f"program compiled for {compiled.n_cores} cores, "
                f"machine has {config.n_cores}"
            )
        compiled.validate()
        compiled.assign_addresses()
        self.compiled = compiled
        self.config = config
        self.max_cycles = max_cycles
        self.fast_forward = fast_forward

        rows, cols = config.mesh_shape
        self.mesh = Mesh(rows, cols, config.n_cores)
        self.memory = MainMemory(compiled.program.initial_memory)
        self.bus = make_coherence(config)
        self.icaches = [L1ICache(config.l1i) for _ in range(config.n_cores)]
        self.network = OperandNetwork(self.mesh, config.network)
        self.tm = TransactionalMemory(self.memory)

        # Fault injection (chaos testing): wire the plan into every
        # subsystem with an injection site.  Fault arrivals are per-cycle
        # events the stall fast-forward classifier cannot see, so fault
        # runs use the reference single-step kernel; with no plan the
        # hooks are a single is-None check.
        if isinstance(faults, FaultConfig):
            faults = FaultPlan(faults)
        self.faults = faults
        # Destructive faults additionally get a recovery subsystem: the
        # link layer on the network, the blackout watchdog, and the
        # degradation scheduler.  None (the overwhelmingly common case)
        # keeps every hook a single is-None check.
        self.recovery: Optional[RecoveryManager] = None
        if faults is not None:
            self.fast_forward = False
            self.bus.faults = faults
            for icache in self.icaches:
                icache.faults = faults
            self.network.faults = faults
            self.tm.faults = faults
            if faults.destructive:
                self.recovery = RecoveryManager(self, faults)
                self.network.recovery = self.recovery

        self.cores = [Core(i) for i in range(config.n_cores)]
        main_params = compiled.program.main().params
        if len(args) != len(main_params):
            raise ValueError(
                f"main expects {len(main_params)} args, got {len(args)}"
            )
        for core in self.cores:
            core.push_frame(compiled.entry_function(core.id), return_dest=None)
            # Program arguments materialize in every core's register file
            # (the run-time loader's job, mirroring the interpreter).
            for reg, value in zip(main_params, args):
                core.write_reg(reg, value, 0)
        self.stats = MachineStats(n_cores=config.n_cores)
        for core in self.cores:
            core.stats = self.stats.cores[core.id]

        self.mode = "coupled"
        self._mode_next: Optional[str] = None
        self.cycle = 0
        # HALTED is terminal, so a counter replaces the per-cycle
        # every-core scan in the main loop's continuation test.
        self._halted_count = 0
        self.return_value: Value = None
        # Optional tracing: callables invoked as fn(cycle, core_id, op)
        # for every executed operation (kept empty in performance runs;
        # attaching one disables fast-forwarding so every cycle is visible).
        self.op_observers: List = []
        # Barriers: kind -> set of arrived core ids.
        self._barrier: Dict[str, Set[int]] = {}
        # Cores released from a barrier become RUNNING at the next cycle
        # boundary (releasing mid-cycle would let cores later in the step
        # order run an extra op and break lock-step alignment).
        self._deferred_release: Set[int] = set()
        # (call depth to restore at, mode to restore) entries.
        self._mode_restore: List[Tuple[int, str]] = []
        self._restore_done_this_cycle = False
        # Coupled groups: consecutive runs of at most coupled_group_size cores.
        size = config.coupled_group_size
        self.groups: List[List[Core]] = [
            self.cores[i : i + size] for i in range(0, config.n_cores, size)
        ]
        # Clustered coupled mode (16-64-core meshes): the DVLIW schedule
        # spans every core, so past one stall-bus group the whole machine
        # still steps as ONE lock-step ensemble -- per-cluster stepping
        # would break cross-cluster PUT/GET wire alignment.  The 1-bit
        # stall bus only reaches coupled_group_size cores, though, so a
        # stall crossing cluster boundaries pays cluster_stall_latency
        # extra cycles (the cluster-level stall network above the buses),
        # charged once per stall episode per blocked core.
        if len(self.groups) > 1:
            self.coupled_ensembles: List[List[Core]] = [self.cores]
            self._cluster_penalty = config.cluster_stall_latency
        else:
            self.coupled_ensembles = self.groups
            self._cluster_penalty = 0
        self._cluster_penalized: Set[int] = set()

        self._dispatch: Dict[Opcode, Handler] = build_dispatch_table()
        self._memory_latency = config.memory_latency
        self._predecode()

        # Observability (repro.obs): attaching an event bus wires typed
        # probes into every subsystem; detached, each hook is a single
        # is-None check, so performance runs and the fast-forward
        # differential suite are untouched.  Attach last: the bus hooks
        # the per-core stall methods and the network/TM/cache objects
        # constructed above.
        self.obs = obs
        if obs is not None:
            obs.attach(self)

        # Dynamic race sanitizer (repro.analysis): read-only happens-before
        # probes on the memory/comm/TM handlers, same is-None cost model
        # as obs.  Attached after obs so its probes see the fully wired
        # machine (it reads tm/network state but never mutates it).
        self.sanitizer = sanitizer
        if sanitizer is not None:
            sanitizer.attach(self)

    # -- pre-decode ----------------------------------------------------------------

    def _predecode(self) -> None:
        """Walk every core's instruction stream once, resolving each slot's
        opcode to its dispatch-table handler, an is-direct-wire flag
        (PUT/BCAST, issued in coupled phase A), and the tuple of register
        sources the scoreboard must probe.  The results live on the block
        itself (``CoreBlock.decoded``).  Unknown opcodes keep a None entry
        and fail at execute time with the usual diagnostic."""
        for stream in self.compiled.streams:
            for function in stream.values():
                for block in function.ordered_blocks():
                    handlers = tuple(
                        None
                        if op is None
                        else self._dispatch.get(op.opcode)
                        for op in block.slots
                    )
                    wires = tuple(
                        op is not None and op.opcode in _WIRE_OPS
                        for op in block.slots
                    )
                    srcregs = tuple(
                        ()
                        if op is None
                        else tuple(
                            src for src in op.srcs if isinstance(src, Reg)
                        )
                        for op in block.slots
                    )
                    block.decoded = (handlers, wires, srcregs)
                    # Attribution key for the per-cycle block accounting,
                    # materialized once instead of per cycle.
                    block.stat_key = (function.name, block.label)

    # -- public API ---------------------------------------------------------------

    def run(self) -> MachineStats:
        cores = self.cores
        core_stats = tuple(core.stats for core in cores)
        block_cycles = self.stats.block_cycles
        mode_cycles = self.stats.mode_cycles
        master = cores[0]
        # Mode residency and block attribution are accumulated in locals
        # and flushed on change (blocks persist for many cycles), keeping
        # two dictionary updates off the per-cycle path.  The fast-forward
        # bulk credits write to the same dicts directly; both paths only
        # ever add, so interleaving is safe.
        mode_count = 0
        block_key = None
        block_count = 0
        # Fast-forward is only attempted after a cycle in which no core
        # issued (tracked by the busy tallies): progress cycles never pay
        # for the classifier, and the first cycle of every stall window is
        # single-stepped -- which credits it identically anyway.
        stalled_prev = True
        busy_total = sum(s.busy for s in core_stats)
        obs = self.obs
        sanitizer = self.sanitizer
        try:
            while not self._all_halted():
                if self.cycle >= self.max_cycles:
                    raise OutOfCycles(
                        f"exceeded {self.max_cycles} cycles "
                        f"(likely deadlock or livelock)\n"
                        + self._core_diagnostics()
                    )
                # Deadlock is only possible when every live core is
                # listening; run the full probe lazily (core 0 is normally
                # running, which rules a deadlock out on its own).
                status0 = master.status
                if status0 == HALTED or status0 == LISTENING:
                    self._check_deadlock()
                self.network.deliver(self.cycle)
                if self.recovery is not None:
                    self.recovery.tick(self.cycle)
                self._restore_done_this_cycle = False
                if self._deferred_release:
                    for core_id in self._deferred_release:
                        if cores[core_id].status == BARRIER_WAIT:
                            cores[core_id].status = RUNNING
                    self._deferred_release.clear()
                if (
                    self.fast_forward
                    and stalled_prev
                    and self._try_fast_forward()
                ):
                    continue
                if self.mode == "coupled":
                    for group in self.coupled_ensembles:
                        self._step_group(group)
                else:
                    for core in cores:
                        self._step_decoupled(core)
                busy_now = 0
                for stats in core_stats:
                    busy_now += stats.busy
                stalled_prev = busy_now == busy_total
                busy_total = busy_now
                mode_count += 1
                key = master.frame.block.stat_key if master.stack else None
                if key is not block_key:
                    if block_count:
                        block_cycles[block_key] = (
                            block_cycles.get(block_key, 0) + block_count
                        )
                    block_key = key
                    block_count = 0
                if key is not None:
                    block_count += 1
                if self._mode_next is not None:
                    mode_cycles[self.mode] += mode_count
                    mode_count = 0
                    if self._mode_next != self.mode:
                        self.stats.mode_switches += 1
                        if self.recovery is not None:
                            # Degradation re-arms at mode barriers.
                            self.recovery.on_mode_switch(self.cycle + 1)
                        if obs is not None:
                            # This cycle still counts under the old mode;
                            # the switch takes effect at cycle + 1.
                            obs.mode_switch(
                                self.cycle + 1, self.mode, self._mode_next
                            )
                        if sanitizer is not None:
                            sanitizer.on_mode_flip(self.mode, self._mode_next)
                    self.mode = self._mode_next
                    self._mode_next = None
                if obs is not None:
                    obs.cycle(self.cycle)
                self.cycle += 1
        finally:
            # Flush even when OutOfCycles/Deadlock propagates, so the
            # stats reflect every completed cycle.
            if mode_count:
                mode_cycles[self.mode] += mode_count
            if block_count:
                block_cycles[block_key] = (
                    block_cycles.get(block_key, 0) + block_count
                )
        self.stats.cycles = self.cycle
        self.stats.tx_commits = self.tm.commits
        self.stats.tx_aborts = self.tm.aborts
        if self.recovery is not None:
            self.stats.recovery = self.recovery.counters_dict()
            check_directory = getattr(self.bus, "check_directory", None)
            if check_directory is not None:
                # Destructive runs scrub dead cores out of the sharer
                # vectors mid-flight; prove the directory still mirrors
                # the L1s once the run settles.
                check_directory()
        if obs is not None:
            obs.finalize(self)
        return self.stats

    def final_memory(self) -> Dict[int, Value]:
        return self.memory.as_dict()

    def array_values(self, name: str) -> List[Value]:
        symbol = self.compiled.program.array(name)
        return [self.memory.load(symbol.base + i) for i in range(symbol.size)]

    # -- helpers -------------------------------------------------------------------

    def _all_halted(self) -> bool:
        return self._halted_count >= len(self.cores)

    def _live_cores(self) -> List[Core]:
        return [core for core in self.cores if core.status != HALTED]

    def _check_deadlock(self) -> None:
        # Hot path: bail at the first live core that is not listening
        # (normally core 0, immediately) without building any lists.
        any_live = False
        for core in self.cores:
            status = core.status
            if status != HALTED:
                if status != LISTENING:
                    return
                any_live = True
        if any_live and self.network.quiescent():
            raise Deadlock(
                f"cycle {self.cycle}: every live core is listening and the "
                "network is quiescent\n" + self._core_diagnostics()
            )

    def _core_diagnostics(self) -> str:
        """Per-core state for Deadlock/OutOfCycles messages: position,
        stall reason, and operand-queue occupancy -- enough to debug a
        chaos-suite failure from the exception text alone."""
        lines = [f"mode={self.mode} cycle={self.cycle}"]
        for core in self.cores:
            if core.stack:
                name, label, slot = core.position()
                where = f"pc={name}:{label}:{slot}"
            else:
                where = "pc=<no frame>"
            if core.next_free > self.cycle:
                stall = (
                    f"blocked[{core.pending_cause or 'latency'}] "
                    f"until cycle {core.next_free}"
                )
            else:
                stall = "free"
            lines.append(
                f"  core {core.id}: {core.status} {where} {stall} "
                f"queue={self.network.pending_for(core.id)} pending msg(s)"
            )
        return "\n".join(lines)

    # -- stall fast-forwarding ---------------------------------------------------

    def _try_fast_forward(self) -> bool:
        """If no core can make progress this cycle, jump the clock to the
        earliest release cycle, crediting the skipped cycles to exactly
        the stall categories per-cycle stepping would have recorded.

        Returns True when the clock was advanced (the caller skips the
        normal step for this iteration).  Conservative by construction:
        any situation the classifier cannot prove to be a pure stall makes
        it decline, so single-stepping remains the semantic reference.
        """
        if self.op_observers:
            return False
        cycle = self.cycle
        # (stats, category) pairs to bulk-credit per skipped cycle.
        credits: List[Tuple] = []
        releases: List[int] = []
        send_stalled = 0

        if self.mode == "coupled":
            for group in self.coupled_ensembles:
                running = [c for c in group if c.status == RUNNING]
                if not running:
                    continue
                if self._cluster_penalty:
                    # The classifier can be the first to see a new stall
                    # episode (an istall blocks the whole ensemble with
                    # no busy increment, so fast-forward runs before the
                    # next single step): charge the cross-cluster
                    # penalty here too, or the skipped window would be
                    # too short.
                    self._apply_cluster_penalty(running, cycle)
                blocked = [c for c in running if c.next_free > cycle]
                if blocked:
                    # Stall bus: attribution is constant until the first
                    # blocked member's fill returns.
                    group_cause = blocked[0].pending_cause or "latency"
                    for core in running:
                        if core.next_free > cycle:
                            credits.append(
                                (core.stats, core.pending_cause or "latency")
                            )
                        else:
                            credits.append((core.stats, group_cause))
                    releases.append(min(c.next_free for c in blocked))
                    continue
                # A free group falls through empty blocks / fetches / issues
                # -- all state changes -- unless the scoreboard holds it.
                if any(c.at_block_end() or c.needs_fetch() for c in running):
                    return False
                release: Optional[int] = None
                for core in running:
                    op = core.current_op()
                    if op is None:
                        continue
                    for src in op.srcs:
                        if isinstance(src, Reg):
                            ready = core.reg_ready.get(src, 0)
                            if ready > cycle and (
                                release is None or ready > release
                            ):
                                release = ready
                if release is None:
                    return False  # every source ready: the group issues
                # Lock-step scoreboard interlock: the group waits for the
                # *last* source, stalling "latency" on every member.
                for core in running:
                    credits.append((core.stats, "latency"))
                releases.append(release)
        else:
            for core in self.cores:
                if core.status == HALTED:
                    continue
                if core.status == BARRIER_WAIT:
                    cause = (
                        "call_sync"
                        if core.id in self._barrier.get("call", set())
                        else "barrier"
                    )
                    credits.append((core.stats, cause))
                    continue  # released by another core's arrival
                if core.next_free > cycle:
                    credits.append(
                        (core.stats, core.pending_cause or "latency")
                    )
                    releases.append(core.next_free)
                    continue
                if core.status == LISTENING:
                    arrival = self.network.next_control_arrival(core.id)
                    if arrival is not None and arrival <= cycle:
                        return False  # a control message is consumable now
                    credits.append((core.stats, "idle"))
                    if arrival is not None:
                        releases.append(arrival)
                    continue
                # RUNNING and free: mirror _step_decoupled's check order.
                if core.at_block_end() or core.needs_fetch():
                    return False
                op = core.current_op()
                if op is None or op.opcode is Opcode.CALL:
                    return False
                if op.opcode is Opcode.TX_COMMIT and not self.tm.may_commit(
                    core.id
                ):
                    credits.append((core.stats, "tx_wait"))
                    continue  # released by an earlier chunk's commit
                if op.opcode in _QUEUE_SEND_OPS:
                    if not self.network.can_send(
                        core.id, op.attrs["target_core"]
                    ):
                        credits.append((core.stats, "send"))
                        send_stalled += 1
                        continue  # released when the receiver drains
                if not core.srcs_ready(op, cycle):
                    release = max(
                        core.reg_ready.get(src, 0)
                        for src in op.srcs
                        if isinstance(src, Reg)
                        and core.reg_ready.get(src, 0) > cycle
                    )
                    credits.append((core.stats, "latency"))
                    releases.append(release)
                    continue
                if op.opcode is Opcode.RECV:
                    arrival = self.network.next_data_arrival(
                        core.id,
                        op.attrs["source_core"],
                        op.attrs.get("tag"),
                    )
                    if arrival is not None and arrival <= cycle:
                        return False  # the message is receivable now
                    credits.append((core.stats, self._recv_category(op)))
                    if arrival is not None:
                        releases.append(arrival)
                    continue
                return False  # the core issues this cycle

        if not credits:
            return False  # nothing to account for: not a provable stall
        if not releases:
            # Every live core is blocked and nothing in the machine will
            # ever release one: barrier arrivals, commits, sends, and
            # control messages all require some core to issue first.
            raise Deadlock(
                f"cycle {self.cycle}: every core is blocked with no "
                "release cycle\n" + self._core_diagnostics()
            )
        target = min(min(releases), self.max_cycles)
        skipped = target - cycle
        if skipped <= 0:
            return False
        for stats, category in credits:
            stats.stall(category, skipped)
        self.network.send_stalls += send_stalled * skipped
        self.stats.mode_cycles[self.mode] += skipped
        master = self.cores[0]
        if master.stack:
            key = master.frame.block.stat_key
            self.stats.block_cycles[key] = (
                self.stats.block_cycles.get(key, 0) + skipped
            )
        if self.obs is not None:
            # The bulk stall credits above were recorded (via the hooked
            # per-core stall methods) while self.cycle was still the old
            # cycle, so their spans already cover [cycle, target).
            self.obs.fast_forward_window(cycle, target)
        self.cycle = target
        return True

    # -- coupled (lock-step) stepping -------------------------------------------------

    def _apply_cluster_penalty(self, running: List[Core], cycle: int) -> None:
        """Clustered coupled mode: extend each *newly* blocked core's
        episode by the cross-cluster stall-propagation latency.  The
        ``_cluster_penalized`` set remembers which cores' current
        episodes have already paid, and is cleared per core the moment
        that core runs free again, so the next episode pays afresh."""
        penalized = self._cluster_penalized
        for core in running:
            if core.next_free > cycle:
                if core.id not in penalized:
                    penalized.add(core.id)
                    core.next_free += self._cluster_penalty
            else:
                penalized.discard(core.id)

    def _step_group(self, group: List[Core]) -> None:
        cycle = self.cycle
        running = [core for core in group if core.status == RUNNING]
        if not running:
            return

        # Fault injection: a transient stall-bus assertion holds the
        # whole group for a few cycles, exactly as if a member were
        # blocked; lock-step alignment is preserved because nobody moves.
        if self.faults is not None:
            hold = self.faults.stall_hold()
            if hold:
                for core in running:
                    core.block_until(cycle + hold, "latency")

        # Stall bus: any blocked member stalls the whole group.  Across
        # cluster boundaries the stall signal rides the (slower)
        # cluster-level network: each blocked core's episode stretches by
        # the propagation penalty, once, when the episode is first seen.
        if self._cluster_penalty:
            self._apply_cluster_penalty(running, cycle)
        blocked = [core for core in running if core.next_free > cycle]
        if blocked:
            group_cause = blocked[0].pending_cause or "latency"
            for core in running:
                if core.next_free > cycle:
                    core.stats.stall(core.pending_cause or "latency")
                else:
                    core.stats.stall(group_cause)
            return

        # Zero-length blocks (pure structure) fall through without cost.
        for core in running:
            frame = core.frame
            if frame.slot >= len(frame.block.slots):
                self._finish_block(core)
        running = [core for core in running if core.status == RUNNING]
        if not running:
            return
        if len(running) > 1:
            self._assert_lockstep(running)

        # Fetch phase: an I-miss on any core stalls the group.
        missed = False
        for core in running:
            addr = core.take_fetch()
            if addr is not None:
                extra = self.icaches[core.id].access(
                    ICODE_BASE * (core.id + 1) + addr,
                    self.bus.l2,
                    self._memory_latency,
                )
                if extra:
                    core.stats.l1i_misses += 1
                    core.block_until(cycle + 1 + extra, "istall")
                    missed = True
        if missed:
            for core in running:
                core.stats.stall("istall")
            return

        # Decode once per core per cycle (op, handler, wire flag, register
        # sources pulled from the pre-decoded block); the issue phases
        # reuse the entries (PUT/BCAST leave the frame untouched, so they
        # stay valid).
        issue = []
        for core in running:
            frame = core.frame
            slot = frame.slot
            op = frame.block.slots[slot]
            if op is None:
                issue.append((core, None, None, False, ()))
                continue
            entry = frame.block.decoded
            if entry is not None:
                issue.append(
                    (core, op, entry[0][slot], entry[1][slot], entry[2][slot])
                )
            else:  # a block assembled after construction: decode on the fly
                issue.append(
                    (
                        core,
                        op,
                        self._dispatch.get(op.opcode),
                        op.opcode in _WIRE_OPS,
                        tuple(s for s in op.srcs if isinstance(s, Reg)),
                    )
                )

        # Scoreboard phase: lock-step means one unready core stalls all.
        for core, op, _, _, srcs in issue:
            if srcs:
                reg_ready = core.reg_ready
                for src in srcs:
                    if reg_ready.get(src, 0) > cycle:
                        for member in running:
                            member.stats.stall("latency")
                        return

        observed = bool(self.op_observers)

        # Issue phase A: drive the direct wires.
        for core, op, handler, wire, _ in issue:
            if wire:
                if observed:
                    self._execute(core, op)
                else:
                    handler(self, core, op)
                core.stats.busy += 1
                core.stats.ops_executed += 1

        # Issue phase B: everything else (GETs read the wires driven above).
        for core, op, handler, wire, _ in issue:
            if wire:
                outcome = "ok"
            elif op is None:
                core.stats.busy += 1
                outcome = "ok"
            else:
                if observed:
                    outcome = self._execute(core, op)
                elif handler is None:
                    raise SimulatorError(f"unimplemented opcode {op.opcode!r}")
                else:
                    outcome = handler(self, core, op)
                core.stats.busy += 1
                core.stats.ops_executed += 1
                if outcome == "stall":
                    raise SimulatorError(
                        f"cycle {cycle}: {op!r} stalled in coupled mode "
                        f"on core {core.id}; the compiler must not place "
                        "queue-mode waits in coupled regions"
                    )
            if core.status != RUNNING:
                continue
            if outcome == "ok":
                frame = core.frame
                frame.slot += 1
                if frame.slot >= len(frame.block.slots):
                    self._finish_block(core)

    def _assert_lockstep(self, running: List[Core]) -> None:
        # Attribute compares instead of materializing position tuples:
        # this invariant is checked every coupled cycle.
        first = running[0].frame
        slot = first.slot
        label = first.block.label
        function = first.function.name
        for core in running:
            frame = core.frame
            if (
                frame.slot != slot
                or frame.block.label != label
                or frame.function.name != function
            ):
                raise SimulatorError(
                    f"cycle {self.cycle}: coupled cores diverged: "
                    + ", ".join(repr(core) for core in running)
                )

    # -- decoupled stepping --------------------------------------------------------

    def _step_decoupled(self, core: Core) -> None:
        cycle = self.cycle
        if core.status == HALTED:
            return
        if core.status == BARRIER_WAIT:
            cause = "call_sync" if core.id in self._barrier.get("call", set()) else (
                "barrier"
            )
            core.stats.stall(cause)
            return
        if core.next_free > cycle:
            core.stats.stall(core.pending_cause or "latency")
            return
        if core.status == LISTENING:
            self._step_listening(core)
            return

        # Destructive faults: a RUNNING, issue-ready core inside a
        # speculative chunk may black out this cycle (wiping registers
        # and scoreboard); the watchdog recovers it via TM rollback.
        if self.recovery is not None and self.recovery.maybe_blackout(
            core, cycle
        ):
            core.stats.stall("latency")
            return

        # Zero-length blocks (pure structure) fall through without cost.
        frame = core.frame
        if frame.slot >= len(frame.block.slots):
            self._finish_block(core)
            if core.status != RUNNING:
                return
            frame = core.frame

        # Fetch.
        addr = core.take_fetch()
        if addr is not None:
            extra = self.icaches[core.id].access(
                ICODE_BASE * (core.id + 1) + addr,
                self.bus.l2,
                self._memory_latency,
            )
            if extra:
                core.stats.l1i_misses += 1
                core.block_until(cycle + 1 + extra, "istall")
                core.stats.stall("istall")
                return

        slot = frame.slot
        op = frame.block.slots[slot]
        if op is None:
            core.stats.busy += 1
            frame.slot = slot + 1
            self._finish_block(core)
            return

        opcode = op.opcode
        if opcode is Opcode.CALL:
            self._arrive_call_barrier(core, op)
            return
        if opcode is Opcode.TX_COMMIT and not self.tm.may_commit(core.id):
            core.stats.stall("tx_wait")
            return
        if (
            opcode is Opcode.TX_BEGIN
            and self.recovery is not None
            and self.recovery.defer_tx_begin(core, op)
        ):
            # Graceful degradation: a degraded core issues its chunks
            # under the serialized fewer-core schedule.
            core.stats.stall("tx_wait")
            return
        if opcode in _QUEUE_SEND_OPS:
            target = op.attrs["target_core"]
            if not self.network.can_send(core.id, target):
                core.stats.stall("send")
                self.network.send_stalls += 1
                return
        entry = frame.block.decoded
        if entry is not None:
            reg_ready = core.reg_ready
            for src in entry[2][slot]:
                if reg_ready.get(src, 0) > cycle:
                    core.stats.stall("latency")
                    return
        elif not core.srcs_ready(op, cycle):
            core.stats.stall("latency")
            return

        if self.op_observers:
            outcome = self._execute(core, op)
        else:
            # Inlined _execute fast path (mirrors coupled-mode phase B).
            handler = (
                entry[0][slot]
                if entry is not None
                else self._dispatch.get(opcode)
            )
            if handler is None:
                raise SimulatorError(f"unimplemented opcode {opcode!r}")
            outcome = handler(self, core, op)
        if outcome == "stall":
            return  # stall already attributed (e.g. empty receive queue)
        core.stats.busy += 1
        core.stats.ops_executed += 1
        if core.status == RUNNING and outcome == "ok":
            frame = core.frame
            frame.slot += 1
            if frame.slot >= len(frame.block.slots):
                self._finish_block(core)

    def _step_listening(self, core: Core) -> None:
        message = self.network.peek_control(core.id, self.cycle)
        if message is None:
            core.stats.stall("idle")
            return
        core.stats.busy += 1
        core.status = RUNNING
        if self.sanitizer is not None:
            self.sanitizer.on_control_recv(core, message.src)
        if message.kind == "spawn":
            core.jump(message.value)
        else:  # release: move past the LISTEN op
            core.advance_slot()
            self._finish_block(core)

    def _arrive_call_barrier(self, core: Core, op: Operation) -> None:
        """Decoupled-mode CALL: wait for every live core, then call in
        lock-step (the paper's call/return synchronization)."""
        arrived = self._barrier.setdefault("call", set())
        arrived.add(core.id)
        core.status = BARRIER_WAIT
        core.stats.busy += 1  # the arrival cycle issues the (pending) call
        live = {c.id for c in self._live_cores()}
        if arrived >= live:
            del self._barrier["call"]
            callee_names = set()
            for member_id in sorted(arrived):
                member = self.cores[member_id]
                self._deferred_release.add(member_id)
                call_op = member.current_op()
                assert call_op is not None and call_op.opcode is Opcode.CALL
                callee_names.add(call_op.attrs["function"])
                self._do_call(member, call_op)
            if len(callee_names) != 1:
                raise SimulatorError(
                    f"cycle {self.cycle}: cores joined a call barrier for "
                    f"different callees {sorted(callee_names)}"
                )
            self._mode_restore.append((self.cores[0].call_depth - 1, "decoupled"))
            self._mode_next = "coupled"

    # -- operation semantics ----------------------------------------------------------

    def _execute(self, core: Core, op: Operation) -> str:
        """Execute one op; returns 'ok', 'redirect', or 'stall'."""
        if self.op_observers:
            for observer in self.op_observers:
                observer(self.cycle, core.id, op)
        frame = core.frame
        entry = frame.block.decoded
        if entry is not None:
            handler = entry[0][frame.slot]
        else:  # a block assembled after construction: decode on the fly
            handler = self._dispatch.get(op.opcode)
        if handler is None:
            raise SimulatorError(f"unimplemented opcode {op.opcode!r}")
        return handler(self, core, op)

    @staticmethod
    def _recv_category(op: Operation) -> str:
        sync = op.attrs.get("sync")
        if sync == "call":
            return "call_sync"
        if op.dests and op.dests[0].file is RegFile.PR:
            return "recv_pred"
        return "recv_data"

    def _do_load(self, core: Core, op: Operation) -> str:
        read = core.read_operand
        addr = int(read(op.srcs[0])) + int(read(op.srcs[1]))
        cycles, miss = self.bus.access(core.id, addr, is_store=False)
        value = self.tm.load(core.id, addr)
        core.write_reg(op.dest, value, self.cycle + 1 + cycles)
        core.stats.loads += 1
        if self.sanitizer is not None:
            self.sanitizer.on_load(core, op, addr)
        if miss or cycles > self.config.l1d.hit_latency:
            core.stats.l1d_misses += miss
            core.block_until(self.cycle + 1 + cycles, "dstall")
        return "ok"

    def _do_store(self, core: Core, op: Operation) -> str:
        read = core.read_operand
        addr = int(read(op.srcs[0])) + int(read(op.srcs[1]))
        cycles, miss = self.bus.access(core.id, addr, is_store=True)
        self.tm.store(core.id, addr, read(op.srcs[2]))
        core.stats.stores += 1
        if self.sanitizer is not None:
            self.sanitizer.on_store(core, op, addr)
        if miss or cycles > self.config.l1d.hit_latency:
            core.stats.l1d_misses += miss
            core.block_until(self.cycle + 1 + cycles, "dstall")
        return "ok"

    def _do_branch(self, core: Core, op: Operation) -> str:
        read = core.read_operand
        taken = len(op.srcs) == 1 or bool(read(op.srcs[1]))
        if taken:
            core.jump(read(op.srcs[0]))
        else:
            if core.frame.block.fall is None:
                raise SimulatorError(
                    f"core {core.id} fell through a branch with no fall "
                    f"edge in {core.frame.block.label}"
                )
            core.jump(core.frame.block.fall)
        return "redirect"

    def _do_call_op(self, core: Core, op: Operation) -> str:
        self._do_call(core, op)
        return "redirect"

    def _do_call(self, core: Core, op: Operation) -> None:
        callee = self.compiled.core_function(core.id, op.attrs["function"])
        # Copy arguments into the callee's formal registers on this core.
        formals = self.compiled.program.function(op.attrs["function"]).params
        values = [core.read_operand(src) for src in op.srcs]
        core.frame.slot += 1  # resume after the call
        core.push_frame(callee, return_dest=op.dest)
        for reg, value in zip(formals, values):
            core.write_reg(reg, value, self.cycle + 1)

    def _do_ret(self, core: Core, op: Operation) -> str:
        value = core.read_operand(op.srcs[0]) if op.srcs else None
        finished = core.pop_frame()
        if not core.stack:
            core.status = HALTED
            self._halted_count += 1
            if core.id == 0:
                self.return_value = value
            return "redirect"
        if finished.return_dest is not None and op.srcs:
            core.write_reg(finished.return_dest, value, self.cycle + 1)
        if (
            self._mode_restore
            and self._mode_restore[-1][0] == core.call_depth
            and not self._restore_done_this_cycle
        ):
            _, mode = self._mode_restore.pop()
            self._mode_next = mode
            self._restore_done_this_cycle = True
        self._finish_block(core)
        return "redirect"

    def _do_halt(self, core: Core, op: Operation) -> str:
        if self.tm.in_transaction(core.id):
            raise SimulatorError(f"core {core.id} halted inside a transaction")
        core.status = HALTED
        self._halted_count += 1
        return "redirect"

    def _do_put(self, core: Core, op: Operation) -> str:
        self.network.direct.put(
            core.id, op.attrs["direction"], core.read_operand(op.srcs[0]),
            self.cycle,
        )
        return "ok"

    def _do_bcast(self, core: Core, op: Operation) -> str:
        self.network.direct.bcast(
            core.id, core.read_operand(op.srcs[0]), self.cycle
        )
        return "ok"

    def _do_get(self, core: Core, op: Operation) -> str:
        value = self.network.direct.get(
            core.id,
            op.attrs["direction"],
            self.cycle,
            bcast_src=op.attrs.get("bcast_src"),
        )
        core.write_reg(op.dest, value, self.cycle + 1)
        return "ok"

    def _do_send(self, core: Core, op: Operation) -> str:
        self.network.send(
            core.id,
            op.attrs["target_core"],
            core.read_operand(op.srcs[0]),
            self.cycle,
            tag=op.attrs.get("tag"),
        )
        core.stats.messages_sent += 1
        if self.sanitizer is not None:
            self.sanitizer.on_send(
                core, op.attrs["target_core"], op.attrs.get("tag")
            )
        return "ok"

    def _do_recv(self, core: Core, op: Operation) -> str:
        message = self.network.try_receive(
            core.id,
            op.attrs["source_core"],
            self.cycle,
            tag=op.attrs.get("tag"),
        )
        if message is None:
            core.stats.stall(self._recv_category(op))
            return "stall"
        if op.dests:
            core.write_reg(op.dest, message.value, self.cycle + 1)
        core.stats.messages_received += 1
        if self.sanitizer is not None:
            self.sanitizer.on_recv(
                core, op.attrs["source_core"], op.attrs.get("tag")
            )
        return "ok"

    def _do_spawn(self, core: Core, op: Operation) -> str:
        self.network.send(
            core.id,
            op.attrs["target_core"],
            op.attrs["target_block"],
            self.cycle,
            kind="spawn",
        )
        self.stats.spawns += 1
        if self.sanitizer is not None:
            self.sanitizer.on_control_send(core, op.attrs["target_core"])
        return "ok"

    def _do_release(self, core: Core, op: Operation) -> str:
        self.network.send(
            core.id, op.attrs["target_core"], None, self.cycle, kind="release"
        )
        if self.sanitizer is not None:
            self.sanitizer.on_control_send(core, op.attrs["target_core"])
        return "ok"

    def _do_sleep(self, core: Core, op: Operation) -> str:
        assert core.listen_return is not None, "SLEEP outside a spawned thread"
        block, slot = core.listen_return
        core.frame.block = block
        core.frame.slot = slot
        core._fetched = None
        core.status = LISTENING
        return "redirect"

    def _do_listen(self, core: Core, op: Operation) -> str:
        core.listen_return = (core.frame.block, core.frame.slot)
        core.status = LISTENING
        return "redirect"

    def _do_tx_begin(self, core: Core, op: Operation) -> str:
        self.tm.begin(
            core.id,
            op.attrs["region"],
            op.attrs["order"],
            op.attrs.get("chunks", 0),
        )
        core.checkpoint_registers(op.attrs["restart"])
        return "ok"

    def _do_tx_commit(self, core: Core, op: Operation) -> str:
        if self.tm.try_commit(core.id):
            core.block_until(
                self.cycle + 1 + self.config.tm_commit_latency, "tx_wait"
            )
            core.tx_checkpoint = None
            if self.sanitizer is not None:
                self.sanitizer.on_tx_commit(core)
            return "ok"
        restart = core.rollback_registers()
        core.jump(restart)
        if self.sanitizer is not None:
            self.sanitizer.on_tx_abort(core)
        return "redirect"

    def _do_mode_switch(self, core: Core, op: Operation) -> str:
        target = op.attrs["mode"]
        if target == "decoupled":
            self._mode_next = "decoupled"
            return "ok"
        if self.mode == "coupled":
            return "ok"  # already coupled (e.g. program prologue)
        # Decoupled -> coupled: barrier.  Advance past the switch first so
        # the core resumes after it once the barrier completes.
        core.advance_slot()
        self._finish_block(core)
        arrived = self._barrier.setdefault("mode", set())
        arrived.add(core.id)
        core.status = BARRIER_WAIT
        live = {c.id for c in self._live_cores()}
        if arrived >= live:
            del self._barrier["mode"]
            self._deferred_release.update(arrived)
            self._mode_next = "coupled"
        return "redirect"

    def _finish_block(self, core: Core) -> None:
        """Fall through block ends (possibly several empty blocks)."""
        while core.status == RUNNING and core.at_block_end():
            if not core.fall_through():
                raise SimulatorError(
                    f"core {core.id} ran off the end of block "
                    f"{core.frame.block.label} in {core.frame.function.name}"
                )


def build_dispatch_table() -> Dict[Opcode, Handler]:
    """Build the opcode dispatch table: every handler closes over its
    result latency (resolved once through :func:`resolved_latencies`), so
    the execute path performs no opcode branching or latency lookups."""
    latency = resolved_latencies()
    table: Dict[Opcode, Handler] = {}

    def alu_entry(fn, lat: int) -> Handler:
        def run(machine, core, op, _fn=fn, _lat=lat):
            core.write_reg(
                op.dest,
                _fn(*map(core.read_operand, op.srcs)),
                machine.cycle + _lat,
            )
            return "ok"

        return run

    def cmp_entry(fn, lat: int) -> Handler:
        def run(machine, core, op, _fn=fn, _lat=lat):
            core.write_reg(
                op.dest,
                bool(_fn(*map(core.read_operand, op.srcs))),
                machine.cycle + _lat,
            )
            return "ok"

        return run

    def convert_entry(convert, lat: int) -> Handler:
        def run(machine, core, op, _cv=convert, _lat=lat):
            core.write_reg(
                op.dest, _cv(core.read_operand(op.srcs[0])), machine.cycle + _lat
            )
            return "ok"

        return run

    for opcode, fn in ALU_SEMANTICS.items():
        table[opcode] = alu_entry(fn, latency[opcode])
    for opcode, fn in COMPARISONS.items():
        table[opcode] = cmp_entry(fn, latency[opcode])
    for opcode in (Opcode.MOV, Opcode.FMOV, Opcode.PMOV):
        table[opcode] = convert_entry(lambda v: v, latency[opcode])
    table[Opcode.ITOF] = convert_entry(float, latency[Opcode.ITOF])
    table[Opcode.FTOI] = convert_entry(int, latency[Opcode.FTOI])

    def pand(machine, core, op):
        read = core.read_operand
        core.write_reg(
            op.dest, bool(read(op.srcs[0]) and read(op.srcs[1])),
            machine.cycle + 1,
        )
        return "ok"

    def por(machine, core, op):
        read = core.read_operand
        core.write_reg(
            op.dest, bool(read(op.srcs[0]) or read(op.srcs[1])),
            machine.cycle + 1,
        )
        return "ok"

    def pnot(machine, core, op):
        core.write_reg(
            op.dest, not core.read_operand(op.srcs[0]), machine.cycle + 1
        )
        return "ok"

    def select(machine, core, op):
        pred, a, b = map(core.read_operand, op.srcs)
        core.write_reg(op.dest, a if pred else b, machine.cycle + 1)
        return "ok"

    def pbr(machine, core, op):
        core.write_reg(op.dest, op.attrs["target"], machine.cycle + 1)
        return "ok"

    def nop(machine, core, op):
        return "ok"

    table[Opcode.PAND] = pand
    table[Opcode.POR] = por
    table[Opcode.PNOT] = pnot
    table[Opcode.SELECT] = select
    table[Opcode.PBR] = pbr
    table[Opcode.NOP] = nop
    table[Opcode.LOAD] = VoltronMachine._do_load
    table[Opcode.STORE] = VoltronMachine._do_store
    table[Opcode.BR] = VoltronMachine._do_branch
    table[Opcode.CALL] = VoltronMachine._do_call_op
    table[Opcode.RET] = VoltronMachine._do_ret
    table[Opcode.HALT] = VoltronMachine._do_halt
    table[Opcode.PUT] = VoltronMachine._do_put
    table[Opcode.BCAST] = VoltronMachine._do_bcast
    table[Opcode.GET] = VoltronMachine._do_get
    table[Opcode.SEND] = VoltronMachine._do_send
    table[Opcode.RECV] = VoltronMachine._do_recv
    table[Opcode.SPAWN] = VoltronMachine._do_spawn
    table[Opcode.RELEASE] = VoltronMachine._do_release
    table[Opcode.SLEEP] = VoltronMachine._do_sleep
    table[Opcode.LISTEN] = VoltronMachine._do_listen
    table[Opcode.MODE_SWITCH] = VoltronMachine._do_mode_switch
    table[Opcode.TX_BEGIN] = VoltronMachine._do_tx_begin
    table[Opcode.TX_COMMIT] = VoltronMachine._do_tx_commit
    return table
