"""The Voltron machine: cycle-level simulation of dual-mode execution.

Orchestration responsibilities (paper Sections 3.2-3.3):

* **Coupled mode** -- all cores of a group advance in lock-step; the 1-bit
  stall bus is modelled by stalling the whole group whenever any member is
  blocked (cache miss, scoreboard interlock).  PUT/BCAST drive the direct
  wires in the first half of the cycle and GETs latch them in the second,
  which is how the compiler-aligned PUT/GET pairs meet in the same cycle.
* **Decoupled mode** -- cores step independently; RECV stalls only the
  receiving core; SPAWN/SLEEP/LISTEN/RELEASE implement the lightweight
  fine-grain thread protocol; CALL acts as a barrier ("synchronization
  before function calls and returns") after which the callee executes in
  lock-step and the pre-call mode is restored on return.
* **MODE_SWITCH** -- switching to decoupled happens in lock-step
  (compiler-aligned, takes effect next cycle); switching to coupled is a
  barrier: cores wait until the last one arrives, then resume lock-step.
* **Transactions** -- TX_BEGIN checkpoints registers (the compiler's
  register rollback) and opens a TM write buffer; TX_COMMIT enforces
  ordered commit and on conflict rolls the chunk back to its restart block.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..arch.config import MachineConfig
from ..arch.mesh import Mesh
from ..isa.latencies import latency_of
from ..isa.machinecode import CompiledProgram
from ..isa.operations import (
    ALU_SEMANTICS,
    COMPARISONS,
    Opcode,
    Operation,
    Reg,
    RegFile,
)
from ..isa.registers import Value
from .caches import L1ICache, SnoopBus
from .core import BARRIER_WAIT, HALTED, LISTENING, RUNNING, Core
from .memory import MainMemory
from .network import NetworkError, OperandNetwork
from .stats import MachineStats
from .tm import TransactionalMemory

#: Per-core instruction address spaces start here (clear of data addresses).
ICODE_BASE = 1 << 24


class SimulatorError(Exception):
    pass


class OutOfCycles(SimulatorError):
    """The cycle budget was exhausted (likely deadlock or livelock)."""


class Deadlock(SimulatorError):
    pass


class VoltronMachine:
    """Executes a :class:`CompiledProgram` on a configured Voltron system."""

    def __init__(
        self,
        compiled: CompiledProgram,
        config: MachineConfig,
        max_cycles: int = 20_000_000,
        args: Tuple[Value, ...] = (),
    ) -> None:
        if compiled.n_cores != config.n_cores:
            raise ValueError(
                f"program compiled for {compiled.n_cores} cores, "
                f"machine has {config.n_cores}"
            )
        compiled.validate()
        compiled.assign_addresses()
        self.compiled = compiled
        self.config = config
        self.max_cycles = max_cycles

        rows, cols = config.mesh_shape
        self.mesh = Mesh(rows, cols, config.n_cores)
        self.memory = MainMemory(compiled.program.initial_memory)
        self.bus = SnoopBus(config)
        self.icaches = [L1ICache(config.l1i) for _ in range(config.n_cores)]
        self.network = OperandNetwork(self.mesh, config.network)
        self.tm = TransactionalMemory(self.memory)

        self.cores = [Core(i) for i in range(config.n_cores)]
        main_params = compiled.program.main().params
        if len(args) != len(main_params):
            raise ValueError(
                f"main expects {len(main_params)} args, got {len(args)}"
            )
        for core in self.cores:
            core.push_frame(compiled.entry_function(core.id), return_dest=None)
            # Program arguments materialize in every core's register file
            # (the run-time loader's job, mirroring the interpreter).
            for reg, value in zip(main_params, args):
                core.write_reg(reg, value, 0)
        self.stats = MachineStats(n_cores=config.n_cores)
        for core in self.cores:
            core.stats = self.stats.cores[core.id]

        self.mode = "coupled"
        self._mode_next: Optional[str] = None
        self.cycle = 0
        self.return_value: Value = None
        # Optional tracing: callables invoked as fn(cycle, core_id, op)
        # for every executed operation (kept empty in performance runs).
        self.op_observers: List = []
        # Barriers: kind -> set of arrived core ids.
        self._barrier: Dict[str, Set[int]] = {}
        # Cores released from a barrier become RUNNING at the next cycle
        # boundary (releasing mid-cycle would let cores later in the step
        # order run an extra op and break lock-step alignment).
        self._deferred_release: Set[int] = set()
        # (call depth to restore at, mode to restore) entries.
        self._mode_restore: List[Tuple[int, str]] = []
        self._restore_done_this_cycle = False
        # Coupled groups: consecutive runs of at most coupled_group_size cores.
        size = config.coupled_group_size
        self.groups: List[List[Core]] = [
            self.cores[i : i + size] for i in range(0, config.n_cores, size)
        ]

    # -- public API ---------------------------------------------------------------

    def run(self) -> MachineStats:
        while not self._all_halted():
            if self.cycle >= self.max_cycles:
                raise OutOfCycles(
                    f"exceeded {self.max_cycles} cycles at state "
                    f"{[repr(c) for c in self.cores]}"
                )
            self._check_deadlock()
            self.network.deliver(self.cycle)
            self._restore_done_this_cycle = False
            if self._deferred_release:
                for core_id in self._deferred_release:
                    if self.cores[core_id].status == BARRIER_WAIT:
                        self.cores[core_id].status = RUNNING
                self._deferred_release.clear()
            if self.mode == "coupled":
                for group in self.groups:
                    self._step_group(group)
            else:
                for core in self.cores:
                    self._step_decoupled(core)
            self.stats.mode_cycles[self.mode] += 1
            master = self.cores[0]
            if master.stack:
                frame = master.frame
                key = (frame.function.name, frame.block.label)
                self.stats.block_cycles[key] = (
                    self.stats.block_cycles.get(key, 0) + 1
                )
            if self._mode_next is not None:
                if self._mode_next != self.mode:
                    self.stats.mode_switches += 1
                self.mode = self._mode_next
                self._mode_next = None
            self.cycle += 1
        self.stats.cycles = self.cycle
        self.stats.tx_commits = self.tm.commits
        self.stats.tx_aborts = self.tm.aborts
        return self.stats

    def final_memory(self) -> Dict[int, Value]:
        return self.memory.as_dict()

    def array_values(self, name: str) -> List[Value]:
        symbol = self.compiled.program.array(name)
        return [self.memory.load(symbol.base + i) for i in range(symbol.size)]

    # -- helpers -------------------------------------------------------------------

    def _all_halted(self) -> bool:
        return all(core.status == HALTED for core in self.cores)

    def _live_cores(self) -> List[Core]:
        return [core for core in self.cores if core.status != HALTED]

    def _check_deadlock(self) -> None:
        live = self._live_cores()
        if not live:
            return
        if (
            all(core.status == LISTENING for core in live)
            and self.network.quiescent()
        ):
            raise Deadlock(
                f"cycle {self.cycle}: every live core is listening and the "
                "network is quiescent"
            )

    # -- coupled (lock-step) stepping -------------------------------------------------

    def _step_group(self, group: List[Core]) -> None:
        running = [core for core in group if core.status == RUNNING]
        if not running:
            return

        # Stall bus: any blocked member stalls the whole group.
        blocked = [core for core in running if core.next_free > self.cycle]
        if blocked:
            group_cause = blocked[0].pending_cause or "latency"
            for core in running:
                if core.next_free > self.cycle:
                    core.stats.stall(core.pending_cause or "latency")
                else:
                    core.stats.stall(group_cause)
            return

        # Zero-length blocks (pure structure) fall through without cost.
        for core in running:
            self._finish_block(core)
        running = [core for core in running if core.status == RUNNING]
        if not running:
            return
        self._assert_lockstep(running)

        # Fetch phase: an I-miss on any core stalls the group.
        missed = False
        for core in running:
            if core.needs_fetch():
                extra = self.icaches[core.id].access(
                    ICODE_BASE * (core.id + 1) + core.fetch_addr(),
                    self.bus.l2,
                    self.config.memory_latency,
                )
                core.mark_fetched()
                if extra:
                    core.stats.l1i_misses += 1
                    core.block_until(self.cycle + 1 + extra, "istall")
                    missed = True
        if missed:
            for core in running:
                core.stats.stall("istall")
            return

        # Scoreboard phase: lock-step means one unready core stalls all.
        for core in running:
            op = core.current_op()
            if op is not None and not core.srcs_ready(op, self.cycle):
                for member in running:
                    member.stats.stall("latency")
                return

        # Issue phase A: drive the direct wires.
        for core in running:
            op = core.current_op()
            if op is not None and op.opcode in (Opcode.PUT, Opcode.BCAST):
                self._execute(core, op)
                core.stats.busy += 1
                core.stats.ops_executed += 1

        # Issue phase B: everything else (GETs read the wires driven above).
        for core in running:
            op = core.current_op()
            if op is not None and op.opcode in (Opcode.PUT, Opcode.BCAST):
                outcome = "ok"
            elif op is None:
                core.stats.busy += 1
                outcome = "ok"
            else:
                outcome = self._execute(core, op)
                core.stats.busy += 1
                core.stats.ops_executed += 1
                if outcome == "stall":
                    raise SimulatorError(
                        f"cycle {self.cycle}: {op!r} stalled in coupled mode "
                        f"on core {core.id}; the compiler must not place "
                        "queue-mode waits in coupled regions"
                    )
            if core.status != RUNNING:
                continue
            if outcome == "ok":
                core.advance_slot()
                self._finish_block(core)

    def _assert_lockstep(self, running: List[Core]) -> None:
        positions = {core.position() for core in running}
        if len(positions) > 1:
            raise SimulatorError(
                f"cycle {self.cycle}: coupled cores diverged: "
                + ", ".join(repr(core) for core in running)
            )

    # -- decoupled stepping --------------------------------------------------------

    def _step_decoupled(self, core: Core) -> None:
        if core.status == HALTED:
            return
        if core.status == BARRIER_WAIT:
            cause = "call_sync" if core.id in self._barrier.get("call", set()) else (
                "barrier"
            )
            core.stats.stall(cause)
            return
        if core.next_free > self.cycle:
            core.stats.stall(core.pending_cause or "latency")
            return
        if core.status == LISTENING:
            self._step_listening(core)
            return

        # Zero-length blocks (pure structure) fall through without cost.
        self._finish_block(core)
        if core.status != RUNNING:
            return

        # Fetch.
        if core.needs_fetch():
            extra = self.icaches[core.id].access(
                ICODE_BASE * (core.id + 1) + core.fetch_addr(),
                self.bus.l2,
                self.config.memory_latency,
            )
            core.mark_fetched()
            if extra:
                core.stats.l1i_misses += 1
                core.block_until(self.cycle + 1 + extra, "istall")
                core.stats.stall("istall")
                return

        op = core.current_op()
        if op is None:
            core.stats.busy += 1
            core.advance_slot()
            self._finish_block(core)
            return

        if op.opcode is Opcode.CALL:
            self._arrive_call_barrier(core, op)
            return
        if op.opcode is Opcode.TX_COMMIT and not self.tm.may_commit(core.id):
            core.stats.stall("tx_wait")
            return
        if op.opcode in (Opcode.SEND, Opcode.SPAWN, Opcode.RELEASE):
            target = op.attrs["target_core"]
            if not self.network.can_send(core.id, target):
                core.stats.stall("send")
                self.network.send_stalls += 1
                return
        if not core.srcs_ready(op, self.cycle):
            core.stats.stall("latency")
            return

        outcome = self._execute(core, op)
        if outcome == "stall":
            return  # stall already attributed (e.g. empty receive queue)
        core.stats.busy += 1
        core.stats.ops_executed += 1
        if core.status == RUNNING and outcome == "ok":
            core.advance_slot()
            self._finish_block(core)

    def _step_listening(self, core: Core) -> None:
        message = self.network.peek_control(core.id, self.cycle)
        if message is None:
            core.stats.stall("idle")
            return
        core.stats.busy += 1
        core.status = RUNNING
        if message.kind == "spawn":
            core.jump(message.value)
        else:  # release: move past the LISTEN op
            core.advance_slot()
            self._finish_block(core)

    def _arrive_call_barrier(self, core: Core, op: Operation) -> None:
        """Decoupled-mode CALL: wait for every live core, then call in
        lock-step (the paper's call/return synchronization)."""
        arrived = self._barrier.setdefault("call", set())
        arrived.add(core.id)
        core.status = BARRIER_WAIT
        core.stats.busy += 1  # the arrival cycle issues the (pending) call
        live = {c.id for c in self._live_cores()}
        if arrived >= live:
            del self._barrier["call"]
            callee_names = set()
            for member_id in sorted(arrived):
                member = self.cores[member_id]
                self._deferred_release.add(member_id)
                call_op = member.current_op()
                assert call_op is not None and call_op.opcode is Opcode.CALL
                callee_names.add(call_op.attrs["function"])
                self._do_call(member, call_op)
            if len(callee_names) != 1:
                raise SimulatorError(
                    f"cycle {self.cycle}: cores joined a call barrier for "
                    f"different callees {sorted(callee_names)}"
                )
            self._mode_restore.append((self.cores[0].call_depth - 1, "decoupled"))
            self._mode_next = "coupled"

    # -- operation semantics ----------------------------------------------------------

    def _execute(self, core: Core, op: Operation) -> str:
        """Execute one op; returns 'ok', 'redirect', or 'stall'."""
        opcode = op.opcode
        cycle = self.cycle
        read = core.read_operand
        if self.op_observers:
            for observer in self.op_observers:
                observer(cycle, core.id, op)

        if opcode in ALU_SEMANTICS:
            result = ALU_SEMANTICS[opcode](*map(read, op.srcs))
            core.write_reg(op.dest, result, cycle + latency_of(opcode))
            return "ok"
        if opcode in COMPARISONS:
            result = bool(COMPARISONS[opcode](*map(read, op.srcs)))
            core.write_reg(op.dest, result, cycle + latency_of(opcode))
            return "ok"
        if opcode in (Opcode.MOV, Opcode.FMOV, Opcode.PMOV):
            core.write_reg(op.dest, read(op.srcs[0]), cycle + 1)
            return "ok"
        if opcode is Opcode.ITOF:
            core.write_reg(op.dest, float(read(op.srcs[0])), cycle + latency_of(opcode))
            return "ok"
        if opcode is Opcode.FTOI:
            core.write_reg(op.dest, int(read(op.srcs[0])), cycle + latency_of(opcode))
            return "ok"
        if opcode is Opcode.PAND:
            core.write_reg(
                op.dest, bool(read(op.srcs[0]) and read(op.srcs[1])), cycle + 1
            )
            return "ok"
        if opcode is Opcode.POR:
            core.write_reg(
                op.dest, bool(read(op.srcs[0]) or read(op.srcs[1])), cycle + 1
            )
            return "ok"
        if opcode is Opcode.PNOT:
            core.write_reg(op.dest, not read(op.srcs[0]), cycle + 1)
            return "ok"
        if opcode is Opcode.SELECT:
            pred, a, b = map(read, op.srcs)
            core.write_reg(op.dest, a if pred else b, cycle + 1)
            return "ok"
        if opcode is Opcode.LOAD:
            return self._do_load(core, op)
        if opcode is Opcode.STORE:
            return self._do_store(core, op)
        if opcode is Opcode.PBR:
            core.write_reg(op.dest, op.attrs["target"], cycle + 1)
            return "ok"
        if opcode is Opcode.BR:
            taken = len(op.srcs) == 1 or bool(read(op.srcs[1]))
            if taken:
                core.jump(read(op.srcs[0]))
            else:
                if core.frame.block.fall is None:
                    raise SimulatorError(
                        f"core {core.id} fell through a branch with no fall "
                        f"edge in {core.frame.block.label}"
                    )
                core.jump(core.frame.block.fall)
            return "redirect"
        if opcode is Opcode.CALL:
            self._do_call(core, op)
            return "redirect"
        if opcode is Opcode.RET:
            return self._do_ret(core, op)
        if opcode is Opcode.HALT:
            if self.tm.in_transaction(core.id):
                raise SimulatorError(f"core {core.id} halted inside a transaction")
            core.status = HALTED
            return "redirect"
        if opcode is Opcode.NOP:
            return "ok"
        if opcode is Opcode.PUT:
            self.network.direct.put(
                core.id, op.attrs["direction"], read(op.srcs[0]), cycle
            )
            return "ok"
        if opcode is Opcode.BCAST:
            self.network.direct.bcast(core.id, read(op.srcs[0]), cycle)
            return "ok"
        if opcode is Opcode.GET:
            value = self.network.direct.get(
                core.id,
                op.attrs["direction"],
                cycle,
                bcast_src=op.attrs.get("bcast_src"),
            )
            core.write_reg(op.dest, value, cycle + 1)
            return "ok"
        if opcode is Opcode.SEND:
            self.network.send(
                core.id,
                op.attrs["target_core"],
                read(op.srcs[0]),
                cycle,
                tag=op.attrs.get("tag"),
            )
            core.stats.messages_sent += 1
            return "ok"
        if opcode is Opcode.RECV:
            message = self.network.try_receive(
                core.id,
                op.attrs["source_core"],
                cycle,
                tag=op.attrs.get("tag"),
            )
            if message is None:
                core.stats.stall(self._recv_category(op))
                return "stall"
            if op.dests:
                core.write_reg(op.dest, message.value, cycle + 1)
            core.stats.messages_received += 1
            return "ok"
        if opcode is Opcode.SPAWN:
            self.network.send(
                core.id,
                op.attrs["target_core"],
                op.attrs["target_block"],
                cycle,
                kind="spawn",
            )
            self.stats.spawns += 1
            return "ok"
        if opcode is Opcode.RELEASE:
            self.network.send(
                core.id, op.attrs["target_core"], None, cycle, kind="release"
            )
            return "ok"
        if opcode is Opcode.SLEEP:
            assert core.listen_return is not None, "SLEEP outside a spawned thread"
            block, slot = core.listen_return
            core.frame.block = block
            core.frame.slot = slot
            core._fetched = None
            core.status = LISTENING
            return "redirect"
        if opcode is Opcode.LISTEN:
            core.listen_return = (core.frame.block, core.frame.slot)
            core.status = LISTENING
            return "redirect"
        if opcode is Opcode.MODE_SWITCH:
            return self._do_mode_switch(core, op)
        if opcode is Opcode.TX_BEGIN:
            self.tm.begin(
                core.id,
                op.attrs["region"],
                op.attrs["order"],
                op.attrs.get("chunks", 0),
            )
            core.checkpoint_registers(op.attrs["restart"])
            return "ok"
        if opcode is Opcode.TX_COMMIT:
            if self.tm.try_commit(core.id):
                core.block_until(
                    cycle + 1 + self.config.tm_commit_latency, "tx_wait"
                )
                core.tx_checkpoint = None
                return "ok"
            restart = core.rollback_registers()
            core.jump(restart)
            return "redirect"
        raise SimulatorError(f"unimplemented opcode {opcode!r}")

    @staticmethod
    def _recv_category(op: Operation) -> str:
        sync = op.attrs.get("sync")
        if sync == "call":
            return "call_sync"
        if op.dests and op.dests[0].file is RegFile.PR:
            return "recv_pred"
        return "recv_data"

    def _do_load(self, core: Core, op: Operation) -> str:
        read = core.read_operand
        addr = int(read(op.srcs[0])) + int(read(op.srcs[1]))
        cycles, miss = self.bus.access(core.id, addr, is_store=False)
        value = self.tm.load(core.id, addr)
        core.write_reg(op.dest, value, self.cycle + 1 + cycles)
        core.stats.loads += 1
        if miss or cycles > self.config.l1d.hit_latency:
            core.stats.l1d_misses += miss
            core.block_until(self.cycle + 1 + cycles, "dstall")
        return "ok"

    def _do_store(self, core: Core, op: Operation) -> str:
        read = core.read_operand
        addr = int(read(op.srcs[0])) + int(read(op.srcs[1]))
        cycles, miss = self.bus.access(core.id, addr, is_store=True)
        self.tm.store(core.id, addr, read(op.srcs[2]))
        core.stats.stores += 1
        if miss or cycles > self.config.l1d.hit_latency:
            core.stats.l1d_misses += miss
            core.block_until(self.cycle + 1 + cycles, "dstall")
        return "ok"

    def _do_call(self, core: Core, op: Operation) -> None:
        callee = self.compiled.core_function(core.id, op.attrs["function"])
        # Copy arguments into the callee's formal registers on this core.
        formals = self.compiled.program.function(op.attrs["function"]).params
        values = [core.read_operand(src) for src in op.srcs]
        core.frame.slot += 1  # resume after the call
        core.push_frame(callee, return_dest=op.dest)
        for reg, value in zip(formals, values):
            core.write_reg(reg, value, self.cycle + 1)

    def _do_ret(self, core: Core, op: Operation) -> str:
        value = core.read_operand(op.srcs[0]) if op.srcs else None
        finished = core.pop_frame()
        if not core.stack:
            core.status = HALTED
            if core.id == 0:
                self.return_value = value
            return "redirect"
        if finished.return_dest is not None and op.srcs:
            core.write_reg(finished.return_dest, value, self.cycle + 1)
        if (
            self._mode_restore
            and self._mode_restore[-1][0] == core.call_depth
            and not self._restore_done_this_cycle
        ):
            _, mode = self._mode_restore.pop()
            self._mode_next = mode
            self._restore_done_this_cycle = True
        self._finish_block(core)
        return "redirect"

    def _do_mode_switch(self, core: Core, op: Operation) -> str:
        target = op.attrs["mode"]
        if target == "decoupled":
            self._mode_next = "decoupled"
            return "ok"
        if self.mode == "coupled":
            return "ok"  # already coupled (e.g. program prologue)
        # Decoupled -> coupled: barrier.  Advance past the switch first so
        # the core resumes after it once the barrier completes.
        core.advance_slot()
        self._finish_block(core)
        arrived = self._barrier.setdefault("mode", set())
        arrived.add(core.id)
        core.status = BARRIER_WAIT
        live = {c.id for c in self._live_cores()}
        if arrived >= live:
            del self._barrier["mode"]
            self._deferred_release.update(arrived)
            self._mode_next = "coupled"
        return "redirect"

    def _finish_block(self, core: Core) -> None:
        """Fall through block ends (possibly several empty blocks)."""
        while core.status == RUNNING and core.at_block_end():
            if not core.fall_through():
                raise SimulatorError(
                    f"core {core.id} ran off the end of block "
                    f"{core.frame.block.label} in {core.frame.function.name}"
                )
