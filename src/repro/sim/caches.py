"""Cache hierarchy: private L1s kept coherent by a snooping MOESI bus
or a scalable directory protocol, plus a shared (banked) L2.

Timing-only model (values live in :class:`repro.sim.memory.MainMemory`):
every access returns the number of cycles the in-order core is occupied.
An L1 hit costs ``l1.hit_latency``; misses add the supplier's latency --
another L1 (cache-to-cache transfer, priced like an L2 hit, the paper's
"coherence of caches is handled by a bus-based snooping protocol"), the
shared L2, or main memory.

State machine (MOESI):

* read miss: a Modified/Owned/Exclusive holder supplies the line and
  transitions M->O, E->S (O stays O); the requester loads in S.  With no
  holder the L2/memory supplies and the requester loads in E (no sharers)
  or S.
* write miss / upgrade: every other copy is invalidated; the requester
  holds M.
* eviction of an M or O line writes back into the L2.

:class:`DirectoryCoherence` implements the same MOESI state machine
behind a directory instead of a broadcast bus: an explicit sharer
vector per line answers "who holds this?" in O(sharers) rather than by
snooping every L1, at the price of ``directory_latency`` extra cycles
per miss or upgrade (the home-directory indirection).  The two
protocols are architecturally equivalent -- identical state
transitions, identical hit/miss pattern -- so final memory is
bit-identical across them; only cycle counts differ.  Select with
``MachineConfig.coherence`` via :func:`make_coherence`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..arch.config import CacheConfig, MachineConfig

MODIFIED = "M"
OWNED = "O"
EXCLUSIVE = "E"
SHARED = "S"
INVALID = "I"

#: States in which an L1 can supply data on a snoop.
SUPPLIER_STATES = (MODIFIED, OWNED, EXCLUSIVE)


@dataclass
class CacheLine:
    tag: int
    state: str
    last_used: int


class SetAssocCache:
    """A set-associative array of tags with LRU replacement."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        # config.n_sets is a derived property; the array geometry is hot
        # (every lookup computes index/tag from it), so snapshot it once.
        self.n_sets = config.n_sets
        self.associativity = config.associativity
        self.sets: List[Dict[int, CacheLine]] = [
            {} for _ in range(self.n_sets)
        ]
        self._tick = itertools.count()

    def _index(self, line_addr: int) -> Tuple[int, int]:
        return line_addr % self.n_sets, line_addr // self.n_sets

    def lookup(self, line_addr: int) -> Optional[CacheLine]:
        n_sets = self.n_sets
        line = self.sets[line_addr % n_sets].get(line_addr // n_sets)
        if line is not None and line.state != INVALID:
            line.last_used = next(self._tick)
            return line
        return None

    def insert(self, line_addr: int, state: str) -> Optional[Tuple[int, str]]:
        """Install a line; returns (line_addr, state) of any eviction."""
        index, tag = self._index(line_addr)
        cache_set = self.sets[index]
        evicted: Optional[Tuple[int, str]] = None
        existing = cache_set.get(tag)
        if existing is not None:
            existing.state = state
            existing.last_used = next(self._tick)
            return None
        if len(cache_set) >= self.associativity:
            victim_tag, victim = min(
                cache_set.items(), key=lambda item: item[1].last_used
            )
            del cache_set[victim_tag]
            if victim.state != INVALID:
                evicted = (victim_tag * self.n_sets + index, victim.state)
        cache_set[tag] = CacheLine(tag, state, next(self._tick))
        return evicted

    def invalidate(self, line_addr: int) -> Optional[str]:
        index, tag = self._index(line_addr)
        line = self.sets[index].get(tag)
        if line is None or line.state == INVALID:
            return None
        previous = line.state
        del self.sets[index][tag]
        return previous

    def state_of(self, line_addr: int) -> str:
        index, tag = self._index(line_addr)
        line = self.sets[index].get(tag)
        return line.state if line is not None else INVALID

    def resident_lines(self) -> int:
        return sum(len(s) for s in self.sets)


class SharedL2:
    """The shared, banked L2.  Banking is tracked for statistics; bank
    conflicts are not modelled (documented simplification)."""

    def __init__(self, config: CacheConfig, n_banks: int) -> None:
        self.array = SetAssocCache(config)
        self.config = config
        self.n_banks = n_banks
        self.bank_accesses = [0] * n_banks
        self.hits = 0
        self.misses = 0

    def bank_of(self, line_addr: int) -> int:
        return line_addr % self.n_banks

    def access(self, line_addr: int) -> bool:
        """Returns True on hit; installs the line on miss."""
        self.bank_accesses[self.bank_of(line_addr)] += 1
        if self.array.lookup(line_addr) is not None:
            self.hits += 1
            return True
        self.misses += 1
        self.array.insert(line_addr, EXCLUSIVE)
        return False

    def writeback(self, line_addr: int) -> None:
        self.array.insert(line_addr, MODIFIED)


class L1ICache:
    """Private instruction cache; fills from the shared L2."""

    def __init__(self, config: CacheConfig) -> None:
        self.array = SetAssocCache(config)
        self.config = config
        self.line_words = config.line_words
        self.hits = 0
        self.misses = 0
        #: Optional :class:`~repro.sim.faults.FaultPlan` (chaos testing):
        #: fetches occasionally take extra cycles even on a hit.
        self.faults = None
        #: Optional :class:`~repro.obs.events.Observability` event bus and
        #: the owning core's index (both set by Observability.attach).
        self.obs = None
        self.core_index = -1

    def access(self, addr: int, l2: SharedL2, memory_latency: int) -> int:
        """Extra fetch cycles: 0 on a hit, L2/memory latency on a miss."""
        array = self.array
        line_addr = addr // self.line_words
        # Inlined array.lookup: one fetch per issued slot makes this the
        # single hottest cache path in the simulator.
        line = array.sets[line_addr % array.n_sets].get(line_addr // array.n_sets)
        if line is not None and line.state != INVALID:
            line.last_used = next(array._tick)
            self.hits += 1
            return 0 if self.faults is None else self.faults.ifetch_delay()
        self.misses += 1
        l2_hit = l2.access(line_addr)
        array.insert(line_addr, SHARED)
        extra = 0 if self.faults is None else self.faults.ifetch_delay()
        latency = (l2.config.hit_latency if l2_hit else memory_latency) + extra
        if self.obs is not None:
            self.obs.icache_miss(self.core_index, latency)
        return latency


class SnoopBus:
    """The shared snooping bus tying the L1 data caches to the L2."""

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self.l1ds: List[SetAssocCache] = [
            SetAssocCache(config.l1d) for _ in range(config.n_cores)
        ]
        self.l2 = SharedL2(config.l2, config.l2_banks)
        # Snapshot the handful of latencies the access path reads on every
        # load/store (two attribute hops through the frozen config tree).
        self._line_words = config.l1d.line_words
        self._hit_latency = config.l1d.hit_latency
        self.upgrade_latency = 2  # bus invalidate round
        self.invalidations = 0
        self.cache_to_cache = 0
        #: Optional :class:`~repro.sim.faults.FaultPlan` (chaos testing):
        #: data accesses occasionally take extra cycles, hit or miss.
        self.faults = None
        #: Optional :class:`~repro.obs.events.Observability` event bus:
        #: when attached, data-cache misses emit probe events.
        self.obs = None

    # -- public interface ----------------------------------------------------

    def access(self, core: int, addr: int, is_store: bool) -> Tuple[int, bool]:
        """Perform a data access; returns (cycles, was_miss)."""
        line_addr = addr // self._line_words
        l1 = self.l1ds[core]
        line = l1.lookup(line_addr)
        hit_latency = self._hit_latency
        fault_extra = 0 if self.faults is None else self.faults.mem_delay()

        if line is not None:
            if not is_store:
                return hit_latency + fault_extra, False
            if line.state in (MODIFIED, EXCLUSIVE):
                line.state = MODIFIED
                return hit_latency + fault_extra, False
            # Store to a Shared/Owned line: bus upgrade.
            self._invalidate_others(core, line_addr)
            line.state = MODIFIED
            return hit_latency + self.upgrade_latency + fault_extra, False

        supplier_latency = self._fetch(core, line_addr, is_store)
        new_state = MODIFIED if is_store else self._fill_state(core, line_addr)
        if is_store:
            self._invalidate_others(core, line_addr)
        evicted = l1.insert(line_addr, new_state)
        if evicted is not None and evicted[1] in (MODIFIED, OWNED):
            self.l2.writeback(evicted[0])
        cycles = hit_latency + supplier_latency + fault_extra
        if self.obs is not None:
            self.obs.cache_miss(core, cycles)
        return cycles, True

    def flush_core(self, core: int) -> None:
        """Write back and drop every line a core holds (used by tests)."""
        l1 = self.l1ds[core]
        for index, cache_set in enumerate(l1.sets):
            for tag, line in list(cache_set.items()):
                if line.state in (MODIFIED, OWNED):
                    self.l2.writeback(tag * l1.config.n_sets + index)
            cache_set.clear()

    # -- protocol internals ----------------------------------------------------

    def _holders(self, requester: int, line_addr: int) -> List[Tuple[int, CacheLine]]:
        holders = []
        for other, l1 in enumerate(self.l1ds):
            if other == requester:
                continue
            index, tag = l1._index(line_addr)
            line = l1.sets[index].get(tag)
            if line is not None and line.state != INVALID:
                holders.append((other, line))
        return holders

    def _fetch(self, core: int, line_addr: int, is_store: bool) -> int:
        """Latency for the data supplier on a miss."""
        holders = self._holders(core, line_addr)
        supplier = next(
            (line for _, line in holders if line.state in SUPPLIER_STATES), None
        )
        if supplier is not None:
            self.cache_to_cache += 1
            if not is_store:
                if supplier.state == MODIFIED:
                    supplier.state = OWNED
                elif supplier.state == EXCLUSIVE:
                    supplier.state = SHARED
            # Cache-to-cache transfers cost about an L2 hit on the shared bus.
            return self.config.l2.hit_latency
        if holders:
            # Shared-only copies: the L2 still holds clean data.
            self.l2.access(line_addr)
            return self.config.l2.hit_latency
        l2_hit = self.l2.access(line_addr)
        return self.config.l2.hit_latency if l2_hit else self.config.memory_latency

    def _fill_state(self, core: int, line_addr: int) -> str:
        return SHARED if self._holders(core, line_addr) else EXCLUSIVE

    def _invalidate_others(self, core: int, line_addr: int) -> None:
        for other, l1 in enumerate(self.l1ds):
            if other == core:
                continue
            previous = l1.invalidate(line_addr)
            if previous is not None:
                self.invalidations += 1
                if previous in (MODIFIED, OWNED):
                    self.l2.writeback(line_addr)


class DirectoryCoherence(SnoopBus):
    """Directory-based MOESI: same states and transitions as the snoop
    bus, but holders are found through an explicit per-line sharer
    vector (the directory) instead of a broadcast snoop.

    A single snoop bus cannot scale past a handful of cores; the
    directory makes coherence O(sharers) per transaction, which is what
    lets the 16-64-core meshes simulate in reasonable time.  Timing
    differences vs snoop: every miss and every S/O upgrade pays
    ``config.directory_latency`` extra cycles for the home-directory
    lookup.  State transitions are identical, so any program's final
    memory (and its hit/miss pattern) matches the snoop bus bit for bit.
    """

    def __init__(self, config: MachineConfig) -> None:
        super().__init__(config)
        self.directory_latency = config.directory_latency
        #: line_addr -> cores whose L1 holds the line in any valid state.
        self._presence: Dict[int, Set[int]] = {}
        #: Directory transactions (miss or upgrade indirections).
        self.directory_lookups = 0

    # -- public interface ----------------------------------------------------

    def access(self, core: int, addr: int, is_store: bool) -> Tuple[int, bool]:
        """Perform a data access; returns (cycles, was_miss)."""
        line_addr = addr // self._line_words
        l1 = self.l1ds[core]
        line = l1.lookup(line_addr)
        hit_latency = self._hit_latency
        fault_extra = 0 if self.faults is None else self.faults.mem_delay()

        if line is not None:
            if not is_store:
                return hit_latency + fault_extra, False
            if line.state in (MODIFIED, EXCLUSIVE):
                # Silent upgrade: this core is the only holder, and the
                # directory already records it as such.
                line.state = MODIFIED
                return hit_latency + fault_extra, False
            # Store to a Shared/Owned line: the directory names the
            # sharers to invalidate (no broadcast).
            self.directory_lookups += 1
            if self.faults is not None:
                fault_extra += self.faults.directory_delay()
            self._invalidate_others(core, line_addr)
            line.state = MODIFIED
            return (
                hit_latency + self.directory_latency + self.upgrade_latency
                + fault_extra,
                False,
            )

        self.directory_lookups += 1
        if self.faults is not None:
            fault_extra += self.faults.directory_delay()
        supplier_latency = self._fetch(core, line_addr, is_store)
        new_state = MODIFIED if is_store else self._fill_state(core, line_addr)
        if is_store:
            self._invalidate_others(core, line_addr)
        evicted = l1.insert(line_addr, new_state)
        if evicted is not None:
            self._drop(core, evicted[0])
            if evicted[1] in (MODIFIED, OWNED):
                self.l2.writeback(evicted[0])
        self._presence.setdefault(line_addr, set()).add(core)
        cycles = (
            hit_latency + self.directory_latency + supplier_latency
            + fault_extra
        )
        if self.obs is not None:
            self.obs.cache_miss(core, cycles)
        return cycles, True

    def flush_core(self, core: int) -> None:
        """Write back and drop every line a core holds (used by tests)."""
        l1 = self.l1ds[core]
        for index, cache_set in enumerate(l1.sets):
            for tag, line in list(cache_set.items()):
                line_addr = tag * l1.n_sets + index
                if line.state in (MODIFIED, OWNED):
                    self.l2.writeback(line_addr)
                self._drop(core, line_addr)
            cache_set.clear()

    def scrub_core(self, core: int) -> int:
        """Blackout recovery: remove a dead core from every sharer
        vector so later misses never wait on it as a supplier.  Modified
        and Owned lines write back to the L2 (their data is
        architecturally current -- blackouts wipe registers, not the
        cache arrays), everything else is invalidated.  Returns the
        number of lines scrubbed; the directory mirrors the L1s again
        afterwards (``check_directory`` holds)."""
        lines = self.l1ds[core].resident_lines()
        self.flush_core(core)
        return lines

    def check_directory(self) -> None:
        """Assert the sharer vectors exactly mirror the L1 arrays
        (test/debug invariant; never called on the simulation path)."""
        actual: Dict[int, Set[int]] = {}
        for core, l1 in enumerate(self.l1ds):
            for index, cache_set in enumerate(l1.sets):
                for tag, line in cache_set.items():
                    if line.state != INVALID:
                        line_addr = tag * l1.n_sets + index
                        actual.setdefault(line_addr, set()).add(core)
        recorded = {
            line_addr: sharers
            for line_addr, sharers in self._presence.items()
            if sharers
        }
        if recorded != actual:
            raise AssertionError(
                f"directory out of sync: recorded {recorded} != L1s {actual}"
            )

    # -- protocol internals ----------------------------------------------------

    def _drop(self, core: int, line_addr: int) -> None:
        sharers = self._presence.get(line_addr)
        if sharers is not None:
            sharers.discard(core)
            if not sharers:
                del self._presence[line_addr]

    def _holders(self, requester: int, line_addr: int) -> List[Tuple[int, CacheLine]]:
        holders = []
        for other in self._presence.get(line_addr, ()):
            if other == requester:
                continue
            l1 = self.l1ds[other]
            index, tag = l1._index(line_addr)
            line = l1.sets[index].get(tag)
            if line is not None and line.state != INVALID:
                holders.append((other, line))
        return holders

    def _invalidate_others(self, core: int, line_addr: int) -> None:
        sharers = self._presence.get(line_addr)
        if not sharers:
            return
        for other in sorted(sharers - {core}):
            previous = self.l1ds[other].invalidate(line_addr)
            self._drop(other, line_addr)
            if previous is not None:
                self.invalidations += 1
                if previous in (MODIFIED, OWNED):
                    self.l2.writeback(line_addr)


def make_coherence(config: MachineConfig) -> SnoopBus:
    """The coherence fabric ``config`` selects: the paper's snoop bus,
    or the scalable directory for ``coherence="directory"``."""
    if config.coherence == "directory":
        return DirectoryCoherence(config)
    return SnoopBus(config)
