"""Per-core state: register file, call stack, scoreboard, and status.

The core is a single-issue, in-order VLIW pipeline (paper Section 5.1:
"each core is a single-issue processor").  All orchestration that spans
cores -- lock-step stepping, the stall bus, barriers, the operand network
-- lives in :class:`repro.sim.machine.VoltronMachine`; this module only
holds one core's architectural and pipeline state.

The scoreboard (register ready-times) makes mis-scheduling a *performance*
bug rather than a correctness bug: an operation whose sources are not yet
ready simply stalls, and the cycle is attributed to the ``latency``
category (near zero under a correct static schedule).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..isa.machinecode import CoreBlock, CoreFunction
from ..isa.operations import Imm, Operand, Operation, Reg
from ..isa.registers import RegisterFile, Value
from .stats import CoreStats

#: Core status values.
RUNNING = "running"
LISTENING = "listening"
HALTED = "halted"
BARRIER_WAIT = "barrier"


@dataclass
class CoreFrame:
    """One activation record on a core's call stack."""

    function: CoreFunction
    block: CoreBlock
    slot: int = 0
    return_dest: Optional[Reg] = None


@dataclass
class TxCheckpoint:
    """Compiler-managed register checkpoint for transaction rollback."""

    registers: Dict[Reg, Value]
    restart_label: str
    #: Call depth at TX_BEGIN: rollback (and therefore blackout
    #: recovery, which reuses it) is only valid at this depth, where the
    #: restart label resolves in the checkpointed frame's function.
    call_depth: int = 0


class Core:
    """One Voltron core's state."""

    def __init__(self, core_id: int) -> None:
        self.id = core_id
        self.regs = RegisterFile(core_id)
        self.stack: List[CoreFrame] = []
        #: The top activation record, maintained by push/pop (read on every
        #: fetch, scoreboard probe, and issue -- hot enough that a plain
        #: attribute beats a ``stack[-1]`` property).
        self.frame: Optional[CoreFrame] = None
        self.status = RUNNING
        self.stats = CoreStats()
        # Pipeline state.
        self.next_free = 0  # earliest cycle the core may issue
        self.pending_cause: Optional[str] = None  # stall cause until next_free
        self.reg_ready: Dict[Reg, int] = {}
        # Last-fetched position, kept as two fields (block identity plus
        # slot) so the per-cycle fetch probe never allocates a key tuple.
        self._fetched_block: Optional[CoreBlock] = None
        self._fetched_slot = -1
        # Fine-grain thread state.
        self.listen_return: Optional[Tuple[CoreBlock, int]] = None
        # Transaction state.
        self.tx_checkpoint: Optional[TxCheckpoint] = None

    # -- call stack -------------------------------------------------------------

    def push_frame(self, function: CoreFunction, return_dest: Optional[Reg]) -> None:
        entry = function.block(function.entry)
        self.stack.append(
            CoreFrame(function, entry, slot=0, return_dest=return_dest)
        )
        self.frame = self.stack[-1]
        self._fetched_block = None

    def pop_frame(self) -> CoreFrame:
        frame = self.stack.pop()
        self.frame = self.stack[-1] if self.stack else None
        self._fetched_block = None
        return frame

    @property
    def call_depth(self) -> int:
        return len(self.stack)

    # -- position --------------------------------------------------------------

    def position(self) -> Tuple[str, str, int]:
        frame = self.frame
        return frame.function.name, frame.block.label, frame.slot

    def current_op(self) -> Optional[Operation]:
        """Op in the current slot (None = NOP padding)."""
        frame = self.frame
        return frame.block.slots[frame.slot]

    def at_block_end(self) -> bool:
        frame = self.frame
        return frame.slot >= len(frame.block.slots)

    def jump(self, label: str) -> None:
        frame = self.frame
        frame.block = frame.function.block(label)
        frame.slot = 0
        self._fetched_block = None

    def advance_slot(self) -> None:
        self.frame.slot += 1

    def fall_through(self) -> bool:
        """Move to the fall successor; False when the block dead-ends."""
        frame = self.frame
        if frame.block.fall is None:
            return False
        self.jump(frame.block.fall)
        return True

    # -- fetch bookkeeping --------------------------------------------------------

    def needs_fetch(self) -> bool:
        frame = self.frame
        return (
            self._fetched_block is not frame.block
            or self._fetched_slot != frame.slot
        )

    def take_fetch(self) -> Optional[int]:
        """Combined needs_fetch/fetch_addr/mark_fetched for the simulator's
        hot fetch path: returns the slot's address when it still needs an
        I-fetch (marking it fetched), or None when already fetched."""
        frame = self.frame
        block = frame.block
        slot = frame.slot
        if self._fetched_block is block and self._fetched_slot == slot:
            return None
        self._fetched_block = block
        self._fetched_slot = slot
        return block.base_addr + slot

    def mark_fetched(self) -> None:
        frame = self.frame
        self._fetched_block = frame.block
        self._fetched_slot = frame.slot

    def fetch_addr(self) -> int:
        frame = self.frame
        return frame.block.op_addr(frame.slot)

    # -- scoreboard ----------------------------------------------------------------

    def srcs_ready(self, op: Operation, cycle: int) -> bool:
        for src in op.srcs:
            if isinstance(src, Reg) and self.reg_ready.get(src, 0) > cycle:
                return False
        return True

    def write_reg(self, reg: Reg, value: Value, ready: int) -> None:
        self.regs.write(reg, value)
        self.reg_ready[reg] = ready

    def read_operand(self, operand: Operand) -> Value:
        if isinstance(operand, Imm):
            return operand.value
        return self.regs.read(operand)

    def block_until(self, cycle: int, cause: str) -> None:
        """Block the pipeline until ``cycle`` (exclusive), e.g. a cache miss."""
        if cycle > self.next_free:
            self.next_free = cycle
            self.pending_cause = cause

    # -- transactions ----------------------------------------------------------------

    def checkpoint_registers(self, restart_label: str) -> None:
        self.tx_checkpoint = TxCheckpoint(
            registers=self.regs.snapshot(),
            restart_label=restart_label,
            call_depth=self.call_depth,
        )

    def rollback_registers(self) -> str:
        """Restore the checkpoint; returns the restart block label."""
        assert self.tx_checkpoint is not None, "rollback without a checkpoint"
        self.regs.restore(self.tx_checkpoint.registers)
        self.reg_ready.clear()
        return self.tx_checkpoint.restart_label

    def __repr__(self) -> str:
        if not self.stack:
            return f"<core {self.id} {self.status} (no frame)>"
        name, label, slot = self.position()
        return f"<core {self.id} {self.status} at {name}:{label}:{slot}>"
