"""Low-cost transactional memory for speculative DOALL loops.

The paper (Section 3, citing Herlihy & Moss and the authors' technical
report) divides a statistical-DOALL loop's iterations into chunks, one
transaction per chunk, executed speculatively across cores.  The hardware
detects cross-core memory dependence violations and rolls back memory
state; the *compiler* rolls back register state.

This model implements lazy versioning with **ordered commit**: chunk *k*
may only commit after chunks *0..k-1* of the same speculative region, which
preserves sequential semantics.  Validation intersects the chunk's read set
with the write sets of logically-earlier chunks that committed after this
chunk began; a non-empty intersection aborts the chunk, discards its write
buffer, and the core re-executes from its compiler-recorded restart point
with restored registers.  Ordered commit guarantees that a retry that
begins after all earlier chunks commit succeeds, so progress is assured.

Fault injection (chaos testing) can attach a
:class:`~repro.sim.faults.FaultPlan` via the ``faults`` attribute:
``try_commit`` then sometimes aborts a chunk whose validation *passed*,
exercising the abort -> register-rollback -> re-execute path.  A
livelock guard keeps the progress guarantee intact under any injection
rate: once a core accumulates ``livelock_threshold`` consecutive aborts
the TM escalates to *serialized* commit -- injection is suppressed until
the current wave of chunks has fully committed -- so an abort storm
always terminates.  Real conflicts cannot storm on their own (a retry
that begins after every earlier chunk committed validates clean), so
escalation changes timing only, never architectural state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..isa.registers import Value
from .memory import MainMemory, WriteBuffer


class TransactionError(Exception):
    pass


@dataclass
class Transaction:
    """One in-flight speculative chunk."""

    core: int
    region: int
    order: int
    n_chunks: int  # chunks per entry of this speculative region
    begin_serial: int  # commit serial number when this transaction began
    buffer: WriteBuffer = field(default_factory=WriteBuffer)


@dataclass
class _CommitRecord:
    order: int
    serial: int
    write_set: Set[int]


class TransactionalMemory:
    """Machine-wide TM state: one active transaction per core."""

    #: Consecutive aborts on one core before commit is serialized.
    LIVELOCK_THRESHOLD = 3

    def __init__(self, memory: MainMemory) -> None:
        self.memory = memory
        self.active: Dict[int, Transaction] = {}
        self._region: Optional[int] = None
        self._next_commit_order = 0
        self._commit_serial = 0
        self._commits: List[_CommitRecord] = []
        self.commits = 0
        self.aborts = 0
        #: Optional :class:`~repro.sim.faults.FaultPlan` (chaos testing).
        self.faults = None
        #: Optional :class:`~repro.obs.events.Observability` event bus:
        #: when attached, begin/commit/abort emit probe events.
        self.obs = None
        self.spurious_aborts = 0
        self.livelock_escalations = 0
        self.livelock_threshold = self.LIVELOCK_THRESHOLD
        self._abort_streak: Dict[int, int] = {}
        self._serialized = False

    # -- region management -----------------------------------------------------

    def _enter_region(self, region: int) -> None:
        if self._region != region:
            if self.active:
                raise TransactionError(
                    f"region {region} begins while region {self._region} has "
                    f"active transactions on cores {sorted(self.active)}"
                )
            self._region = region
            self._next_commit_order = 0
            self._commits.clear()
            self._serialized = False
            self._abort_streak.clear()

    # -- transaction lifecycle ---------------------------------------------------

    def begin(
        self, core: int, region: int, order: int, n_chunks: int = 0
    ) -> Transaction:
        self._enter_region(region)
        if core in self.active:
            raise TransactionError(f"core {core} already has a transaction")
        tx = Transaction(
            core=core,
            region=region,
            order=order,
            n_chunks=n_chunks or order + 1,
            begin_serial=self._commit_serial,
        )
        self.active[core] = tx
        if self.obs is not None:
            self.obs.tx_begin(core, region, order)
        return tx

    def load(self, core: int, addr: int) -> Value:
        tx = self.active.get(core)
        if tx is None:
            return self.memory.load(addr)
        return tx.buffer.load(addr, self.memory)

    def store(self, core: int, addr: int, value: Value) -> None:
        tx = self.active.get(core)
        if tx is None:
            self.memory.store(addr, value)
            return
        tx.buffer.store(addr, value)

    def in_transaction(self, core: int) -> bool:
        return core in self.active

    def serial_slot_ready(self, region: int, order: int,
                          n_chunks: int) -> bool:
        """Whether chunk ``order`` of ``region`` may *begin* under a
        strictly serialized chunk schedule (graceful degradation after
        repeated core blackouts -- see
        :meth:`repro.sim.recovery.RecoveryManager.defer_tx_begin`): only
        the next chunk in commit order may start.  A fresh region (or a
        wrapped re-entry not yet begun) admits chunk 0."""
        if self._region != region:
            return order == 0
        return order == self._next_commit_order % max(1, n_chunks)

    def may_commit(self, core: int) -> bool:
        """Ordered commit: chunk k of each region entry waits for chunks
        0..k-1 of that entry (the counter wraps per entry, so re-entering
        the same speculative region -- an outer loop around a DOALL loop --
        keeps working)."""
        tx = self._tx(core)
        return tx.order == self._next_commit_order % tx.n_chunks

    def try_commit(self, core: int) -> bool:
        """Validate and commit; returns False (and aborts) on conflict."""
        tx = self._tx(core)
        if tx.order != self._next_commit_order % tx.n_chunks:
            raise TransactionError(
                f"core {core} commits chunk {tx.order} out of order "
                f"(expected {self._next_commit_order % tx.n_chunks})"
            )
        conflicting = any(
            record.serial > tx.begin_serial
            and tx.buffer.conflicts_with(record.write_set)
            for record in self._commits
        )
        if (
            not conflicting
            and self.faults is not None
            and not self._serialized
            and self.faults.spurious_conflict()
        ):
            # Injected conflict: validation passed, abort anyway.  The
            # livelock guard (see abort) bounds how often this can recur.
            self.spurious_aborts += 1
            conflicting = True
        if conflicting:
            self.abort(core)
            return False
        tx.buffer.publish(self.memory)
        self._commit_serial += 1
        self._commits.append(
            _CommitRecord(
                order=tx.order,
                serial=self._commit_serial,
                write_set=set(tx.buffer.write_set),
            )
        )
        self._next_commit_order += 1
        del self.active[core]
        self.commits += 1
        if self.obs is not None:
            self.obs.tx_commit(core, tx.region, tx.order)
        self._abort_streak.pop(core, None)
        if not self.active:
            # The wave of chunks fully committed: any abort storm is
            # over, so serialized mode (and the streaks) reset.
            self._serialized = False
            self._abort_streak.clear()
        return True

    def abort(self, core: int) -> None:
        tx = self._tx(core)
        tx.buffer.discard()
        del self.active[core]
        self.aborts += 1
        if self.obs is not None:
            self.obs.tx_abort(core, tx.region, tx.order)
        streak = self._abort_streak.get(core, 0) + 1
        self._abort_streak[core] = streak
        if streak >= self.livelock_threshold and not self._serialized:
            # Abort storm: escalate to serialized ordered commit --
            # conflict injection is suppressed until the current wave of
            # chunks commits, so a retry is guaranteed to make progress.
            self._serialized = True
            self.livelock_escalations += 1

    def _tx(self, core: int) -> Transaction:
        tx = self.active.get(core)
        if tx is None:
            raise TransactionError(f"core {core} has no active transaction")
        return tx
