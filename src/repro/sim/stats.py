"""Cycle accounting for the simulator.

Stall categories follow the paper's Figure 12 breakdown:

* ``istall`` -- instruction cache miss cycles,
* ``dstall`` -- data cache miss cycles,
* ``recv_data`` -- cycles stalled in RECV waiting for a data message,
* ``recv_pred`` -- cycles stalled in RECV waiting for a branch predicate,
* ``call_sync`` -- synchronization before function calls and returns,

plus categories the paper folds into the text: ``barrier`` (MODE_SWITCH
joins), ``tx_wait`` (ordered transaction commit), ``latency`` (scoreboard
interlocks -- near zero with a correct static schedule), and ``idle``
(a core listening with no fine-grain thread to run).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

STALL_CATEGORIES = (
    "istall",
    "dstall",
    "recv_data",
    "recv_pred",
    "call_sync",
    "barrier",
    "tx_wait",
    "send",
    "latency",
    "idle",
)


@dataclass
class CoreStats:
    """Per-core cycle accounting."""

    busy: int = 0  # cycles issuing an operation (including NOP padding)
    stalls: Dict[str, int] = field(
        default_factory=lambda: {category: 0 for category in STALL_CATEGORIES}
    )
    ops_executed: int = 0
    loads: int = 0
    stores: int = 0
    l1d_misses: int = 0
    l1i_misses: int = 0
    messages_sent: int = 0
    messages_received: int = 0

    def stall(self, category: str, cycles: int = 1) -> None:
        try:
            self.stalls[category] += cycles
        except KeyError:
            raise ValueError(
                f"unknown stall category {category!r}; expected one of "
                f"{STALL_CATEGORIES}"
            ) from None

    @property
    def total_stalls(self) -> int:
        return sum(self.stalls.values())

    def to_dict(self) -> Dict[str, object]:
        return {
            "busy": self.busy,
            "stalls": dict(self.stalls),
            "ops_executed": self.ops_executed,
            "loads": self.loads,
            "stores": self.stores,
            "l1d_misses": self.l1d_misses,
            "l1i_misses": self.l1i_misses,
            "messages_sent": self.messages_sent,
            "messages_received": self.messages_received,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CoreStats":
        stats = cls(**{k: v for k, v in data.items() if k != "stalls"})
        stats.stalls = {c: 0 for c in STALL_CATEGORIES}
        stats.stalls.update(data["stalls"])
        return stats


@dataclass
class MachineStats:
    """Whole-machine statistics for one simulation."""

    n_cores: int
    cycles: int = 0
    mode_cycles: Dict[str, int] = field(
        default_factory=lambda: {"coupled": 0, "decoupled": 0}
    )
    cores: List[CoreStats] = field(default_factory=list)
    tx_commits: int = 0
    tx_aborts: int = 0
    spawns: int = 0
    mode_switches: int = 0
    #: Cycles attributed to core 0's current (function, block label) --
    #: used for the per-region accounting behind the Fig. 3 breakdown.
    block_cycles: Dict[Tuple[str, str], int] = field(default_factory=dict)
    #: Destructive-fault recovery counters (keys from
    #: ``repro.sim.recovery.RECOVERY_COUNTERS``).  Empty -- and omitted
    #: from serialization -- unless a RecoveryManager ran, so fault-free
    #: payloads stay bit-identical to pre-recovery goldens.
    recovery: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.cores:
            self.cores = [CoreStats() for _ in range(self.n_cores)]

    def mean_stalls(self, category: str) -> float:
        """Average stall cycles per core (the paper reports per-core means)."""
        return sum(core.stalls[category] for core in self.cores) / self.n_cores

    def mean_total_stalls(self) -> float:
        return sum(core.total_stalls for core in self.cores) / self.n_cores

    def total_ops(self) -> int:
        return sum(core.ops_executed for core in self.cores)

    def mode_fraction(self, mode: str) -> float:
        total = sum(self.mode_cycles.values())
        if total == 0:
            return 0.0
        return self.mode_cycles[mode] / total

    def summary(self) -> Dict[str, float]:
        return {
            "cycles": self.cycles,
            "ops": self.total_ops(),
            "coupled_frac": self.mode_fraction("coupled"),
            "decoupled_frac": self.mode_fraction("decoupled"),
            "tx_commits": self.tx_commits,
            "tx_aborts": self.tx_aborts,
            **{
                f"stall_{category}": self.mean_stalls(category)
                for category in STALL_CATEGORIES
            },
        }

    # -- (de)serialization for the on-disk experiment cache ------------------------

    def to_dict(self) -> Dict[str, object]:
        """A JSON-safe dump round-tripping every field (tuple keys in
        ``block_cycles`` become tab-joined strings)."""
        data = {
            "n_cores": self.n_cores,
            "cycles": self.cycles,
            "mode_cycles": dict(self.mode_cycles),
            "cores": [core.to_dict() for core in self.cores],
            "tx_commits": self.tx_commits,
            "tx_aborts": self.tx_aborts,
            "spawns": self.spawns,
            "mode_switches": self.mode_switches,
            "block_cycles": {
                f"{function}\t{label}": cycles
                for (function, label), cycles in self.block_cycles.items()
            },
        }
        if self.recovery:
            data["recovery"] = dict(self.recovery)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "MachineStats":
        stats = cls(
            n_cores=data["n_cores"],
            cycles=data["cycles"],
            mode_cycles=dict(data["mode_cycles"]),
            cores=[CoreStats.from_dict(core) for core in data["cores"]],
            tx_commits=data["tx_commits"],
            tx_aborts=data["tx_aborts"],
            spawns=data["spawns"],
            mode_switches=data["mode_switches"],
        )
        stats.block_cycles = {
            tuple(key.split("\t", 1)): cycles
            for key, cycles in data["block_cycles"].items()
        }
        stats.recovery = dict(data.get("recovery", {}))
        return stats
