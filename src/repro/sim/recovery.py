"""Architectural detection and recovery for destructive faults.

The destructive channels of :mod:`repro.sim.faults` damage events the
timing channels merely delay: operand-network payloads arrive scrambled,
SEND/SPAWN/RELEASE messages vanish in the router, and a core executing a
speculative DOALL chunk blacks out mid-flight, wiping its register file
and scoreboard.  This module is the architecture's answer -- the
mechanisms the paper's design already implies, made explicit:

* **Link layer (CRC + NACK/retransmit).**  Every queue-mode message is
  stamped with a CRC over (src, dst, kind, tag, seq, payload) at SEND
  time.  Delivery is a *transmission attempt*: a corrupted attempt fails
  the receiver's CRC check and is NACKed; a dropped attempt trips the
  sender's retransmission timer.  Either way the original message is
  retransmitted under bounded exponential backoff, and per-(src, dst)
  FIFO order is preserved by dragging every later message of the pair
  behind the retransmission.  After ``retransmit_budget`` failed
  attempts the final retransmission is sent *reliably* (fault sampling
  suppressed) -- the deadlock escape that bounds every RECV stall.

* **Watchdog (stall-bus heartbeats) + checkpoint rollback.**  Each core
  pulses the 1-bit stall bus every cycle; a blacked-out core goes
  silent.  After ``heartbeat_misses`` missed pulses the watchdog
  declares the core dead and recovers its chunk through the existing TM
  path: abort the transaction (discarding the write buffer), restore
  the compiler's register checkpoint, and re-execute from the chunk's
  restart label -- exactly the machinery a conflict abort uses, which is
  why a blackout can never corrupt architectural state.  When the dark
  window outlasts the restore latency the orphaned chunk is *remapped*:
  the checkpoint travels to the nearest surviving core and execution
  resumes there after the migration latency.  (Compiled instruction
  streams are per-core, so the remap is modelled at the timing and
  placement level: :attr:`RecoveryManager.placement` records the new
  physical home and the resume time pays the migration; the logical
  core object keeps executing the chunk.)

* **Graceful degradation.**  A core exceeding ``blackout_budget``
  blackouts is demoted at the next MODE_SWITCH barrier: further
  blackouts on it are masked (it is assumed re-initialized
  conservatively), and its speculative chunks issue under a serialized
  "fewer-core" schedule -- a chunk may only begin once every logically
  earlier chunk of the region entry has committed, which is the timing
  shape of rescheduling the region onto the surviving cores.

Every hook sits behind the established single ``is None`` check: a
machine without destructive faults never constructs a
:class:`RecoveryManager`, and the chaos-differential suite proves final
memory stays bit-identical to the fault-free golden under any plan.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Optional

#: Fixed restore cost once the watchdog fires: re-initializing the
#: pipeline and reloading the register checkpoint.
RESTORE_LATENCY = 8

#: Poison written over a blacked-out core's registers; recovery must
#: fully replace it (reads of poisoned state would change results, which
#: the chaos differential would catch).
_POISON = 0x0DEAD0DEAD

#: Stable counter keys, in report order.  ``counters_dict`` and
#: ``MachineStats.recovery`` use exactly these.
RECOVERY_COUNTERS = (
    "crc_errors",
    "drops",
    "retransmits",
    "fallbacks",
    "blackouts",
    "blackout_cycles",
    "watchdog_detections",
    "chunk_rollbacks",
    "chunks_remapped",
    "regions_degraded",
    "directory_scrubs",
    "vlink_reclaims",
)

#: Dynamic histogram keys beside the stable counters: one
#: ``remap_hops_<n>`` key per remap distance seen (mesh hops from the
#: dead core to its adopter).  Like ``blackout_cycles`` they are an
#: aggregate, not an event count, and ``events_recorded`` skips them.
REMAP_HOPS_PREFIX = "remap_hops_"

#: Recovery-event kind -> MachineStats.recovery counter it increments.
#: :func:`repro.obs.timeline.reconcile` asserts the per-kind event
#: counts equal these counters exactly.
EVENT_COUNTER_FOR_KIND = {
    "crc_error": "crc_errors",
    "msg_drop": "drops",
    "retransmit": "retransmits",
    "fallback": "fallbacks",
    "blackout": "blackouts",
    "watchdog": "watchdog_detections",
    "chunk_rollback": "chunk_rollbacks",
    "remap": "chunks_remapped",
    "degrade": "regions_degraded",
    "scrub": "directory_scrubs",
    "vlink_reclaim": "vlink_reclaims",
}


def payload_crc(src, dst, kind, tag, seq, value) -> int:
    """CRC-32 over a message's identifying fields and payload, computed
    on a stable textual encoding (no randomized ``hash()``)."""
    return zlib.crc32(repr((src, dst, kind, tag, seq, value)).encode())


def message_crc(message) -> int:
    return payload_crc(
        message.src, message.dst, message.kind, message.tag, message.seq,
        message.value,
    )


def scramble(value):
    """The wire-corruption model: a deterministic burst error applied to
    a payload in flight.  Deterministic so fault schedules replay
    exactly; always value-changing so the CRC check has something to
    catch."""
    if isinstance(value, bool):
        return not value
    if isinstance(value, float):
        return -(value + 1.0)
    if isinstance(value, int):
        return value ^ 0x2BAD
    if isinstance(value, str):
        return value + "\x00"
    return 0x2BAD  # None and anything exotic


class RecoveryManager:
    """Detection and repair of destructive faults for one machine run.

    Constructed by ``VoltronMachine.__init__`` when the attached
    :class:`~repro.sim.faults.FaultPlan` has destructive channels armed;
    holds the watchdog state, the per-core blackout ledger, the
    degradation set, and the recovery counters that land in
    ``MachineStats.recovery``.
    """

    def __init__(self, machine, plan) -> None:
        self.machine = machine
        self.plan = plan
        self.config = plan.config
        self.counters: Dict[str, int] = {
            key: 0 for key in RECOVERY_COUNTERS
        }
        #: Optional :class:`~repro.obs.events.Observability` event bus:
        #: when attached, every detection/repair emits a recovery event.
        self.obs = None
        #: Blacked-out cores: core id -> {"wake": ..., "detect": ...}.
        self._down: Dict[int, Dict[str, int]] = {}
        #: Blackouts suffered per core (feeds the degradation budget).
        self.blackout_count: Dict[int, int] = {}
        #: Cores past their blackout budget, awaiting the next barrier.
        self._degrade_pending: set = set()
        #: Degraded cores: blackouts masked, chunk issue serialized.
        self.degraded: set = set()
        #: Logical core -> physical core after the last recovery (the
        #: remap ledger; identity until a remap happens).
        self.placement: Dict[int, int] = {}
        #: Coupled-cluster geometry: the stall-bus heartbeat only reaches
        #: ``coupled_group_size`` cores, so on clustered machines the
        #: watchdog's view of a remote cluster rides the (slower)
        #: cluster-level stall network and detection pays
        #: ``cluster_stall_latency`` extra (``machine._cluster_penalty``
        #: is that latency, 0 on single-cluster machines).
        config = machine.config
        self._cluster_size = max(1, config.coupled_group_size)
        #: Watchdog detections per coupled cluster (the per-cluster
        #: heartbeat ledger; introspection and tests).
        self.watchdog_by_cluster: Dict[int, int] = {}
        #: Budgets scaled to the machine shape.  The per-config knobs
        #: were tuned for the paper's 4-core machine; a mesh64 running
        #: the same absolute budgets would degrade (serialize) after a
        #: single unlucky core and fall back to reliable delivery on
        #: every contended link.  Scaling keeps the *per-core* tolerance
        #: constant: blackout budget grows with the core count, the
        #: retransmit budget with the mesh diameter (longer routes, more
        #: attempts in flight).  Both factors are exactly 1 for every
        #: machine up to 4 cores, so small-machine schedules are
        #: untouched.
        rows, cols = config.mesh_shape
        self.blackout_budget = (
            plan.config.blackout_budget * max(1, config.n_cores // 4)
        )
        self.retransmit_budget = (
            plan.config.retransmit_budget * max(1, (rows + cols) // 4)
        )

    # -- event plumbing ----------------------------------------------------------

    def _event(self, cycle: int, kind: str, core: int, detail: str,
               cycles: int = 0) -> None:
        if self.obs is not None:
            self.obs.recovery(cycle, kind, core, detail, cycles)

    def counters_dict(self) -> Dict[str, int]:
        return dict(self.counters)

    def events_recorded(self) -> int:
        """Total detection/repair events (equals total counter bumps
        minus the aggregates: blackout_cycles and the remap-distance
        histogram)."""
        return sum(
            value for key, value in self.counters.items()
            if key != "blackout_cycles"
            and not key.startswith(REMAP_HOPS_PREFIX)
        )

    # -- link layer: CRC + NACK/retransmit ---------------------------------------

    def link_accept(self, network, message, cycle: int) -> bool:
        """Adjudicate one transmission attempt at delivery time.

        Returns True when the attempt lands intact (the message enters
        the receive CAM); False when it failed -- the message has then
        already been requeued as a retransmission and the caller must
        hold every later message of the same (src, dst) pair behind it.
        """
        budget = self.retransmit_budget
        if message.attempts > budget:
            # Deadlock escape: past the budget the retransmission rides
            # a reliable (ECC-protected, non-droppable) slot -- fault
            # sampling is suppressed, so delivery is guaranteed.
            return True
        outcome = self.plan.xmit_outcome()
        if outcome is None:
            return True
        net = network.config
        hops = network.mesh.hops(message.src, message.dst)
        one_way = net.queue_entry_cycles + hops * net.queue_cycles_per_hop
        backoff = self.config.backoff_base * (1 << (message.attempts - 1))
        if outcome == "corrupt":
            wire = scramble(message.value)
            if payload_crc(
                message.src, message.dst, message.kind, message.tag,
                message.seq, wire,
            ) == message.crc:
                # A CRC-32 collision between the scrambled and original
                # payloads: undetectable by construction, astronomically
                # unlikely, and the chaos differential would flag the
                # divergence.  Deliver what the wire carried.
                message.value = wire
                return True
            self.counters["crc_errors"] += 1
            self._event(
                cycle, "crc_error", message.dst,
                f"seq={message.seq} src={message.src} kind={message.kind}",
            )
            # Detection is immediate at the receiver; the NACK travels
            # back, the sender backs off, the retransmission travels
            # forward again.
            resend_ready = cycle + one_way + backoff + one_way
        else:  # drop
            self.counters["drops"] += 1
            self._event(
                cycle, "msg_drop", message.src,
                f"seq={message.seq} dst={message.dst} kind={message.kind}",
            )
            # No NACK for a vanished message: the sender's timer waits a
            # conservative round trip past the expected ack.
            resend_ready = cycle + 2 * one_way + backoff + one_way
        message.attempts += 1
        self.counters["retransmits"] += 1
        if message.attempts > budget:
            self.counters["fallbacks"] += 1
            self._event(
                cycle, "fallback", message.src,
                f"seq={message.seq} attempts={message.attempts} reliable",
            )
        message.ready_cycle = resend_ready
        network.requeue(message, cycle)
        self._event(
            cycle, "retransmit", message.src,
            f"seq={message.seq} attempt={message.attempts} "
            f"ready={resend_ready}",
        )
        return False

    def vlink_reclaim(self, message, cycle: int) -> None:
        """Called by :meth:`OperandNetwork.requeue` when a retransmitted
        vlink message moves from the shared pool into its producer's
        (now free) reserved slot: the pool credit is returned instead of
        riding dark through the whole backoff window."""
        self.counters["vlink_reclaims"] += 1
        self._event(
            cycle, "vlink_reclaim", message.src,
            f"seq={message.seq} dst={message.dst} pool credit returned",
        )

    # -- blackouts: injection, watchdog, rollback, remap -------------------------

    def maybe_blackout(self, core, cycle: int) -> bool:
        """Probe the blackout channel for a RUNNING, issue-ready core in
        decoupled mode.  Injection is gated to the architecturally
        recoverable window -- an active transaction whose register
        checkpoint matches the current call depth -- which is exactly the
        window where all in-flight state is covered by the TM abort /
        register-rollback path.  Returns True when the core went dark
        this cycle (the caller attributes the stall and skips the step).
        """
        core_id = core.id
        if core_id in self._down or core_id in self.degraded:
            return False
        checkpoint = core.tx_checkpoint
        if checkpoint is None or not self.machine.tm.in_transaction(core_id):
            return False
        if core.call_depth != checkpoint.call_depth:
            return False
        duration = self.plan.blackout_cycles()
        if not duration:
            return False
        self.counters["blackouts"] += 1
        self.counters["blackout_cycles"] += duration
        count = self.blackout_count.get(core_id, 0) + 1
        self.blackout_count[core_id] = count
        # Wipe the in-flight architectural state: poison every register
        # and clear the scoreboard.  Recovery must fully rebuild both --
        # any poisoned value that leaked into results would break the
        # chaos differential's bit-identity.
        core.regs.restore(
            {reg: _POISON for reg in core.regs.snapshot()}
        )
        core.reg_ready.clear()
        core._fetched_block = None
        # The watchdog hears the missed heartbeats over the stall
        # fabric; on clustered machines the silence must propagate up
        # the cluster-level stall network first.
        detect = (
            cycle + self.config.heartbeat_misses
            + self.machine._cluster_penalty
        )
        self._down[core_id] = {"wake": cycle + duration, "detect": detect}
        # Hold the pipeline at least until the watchdog fires; the
        # detection handler sets the final resume time.
        core.block_until(detect, "latency")
        self._event(
            cycle, "blackout", core_id, f"dark for {duration} cycles",
            cycles=duration,
        )
        if (
            count > self.blackout_budget
            and core_id not in self._degrade_pending
        ):
            self._degrade_pending.add(core_id)
        return True

    def tick(self, cycle: int) -> None:
        """The watchdog: called once per stepped cycle.  A core whose
        stall-bus heartbeat has been silent for ``heartbeat_misses``
        cycles is declared dead and its chunk recovered."""
        if not self._down:
            return
        for core_id in list(self._down):
            entry = self._down[core_id]
            if cycle < entry["detect"]:
                continue
            del self._down[core_id]
            self.counters["watchdog_detections"] += 1
            cluster = core_id // self._cluster_size
            self.watchdog_by_cluster[cluster] = (
                self.watchdog_by_cluster.get(cluster, 0) + 1
            )
            self._event(
                cycle, "watchdog", core_id,
                f"missed {self.config.heartbeat_misses} heartbeats "
                f"(cluster {cluster})",
            )
            self._recover(core_id, entry, cycle)

    def _recover(self, core_id: int, entry: Dict[str, int],
                 cycle: int) -> None:
        machine = self.machine
        core = machine.cores[core_id]
        # The existing TM recovery path: abort (discard the write
        # buffer), restore the compiler's register checkpoint, restart
        # the chunk -- identical to a conflict abort at commit.
        machine.tm.abort(core_id)
        restart = core.rollback_registers()
        core.jump(restart)
        self.counters["chunk_rollbacks"] += 1
        self._event(cycle, "chunk_rollback", core_id, f"restart={restart}")
        # Directory fabrics must forget the dead core: a presence vector
        # still naming it would route later misses to a supplier that is
        # dark (and its M/O data would go stale once it re-executes).
        # M/O lines write back, everything else invalidates, and the
        # directory invariant is re-asserted after every recovery.
        scrub = getattr(machine.bus, "scrub_core", None)
        if scrub is not None:
            lines = scrub(core_id)
            self.counters["directory_scrubs"] += 1
            self._event(
                cycle, "scrub", core_id,
                f"{lines} line(s) written back or invalidated",
            )
            machine.bus.check_directory()
        resume = cycle + RESTORE_LATENCY
        if entry["wake"] > resume and machine.config.n_cores > 1:
            # The core is still dark when the checkpoint is ready:
            # remap the orphaned chunk onto the nearest surviving core.
            # The checkpoint travels over the operand network, so the
            # migration pays one queue traversal -- plus the cluster
            # stall-network hop when the adopter lives in a different
            # coupled cluster.
            adopter = self._adopter(core_id)
            hops = machine.mesh.hops(core_id, adopter)
            net = machine.network.config
            migration = (
                net.queue_entry_cycles + hops * net.queue_cycles_per_hop
            )
            if adopter // self._cluster_size != core_id // self._cluster_size:
                migration += machine._cluster_penalty
            resume += migration
            self.placement[core_id] = adopter
            self.counters["chunks_remapped"] += 1
            key = f"{REMAP_HOPS_PREFIX}{hops}"
            self.counters[key] = self.counters.get(key, 0) + 1
            self._event(
                cycle, "remap", core_id,
                f"onto physical core {adopter} ({hops} hop(s))",
                cycles=hops,
            )
        else:
            resume = max(resume, entry["wake"])
            self.placement[core_id] = core_id
        # Recovery owns this core's stall window end to end, so a direct
        # assignment (not block_until) may shorten the provisional hold.
        core.next_free = resume
        core.pending_cause = "latency"

    def _adopter(self, core_id: int) -> int:
        """The nearest surviving core by mesh distance (ties break to
        the lowest core id, so the choice is deterministic).  On holey
        near-square meshes "next index" can be a worst-case route away;
        the checkpoint should travel the fewest hops that reach a live
        core."""
        mesh = self.machine.mesh
        best = core_id
        best_key = None
        for candidate in range(self.machine.config.n_cores):
            if candidate == core_id or candidate in self._down:
                continue
            key = (mesh.hops(core_id, candidate), candidate)
            if best_key is None or key < best_key:
                best_key = key
                best = candidate
        return best

    # -- graceful degradation ----------------------------------------------------

    def on_mode_switch(self, cycle: int) -> None:
        """Degradation re-arms at MODE_SWITCH barriers: cores past their
        blackout budget are demoted here, never mid-region."""
        if not self._degrade_pending:
            return
        for core_id in sorted(self._degrade_pending):
            self.degraded.add(core_id)
            self.counters["regions_degraded"] += 1
            self._event(
                cycle, "degrade", core_id,
                f"blackout budget {self.blackout_budget} exceeded; "
                "serialized chunk schedule",
            )
        self._degrade_pending.clear()

    def defer_tx_begin(self, core, op) -> bool:
        """Whether a degraded core must hold its TX_BEGIN: under the
        fewer-core schedule its chunk may only begin once every
        logically earlier chunk of the region entry has committed.  The
        next-to-commit chunk is never deferred, so progress holds even
        with every core degraded."""
        if core.id not in self.degraded:
            return False
        attrs = op.attrs
        order = attrs["order"]
        n_chunks = attrs.get("chunks", 0) or order + 1
        return not self.machine.tm.serial_slot_ready(
            attrs["region"], order, n_chunks
        )
