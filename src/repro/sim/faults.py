"""Seeded, deterministic fault injection for the Voltron simulator.

Voltron's headline claims are *robustness* claims: queue-mode
communication tolerates variable latency, the TM rolls back speculative
DOALL chunks on conflict with guaranteed progress, and decoupled cores
resynchronize at MODE_SWITCH barriers.  This module adversarially
exercises those recovery paths in the spirit of STM torture testing and
the timing-perturbation fuzzing used by architecture simulators.

A :class:`FaultPlan` is a deterministic realization of a
:class:`FaultConfig`: every injection channel draws from its own
sha256-seeded stream, so the same (seed, rate) knobs replay the same
fault schedule in any process (Python's randomized ``hash()`` is never
involved).  Injection sites:

* **memory/cache latency** -- extra fill cycles on data accesses
  (:meth:`repro.sim.caches.SnoopBus.access`) and instruction fetches
  (:meth:`repro.sim.caches.L1ICache.access`);
* **queue-mode delivery delay** -- extra in-flight cycles on SEND /
  SPAWN / RELEASE messages (:meth:`repro.sim.network.OperandNetwork.send`);
* **spurious TM conflicts** -- a validation-passing chunk is aborted
  anyway, forcing the abort -> register-rollback -> re-execute path
  (:meth:`repro.sim.tm.TransactionalMemory.try_commit`); the TM's
  livelock guard bounds consecutive injected aborts so the paper's
  progress guarantee survives any rate, including 1.0;
* **transient stall-bus assertions** -- a coupled group is held for a
  few cycles as if a member were blocked
  (:meth:`repro.sim.machine.VoltronMachine._step_group`);
* **directory-latency inflation** -- a directory transaction (miss or
  upgrade indirection) occasionally waits extra cycles at the home node
  (:meth:`repro.sim.caches.DirectoryCoherence.access`); a no-op on the
  snoop bus, which has no directory to congest;
* **Virtual-Link pool contention** -- a vlink SEND occasionally waits
  extra cycles for a shared-pool slot at the receiver
  (:meth:`repro.sim.network.OperandNetwork.send`); a no-op under the
  per-pair queue policy.

A second family of channels is *destructive*: instead of perturbing
timing they damage architectural events, and the recovery subsystem
(:mod:`repro.sim.recovery`) must detect and repair every one:

* **payload corruption** -- a queue-mode message arrives with a
  scrambled payload; the receiver's CRC check catches it and NACKs,
  forcing a retransmission under bounded exponential backoff;
* **message drops** -- a SEND/SPAWN/RELEASE message vanishes in the
  router; the sender's retransmission timer recovers it;
* **core blackouts** -- a core executing a speculative DOALL chunk goes
  dark for a bounded window, wiping its register file and in-flight
  scoreboard state; the stall-bus watchdog detects the missed
  heartbeats and recovers the chunk through the TM
  abort -> register-rollback -> re-execute path.

``FaultConfig.profile`` selects the family: ``"timing"`` (the default,
exactly the pre-existing behaviour), ``"destructive"``, or ``"both"``.

Every fault -- timing *or* destructive -- leaves architectural results
intact; the chaos-differential suite
(``tests/properties/test_prop_chaos.py``) proves the strongest possible
property: under any fault plan, final memory images and reference
outputs are bit-identical to the fault-free run.

Channels sample geometric inter-arrival gaps (the exact distribution of
"number of Bernoulli(rate) trials until the first hit"), so a disabled
or sparse channel costs one integer decrement per probe instead of an
RNG draw.  With no plan attached the hooks are a single ``is None``
check.
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass
from typing import Dict

#: A countdown no run ever reaches (rate-0 channels never fire).
_NEVER = 1 << 62

#: Valid values for :attr:`FaultConfig.profile`.
FAULT_PROFILES = ("timing", "destructive", "both")


@dataclass(frozen=True)
class FaultConfig:
    """Knobs deriving a deterministic fault schedule.

    ``rate`` is the per-site firing probability of the latency channels
    (memory, instruction fetch, network, stall bus); ``tm_rate`` is the
    per-commit probability of a spurious conflict.  The ``max_*`` bounds
    cap each injected delay in cycles.

    ``profile`` selects the channel family: ``"timing"`` arms only the
    latency channels above (the default, and exactly the pre-existing
    behaviour), ``"destructive"`` arms only the destructive channels,
    ``"both"`` arms everything.  Destructive knobs: ``corrupt_rate`` /
    ``drop_rate`` are per-transmission-attempt probabilities of payload
    corruption / message loss; ``blackout_rate`` is the per-eligible-
    core-cycle probability of a transient blackout lasting up to
    ``max_blackout`` cycles.  ``retransmit_budget`` bounds failed
    attempts per message before the final retransmission is sent
    reliably (the deadlock escape); ``backoff_base`` scales the
    exponential retransmission backoff; ``heartbeat_misses`` is how many
    missed stall-bus heartbeats the watchdog tolerates before declaring
    a core dead; ``blackout_budget`` is how many blackouts one core may
    suffer before the scheduler degrades it at the next MODE_SWITCH
    barrier.
    """

    seed: int = 0
    rate: float = 0.01
    tm_rate: float = 0.25
    max_mem_delay: int = 24
    max_net_delay: int = 12
    max_stall_hold: int = 8
    max_directory_delay: int = 16
    max_vlink_hold: int = 8
    profile: str = "timing"
    corrupt_rate: float = 0.02
    drop_rate: float = 0.02
    blackout_rate: float = 0.0001
    max_blackout: int = 64
    retransmit_budget: int = 4
    backoff_base: int = 2
    heartbeat_misses: int = 4
    blackout_budget: int = 2

    def __post_init__(self) -> None:
        if self.profile not in FAULT_PROFILES:
            raise ValueError(
                f"profile must be one of {FAULT_PROFILES}, "
                f"got {self.profile!r}"
            )
        for name in ("rate", "tm_rate", "corrupt_rate", "drop_rate",
                     "blackout_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        for name in ("max_mem_delay", "max_net_delay", "max_stall_hold",
                     "max_directory_delay", "max_vlink_hold",
                     "max_blackout", "retransmit_budget", "backoff_base",
                     "heartbeat_misses", "blackout_budget"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")


def _stream(seed: int, channel: str) -> random.Random:
    """A per-channel RNG seeded through sha256, stable across processes."""
    digest = hashlib.sha256(f"voltron-fault:{seed}:{channel}".encode())
    return random.Random(int.from_bytes(digest.digest()[:8], "big"))


class _Channel:
    """One injection channel: geometric inter-arrival, bounded delays."""

    __slots__ = ("rng", "rate", "max_delay", "countdown", "fires",
                 "injected_cycles")

    def __init__(self, seed: int, name: str, rate: float, max_delay: int) -> None:
        self.rng = _stream(seed, name)
        self.rate = rate
        self.max_delay = max_delay
        self.fires = 0
        self.injected_cycles = 0
        self.countdown = self._gap()

    def _gap(self) -> int:
        """Trials until the next fire: Geometric(rate) via inverse CDF."""
        if self.rate <= 0.0:
            return _NEVER
        if self.rate >= 1.0:
            return 1
        u = self.rng.random()
        return max(1, math.ceil(math.log(1.0 - u) / math.log(1.0 - self.rate)))

    def fire(self) -> int:
        """Probe the channel: 0 almost always, else the delay to inject."""
        self.countdown -= 1
        if self.countdown > 0:
            return 0
        self.countdown = self._gap()
        delay = self.rng.randint(1, self.max_delay)
        self.fires += 1
        self.injected_cycles += delay
        return delay


class FaultPlan:
    """A deterministic fault schedule, consumed site by site as the
    machine runs.  Attach one via ``VoltronMachine(..., faults=plan)``;
    the machine wires it into the bus, the instruction caches, the
    operand network, and the TM, and falls back to the single-step
    kernel (fault arrivals are per-cycle events the stall fast-forward
    classifier cannot see)."""

    def __init__(self, config: FaultConfig) -> None:
        self.config = config
        #: Optional :class:`~repro.obs.events.Observability` event bus:
        #: when attached, every landed injection emits a probe event.
        self.obs = None
        seed = config.seed
        timing = config.profile in ("timing", "both")
        destructive = config.profile in ("destructive", "both")
        rate = config.rate if timing else 0.0
        tm_rate = config.tm_rate if timing else 0.0
        self._mem = _Channel(seed, "mem", rate, config.max_mem_delay)
        self._ifetch = _Channel(seed, "ifetch", rate, config.max_mem_delay)
        self._net = _Channel(seed, "net", rate, config.max_net_delay)
        self._stall = _Channel(seed, "stall-bus", rate, config.max_stall_hold)
        self._dir = _Channel(seed, "directory", rate,
                             config.max_directory_delay)
        self._vpool = _Channel(seed, "vlink", rate, config.max_vlink_hold)
        self._tm = _Channel(seed, "tm", tm_rate, 1)
        corrupt = config.corrupt_rate if destructive else 0.0
        drop = config.drop_rate if destructive else 0.0
        blackout = config.blackout_rate if destructive else 0.0
        self._corrupt = _Channel(seed, "corrupt", corrupt, 1)
        self._drop = _Channel(seed, "drop", drop, 1)
        self._blackout = _Channel(seed, "blackout", blackout,
                                  config.max_blackout)
        #: True when the timing channel family is armed.
        self.timing = timing
        #: True when any destructive channel is armed: the machine then
        #: builds a :class:`~repro.sim.recovery.RecoveryManager` and the
        #: operand network stamps CRCs onto outgoing messages.
        self.destructive = destructive and (
            corrupt > 0.0 or drop > 0.0 or blackout > 0.0
        )

    @classmethod
    def from_seed(cls, seed: int, rate: float = 0.01, **kwargs) -> "FaultPlan":
        return cls(FaultConfig(seed=seed, rate=rate, **kwargs))

    # -- injection probes (one per site kind) ----------------------------------

    def mem_delay(self) -> int:
        """Extra cycles for a data-cache access (0 = no fault)."""
        delay = self._mem.fire()
        if delay and self.obs is not None:
            self.obs.fault("mem", delay)
        return delay

    def ifetch_delay(self) -> int:
        """Extra cycles for an instruction fetch (0 = no fault)."""
        delay = self._ifetch.fire()
        if delay and self.obs is not None:
            self.obs.fault("ifetch", delay)
        return delay

    def net_delay(self) -> int:
        """Extra in-flight cycles for a queue-mode message (0 = no fault)."""
        delay = self._net.fire()
        if delay and self.obs is not None:
            self.obs.fault("net", delay)
        return delay

    def stall_hold(self) -> int:
        """Cycles to assert the stall bus over a coupled group (0 = none)."""
        delay = self._stall.fire()
        if delay and self.obs is not None:
            self.obs.fault("stall_bus", delay)
        return delay

    def directory_delay(self) -> int:
        """Extra cycles for a directory transaction -- a miss or upgrade
        indirection waiting at a congested home node (0 = no fault).
        Probed only by :class:`~repro.sim.caches.DirectoryCoherence`, so
        snoop-bus machines never consume this stream."""
        delay = self._dir.fire()
        if delay and self.obs is not None:
            self.obs.fault("directory", delay)
        return delay

    def vlink_hold(self) -> int:
        """Extra in-flight cycles for a vlink SEND contending for the
        receiver's shared pool (0 = no fault).  Probed only under the
        ``vlink`` queue policy, so per-pair machines never consume this
        stream."""
        delay = self._vpool.fire()
        if delay and self.obs is not None:
            self.obs.fault("vlink", delay)
        return delay

    def spurious_conflict(self) -> bool:
        """Whether to abort a validation-passing commit anyway."""
        fired = self._tm.fire() > 0
        if fired and self.obs is not None:
            self.obs.fault("tm", 1)
        return fired

    # -- destructive probes ------------------------------------------------------

    def xmit_outcome(self) -> "str | None":
        """Fate of one message transmission attempt: None (intact, the
        overwhelmingly common case), ``'drop'`` (lost in the router), or
        ``'corrupt'`` (delivered with a scrambled payload).  Drops are
        sampled first so the two channels stay independent streams."""
        if self._drop.fire():
            if self.obs is not None:
                self.obs.fault("drop", 1)
            return "drop"
        if self._corrupt.fire():
            if self.obs is not None:
                self.obs.fault("corrupt", 1)
            return "corrupt"
        return None

    def blackout_cycles(self) -> int:
        """Duration of a transient core blackout starting this cycle
        (0 = no fault).  Probed once per eligible core-cycle."""
        delay = self._blackout.fire()
        if delay and self.obs is not None:
            self.obs.fault("blackout", delay)
        return delay

    # -- accounting -------------------------------------------------------------

    def injections(self) -> int:
        return sum(channel.fires for channel in self._channels())

    def injected_cycles(self) -> int:
        return sum(channel.injected_cycles for channel in self._channels())

    def summary(self) -> Dict[str, int]:
        """Per-channel fire counts plus totals (stable key order)."""
        out: Dict[str, int] = {}
        for name, channel in (
            ("mem", self._mem),
            ("ifetch", self._ifetch),
            ("net", self._net),
            ("stall_bus", self._stall),
            ("directory", self._dir),
            ("vlink", self._vpool),
            ("tm", self._tm),
            ("corrupt", self._corrupt),
            ("drop", self._drop),
            ("blackout", self._blackout),
        ):
            out[name] = channel.fires
        out["injections"] = self.injections()
        out["injected_cycles"] = self.injected_cycles()
        return out

    def _channels(self):
        return (self._mem, self._ifetch, self._net, self._stall, self._dir,
                self._vpool, self._tm, self._corrupt, self._drop,
                self._blackout)

    def __repr__(self) -> str:
        return f"FaultPlan({self.config!r}, injections={self.injections()})"
