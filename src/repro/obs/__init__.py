"""Observability: cycle-accurate probes, metrics time series, trace export.

The package is a zero-overhead-when-disabled instrumentation layer for
the Voltron simulator.  An :class:`Observability` instance is the event
bus: pass one to ``VoltronMachine(..., obs=...)`` (or through
``repro.api.run_cell(..., obs=...)``) and the machine wires typed probes
into every subsystem with something worth watching -- mode switches,
stall attribution, fast-forward windows, operand-network traffic, cache
misses, transactions, and fault injections.  With no observer attached
every hook is a single ``is None`` check, so performance runs and the
fast-forward differential suite are untouched.

On top of the bus:

* :class:`MetricsSeries` -- per-cycle samples (queue occupancy, live
  cores, cumulative stalls by category) at a configurable stride;
* :func:`summarize` / :func:`reconcile` -- a per-mode / per-category
  timeline summary that must agree *exactly* with
  :class:`~repro.sim.stats.MachineStats` (asserted in tests and on every
  ``repro.api.run_cell`` profiling run);
* :func:`perfetto_trace` / :func:`write_trace` -- a Chrome-trace-event /
  Perfetto JSON export: one track per core, a machine track for mode
  residency and fast-forward windows, async spans for transactions and
  operand-network messages, and counter tracks from the series.
"""

from .events import ObsConfig, Observability, RecoveryEvent
from .perfetto import perfetto_trace, write_trace
from .series import MetricsSeries
from .timeline import ReconciliationError, TimelineSummary, reconcile, summarize

__all__ = [
    "MetricsSeries",
    "Observability",
    "ObsConfig",
    "ReconciliationError",
    "RecoveryEvent",
    "TimelineSummary",
    "perfetto_trace",
    "reconcile",
    "summarize",
    "write_trace",
]
