"""Per-mode / per-region timeline summary, reconciled against MachineStats.

:func:`summarize` folds an :class:`~repro.obs.events.Observability`
instance's spans into totals -- cycles per mode, stall cycles per core per
category, transaction counts per speculative region -- and
:func:`reconcile` asserts those totals agree *exactly* with the
:class:`~repro.sim.stats.MachineStats` the simulator produced.  The two
accountings take independent paths (spans are recorded at probe time,
stats are the simulator's own accumulators), so agreement is a real
end-to-end check on the instrumentation, not a tautology.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..sim.recovery import EVENT_COUNTER_FOR_KIND, REMAP_HOPS_PREFIX
from ..sim.stats import STALL_CATEGORIES, MachineStats


class ReconciliationError(AssertionError):
    """The observability timeline disagrees with the simulator's stats."""


@dataclass
class TimelineSummary:
    """Totals folded from one run's observability spans."""

    cycles: int
    mode_cycles: Dict[str, int]
    #: Closed mode-residency segments: (start, end, mode), end exclusive.
    mode_segments: List[Tuple[int, int, str]]
    #: Per-core stall-cycle totals by category, folded from the spans.
    stall_totals: List[Dict[str, int]]
    ff_windows: int
    ff_cycles: int
    #: Per speculative region: begin/commit/abort event counts.
    regions: Dict[int, Dict[str, int]] = field(default_factory=dict)
    tx_begins: int = 0
    tx_commits: int = 0
    tx_aborts: int = 0
    #: Recovery counters folded from the recovery events (same keys as
    #: ``MachineStats.recovery``).  Empty -- and omitted from the dict
    #: payload -- for runs without destructive faults.
    recovery: Dict[str, int] = field(default_factory=dict)
    truncated: bool = False

    def to_dict(self) -> Dict[str, object]:
        data = {
            "cycles": self.cycles,
            "mode_cycles": dict(self.mode_cycles),
            "mode_segments": [list(seg) for seg in self.mode_segments],
            "stall_totals": [dict(totals) for totals in self.stall_totals],
            "ff_windows": self.ff_windows,
            "ff_cycles": self.ff_cycles,
            "regions": {
                str(region): dict(counts)
                for region, counts in sorted(self.regions.items())
            },
            "tx_begins": self.tx_begins,
            "tx_commits": self.tx_commits,
            "tx_aborts": self.tx_aborts,
            "truncated": self.truncated,
        }
        if self.recovery:
            data["recovery"] = dict(self.recovery)
        return data


def summarize(obs) -> TimelineSummary:
    """Fold the recorded spans and events into a :class:`TimelineSummary`."""
    stall_totals: List[Dict[str, int]] = []
    for spans in obs.stall_spans:
        totals = {category: 0 for category in STALL_CATEGORIES}
        for _start, cycles, category in spans:
            totals[category] += cycles
        stall_totals.append(totals)

    mode_cycles = {"coupled": 0, "decoupled": 0}
    for start, end, mode in obs.mode_segments:
        mode_cycles[mode] = mode_cycles.get(mode, 0) + (end - start)

    regions: Dict[int, Dict[str, int]] = {}
    counts = {"begin": 0, "commit": 0, "abort": 0}
    for event in obs.tx_events:
        region = regions.setdefault(
            event.region, {"begin": 0, "commit": 0, "abort": 0}
        )
        region[event.kind] += 1
        counts[event.kind] += 1

    recovery: Dict[str, int] = {}
    for event in obs.recovery_events:
        counter = EVENT_COUNTER_FOR_KIND[event.kind]
        recovery[counter] = recovery.get(counter, 0) + 1
        if event.kind == "blackout":
            recovery["blackout_cycles"] = (
                recovery.get("blackout_cycles", 0) + event.cycles
            )
        elif event.kind == "remap":
            # Remap events carry the migration distance in ``cycles``;
            # folding the same histogram keys the RecoveryManager
            # accumulates keeps reconcile() an exact-equality check.
            key = f"{REMAP_HOPS_PREFIX}{event.cycles}"
            recovery[key] = recovery.get(key, 0) + 1

    return TimelineSummary(
        cycles=obs.final_cycle if obs.final_cycle is not None else 0,
        mode_cycles=mode_cycles,
        mode_segments=list(obs.mode_segments),
        stall_totals=stall_totals,
        ff_windows=len(obs.ff_windows),
        ff_cycles=sum(end - start for start, end in obs.ff_windows),
        regions=regions,
        tx_begins=counts["begin"],
        tx_commits=counts["commit"],
        tx_aborts=counts["abort"],
        recovery=recovery,
        truncated=obs.truncated,
    )


def reconcile(summary: TimelineSummary, stats: MachineStats) -> TimelineSummary:
    """Assert the timeline totals equal the simulator's own accounting.

    Checks total cycles, per-mode residency, and per-core per-category
    stall cycles unconditionally (spans are never truncated); transaction
    counts only when the event lists were not truncated.  Raises
    :class:`ReconciliationError` listing every mismatch; returns the
    summary unchanged on success.
    """
    problems: List[str] = []
    if summary.cycles != stats.cycles:
        problems.append(
            f"cycles: timeline {summary.cycles} != stats {stats.cycles}"
        )
    for mode in ("coupled", "decoupled"):
        observed = summary.mode_cycles.get(mode, 0)
        expected = stats.mode_cycles.get(mode, 0)
        if observed != expected:
            problems.append(
                f"mode_cycles[{mode}]: timeline {observed} != stats {expected}"
            )
    if len(summary.stall_totals) != len(stats.cores):
        problems.append(
            f"core count: timeline {len(summary.stall_totals)} != "
            f"stats {len(stats.cores)}"
        )
    else:
        for core_id, (totals, core) in enumerate(
            zip(summary.stall_totals, stats.cores)
        ):
            for category in STALL_CATEGORIES:
                if totals[category] != core.stalls[category]:
                    problems.append(
                        f"core {core_id} stalls[{category}]: timeline "
                        f"{totals[category]} != stats {core.stalls[category]}"
                    )
    if not summary.truncated:
        if summary.tx_commits != stats.tx_commits:
            problems.append(
                f"tx_commits: timeline {summary.tx_commits} != "
                f"stats {stats.tx_commits}"
            )
        if summary.tx_aborts != stats.tx_aborts:
            problems.append(
                f"tx_aborts: timeline {summary.tx_aborts} != "
                f"stats {stats.tx_aborts}"
            )
        for counter in sorted(set(summary.recovery) | set(stats.recovery)):
            observed = summary.recovery.get(counter, 0)
            expected = stats.recovery.get(counter, 0)
            if observed != expected:
                problems.append(
                    f"recovery[{counter}]: timeline {observed} != "
                    f"stats {expected}"
                )
    if problems:
        raise ReconciliationError(
            "observability timeline disagrees with MachineStats:\n  "
            + "\n  ".join(problems)
        )
    return summary
