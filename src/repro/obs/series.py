"""Sampled per-cycle metrics for one simulation.

A :class:`MetricsSeries` snapshots the machine every ``stride`` cycles
(plus once at the end of the run): operand-network queue occupancy (per
core and total), messages still in flight, live-core count, and the
cumulative busy/stall tallies per category summed across cores.  Samples
are stored columnar (one list per metric) so the JSON dump stays compact
and a plotting client can zip columns without reshaping.

Cumulative counters (``busy``, ``stalls``) sample the same accumulators
:class:`~repro.sim.stats.MachineStats` reports at the end of the run, so
the last sample of each cumulative column always equals the final
aggregate -- differencing adjacent samples yields per-window rates.

Stall windows the fast-forward kernel skips produce no samples (nothing
is stepped); the skipped ranges are recorded as fast-forward window
events on the :class:`~repro.obs.events.Observability` bus, and the
``cycle`` column makes the gaps explicit.
"""

from __future__ import annotations

from typing import Dict, List

from ..sim.stats import STALL_CATEGORIES


class MetricsSeries:
    """Columnar per-cycle samples of machine-wide gauges and counters."""

    def __init__(self, stride: int, n_cores: int) -> None:
        if stride < 1:
            raise ValueError(f"sample stride must be >= 1, got {stride}")
        self.stride = stride
        self.n_cores = n_cores
        self.cycle: List[int] = []
        self.live_cores: List[int] = []
        self.in_flight: List[int] = []
        self.queue_occupancy: List[int] = []
        self.queue_per_core: List[List[int]] = []
        self.busy: List[int] = []
        self.stalls: Dict[str, List[int]] = {
            category: [] for category in STALL_CATEGORIES
        }

    def __len__(self) -> int:
        return len(self.cycle)

    def sample(self, machine, cycle: int) -> None:
        """Record one sample (idempotent per cycle: the final flush may
        land on a stride boundary that was already sampled)."""
        if self.cycle and self.cycle[-1] == cycle:
            return
        self.cycle.append(cycle)
        self.live_cores.append(machine.config.n_cores - machine._halted_count)
        network = machine.network
        self.in_flight.append(len(network._in_flight))
        occupancy = [len(queue) for queue in network.receive_queues]
        self.queue_per_core.append(occupancy)
        self.queue_occupancy.append(sum(occupancy))
        core_stats = machine.stats.cores
        self.busy.append(sum(stats.busy for stats in core_stats))
        for category in STALL_CATEGORIES:
            self.stalls[category].append(
                sum(stats.stalls[category] for stats in core_stats)
            )

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe columnar dump (what ``--metrics-out`` serializes)."""
        return {
            "stride": self.stride,
            "n_cores": self.n_cores,
            "cycle": list(self.cycle),
            "live_cores": list(self.live_cores),
            "in_flight": list(self.in_flight),
            "queue_occupancy": list(self.queue_occupancy),
            "queue_per_core": [list(row) for row in self.queue_per_core],
            "busy": list(self.busy),
            "stalls": {
                category: list(values)
                for category, values in self.stalls.items()
            },
        }
