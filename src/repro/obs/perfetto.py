"""Chrome-trace-event / Perfetto JSON export for one observed run.

:func:`perfetto_trace` turns an :class:`~repro.obs.events.Observability`
instance into the Trace Event Format dict Perfetto (ui.perfetto.dev) and
``chrome://tracing`` both load:

* one *thread* track per core (tid = core + 1) carrying its stall spans
  as complete ("X") events and its cache misses as instants;
* a *machine* track (tid 0) carrying mode-residency segments and
  fast-forwarded stall windows;
* async ("b"/"e") spans for transactions (begin -> commit/abort) and
  operand-network messages (send -> receive), each with a stable id;
* counter ("C") tracks sampled from the metrics series (queue occupancy,
  in-flight messages, live cores);
* instant ("i") events for landed fault injections;
* a *recovery* track (tid = n_cores + 1) carrying blackout dark windows
  as complete spans and every other detection/repair action (CRC error,
  drop, retransmit, watchdog, rollback, remap, degrade) as instants.
  The track -- including its thread_name metadata -- only exists when
  recovery events were recorded, so fault-free traces are byte-identical
  to pre-recovery exports.

Timestamps are simulation cycles written as microseconds (one cycle ==
1us in the viewer); ``displayTimeUnit`` is set to ns so sub-window zooms
stay readable.  Transaction and network span ids live in disjoint ranges
(network ids are offset by ``_NET_ID_BASE``) so the viewer never glues
unrelated begins and ends together.
"""

from __future__ import annotations

import json
from typing import Dict, List

#: Async-span id offset separating network messages from transactions.
_NET_ID_BASE = 1 << 24

_PID = 0
_MACHINE_TID = 0


def _meta(name: str, tid: int, label: str) -> Dict[str, object]:
    return {
        "name": name,
        "ph": "M",
        "pid": _PID,
        "tid": tid,
        "args": {"name": label},
    }


def perfetto_trace(obs) -> Dict[str, object]:
    """Build the ``{"traceEvents": [...]}`` dict for one observed run."""
    events: List[Dict[str, object]] = [
        _meta("process_name", _MACHINE_TID, "voltron"),
        _meta("thread_name", _MACHINE_TID, "machine"),
    ]
    for core in range(obs.n_cores):
        events.append(_meta("thread_name", core + 1, f"core {core}"))

    for start, end, mode in obs.mode_segments:
        events.append(
            {
                "name": mode,
                "cat": "mode",
                "ph": "X",
                "ts": start,
                "dur": end - start,
                "pid": _PID,
                "tid": _MACHINE_TID,
            }
        )
    for start, end in obs.ff_windows:
        events.append(
            {
                "name": "fast-forward",
                "cat": "fastforward",
                "ph": "X",
                "ts": start,
                "dur": end - start,
                "pid": _PID,
                "tid": _MACHINE_TID,
            }
        )

    for core, spans in enumerate(obs.stall_spans):
        tid = core + 1
        for start, cycles, category in spans:
            events.append(
                {
                    "name": category,
                    "cat": "stall",
                    "ph": "X",
                    "ts": start,
                    "dur": cycles,
                    "pid": _PID,
                    "tid": tid,
                }
            )

    # Transactions: pair each begin with the next commit/abort on the same
    # core (the TM allows one active transaction per core, so pairing by
    # core is exact even across aborted retries).
    open_tx: Dict[int, int] = {}
    next_tx_id = 1
    for event in obs.tx_events:
        tid = event.core + 1
        name = f"tx r{event.region}#{event.order}"
        if event.kind == "begin":
            tx_id = next_tx_id
            next_tx_id += 1
            open_tx[event.core] = tx_id
            events.append(
                {
                    "name": name,
                    "cat": "tx",
                    "ph": "b",
                    "id": tx_id,
                    "ts": event.cycle,
                    "pid": _PID,
                    "tid": tid,
                }
            )
        else:
            tx_id = open_tx.pop(event.core, None)
            if tx_id is None:
                continue  # begin fell past the event cap: unpaired end
            events.append(
                {
                    "name": name,
                    "cat": "tx",
                    "ph": "e",
                    "id": tx_id,
                    "ts": event.cycle,
                    "pid": _PID,
                    "tid": tid,
                    "args": {"outcome": event.kind},
                }
            )

    received = {event.seq: event.cycle for event in obs.net_recvs}
    for send in obs.net_sends:
        end = received.get(send.seq)
        if end is None:
            continue  # never consumed (or the recv fell past the cap)
        events.append(
            {
                "name": f"{send.kind} {send.src}->{send.dst}",
                "cat": "net",
                "ph": "b",
                "id": _NET_ID_BASE + send.seq,
                "ts": send.cycle,
                "pid": _PID,
                "tid": send.src + 1,
            }
        )
        events.append(
            {
                "name": f"{send.kind} {send.src}->{send.dst}",
                "cat": "net",
                "ph": "e",
                "id": _NET_ID_BASE + send.seq,
                "ts": end,
                "pid": _PID,
                "tid": send.src + 1,
            }
        )

    for miss in obs.cache_misses:
        events.append(
            {
                "name": f"{miss.where} miss",
                "cat": "cache",
                "ph": "i",
                "s": "t",
                "ts": miss.cycle,
                "pid": _PID,
                "tid": miss.core + 1,
                "args": {"latency": miss.latency},
            }
        )
    for fault in obs.fault_events:
        events.append(
            {
                "name": f"fault {fault.channel}",
                "cat": "fault",
                "ph": "i",
                "s": "g",
                "ts": fault.cycle,
                "pid": _PID,
                "tid": _MACHINE_TID,
                "args": {"channel": fault.channel, "delay": fault.delay},
            }
        )

    if obs.recovery_events:
        recovery_tid = obs.n_cores + 1
        events.append(_meta("thread_name", recovery_tid, "recovery"))
        for event in obs.recovery_events:
            if event.kind == "blackout":
                events.append(
                    {
                        "name": f"blackout core {event.core}",
                        "cat": "recovery",
                        "ph": "X",
                        "ts": event.cycle,
                        "dur": event.cycles,
                        "pid": _PID,
                        "tid": recovery_tid,
                        "args": {"core": event.core, "detail": event.detail},
                    }
                )
            else:
                events.append(
                    {
                        "name": event.kind,
                        "cat": "recovery",
                        "ph": "i",
                        "s": "g",
                        "ts": event.cycle,
                        "pid": _PID,
                        "tid": recovery_tid,
                        "args": {"core": event.core, "detail": event.detail},
                    }
                )

    if obs.series is not None:
        for cycle, occupancy, in_flight, live in zip(
            obs.series.cycle,
            obs.series.queue_occupancy,
            obs.series.in_flight,
            obs.series.live_cores,
        ):
            events.append(
                {
                    "name": "queue occupancy",
                    "cat": "series",
                    "ph": "C",
                    "ts": cycle,
                    "pid": _PID,
                    "args": {"messages": occupancy},
                }
            )
            events.append(
                {
                    "name": "in flight",
                    "cat": "series",
                    "ph": "C",
                    "ts": cycle,
                    "pid": _PID,
                    "args": {"messages": in_flight},
                }
            )
            events.append(
                {
                    "name": "live cores",
                    "cat": "series",
                    "ph": "C",
                    "ts": cycle,
                    "pid": _PID,
                    "args": {"cores": live},
                }
            )

    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {"truncated": obs.truncated},
    }


def write_trace(obs, path) -> None:
    """Serialize :func:`perfetto_trace` to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(perfetto_trace(obs), handle, separators=(",", ":"))
