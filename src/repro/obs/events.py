"""The observability event bus: typed probes, attached once per run.

Design constraints (in priority order):

1. **Zero overhead when disabled.**  Every instrumented subsystem holds
   an ``obs`` attribute defaulting to ``None`` and guards its probe with
   a single ``if self.obs is not None:`` -- the same discipline the
   fault-injection hooks follow.  Stall attribution goes further: with
   no observer the per-core ``CoreStats.stall`` method is untouched;
   attaching one swaps in a recording wrapper on the *instance*, so the
   disabled path pays nothing at all.
2. **Reconciles exactly.**  Stall spans are recorded by intercepting the
   very ``CoreStats.stall`` calls that build ``MachineStats`` -- both the
   per-cycle attributions and the fast-forward bulk credits -- so the
   timeline totals equal the aggregate stats *by construction*, and
   :func:`repro.obs.timeline.reconcile` asserts it per run.
3. **Bounded memory.**  Discrete event lists (transactions, messages,
   cache misses, faults) stop growing at ``ObsConfig.max_events`` and
   set ``truncated`` -- mirroring :class:`repro.harness.trace.Tracer`.
   Stall spans and mode segments are exempt: they are run-length merged
   (one entry per contiguous window), stay small, and reconciliation
   needs them complete.

An :class:`Observability` instance observes exactly one machine run;
attach a fresh one per simulation (``repro.api.run_cell`` does).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..sim.stats import CoreStats
from .series import MetricsSeries


@dataclass(frozen=True)
class ObsConfig:
    """Knobs for one observability session.

    ``sample_stride`` is the metrics-series sampling period in cycles;
    ``max_events`` bounds the discrete event lists (spans are run-length
    merged and exempt); ``single_step`` forces the reference per-cycle
    kernel so every cycle is individually visible in the series (stats
    are bit-identical either way -- the differential suite's guarantee).
    """

    sample_stride: int = 64
    max_events: int = 2_000_000
    single_step: bool = False

    def __post_init__(self) -> None:
        if self.sample_stride < 1:
            raise ValueError(
                f"sample_stride must be >= 1, got {self.sample_stride}"
            )
        if self.max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {self.max_events}")


@dataclass
class TxEvent:
    """One transaction lifecycle edge: begin, commit, or abort."""

    cycle: int
    core: int
    region: int
    order: int
    kind: str  # 'begin' | 'commit' | 'abort'


@dataclass
class NetSend:
    """A queue-mode message entering the operand network."""

    cycle: int
    src: int
    dst: int
    kind: str  # 'data' | 'spawn' | 'release'
    seq: int
    arrival: int  # earliest consumable cycle


@dataclass
class NetRecv:
    """A queue-mode message leaving a receive CAM (RECV or LISTEN)."""

    cycle: int
    seq: int


@dataclass
class MissEvent:
    """A cache miss and the latency it cost the requesting core."""

    cycle: int
    core: int
    where: str  # 'l1d' | 'l1i'
    latency: int


@dataclass
class FaultEvent:
    """One landed fault injection (channel name + injected delay)."""

    cycle: int
    channel: str
    delay: int


@dataclass
class RecoveryEvent:
    """One destructive-fault detection or repair action.

    ``kind`` is one of the keys of
    :data:`repro.sim.recovery.EVENT_COUNTER_FOR_KIND` (crc_error,
    msg_drop, retransmit, fallback, blackout, watchdog, chunk_rollback,
    remap, degrade); ``core`` is the detecting/affected core; ``cycles``
    carries a blackout's dark-window length (0 for instantaneous
    events).  Per-kind event counts reconcile exactly against
    ``MachineStats.recovery`` (:func:`repro.obs.timeline.reconcile`).
    """

    cycle: int
    kind: str
    core: int
    detail: str
    cycles: int = 0


class Observability:
    """Event bus for one simulation run.

    Create one, pass it to ``VoltronMachine(..., obs=...)`` (or
    ``repro.api.run_cell(..., obs=...)``), run, then read the collected
    spans/events or hand the instance to
    :func:`~repro.obs.perfetto.perfetto_trace` /
    :func:`~repro.obs.timeline.summarize`.
    """

    def __init__(self, config: Optional[ObsConfig] = None) -> None:
        self.config = config or ObsConfig()
        self.machine = None
        self.n_cores = 0
        #: Per-core run-length-merged stall spans: [start, cycles, category].
        self.stall_spans: List[List[list]] = []
        #: Closed mode-residency segments: (start, end, mode), end exclusive.
        self.mode_segments: List[Tuple[int, int, str]] = []
        self._mode_open: Tuple[int, str] = (0, "coupled")
        #: Fast-forwarded stall windows: (start, end), end exclusive.
        self.ff_windows: List[Tuple[int, int]] = []
        self.tx_events: List[TxEvent] = []
        self.net_sends: List[NetSend] = []
        self.net_recvs: List[NetRecv] = []
        self.cache_misses: List[MissEvent] = []
        self.fault_events: List[FaultEvent] = []
        self.recovery_events: List[RecoveryEvent] = []
        self.series: Optional[MetricsSeries] = None
        self.truncated = False
        self._n_events = 0
        self.final_cycle: Optional[int] = None

    # -- attachment ---------------------------------------------------------------

    def attach(self, machine) -> None:
        """Wire the probes into one machine.  Called by
        ``VoltronMachine.__init__``; an instance observes exactly one run."""
        if self.machine is not None:
            raise RuntimeError(
                "this Observability instance already observed a machine; "
                "create a fresh one per run"
            )
        self.machine = machine
        self.n_cores = machine.config.n_cores
        self.stall_spans = [[] for _ in range(self.n_cores)]
        self.series = MetricsSeries(self.config.sample_stride, self.n_cores)
        self._mode_open = (machine.cycle, machine.mode)
        machine.network.obs = self
        machine.tm.obs = self
        machine.bus.obs = self
        for index, icache in enumerate(machine.icaches):
            icache.obs = self
            icache.core_index = index
        if machine.faults is not None:
            machine.faults.obs = self
        if machine.recovery is not None:
            machine.recovery.obs = self
        for core in machine.cores:
            self._hook_stall(core.id, core.stats)
        if self.config.single_step:
            machine.fast_forward = False

    def _hook_stall(self, core_id: int, stats: CoreStats) -> None:
        """Swap a recording wrapper onto this instance's ``stall`` method.
        Catches every attribution path -- per-cycle stepping *and* the
        fast-forward bulk credits -- and run-length merges contiguous
        same-category cycles into spans."""
        original = stats.stall
        spans = self.stall_spans[core_id]

        def stall(category: str, cycles: int = 1) -> None:
            original(category, cycles)
            cycle = self.machine.cycle
            if spans:
                last = spans[-1]
                if last[2] == category and last[0] + last[1] == cycle:
                    last[1] += cycles
                    return
            spans.append([cycle, cycles, category])

        stats.stall = stall

    # -- bounded event storage -----------------------------------------------------

    def _append(self, bucket: list, event) -> None:
        if self._n_events >= self.config.max_events:
            self.truncated = True
            return
        self._n_events += 1
        bucket.append(event)

    # -- typed probes --------------------------------------------------------------

    def cycle(self, cycle: int) -> None:
        """Per-cycle hook from the machine's run loop (stepped cycles
        only; fast-forwarded windows arrive via :meth:`fast_forward_window`)."""
        if cycle % self.config.sample_stride == 0:
            self.series.sample(self.machine, cycle)

    def mode_switch(self, cycle: int, old: str, new: str) -> None:
        """The machine committed a mode change effective at ``cycle``."""
        start, mode = self._mode_open
        if cycle > start:
            self.mode_segments.append((start, cycle, mode))
        self._mode_open = (cycle, new)

    def fast_forward_window(self, start: int, end: int) -> None:
        """The clock jumped from ``start`` to ``end`` over a provable stall."""
        self._append(self.ff_windows, (start, end))

    def tx_begin(self, core: int, region: int, order: int) -> None:
        self._append(
            self.tx_events,
            TxEvent(self.machine.cycle, core, region, order, "begin"),
        )

    def tx_commit(self, core: int, region: int, order: int) -> None:
        self._append(
            self.tx_events,
            TxEvent(self.machine.cycle, core, region, order, "commit"),
        )

    def tx_abort(self, core: int, region: int, order: int) -> None:
        self._append(
            self.tx_events,
            TxEvent(self.machine.cycle, core, region, order, "abort"),
        )

    def net_send(
        self, cycle: int, src: int, dst: int, kind: str, seq: int, arrival: int
    ) -> None:
        self._append(self.net_sends, NetSend(cycle, src, dst, kind, seq, arrival))

    def net_recv(self, cycle: int, seq: int) -> None:
        self._append(self.net_recvs, NetRecv(cycle, seq))

    def cache_miss(self, core: int, latency: int) -> None:
        self._append(
            self.cache_misses,
            MissEvent(self.machine.cycle, core, "l1d", latency),
        )

    def icache_miss(self, core: int, latency: int) -> None:
        self._append(
            self.cache_misses,
            MissEvent(self.machine.cycle, core, "l1i", latency),
        )

    def fault(self, channel: str, delay: int) -> None:
        self._append(
            self.fault_events, FaultEvent(self.machine.cycle, channel, delay)
        )

    def recovery(
        self, cycle: int, kind: str, core: int, detail: str, cycles: int = 0
    ) -> None:
        self._append(
            self.recovery_events, RecoveryEvent(cycle, kind, core, detail, cycles)
        )

    # -- finalization --------------------------------------------------------------

    def finalize(self, machine) -> None:
        """Close the open mode segment and flush a final series sample.
        Called by ``VoltronMachine.run`` after the cycle loop completes."""
        self.final_cycle = machine.cycle
        start, mode = self._mode_open
        if machine.cycle > start:
            self.mode_segments.append((start, machine.cycle, mode))
        self._mode_open = (machine.cycle, mode)
        self.series.sample(machine, machine.cycle)

    def metrics(self) -> Dict[str, object]:
        """The JSON-safe metrics payload embedded in ``RunResult.metrics``
        and written by ``--metrics-out``: the sampled series plus the
        reconciled timeline summary."""
        from .timeline import summarize

        return {
            "series": self.series.to_dict() if self.series else None,
            "timeline": summarize(self).to_dict(),
            "truncated": self.truncated,
        }
