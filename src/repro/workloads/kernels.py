"""Parameterized IR kernels: the building blocks of the synthetic suite.

Each kernel emits one region (usually a single-block loop) into a
function under construction, shaped to exhibit one of the paper's
parallelism classes:

* :func:`ilp_kernel` -- wide independent arithmetic chains, cache
  resident: coupled-mode ILP wins (paper Fig. 9).
* :func:`doall_kernel` / :func:`reduction_kernel` -- elementwise array
  loops with no cross-iteration dependence: statistical DOALL / LLP
  (paper Figs. 2 and 7; the reduction exercises accumulator expansion).
* :func:`match_kernel` -- the 164.gzip Figure 8 shape: two pointer-chased
  load streams joined by a compare that controls the back branch;
  decoupled mode overlaps the misses (MLP) at the price of a predicate
  round trip.
* :func:`strand_kernel` -- multi-stream miss-heavy loop with a serial
  combine: fine-grain TLP via eBUG strands.
* :func:`dswp_kernel` -- a linked-list traversal feeding a deep work
  chain: pipeline parallelism with a loop-carried cross-stage value.
* :func:`serial_kernel` -- a tight recurrence with data-dependent
  addressing: best on a single core.
* :func:`call_kernel` -- a loop calling a helper function: decoupled mode
  pays call/return synchronization (Fig. 12's call-sync stalls).

Sizing rules of thumb (default machine): L1-D holds 1024 words, so arrays
of ``MISS_ARRAY`` words miss roughly once per 8-word line when streamed;
``RESIDENT_ARRAY``-sized tables stay hot after the first pass.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..isa.builder import FunctionBuilder, ProgramBuilder
from ..isa.operations import Reg

MISS_ARRAY = 4096
RESIDENT_ARRAY = 64

_kernel_ids = itertools.count()


@dataclass
class KernelContext:
    """Shared state while assembling one benchmark program."""

    pb: ProgramBuilder
    fb: FunctionBuilder
    seed: int = 1
    _counter: int = 0

    def unique(self, stem: str) -> str:
        # Per-context numbering keeps builds of the same recipe identical.
        self._counter += 1
        return f"{stem}_{self._counter}"

    def rand_init(self, size: int, modulus: int = 251) -> List[int]:
        """Deterministic pseudo-random contents (no RNG dependency)."""
        value = self.seed * 2654435761 % 2**32
        values = []
        for _ in range(size):
            value = (value * 1103515245 + 12345) % 2**31
            values.append(value % modulus + 1)
        return values


def ilp_kernel(
    ctx: KernelContext,
    trips: int = 128,
    chains: int = 4,
    depth: int = 3,
    shuffle: bool = True,
    out: Optional[str] = None,
) -> str:
    """Wide arithmetic with fine-grained cross-chain dataflow.

    Each iteration runs ``chains`` parallel mul/add/xor strands and then
    (with ``shuffle``) exchanges values between neighbouring strands.  The
    shuffle links every strand into one recurrence, so neither DOALL nor
    DSWP applies -- the region's parallelism is pure ILP, and exploiting
    it across cores takes the one-cycle direct network of coupled mode
    (the paper's "complicated data/memory dependences ... benefit from the
    low communication latency")."""
    fb, pb = ctx.fb, ctx.pb
    name = ctx.unique("ilp")
    consts = pb.alloc(f"{name}_c", chains, init=ctx.rand_init(chains, 13))
    out_name = out or f"{name}_out"
    output = pb.alloc(out_name, chains)
    accs = [fb.mov(k + 1) for k in range(chains)]
    coeffs = [fb.load(consts.base, k) for k in range(chains)]
    with fb.counted_loop(name, 0, trips) as i:
        temps = []
        for k in range(chains):
            t = fb.mul(accs[k], coeffs[k])
            for _ in range(depth - 1):
                t = fb.xor(fb.add(t, k + 1), i)
            temps.append(t)
        for k in range(chains):
            mixed = (
                fb.xor(temps[k], temps[(k + 1) % chains])
                if shuffle and chains > 1
                else temps[k]
            )
            fb.and_(mixed, 0xFFFF, dest=accs[k])
    for k in range(chains):
        fb.store(output.base, k, accs[k])
    return out_name


def doall_kernel(
    ctx: KernelContext,
    trips: int = 256,
    work: int = 3,
    miss_heavy: bool = False,
    out: Optional[str] = None,
) -> str:
    """Elementwise `c[i] = f(a[i], b[i])`: statistical DOALL (Fig. 7)."""
    fb, pb = ctx.fb, ctx.pb
    name = ctx.unique("doall")
    size = max(trips, MISS_ARRAY if miss_heavy else trips)
    a = pb.alloc(f"{name}_a", size, init=ctx.rand_init(size))
    b = pb.alloc(f"{name}_b", size, init=ctx.rand_init(size, 97))
    out_name = out or f"{name}_out"
    c = pb.alloc(out_name, size)
    scale = fb.mov(3)
    with fb.counted_loop(name, 0, trips) as i:
        va = fb.load(a.base, i)
        vb = fb.load(b.base, i)
        t = fb.mul(va, scale)
        for _ in range(work - 1):
            t = fb.add(t, vb)
        fb.store(c.base, i, t)
    return out_name


def reduction_kernel(
    ctx: KernelContext,
    trips: int = 256,
    miss_heavy: bool = False,
    out: Optional[str] = None,
) -> str:
    """Dot-product style reduction: DOALL with accumulator expansion."""
    fb, pb = ctx.fb, ctx.pb
    name = ctx.unique("red")
    size = max(trips, MISS_ARRAY if miss_heavy else trips)
    a = pb.alloc(f"{name}_a", size, init=ctx.rand_init(size))
    b = pb.alloc(f"{name}_b", size, init=ctx.rand_init(size, 89))
    out_name = out or f"{name}_out"
    c = pb.alloc(out_name, 1)
    acc = fb.mov(0)
    with fb.counted_loop(name, 0, trips) as i:
        va = fb.load(a.base, i)
        vb = fb.load(b.base, i)
        t = fb.mul(va, vb)
        fb.add(acc, t, dest=acc)
    fb.store(c.base, 0, acc)
    return out_name


def match_kernel(
    ctx: KernelContext,
    length: int = 192,
    mismatch_at: Optional[int] = None,
    out: Optional[str] = None,
) -> str:
    """The 164.gzip Figure 8 loop: compare two strided streams until they
    differ.  Decoupled strands overlap the two load streams' misses."""
    fb, pb = ctx.fb, ctx.pb
    name = ctx.unique("match")
    size = max(length + 8, MISS_ARRAY)
    data = ctx.rand_init(size, 7)
    scan_init = list(data)
    match_init = list(data)
    stop = mismatch_at if mismatch_at is not None else length - 2
    match_init[stop] = 999  # force the eventual mismatch
    scan = pb.alloc(f"{name}_scan", size, init=scan_init)
    match = pb.alloc(f"{name}_match", size, init=match_init)
    out_name = out or f"{name}_out"
    output = pb.alloc(out_name, 1)

    ps = fb.mov(scan.base)
    pm = fb.mov(match.base)
    count = fb.mov(0)
    loop = fb.block(name)
    vs = fb.load(ps, 0)
    vm = fb.load(pm, 0)
    fb.add(ps, 2, dest=ps)
    fb.add(pm, 2, dest=pm)
    eq = fb.cmp_eq(vs, vm)
    lim = fb.cmp_lt(ps, scan.base + length)
    cont = fb.pand(eq, lim)
    fb.add(count, 1, dest=count)
    fb.branch_if(cont, name)
    fb.block(ctx.unique(f"{name}_done"))
    fb.store(output.base, 0, count)
    return out_name


def strand_kernel(
    ctx: KernelContext,
    trips: int = 128,
    streams: int = 2,
    out: Optional[str] = None,
) -> str:
    """Miss-heavy multi-stream loop with a serial combine: the per-stream
    loads live on different cores so their misses overlap (eBUG)."""
    fb, pb = ctx.fb, ctx.pb
    name = ctx.unique("strand")
    arrays = [
        pb.alloc(f"{name}_s{k}", MISS_ARRAY, init=ctx.rand_init(MISS_ARRAY))
        for k in range(streams)
    ]
    out_name = out or f"{name}_out"
    output = pb.alloc(out_name, trips)
    stride = 8  # one L1 line per access: every load likely misses
    acc = fb.mov(1)
    with fb.counted_loop(name, 0, trips) as i:
        offset = fb.mul(i, stride)
        values = []
        for k, array in enumerate(arrays):
            v = fb.load(array.base, offset)
            values.append(fb.add(v, k))
        t = values[0]
        for v in values[1:]:
            t = fb.xor(t, v)
        # A serial combine through the accumulator keeps one SCC heavy so
        # the DSWP estimate stays below threshold and eBUG strands win.
        fb.mul(acc, 3, dest=acc)
        fb.and_(acc, 0xFFF, dest=acc)
        fb.add(acc, t, dest=acc)
        fb.store(output.base, i, t)
    fb.store(output.base, 0, acc)
    return out_name


def dswp_kernel(
    ctx: KernelContext,
    trips: int = 160,
    work_depth: int = 6,
    chase_depth: int = 2,
    out: Optional[str] = None,
) -> str:
    """Linked-list traversal feeding a deep work chain: classic DSWP.

    The pointer chase (``chase_depth`` chained link loads) forms one SCC --
    the pipeline's first stage; the work chain is acyclic and pipelines
    behind it.  With a heavy enough chase the carried pointer crosses
    stages through the prologue / per-iteration / drain channel protocol.
    """
    fb, pb = ctx.fb, ctx.pb
    name = ctx.unique("dswp")
    size = max(trips + 1, 256)
    # next[i] links i -> i + 1 ... a simple chain keeps it DOALL-opaque
    # (the address of iteration n+1 depends on iteration n's load).
    links = pb.alloc(f"{name}_next", size, init=[(i + 1) % size for i in range(size)])
    payload = pb.alloc(f"{name}_val", size, init=ctx.rand_init(size))
    out_name = out or f"{name}_out"
    output = pb.alloc(out_name, trips)
    node = fb.mov(0)
    with fb.counted_loop(name, 0, trips) as i:
        v = fb.load(payload.base, node)
        t = v
        for d in range(work_depth):
            t = fb.add(fb.mul(t, 3), d)
        fb.and_(t, 0xFFFF, dest=t)
        # Mixing the (carried) node id into the output puts a consumer of
        # the recurrence in the last pipeline stage, exercising the carried
        # cross-stage channel (prologue / per-iteration / drain).
        mixed = fb.xor(t, node)
        fb.store(output.base, i, mixed)
        # p = p->next->...->next: the whole chase is one recurrence SCC.
        hop = node
        for _ in range(max(chase_depth - 1, 0)):
            hop = fb.load(links.base, hop)
        fb.load(links.base, hop, dest=node)
    return out_name


def serial_kernel(
    ctx: KernelContext,
    trips: int = 96,
    out: Optional[str] = None,
) -> str:
    """A tight data-dependent recurrence: no exploitable parallelism."""
    fb, pb = ctx.fb, ctx.pb
    name = ctx.unique("serial")
    table = pb.alloc(
        f"{name}_t", RESIDENT_ARRAY, init=ctx.rand_init(RESIDENT_ARRAY, 63)
    )
    out_name = out or f"{name}_out"
    output = pb.alloc(out_name, 1)
    acc = fb.mov(ctx.seed % 17 + 1)
    with fb.counted_loop(name, 0, trips) as i:
        idx = fb.and_(acc, RESIDENT_ARRAY - 1)
        v = fb.load(table.base, idx)
        fb.add(acc, v, dest=acc)
        fb.mul(acc, 5, dest=acc)
        fb.and_(acc, 0xFFFF, dest=acc)
    fb.store(output.base, 0, acc)
    return out_name


def call_kernel(
    ctx: KernelContext,
    trips: int = 48,
    out: Optional[str] = None,
) -> str:
    """A loop around a helper call (parser/vortex-style small functions);
    decoupled compilations pay call/return synchronization here."""
    fb, pb = ctx.fb, ctx.pb
    name = ctx.unique("call")
    helper_name = f"{name}_helper"
    helper = pb.function(helper_name, n_params=2)
    helper.block(f"{helper_name}_entry")
    x, y = helper.function.params
    r = helper.mul(x, y)
    r = helper.add(r, 7)
    r = helper.and_(r, 0xFFFF)
    helper.ret(r)

    data = pb.alloc(f"{name}_a", max(trips, RESIDENT_ARRAY), init=ctx.rand_init(max(trips, RESIDENT_ARRAY)))
    out_name = out or f"{name}_out"
    output = pb.alloc(out_name, trips)
    with fb.counted_loop(name, 0, trips) as i:
        v = fb.load(data.base, i)
        w = fb.call(helper_name, [v, 3])
        fb.store(output.base, i, w)
    return out_name


def stencil_kernel(
    ctx: KernelContext,
    trips: int = 128,
    miss_heavy: bool = False,
    out: Optional[str] = None,
) -> str:
    """Three-point stencil `c[i] = (a[i-1] + 2a[i] + a[i+1]) / 4`.

    Reads of neighbouring elements do not conflict with the (disjoint)
    output array, so the loop is DOALL -- the shape behind the paper's
    swim/mgrid LLP (statistical DOALL catches it even though the compiler
    cannot prove the read offsets disjoint from other iterations' reads).
    """
    fb, pb = ctx.fb, ctx.pb
    name = ctx.unique("stencil")
    size = max(trips + 2, MISS_ARRAY if miss_heavy else trips + 2)
    a = pb.alloc(f"{name}_a", size, init=ctx.rand_init(size))
    out_name = out or f"{name}_out"
    c = pb.alloc(out_name, size)
    with fb.counted_loop(name, 1, trips + 1) as i:
        left = fb.load(a.base, fb.sub(i, 1))
        mid = fb.load(a.base, i)
        right = fb.load(a.base, fb.add(i, 1))
        total = fb.add(fb.add(left, fb.mul(mid, 2)), right)
        fb.store(c.base, i, fb.div(total, 4))
    return out_name


def histogram_kernel(
    ctx: KernelContext,
    trips: int = 96,
    bins: int = 64,
    out: Optional[str] = None,
) -> str:
    """Scatter update `h[key[i]] += 1` with data-dependent keys.

    Iterations *do* occasionally collide (the profile observes it), so the
    loop is rejected for speculation and exercises the selection policy's
    conservative path -- the scatter shape of vpr/equake update phases.
    """
    fb, pb = ctx.fb, ctx.pb
    name = ctx.unique("hist")
    keys = pb.alloc(
        f"{name}_k", trips, init=[v % bins for v in ctx.rand_init(trips, 509)]
    )
    out_name = out or f"{name}_out"
    table = pb.alloc(out_name, bins)
    with fb.counted_loop(name, 0, trips) as i:
        key = fb.load(keys.base, i)
        count = fb.load(table.base, key)
        fb.store(table.base, key, fb.add(count, 1))
    return out_name


#: Kernel registry used by benchmark recipes.
KERNELS = {
    "ilp": ilp_kernel,
    "doall": doall_kernel,
    "reduction": reduction_kernel,
    "match": match_kernel,
    "strand": strand_kernel,
    "dswp": dswp_kernel,
    "serial": serial_kernel,
    "call": call_kernel,
    "stencil": stencil_kernel,
    "histogram": histogram_kernel,
}
