"""The 25-benchmark synthetic suite standing in for SPEC/MediaBench.

Each benchmark is a recipe of kernels whose mix is calibrated to the
paper's Figure 3 parallelism breakdown and per-benchmark notes: e.g.
179.art is miss-dominated (fine-grain TLP wins), 171.swim/172.mgrid are
DOALL-rich scientific codes, gsmdecode contains both the Fig. 7 DOALL loop
and the Fig. 9 high-ILP filter, 164.gzip contains the Fig. 8 match loop,
197.parser/255.vortex make frequent small calls, and epic is dominated by
pipelineable fine-grain TLP.

``build(name)`` returns a fresh :class:`Benchmark` whose ``program`` can
be profiled, compiled, and simulated; ``outputs`` names the arrays whose
final contents define functional correctness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..isa.builder import ProgramBuilder
from ..isa.program import Program
from .kernels import KERNELS, KernelContext

#: (kernel name, kwargs) pairs per benchmark.  Order matters: it is the
#: program's sequential region structure.
Recipe = Sequence[Tuple[str, Dict[str, object]]]

RECIPES: Dict[str, Recipe] = {
    # SPEC fp / old SPEC: DOALL-rich scientific codes.
    "052.alvinn": (
        ("doall", {"trips": 256, "work": 4}),
        ("reduction", {"trips": 256}),
        ("ilp", {"trips": 64, "chains": 3}),
        ("serial", {"trips": 32}),
    ),
    "056.ear": (
        ("doall", {"trips": 192, "work": 3}),
        ("ilp", {"trips": 96, "chains": 4}),
        ("reduction", {"trips": 128, "miss_heavy": True}),
    ),
    "132.ijpeg": (
        ("doall", {"trips": 192, "work": 3}),
        ("ilp", {"trips": 128, "chains": 4, "depth": 4}),
        ("strand", {"trips": 48}),
    ),
    "164.gzip": (
        ("match", {"length": 320}),
        ("ilp", {"trips": 96, "chains": 3}),
        ("strand", {"trips": 64}),
        ("serial", {"trips": 48}),
    ),
    "171.swim": (
        ("doall", {"trips": 320, "work": 4, "miss_heavy": True}),
        ("stencil", {"trips": 256, "miss_heavy": True}),
        ("reduction", {"trips": 192}),
    ),
    "172.mgrid": (
        ("stencil", {"trips": 384, "miss_heavy": True}),
        ("reduction", {"trips": 256, "miss_heavy": True}),
        ("serial", {"trips": 24}),
    ),
    "175.vpr": (
        ("ilp", {"trips": 128, "chains": 4}),
        ("strand", {"trips": 96}),
        ("histogram", {"trips": 64}),
        ("call", {"trips": 32}),
    ),
    "177.mesa": (
        ("ilp", {"trips": 160, "chains": 5, "depth": 4}),
        ("ilp", {"trips": 96, "chains": 4}),
        ("doall", {"trips": 96}),
        ("serial", {"trips": 32}),
    ),
    "179.art": (
        ("strand", {"trips": 160, "streams": 3}),
        ("strand", {"trips": 96, "streams": 2}),
        ("reduction", {"trips": 96, "miss_heavy": True}),
        ("serial", {"trips": 24}),
    ),
    "183.equake": (
        ("strand", {"trips": 128, "streams": 2}),
        ("doall", {"trips": 160, "miss_heavy": True}),
        ("ilp", {"trips": 64, "chains": 3}),
    ),
    "197.parser": (
        ("serial", {"trips": 96}),
        ("call", {"trips": 48}),
        ("ilp", {"trips": 96, "chains": 3}),
        ("match", {"length": 128}),
    ),
    "255.vortex": (
        ("ilp", {"trips": 128, "chains": 4}),
        ("call", {"trips": 48}),
        ("serial", {"trips": 64}),
        ("doall", {"trips": 64}),
    ),
    "256.bzip2": (
        ("ilp", {"trips": 128, "chains": 4, "depth": 4}),
        ("strand", {"trips": 96}),
        ("match", {"length": 160}),
        ("serial", {"trips": 48}),
    ),
    # MediaBench.
    "cjpeg": (
        ("doall", {"trips": 192, "work": 3}),
        ("ilp", {"trips": 128, "chains": 4, "depth": 4}),
        ("serial", {"trips": 32}),
    ),
    "djpeg": (
        ("doall", {"trips": 224, "work": 3}),
        ("ilp", {"trips": 96, "chains": 4}),
        ("strand", {"trips": 48}),
    ),
    "epic": (
        ("dswp", {"trips": 192, "work_depth": 6}),
        ("dswp", {"trips": 128, "work_depth": 5}),
        ("doall", {"trips": 96}),
        ("serial", {"trips": 24}),
    ),
    "g721decode": (
        ("ilp", {"trips": 160, "chains": 4, "depth": 4}),
        ("ilp", {"trips": 96, "chains": 3}),
        ("serial", {"trips": 48}),
        ("doall", {"trips": 64}),
    ),
    "g721encode": (
        ("ilp", {"trips": 160, "chains": 4, "depth": 4}),
        ("serial", {"trips": 64}),
        ("reduction", {"trips": 96}),
    ),
    "gsmdecode": (
        # Figure 7's DOALL loop and Figure 9's high-ILP filter.
        ("doall", {"trips": 192, "work": 3}),
        ("ilp", {"trips": 160, "chains": 4, "depth": 5}),
        ("serial", {"trips": 32}),
    ),
    "gsmencode": (
        ("ilp", {"trips": 160, "chains": 4, "depth": 4}),
        ("reduction", {"trips": 160}),
        ("doall", {"trips": 96}),
    ),
    "mpeg2dec": (
        ("doall", {"trips": 224, "work": 3}),
        ("ilp", {"trips": 96, "chains": 4}),
        ("strand", {"trips": 64}),
    ),
    "mpeg2enc": (
        ("doall", {"trips": 256, "work": 4, "miss_heavy": True}),
        ("reduction", {"trips": 192}),
        ("ilp", {"trips": 64, "chains": 3}),
    ),
    "rawcaudio": (
        ("ilp", {"trips": 192, "chains": 4}),
        ("serial", {"trips": 48}),
    ),
    "rawdaudio": (
        ("ilp", {"trips": 176, "chains": 4}),
        ("doall", {"trips": 96}),
    ),
    "unepic": (
        ("dswp", {"trips": 128, "work_depth": 5}),
        ("doall", {"trips": 128}),
        ("ilp", {"trips": 64, "chains": 3}),
    ),
}

BENCHMARKS: Tuple[str, ...] = tuple(RECIPES)


@dataclass
class Benchmark:
    name: str
    program: Program
    outputs: List[str] = field(default_factory=list)
    recipe: Recipe = ()


def build(name: str, seed: int = 1) -> Benchmark:
    """Construct one suite benchmark (or generated handle) as a fresh
    program.

    ``gen:<seed>:<knobs-hash>`` handles resolve through the parametric
    generator (:mod:`repro.workloads.generator`) and deliberately ignore
    the build ``seed``: the handle alone pins the program bit-for-bit,
    keeping its content-hash cache keys stable across sessions.
    """
    if name.startswith("gen:"):
        from .generator import build_generated

        return build_generated(name)
    try:
        recipe = RECIPES[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; choose from {BENCHMARKS}"
        ) from None
    pb = ProgramBuilder(name.replace(".", "_"))
    fb = pb.function("main")
    fb.block("entry")
    ctx = KernelContext(pb=pb, fb=fb, seed=seed + sum(map(ord, name)))
    outputs = []
    for kernel_name, kwargs in recipe:
        kernel = KERNELS[kernel_name]
        outputs.append(kernel(ctx, **kwargs))
    fb.halt()
    return Benchmark(
        name=name, program=pb.finish(), outputs=outputs, recipe=recipe
    )


def build_all(seed: int = 1) -> Dict[str, Benchmark]:
    return {name: build(name, seed) for name in BENCHMARKS}
