"""Failure shrinking for generated workloads.

When a generated program fails the fuzzing oracle (voltlint, the race
sanitizer, or reference-interpreter bit-identity), the raw recipe is a
poor bug report: it mixes several regions and hundreds of iterations
around whatever actually broke.  :func:`shrink_recipe` minimizes it --
greedily dropping whole regions, then walking every numeric kernel
parameter down toward its floor -- while re-checking the failure after
every candidate step, and :func:`write_repro` persists the result as a
JSON artifact a human (or CI) can replay with one command.

The oracle contract is deliberately simple: a callable from recipe to
``Optional[str]`` -- ``None`` means the recipe passes, a string names
the failure.  Shrinking only accepts steps that *keep failing with some
failure*; it does not insist on the identical message (a smaller repro
that trips the same broken compiler path may word its finding slightly
differently).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from .suite import Recipe

#: Recipe oracle: None = passes, str = failure description.
RecipeOracle = Callable[[Recipe], Optional[str]]

#: Per-parameter floors the shrinker will not cross (kernel contracts:
#: e.g. a match loop needs a few elements before its forced mismatch).
_PARAM_FLOORS: Dict[str, int] = {
    "trips": 2,
    "length": 8,
    "work": 1,
    "work_depth": 1,
    "chase_depth": 1,
    "chains": 1,
    "depth": 1,
    "streams": 1,
    "bins": 4,
    "mismatch_at": 2,
}


@dataclass
class ShrinkResult:
    """A minimized failing recipe plus the search's bookkeeping."""

    recipe: Recipe
    failure: str
    #: Oracle invocations spent (the shrink budget actually used).
    checks: int = 0
    #: Regions in the original vs the minimized recipe.
    original_regions: int = 0
    #: Shrink steps that were accepted (region drops + param cuts).
    steps: List[str] = field(default_factory=list)


def _halve_toward(value: int, floor: int) -> int:
    """The next candidate when cutting a parameter: halfway to the
    floor, biased down so progress is guaranteed."""
    return max(floor, floor + (value - floor) // 2)


def shrink_recipe(
    recipe: Recipe,
    oracle: RecipeOracle,
    max_checks: int = 200,
) -> ShrinkResult:
    """Minimize ``recipe`` while ``oracle`` keeps reporting a failure.

    Phase 1 greedily removes regions (rescanning after every successful
    drop, so a failure needing two interacting regions keeps both).
    Phase 2 shrinks every numeric parameter of the surviving regions by
    repeated halving toward its floor.  ``max_checks`` bounds total
    oracle invocations; the best recipe found so far is returned even if
    the budget runs out mid-phase.
    """
    failure = oracle(recipe)
    if failure is None:
        raise ValueError("shrink_recipe needs a failing recipe to start from")
    current: List[Tuple[str, Dict[str, object]]] = [
        (kernel, dict(kwargs)) for kernel, kwargs in recipe
    ]
    result = ShrinkResult(
        recipe=tuple(current),
        failure=failure,
        checks=1,
        original_regions=len(current),
    )

    def try_candidate(candidate, step: str) -> bool:
        if result.checks >= max_checks:
            return False
        result.checks += 1
        verdict = oracle(tuple(candidate))
        if verdict is None:
            return False
        result.failure = verdict
        result.steps.append(step)
        return True

    # Phase 1: drop whole regions, restarting the scan on success so
    # later regions get re-tested against the smaller context.
    progress = True
    while progress and len(current) > 1 and result.checks < max_checks:
        progress = False
        for index in range(len(current)):
            candidate = current[:index] + current[index + 1:]
            kernel = current[index][0]
            if try_candidate(candidate, f"drop region {index} ({kernel})"):
                current = candidate
                progress = True
                break

    # Phase 2: cut numeric parameters toward their floors.
    progress = True
    while progress and result.checks < max_checks:
        progress = False
        for index, (kernel, kwargs) in enumerate(current):
            for key, value in sorted(kwargs.items()):
                if not isinstance(value, int) or isinstance(value, bool):
                    continue
                floor = _PARAM_FLOORS.get(key, 1)
                if value <= floor:
                    continue
                smaller = _halve_toward(value, floor)
                candidate = [(k, dict(kw)) for k, kw in current]
                candidate[index][1][key] = smaller
                step = f"region {index} ({kernel}): {key} {value} -> {smaller}"
                if try_candidate(candidate, step):
                    current = candidate
                    progress = True

    result.recipe = tuple(
        (kernel, dict(kwargs)) for kernel, kwargs in current
    )
    return result


def write_repro(
    artifact_dir: Union[str, Path],
    result: ShrinkResult,
    *,
    handle: str = "",
    seed: Optional[int] = None,
    knobs: Optional[object] = None,
) -> Path:
    """Persist a minimized repro as ``<dir>/repro_<digest>.json``.

    The document carries everything needed to replay without the
    generator's registry: the literal minimized recipe (replayable via
    :func:`repro.workloads.generator.build_recipe`), the originating
    handle/seed/knobs, and the failure text.
    """
    import hashlib

    artifact_dir = Path(artifact_dir)
    artifact_dir.mkdir(parents=True, exist_ok=True)
    document = {
        "schema_version": "1.0",
        "handle": handle,
        "seed": seed,
        "knobs": repr(knobs) if knobs is not None else None,
        "failure": result.failure,
        "checks": result.checks,
        "original_regions": result.original_regions,
        "steps": result.steps,
        "recipe": [
            {"kernel": kernel, "kwargs": kwargs}
            for kernel, kwargs in result.recipe
        ],
    }
    digest = hashlib.sha256(
        json.dumps(document["recipe"], sort_keys=True).encode()
    ).hexdigest()[:12]
    path = artifact_dir / f"repro_{digest}.json"
    with open(path, "w", encoding="utf-8") as handle_file:
        json.dump(document, handle_file, indent=2)
    return path
