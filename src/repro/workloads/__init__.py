"""Synthetic workload suite calibrated to the paper's benchmarks."""

from .kernels import (
    KERNELS,
    histogram_kernel,
    stencil_kernel,
    KernelContext,
    call_kernel,
    doall_kernel,
    dswp_kernel,
    ilp_kernel,
    match_kernel,
    reduction_kernel,
    serial_kernel,
    strand_kernel,
)
from .suite import BENCHMARKS, RECIPES, Benchmark, build, build_all

__all__ = [
    "KERNELS",
    "KernelContext",
    "call_kernel",
    "doall_kernel",
    "dswp_kernel",
    "ilp_kernel",
    "match_kernel",
    "reduction_kernel",
    "serial_kernel",
    "strand_kernel",
    "stencil_kernel",
    "histogram_kernel",
    "BENCHMARKS",
    "RECIPES",
    "Benchmark",
    "build",
    "build_all",
]
