"""Seeded parametric workload generator: arbitrary region mixes on demand.

The 25-recipe suite (:mod:`repro.workloads.suite`) pins down the paper's
figure cells; this module opens the rest of the design space.  A
:class:`GenKnobs` bundle parameterizes the hardware/software TLP axes
surveyed by Mazumdar & Giorgi -- DOALL depth and trip counts, miss-heavy
strand streams, dependence height / ILP width, TM conflict density --
and :func:`generate` composes the existing calibrated kernels into a
random (but fully seeded) recipe under those knobs.

Every generated program is referenced by a stable *handle*::

    gen:<seed>:<knobs-hash>

The knobs hash is a content hash of the knob values, so a handle pins
the exact program bit-for-bit: the same handle always rebuilds the same
IR, on any machine, in any process (the generator draws only from its
own integer PRNG stream, never from global state).  ``gen:<seed>``
abbreviates the default knobs.  Handles flow through the whole stack
uniformly with named benchmarks -- ``repro.workloads.suite.build``,
``repro.api.run_cell`` / ``verify_benchmark``, the CLI, and the result
cache all accept them -- which is what turns the voltlint verifier and
the reference interpreter into a compiler fuzzing oracle: every novel
region mix the generator emits must verify statically, survive the race
sanitizer, and match the sequential interpreter bit-for-bit.

Custom knob bundles must be *registered* (handles carry only the hash);
:func:`register_knobs` returns the handle prefix to use, and the default
bundle is pre-registered.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, fields, replace
from typing import Dict, Iterable, List, Optional, Tuple

from ..isa.builder import ProgramBuilder
from .kernels import KERNELS, MISS_ARRAY, KernelContext
from .suite import Benchmark, Recipe

#: Handle prefix shared by every generated benchmark.
HANDLE_PREFIX = "gen:"


@dataclass(frozen=True)
class GenKnobs:
    """The generator's design-space axes.

    Every range is inclusive ``(lo, hi)``.  Percent knobs are integers
    in [0, 100] so the knob bundle hashes exactly (no floats).
    """

    #: Regions (= kernel instances) per generated program.
    regions: Tuple[int, int] = (2, 5)
    #: Trip-count range for every loop kernel.
    trips: Tuple[int, int] = (16, 96)
    #: DOALL body depth (the ``work`` chain length).
    doall_work: Tuple[int, int] = (2, 5)
    #: ILP width (independent chains per iteration).
    ilp_chains: Tuple[int, int] = (2, 5)
    #: Dependence height of each ILP chain.
    ilp_depth: Tuple[int, int] = (2, 5)
    #: Concurrent miss streams in a strand region.
    strand_streams: Tuple[int, int] = (2, 3)
    #: DSWP work-chain depth and pointer-chase depth.
    dswp_work: Tuple[int, int] = (3, 7)
    dswp_chase: Tuple[int, int] = (1, 3)
    #: Chance (percent) that an eligible array loop streams a
    #: cache-busting footprint instead of a resident one.
    miss_heavy_pct: int = 25
    #: TM conflict density (percent): scales how often scatter regions
    #: collide.  100 squeezes the histogram key space to a handful of
    #: bins (nearly every speculative iteration pair conflicts); 0
    #: spreads keys so collisions are rare.
    tm_conflict_pct: int = 25
    #: Relative draw weight per kernel family (0 disables a family).
    kernel_weights: Tuple[Tuple[str, int], ...] = (
        ("doall", 3),
        ("ilp", 3),
        ("strand", 2),
        ("dswp", 2),
        ("reduction", 2),
        ("stencil", 2),
        ("match", 1),
        ("serial", 1),
        ("call", 1),
        ("histogram", 1),
    )

    def __post_init__(self) -> None:
        for field in fields(self):
            value = getattr(self, field.name)
            if field.name.endswith("_pct"):
                if not 0 <= value <= 100:
                    raise ValueError(f"{field.name} must be in [0, 100]")
            elif field.name == "kernel_weights":
                if not any(weight > 0 for _, weight in value):
                    raise ValueError("at least one kernel weight must be > 0")
                unknown = [k for k, _ in value if k not in KERNELS]
                if unknown:
                    raise ValueError(f"unknown kernels in weights: {unknown}")
            else:
                lo, hi = value
                if not (1 <= lo <= hi):
                    raise ValueError(
                        f"{field.name} range {value} must satisfy 1 <= lo <= hi"
                    )


DEFAULT_KNOBS = GenKnobs()


def knobs_hash(knobs: GenKnobs) -> str:
    """Stable content hash of a knob bundle (12 hex chars).

    ``GenKnobs`` is a frozen all-int dataclass, so its repr is a
    complete, deterministic rendering -- the same property the result
    cache relies on for :class:`~repro.arch.config.MachineConfig`.
    """
    return hashlib.sha256(repr(knobs).encode()).hexdigest()[:12]


#: Knob bundles addressable from a handle, keyed by their hash.  A
#: handle names its knobs only by hash, so anything but the default
#: bundle must be registered before the handle can be rebuilt.
_REGISTRY: Dict[str, GenKnobs] = {knobs_hash(DEFAULT_KNOBS): DEFAULT_KNOBS}


def register_knobs(knobs: GenKnobs) -> str:
    """Make ``knobs`` addressable from handles; returns its hash."""
    digest = knobs_hash(knobs)
    _REGISTRY[digest] = knobs
    return digest


def knobs_for(digest: str) -> GenKnobs:
    try:
        return _REGISTRY[digest]
    except KeyError:
        raise KeyError(
            f"unknown knobs hash {digest!r}: register the GenKnobs bundle "
            "with register_knobs() before resolving its handles"
        ) from None


def make_handle(seed: int, knobs: Optional[GenKnobs] = None) -> str:
    """The stable ``gen:<seed>:<knobs-hash>`` name of one generated
    program (registering the knobs as a side effect)."""
    knobs = DEFAULT_KNOBS if knobs is None else knobs
    return f"{HANDLE_PREFIX}{seed}:{register_knobs(knobs)}"


def is_generated(name: str) -> bool:
    """True when ``name`` is a generated-benchmark handle."""
    return name.startswith(HANDLE_PREFIX)


def parse_handle(handle: str) -> Tuple[int, GenKnobs]:
    """Split a handle into (seed, knobs).  ``gen:<seed>`` implies the
    default knobs; a full handle's hash must be registered."""
    if not is_generated(handle):
        raise ValueError(f"not a generated-benchmark handle: {handle!r}")
    parts = handle[len(HANDLE_PREFIX):].split(":")
    if len(parts) not in (1, 2) or not parts[0].lstrip("-").isdigit():
        raise ValueError(
            f"malformed handle {handle!r}; expected gen:<seed>[:<knobs-hash>]"
        )
    seed = int(parts[0])
    knobs = DEFAULT_KNOBS if len(parts) == 1 else knobs_for(parts[1])
    return seed, knobs


def _weighted_choice(rng: random.Random, weights: Iterable[Tuple[str, int]]) -> str:
    """Integer-arithmetic weighted draw (``random.choices`` goes through
    floats; this stays bit-stable everywhere)."""
    entries = [(name, weight) for name, weight in weights if weight > 0]
    total = sum(weight for _, weight in entries)
    pick = rng.randrange(total)
    for name, weight in entries:
        pick -= weight
        if pick < 0:
            return name
    raise AssertionError("unreachable")


def _span(rng: random.Random, lo_hi: Tuple[int, int]) -> int:
    lo, hi = lo_hi
    return rng.randrange(lo, hi + 1)


def _pct(rng: random.Random, pct: int) -> bool:
    return rng.randrange(100) < pct


def generate_recipe(seed: int, knobs: Optional[GenKnobs] = None) -> Recipe:
    """Draw one recipe (kernel name + kwargs per region) under ``knobs``.

    The PRNG is seeded from (seed, knobs hash) alone, so the recipe --
    and through :func:`build_recipe` the whole program -- is a pure
    function of the handle.
    """
    knobs = DEFAULT_KNOBS if knobs is None else knobs
    digest = hashlib.sha256(
        f"genrecipe:{seed}:{knobs_hash(knobs)}".encode()
    ).digest()
    rng = random.Random(int.from_bytes(digest[:8], "big"))
    recipe: List[Tuple[str, Dict[str, object]]] = []
    for _ in range(_span(rng, knobs.regions)):
        kernel = _weighted_choice(rng, knobs.kernel_weights)
        trips = _span(rng, knobs.trips)
        kwargs: Dict[str, object] = {}
        if kernel == "doall":
            kwargs = {
                "trips": trips,
                "work": _span(rng, knobs.doall_work),
                "miss_heavy": _pct(rng, knobs.miss_heavy_pct),
            }
        elif kernel == "ilp":
            kwargs = {
                "trips": trips,
                "chains": _span(rng, knobs.ilp_chains),
                "depth": _span(rng, knobs.ilp_depth),
                "shuffle": _pct(rng, 50),
            }
        elif kernel == "strand":
            kwargs = {
                "trips": min(trips, MISS_ARRAY // 8),
                "streams": _span(rng, knobs.strand_streams),
            }
        elif kernel == "dswp":
            kwargs = {
                "trips": trips,
                "work_depth": _span(rng, knobs.dswp_work),
                "chase_depth": _span(rng, knobs.dswp_chase),
            }
        elif kernel in ("reduction", "stencil"):
            kwargs = {
                "trips": trips,
                "miss_heavy": _pct(rng, knobs.miss_heavy_pct),
            }
        elif kernel == "match":
            length = max(trips, 8)
            kwargs = {
                "length": length,
                "mismatch_at": rng.randrange(2, max(length - 2, 3)),
            }
        elif kernel == "histogram":
            # TM conflict density: squeezing the key space makes
            # speculative iteration pairs collide (and abort) more often.
            bins = max(4, trips * (100 - knobs.tm_conflict_pct) // 100)
            kwargs = {"trips": trips, "bins": bins}
        else:  # serial, call
            kwargs = {"trips": trips}
        recipe.append((kernel, kwargs))
    return tuple(recipe)


def build_recipe(
    recipe: Recipe, name: str, data_seed: int = 1
) -> Benchmark:
    """Assemble ``recipe`` into a runnable :class:`Benchmark` (shared by
    the generator and the shrinker, which replays reduced recipes)."""
    pb = ProgramBuilder(name.replace(":", "_").replace(".", "_"))
    fb = pb.function("main")
    fb.block("entry")
    ctx = KernelContext(pb=pb, fb=fb, seed=data_seed)
    outputs = []
    for kernel_name, kwargs in recipe:
        outputs.append(KERNELS[kernel_name](ctx, **kwargs))
    fb.halt()
    return Benchmark(
        name=name, program=pb.finish(), outputs=outputs, recipe=recipe
    )


def generate(seed: int, knobs: Optional[GenKnobs] = None) -> Benchmark:
    """Generate the benchmark a handle denotes.

    The build seed (array contents) and the recipe both derive from
    (seed, knobs) only -- a generated benchmark is deliberately immune
    to the harness's build ``seed`` so its cache keys stay stable no
    matter which session rebuilds it.
    """
    knobs = DEFAULT_KNOBS if knobs is None else knobs
    handle = make_handle(seed, knobs)
    data_seed = int.from_bytes(
        hashlib.sha256(f"gendata:{handle}".encode()).digest()[:4], "big"
    )
    return build_recipe(generate_recipe(seed, knobs), handle, data_seed)


def build_generated(handle: str) -> Benchmark:
    """Rebuild the exact program a handle names."""
    seed, knobs = parse_handle(handle)
    return generate(seed, knobs)


def generate_handles(
    count: int, base_seed: int = 1, knobs: Optional[GenKnobs] = None
) -> List[str]:
    """``count`` consecutive handles starting at ``base_seed``."""
    return [make_handle(base_seed + i, knobs) for i in range(count)]


def scaled_knobs(scale: int = 1, **overrides: object) -> GenKnobs:
    """A convenience bundle: multiply the default trip range by
    ``scale`` and apply any field overrides (e.g. ``regions=(4, 8)``)."""
    lo, hi = DEFAULT_KNOBS.trips
    base = replace(DEFAULT_KNOBS, trips=(lo * scale, hi * scale))
    return replace(base, **overrides) if overrides else base
