"""Perfetto/Chrome trace export: structural validity plus a pinned golden.

Structural checks enforce the Trace Event Format rules Perfetto actually
needs (metadata naming every track, well-formed complete events, async
begins/ends pairing up per id); the golden test pins one small cell's
entire trace so any drift in the exporter or the probes shows up as a
diff.  Regenerate deliberately with::

    PYTHONPATH=src python -m pytest tests/obs/test_perfetto.py --update-golden
"""

from __future__ import annotations

import json
from pathlib import Path

from conftest import build_square_sum

from repro.arch import mesh, single_core, two_core
from repro.compiler import compile_program
from repro.isa import ProgramBuilder
from repro.obs import ObsConfig, Observability, perfetto_trace, write_trace
from repro.sim import VoltronMachine

GOLDEN_DIR = Path(__file__).parent / "golden"


def _observed(strategy="hybrid", n_cores=4, stride=64):
    program, _ = build_square_sum(64)
    obs = Observability(ObsConfig(sample_stride=stride))
    compiled = compile_program(program, n_cores, strategy)
    config = single_core() if n_cores == 1 else mesh(n_cores)
    VoltronMachine(compiled, config, obs=obs).run()
    return obs


def _observed_doall():
    from repro.workloads.kernels import KernelContext
    from repro.workloads import doall_kernel

    pb = ProgramBuilder("trace_doall")
    fb = pb.function("main")
    fb.block("entry")
    ctx = KernelContext(pb=pb, fb=fb, seed=7)
    doall_kernel(ctx, trips=64, work=2)
    fb.halt()
    obs = Observability()
    compiled = compile_program(pb.finish(), 2, "llp")
    VoltronMachine(compiled, two_core(), obs=obs).run()
    return obs


class TestTraceStructure:
    def test_top_level_shape(self):
        trace = perfetto_trace(_observed())
        assert set(trace) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert trace["displayTimeUnit"] == "ns"
        assert trace["otherData"]["truncated"] is False
        assert isinstance(trace["traceEvents"], list)
        assert trace["traceEvents"]

    def test_thread_metadata_names_every_track(self):
        obs = _observed()
        trace = perfetto_trace(obs)
        names = {
            event["tid"]: event["args"]["name"]
            for event in trace["traceEvents"]
            if event["ph"] == "M" and event["name"] == "thread_name"
        }
        assert names[0] == "machine"
        for core in range(obs.n_cores):
            assert names[core + 1] == f"core {core}"
        # Every non-counter event lands on a named track.
        for event in trace["traceEvents"]:
            if "tid" in event:
                assert event["tid"] in names

    def test_complete_events_are_well_formed(self):
        trace = perfetto_trace(_observed())
        complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert complete
        for event in complete:
            assert event["ts"] >= 0
            assert event["dur"] > 0

    def test_mode_track_tiles_the_run(self):
        obs = _observed()
        trace = perfetto_trace(obs)
        mode = [e for e in trace["traceEvents"] if e.get("cat") == "mode"]
        assert sum(e["dur"] for e in mode) == obs.final_cycle

    def test_async_spans_pair_up(self):
        trace = perfetto_trace(_observed_doall())
        begins = {}
        ends = {}
        for event in trace["traceEvents"]:
            if event["ph"] == "b":
                begins[(event["cat"], event["id"])] = event["ts"]
            elif event["ph"] == "e":
                ends[(event["cat"], event["id"])] = event["ts"]
        assert begins
        assert set(begins) == set(ends)
        for key, start in begins.items():
            assert ends[key] >= start
        # Transaction and network span ids live in disjoint ranges.
        tx_ids = {i for cat, i in begins if cat == "tx"}
        net_ids = {i for cat, i in begins if cat == "net"}
        assert not tx_ids & net_ids

    def test_write_trace_round_trips(self, tmp_path):
        obs = _observed()
        path = tmp_path / "trace.json"
        write_trace(obs, path)
        loaded = json.loads(path.read_text())
        assert loaded["traceEvents"]
        assert loaded["otherData"]["truncated"] is False


class TestGoldenTrace:
    def test_trace_matches_golden(self, update_golden):
        trace = perfetto_trace(_observed("ilp", 2, stride=32))
        path = GOLDEN_DIR / "square_sum_2cores_ilp_trace.json"
        if update_golden:
            GOLDEN_DIR.mkdir(exist_ok=True)
            path.write_text(json.dumps(trace, indent=2, sort_keys=True) + "\n")
            return
        assert path.exists(), (
            f"missing golden file {path.name}; run pytest with "
            "--update-golden to create it"
        )
        assert trace == json.loads(path.read_text()), (
            "trace export drifted from the golden file; if the exporter "
            "or probe change is intentional, regenerate with --update-golden"
        )
