"""Observability event-bus tests.

The contract under test: every probe fires where it should, attaching an
observer never changes the simulation (stats are bit-identical with and
without one, fast-forwarding on or off), discrete events are bounded by
``max_events`` while spans stay complete, and an instance observes
exactly one run.
"""

from __future__ import annotations

import pytest

from conftest import build_square_sum

from repro.arch import mesh, single_core, two_core
from repro.compiler import compile_program
from repro.isa import ProgramBuilder
from repro.obs import ObsConfig, Observability, reconcile, summarize
from repro.sim import VoltronMachine
from repro.sim.faults import FaultConfig
from repro.sim.stats import STALL_CATEGORIES


def _machine(strategy="ilp", n_cores=2, **kwargs):
    program, _ = build_square_sum(64)
    compiled = compile_program(program, n_cores, strategy)
    config = single_core() if n_cores == 1 else mesh(n_cores)
    return VoltronMachine(compiled, config, **kwargs)


def _kernel_machine(kernel, strategy, n_cores=2, obs=None, **kernel_kwargs):
    from repro.workloads.kernels import KernelContext

    pb = ProgramBuilder(f"obs_{kernel.__name__}")
    fb = pb.function("main")
    fb.block("entry")
    ctx = KernelContext(pb=pb, fb=fb, seed=7)
    kernel(ctx, **kernel_kwargs)
    fb.halt()
    compiled = compile_program(pb.finish(), n_cores, strategy)
    config = two_core() if n_cores == 2 else mesh(n_cores)
    return VoltronMachine(compiled, config, obs=obs)


class TestObsConfig:
    def test_stride_validated(self):
        with pytest.raises(ValueError):
            ObsConfig(sample_stride=0)

    def test_max_events_validated(self):
        with pytest.raises(ValueError):
            ObsConfig(max_events=0)


class TestAttachment:
    def test_instance_observes_exactly_one_run(self):
        obs = Observability()
        _machine(obs=obs).run()
        with pytest.raises(RuntimeError):
            _machine(obs=obs)

    def test_single_step_disables_fast_forward(self):
        obs = Observability(ObsConfig(single_step=True))
        machine = _machine(obs=obs)
        assert machine.fast_forward is False
        machine.run()
        assert obs.ff_windows == []


class TestProbes:
    def test_timeline_probes_fire(self):
        obs = Observability()
        stats = _machine("hybrid", 4, obs=obs).run()
        assert obs.final_cycle == stats.cycles
        assert obs.mode_segments
        # Segments tile the whole run: start at 0, end at the final cycle,
        # and chain without gaps.
        assert obs.mode_segments[0][0] == 0
        assert obs.mode_segments[-1][1] == stats.cycles
        for before, after in zip(obs.mode_segments, obs.mode_segments[1:]):
            assert before[1] == after[0]
        assert any(spans for spans in obs.stall_spans)
        assert len(obs.series) >= 2

    def test_series_cumulative_columns_end_at_final_stats(self):
        obs = Observability(ObsConfig(sample_stride=16))
        stats = _machine("ilp", 2, obs=obs).run()
        series = obs.series
        assert series.cycle[-1] == stats.cycles
        assert series.busy[-1] == sum(core.busy for core in stats.cores)
        for category in STALL_CATEGORIES:
            assert series.stalls[category][-1] == sum(
                core.stalls[category] for core in stats.cores
            )

    def test_cache_miss_probe_fires_on_cold_caches(self):
        obs = Observability()
        _machine("ilp", 2, obs=obs).run()
        assert obs.cache_misses
        assert all(miss.latency > 0 for miss in obs.cache_misses)
        assert {miss.where for miss in obs.cache_misses} <= {"l1d", "l1i"}

    def test_tx_probes_match_tm_accounting(self):
        from repro.workloads import doall_kernel

        obs = Observability()
        stats = _kernel_machine(
            doall_kernel, "llp", obs=obs, trips=64, work=2
        ).run()
        summary = summarize(obs)
        assert stats.tx_commits > 0
        assert summary.tx_commits == stats.tx_commits
        assert summary.tx_aborts == stats.tx_aborts
        # Every transaction that began was resolved one way or the other.
        assert summary.tx_begins == summary.tx_commits + summary.tx_aborts

    def test_net_probes_pair_sends_and_receives(self):
        from repro.workloads import match_kernel

        obs = Observability()
        _kernel_machine(match_kernel, "tlp", obs=obs, length=320).run()
        assert obs.net_sends
        sent = {send.seq for send in obs.net_sends}
        assert {recv.seq for recv in obs.net_recvs} <= sent

    def test_fault_probe_fires_and_run_stays_deterministic(self):
        faults = FaultConfig(seed=3, rate=0.5)
        obs = Observability()
        machine = _machine("ilp", 2, obs=obs, faults=faults)
        stats = machine.run()
        assert machine.faults.injections() > 0
        assert obs.fault_events
        unobserved = _machine("ilp", 2, faults=faults).run()
        assert stats.to_dict() == unobserved.to_dict()


class TestZeroOverheadDifferential:
    @pytest.mark.parametrize(
        "strategy,n_cores",
        [
            ("baseline", 1),
            ("ilp", 2),
            ("tlp", 2),
            ("llp", 2),
            ("hybrid", 4),
        ],
    )
    def test_stats_bit_identical_with_and_without_obs(self, strategy, n_cores):
        plain = _machine(strategy, n_cores).run()
        obs = Observability()
        observed = _machine(strategy, n_cores, obs=obs).run()
        assert observed.to_dict() == plain.to_dict()
        reconcile(summarize(obs), observed)

    def test_single_step_stats_identical_to_fast_forwarded(self):
        plain = _machine("hybrid", 4).run()
        obs = Observability(ObsConfig(single_step=True))
        observed = _machine("hybrid", 4, obs=obs).run()
        assert observed.to_dict() == plain.to_dict()
        reconcile(summarize(obs), observed)


class TestTruncation:
    def test_event_cap_truncates_but_spans_stay_complete(self):
        obs = Observability(ObsConfig(max_events=1))
        stats = _machine("hybrid", 4, obs=obs).run()
        assert obs.truncated
        assert len(obs.cache_misses) + len(obs.tx_events) + len(
            obs.net_sends
        ) + len(obs.net_recvs) + len(obs.ff_windows) <= 1
        # Spans and mode segments are exempt from the cap, so the
        # timeline still reconciles exactly.
        summary = reconcile(summarize(obs), stats)
        assert summary.truncated
