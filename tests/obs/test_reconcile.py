"""Timeline reconciliation against real suite benchmarks.

The observability layer's central claim: the timeline folded from the
recorded spans equals the simulator's own ``MachineStats`` accounting
*exactly* -- total cycles, per-mode residency, and per-core per-category
stall cycles -- across a five-benchmark sample of the suite under the
hybrid strategy (the mode-switching path exercises every accounting
corner: fast-forward bulk credits, mode boundaries, transactions).
"""

from __future__ import annotations

import pytest

import repro
from repro.obs import Observability, ReconciliationError, reconcile, summarize
from repro.sim.stats import STALL_CATEGORIES

#: Mixed-mode sample: coupled-heavy, decoupled-heavy, and DOALL benchmarks.
SAMPLE = ["gsmdecode", "179.art", "171.swim", "epic", "rawcaudio"]


@pytest.mark.parametrize("bench_name", SAMPLE)
def test_timeline_reconciles_exactly(bench_name):
    obs = Observability()
    result = repro.run_cell(
        bench_name, 4, "hybrid", obs=obs, max_cycles=20_000_000
    )
    summary = reconcile(summarize(obs), result.stats)
    assert summary.cycles == result.stats.cycles
    for mode in ("coupled", "decoupled"):
        assert summary.mode_cycles.get(mode, 0) == result.stats.mode_cycles[mode]
    for totals, core in zip(summary.stall_totals, result.stats.cores):
        for category in STALL_CATEGORIES:
            assert totals[category] == core.stalls[category]
    assert summary.tx_commits == result.stats.tx_commits
    assert summary.tx_aborts == result.stats.tx_aborts
    # The serialized metrics carry the same reconciled timeline.
    assert result.metrics["timeline"]["cycles"] == result.stats.cycles


def test_reconcile_raises_on_tampered_span():
    obs = Observability()
    result = repro.run_cell(
        "rawcaudio", 2, "ilp", obs=obs, max_cycles=20_000_000
    )
    for spans in obs.stall_spans:
        if spans:
            spans[0][1] += 1
            break
    else:
        pytest.skip("run produced no stall spans")
    with pytest.raises(ReconciliationError):
        reconcile(summarize(obs), result.stats)


def test_reconcile_raises_on_wrong_cycle_total():
    obs = Observability()
    result = repro.run_cell(
        "rawcaudio", 2, "ilp", obs=obs, max_cycles=20_000_000
    )
    summary = summarize(obs)
    summary.cycles += 1
    with pytest.raises(ReconciliationError, match="cycles"):
        reconcile(summary, result.stats)
