"""Unit tests for dependence graph construction and SCCs."""

from repro.compiler.dfg import (
    ANTI,
    CARRIED,
    FLOW,
    MEMORY,
    OUTPUT,
    build_block_dfg,
    carried_memory_pairs,
    carried_register_edges,
)
from repro.isa import ProgramBuilder
from repro.isa.operations import Opcode


def _loop_body(build, trips=8):
    pb = ProgramBuilder("t")
    arrays = {"a": pb.alloc("a", 64), "b": pb.alloc("b", 64)}
    fb = pb.function("main")
    fb.block("entry")
    with fb.counted_loop("L", 0, trips) as i:
        build(fb, arrays, i)
    fb.halt()
    program = pb.finish()
    return program, program.main().block("L").ops


class TestEdges:
    def test_flow_edge_with_latency(self):
        program, ops = _loop_body(
            lambda fb, arrays, i: fb.add(fb.mul(i, 3), 1)
        )
        graph = build_block_dfg(program, ops)
        mul = next(op for op in ops if op.opcode is Opcode.MUL)
        add = next(
            op
            for op in ops
            if op.opcode is Opcode.ADD and mul.dest in op.src_regs()
        )
        edges = [e for e in graph.succs[mul.uid] if e.dst is add]
        assert edges and edges[0].kind == FLOW
        assert edges[0].delay == 3  # MUL latency

    def test_anti_and_output_edges(self):
        def build(fb, arrays, i):
            t = fb.mov(1)
            fb.add(t, i)  # uses t
            fb.mov(2, dest=t)  # redefines t: anti from use, output from def

        program, ops = _loop_body(build)
        graph = build_block_dfg(program, ops)
        kinds = {edge.kind for edge in graph.all_edges()}
        assert ANTI in kinds and OUTPUT in kinds

    def test_memory_edges_included(self):
        def build(fb, arrays, i):
            fb.store(arrays["a"].base, i, 1)
            fb.load(arrays["a"].base, i)

        program, ops = _loop_body(build)
        graph = build_block_dfg(program, ops)
        assert any(edge.kind == MEMORY for edge in graph.all_edges())

    def test_critical_heights_monotone(self):
        program, ops = _loop_body(
            lambda fb, arrays, i: fb.add(fb.add(fb.mul(i, 3), 1), 2)
        )
        graph = build_block_dfg(program, ops)
        heights = graph.critical_heights()
        mul = next(op for op in ops if op.opcode is Opcode.MUL)
        # The producer's height strictly exceeds each consumer's.
        for edge in graph.succs[mul.uid]:
            assert heights[mul.uid] > heights[edge.dst.uid]


class TestCarriedRegisters:
    def test_accumulator_is_carried_self(self):
        def build(fb, arrays, i):
            acc = fb.function.regs.gpr()
            # emulate 'acc += i' with acc live-in (defined in entry)
            fb.add(acc, i, dest=acc)

        pb = ProgramBuilder("t")
        fb = pb.function("main")
        fb.block("entry")
        acc = fb.mov(0)
        with fb.counted_loop("L", 0, 4) as i:
            fb.add(acc, i, dest=acc)
        fb.halt()
        program = pb.finish()
        ops = program.main().block("L").ops
        carried = carried_register_edges(ops)
        assert acc in carried
        definition, users = carried[acc]
        assert definition in users  # self recurrence

    def test_induction_excludable(self):
        pb = ProgramBuilder("t")
        fb = pb.function("main")
        fb.block("entry")
        with fb.counted_loop("L", 0, 4) as i:
            fb.mul(i, 2)
        fb.halt()
        program = pb.finish()
        ops = program.main().block("L").ops
        assert i in carried_register_edges(ops)
        assert i not in carried_register_edges(ops, exclude={i})

    def test_use_after_def_not_carried(self):
        pb = ProgramBuilder("t")
        fb = pb.function("main")
        fb.block("entry")
        with fb.counted_loop("L", 0, 4) as i:
            t = fb.mov(i)
            fb.add(t, 1)  # use after def: same-iteration flow
        fb.halt()
        program = pb.finish()
        ops = program.main().block("L").ops
        assert t not in carried_register_edges(ops)


class TestCarriedMemory:
    def test_store_conflicts_with_itself(self):
        pb = ProgramBuilder("t")
        arr = pb.alloc("a", 16)
        fb = pb.function("main")
        fb.block("entry")
        with fb.counted_loop("L", 0, 4) as i:
            fb.store(arr.base, i, i)
        fb.halt()
        program = pb.finish()
        ops = program.main().block("L").ops
        pairs = carried_memory_pairs(program, ops)
        stores = [op for op in ops if op.opcode is Opcode.STORE]
        assert (stores[0], stores[0]) in pairs

    def test_disjoint_arrays_no_pairs(self):
        pb = ProgramBuilder("t")
        a = pb.alloc("a", 16)
        b = pb.alloc("b", 16)
        fb = pb.function("main")
        fb.block("entry")
        with fb.counted_loop("L", 0, 4) as i:
            v = fb.load(a.base, i)
            fb.store(b.base, i, v)
        fb.halt()
        program = pb.finish()
        ops = program.main().block("L").ops
        pairs = carried_memory_pairs(program, ops)
        cross = [(x, y) for x, y in pairs if x is not y]
        assert cross == []


class TestSCC:
    def test_recurrence_forms_scc(self):
        pb = ProgramBuilder("t")
        fb = pb.function("main")
        fb.block("entry")
        acc = fb.mov(0)
        with fb.counted_loop("L", 0, 4) as i:
            t = fb.mul(acc, 3)
            fb.add(t, i, dest=acc)
        fb.halt()
        program = pb.finish()
        ops = [
            op
            for op in program.main().block("L").ops
            if op.opcode in (Opcode.MUL, Opcode.ADD)
        ]
        # Keep only the acc recurrence ops (exclude the induction update).
        ops = [op for op in ops if acc in op.dests or acc in op.src_regs()]
        carried = carried_register_edges(ops)
        graph = build_block_dfg(program, ops, carried_regs=carried)
        components = graph.strongly_connected_components()
        sizes = sorted(len(c) for c in components)
        assert sizes[-1] == 2  # mul+add recurrence in one SCC

    def test_sccs_in_topological_order(self):
        pb = ProgramBuilder("t")
        fb = pb.function("main")
        fb.block("entry")
        a = fb.mov(1)
        b = fb.add(a, 1)
        c = fb.add(b, 1)
        fb.halt()
        program = pb.finish()
        ops = program.main().block("entry").ops[:3]
        graph = build_block_dfg(program, ops)
        components = graph.strongly_connected_components()
        flat = [op.uid for component in components for op in component]
        assert flat == [ops[0].uid, ops[1].uid, ops[2].uid]
