"""Unit tests for the coupled (joint) and decoupled schedulers."""

import pytest

from repro.compiler.schedule import (
    fresh_align_id,
    schedule_coupled,
    schedule_decoupled,
)
from repro.isa import ProgramBuilder
from repro.isa.operations import Imm, Opcode, Reg, RegFile, make_op

R = lambda i: Reg(RegFile.GPR, i)
B = lambda i: Reg(RegFile.BTR, i)


def _program():
    pb = ProgramBuilder("t")
    pb.alloc("a", 16)
    fb = pb.function("main")
    fb.block("entry")
    fb.halt()
    return pb.finish()


def mk(opcode, core, dests=None, srcs=None, **attrs):
    op = make_op(opcode, dests, srcs, **attrs)
    op.core = core
    return op


def slot_of(slots, op):
    for core_slots in slots:
        for index, placed in enumerate(core_slots):
            if placed is op:
                return index
    raise AssertionError(f"{op!r} not scheduled")


class TestCoupledScheduler:
    def test_equal_lengths_across_cores(self):
        program = _program()
        ops = [
            mk(Opcode.ADD, 0, [R(0)], [Imm(1), Imm(2)]),
            mk(Opcode.ADD, 0, [R(1)], [R(0), Imm(1)]),
            mk(Opcode.ADD, 1, [R(2)], [Imm(3), Imm(4)]),
        ]
        slots = schedule_coupled(program, ops, 2)
        assert len(slots[0]) == len(slots[1])

    def test_flow_latency_respected(self):
        program = _program()
        mul = mk(Opcode.MUL, 0, [R(0)], [Imm(2), Imm(3)])
        add = mk(Opcode.ADD, 0, [R(1)], [R(0), Imm(1)])
        slots = schedule_coupled(program, [mul, add], 1)
        assert slot_of(slots, add) >= slot_of(slots, mul) + 3

    def test_align_groups_co_issue(self):
        program = _program()
        align = fresh_align_id()
        put = mk(Opcode.PUT, 0, [], [R(0)], direction="east", align=align)
        get = mk(Opcode.GET, 1, [R(0)], [], direction="west", align=align)
        producer = mk(Opcode.ADD, 0, [R(0)], [Imm(1), Imm(1)])
        slots = schedule_coupled(program, [producer, put, get], 2)
        assert slot_of(slots, put) == slot_of(slots, get)
        assert slot_of(slots, put) >= slot_of(slots, producer) + 1

    def test_terminator_last_and_aligned(self):
        program = _program()
        align = fresh_align_id()
        work0 = mk(Opcode.ADD, 0, [R(0)], [Imm(1), Imm(2)])
        work1 = mk(Opcode.MUL, 1, [R(1)], [Imm(3), Imm(4)])
        br0 = mk(Opcode.BR, 0, [], [B(0)], align=align)
        br1 = mk(Opcode.BR, 1, [], [B(0)], align=align)
        pbr0 = mk(Opcode.PBR, 0, [B(0)], [], target="entry")
        pbr1 = mk(Opcode.PBR, 1, [B(0)], [], target="entry")
        ops = [work0, work1, pbr0, pbr1, br0, br1]
        slots = schedule_coupled(program, ops, 2)
        last = len(slots[0]) - 1
        assert slots[0][last] is br0
        assert slots[1][last] is br1
        # Nothing is scheduled after the branch on either core.
        for core_slots in slots:
            for placed in core_slots[last + 1 :]:
                assert placed is None

    def test_single_issue_no_slot_collision(self):
        program = _program()
        ops = [mk(Opcode.ADD, 0, [R(k)], [Imm(k), Imm(1)]) for k in range(5)]
        slots = schedule_coupled(program, ops, 2)
        assert sum(1 for s in slots[0] if s is not None) == 5
        assert all(s is None for s in slots[1])

    def test_memory_order_spans_cores(self):
        program = _program()
        base = program.array("a").base
        store = mk(Opcode.STORE, 0, [], [Imm(base), Imm(0), Imm(1)])
        load = mk(Opcode.LOAD, 1, [R(0)], [Imm(base), Imm(0)])
        slots = schedule_coupled(program, [store, load], 2)
        assert slot_of(slots, load) > slot_of(slots, store)

    def test_call_is_a_fence(self):
        program = _program()
        before = mk(Opcode.ADD, 0, [R(0)], [Imm(1), Imm(1)])
        call = mk(Opcode.CALL, 0, [R(1)], [], function="main")
        after = mk(Opcode.ADD, 0, [R(2)], [Imm(2), Imm(2)])
        slots = schedule_coupled(program, [before, call, after], 1)
        assert slot_of(slots, before) < slot_of(slots, call) < slot_of(
            slots, after
        )

    def test_empty_block(self):
        slots = schedule_coupled(_program(), [], 2)
        assert slots == [[], []]


class TestDecoupledScheduler:
    def test_order_preserving_per_core(self):
        """The decoupled scheduler must never reorder a core's ops -- the
        queue protocol's FIFO matching depends on it."""
        program = _program()
        ops = [
            mk(Opcode.SEND, 0, [], [Imm(1)], target_core=1),
            mk(Opcode.ADD, 0, [R(0)], [Imm(1), Imm(2)]),
            mk(Opcode.SEND, 0, [], [R(0)], target_core=1),
            mk(Opcode.RECV, 1, [R(1)], [], source_core=0),
            mk(Opcode.RECV, 1, [R(2)], [], source_core=0),
        ]
        slots = schedule_decoupled(program, ops, 2)
        core0 = [op for op in slots[0] if op is not None]
        core1 = [op for op in slots[1] if op is not None]
        assert core0 == [ops[0], ops[1], ops[2]]
        assert core1 == [ops[3], ops[4]]

    def test_latency_gaps_inserted(self):
        program = _program()
        mul = mk(Opcode.MUL, 0, [R(0)], [Imm(2), Imm(3)])
        add = mk(Opcode.ADD, 0, [R(1)], [R(0), Imm(1)])
        slots = schedule_decoupled(program, [mul, add], 1)
        assert slot_of(slots, add) == slot_of(slots, mul) + 3
        assert slots[0][1] is None and slots[0][2] is None

    def test_terminator_scheduled_last(self):
        program = _program()
        br = mk(Opcode.BR, 0, [], [B(0)])
        pbr = mk(Opcode.PBR, 0, [B(0)], [], target="entry")
        work = mk(Opcode.ADD, 0, [R(0)], [Imm(1), Imm(2)])
        slots = schedule_decoupled(program, [pbr, work, br], 1)
        non_empty = [op for op in slots[0] if op is not None]
        assert non_empty[-1] is br

    def test_core_lengths_independent(self):
        program = _program()
        ops = [mk(Opcode.ADD, 0, [R(k)], [Imm(k), Imm(1)]) for k in range(4)]
        ops.append(mk(Opcode.ADD, 1, [R(9)], [Imm(1), Imm(1)]))
        slots = schedule_decoupled(program, ops, 2)
        assert len(slots[0]) == 4
        assert len(slots[1]) == 1
