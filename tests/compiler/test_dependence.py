"""Unit tests for symbolic address resolution and memory dependences."""

from repro.compiler.dependence import (
    ConstantTracker,
    SymbolicAddress,
    analyze_block_addresses,
    may_alias,
    memory_dependences,
)
from repro.isa import ProgramBuilder
from repro.isa.operations import Opcode


def _block(build):
    """Build a one-block main and return (program, ops)."""
    pb = ProgramBuilder("t")
    arrays = {
        "a": pb.alloc("a", 16),
        "b": pb.alloc("b", 16),
    }
    fb = pb.function("main")
    fb.block("entry")
    build(fb, arrays)
    fb.halt()
    program = pb.finish()
    return program, program.main().block("entry").ops


class TestConstantTracker:
    def test_mov_and_fold(self):
        pb = ProgramBuilder("t")
        fb = pb.function("main")
        fb.block("entry")
        a = fb.mov(10)
        b = fb.add(a, 5)
        c = fb.mul(b, 2)
        fb.halt()
        tracker = ConstantTracker()
        for op in pb.program.main().block("entry").ops:
            tracker.observe(op)
        assert tracker.value_of(a) == 10
        assert tracker.value_of(b) == 15
        assert tracker.value_of(c) == 30

    def test_unknown_input_clears(self):
        pb = ProgramBuilder("t")
        arr = pb.alloc("a", 4)
        fb = pb.function("main")
        fb.block("entry")
        v = fb.load(arr.base, 0)
        w = fb.add(v, 1)
        fb.halt()
        tracker = ConstantTracker()
        for op in pb.program.main().block("entry").ops:
            tracker.observe(op)
        assert tracker.value_of(v) is None
        assert tracker.value_of(w) is None

    def test_redefinition_invalidates(self):
        pb = ProgramBuilder("t")
        arr = pb.alloc("a", 4)
        fb = pb.function("main")
        fb.block("entry")
        a = fb.mov(3)
        fb.load(arr.base, 0, dest=a)  # clobbers the constant
        fb.halt()
        tracker = ConstantTracker()
        for op in pb.program.main().block("entry").ops:
            tracker.observe(op)
        assert tracker.value_of(a) is None


class TestAddressResolution:
    def test_constant_address_fully_resolved(self):
        program, ops = _block(
            lambda fb, arrays: fb.load(arrays["a"].base, 3)
        )
        addresses = analyze_block_addresses(program, ops)
        load = next(op for op in ops if op.opcode is Opcode.LOAD)
        resolved = addresses[load.uid]
        assert resolved.addr == program.array("a").base + 3
        assert resolved.array == "a"

    def test_register_index_resolves_array_only(self):
        def build(fb, arrays):
            idx = fb.load(arrays["b"].base, 0)  # unknown value
            fb.load(arrays["a"].base, idx)

        program, ops = _block(build)
        addresses = analyze_block_addresses(program, ops)
        second = [op for op in ops if op.opcode is Opcode.LOAD][1]
        resolved = addresses[second.uid]
        assert resolved.array == "a"
        assert resolved.addr is None

    def test_unknown_base_unresolved(self):
        def build(fb, arrays):
            p = fb.load(arrays["a"].base, 0)
            fb.load(p, 0)

        program, ops = _block(build)
        addresses = analyze_block_addresses(program, ops)
        second = [op for op in ops if op.opcode is Opcode.LOAD][1]
        assert not addresses[second.uid].resolved


class TestMayAlias:
    def test_distinct_constants_disjoint(self):
        assert not may_alias(
            SymbolicAddress("a", 3), SymbolicAddress("a", 4)
        )
        assert may_alias(SymbolicAddress("a", 3), SymbolicAddress("a", 3))

    def test_distinct_arrays_disjoint(self):
        assert not may_alias(
            SymbolicAddress("a", None), SymbolicAddress("b", None)
        )

    def test_unknown_conservative(self):
        assert may_alias(SymbolicAddress(None, None), SymbolicAddress("a", 1))


class TestMemoryDependences:
    def test_load_load_never_ordered(self):
        def build(fb, arrays):
            fb.load(arrays["a"].base, 0)
            fb.load(arrays["a"].base, 0)

        program, ops = _block(build)
        assert memory_dependences(program, ops) == []

    def test_store_load_same_array_ordered(self):
        def build(fb, arrays):
            i = fb.load(arrays["b"].base, 0)
            fb.store(arrays["a"].base, i, 1)
            fb.load(arrays["a"].base, i)

        program, ops = _block(build)
        deps = memory_dependences(program, ops)
        kinds = {(e.opcode, l.opcode) for e, l in deps}
        assert (Opcode.STORE, Opcode.LOAD) in kinds

    def test_different_arrays_independent(self):
        def build(fb, arrays):
            i = fb.load(arrays["b"].base, 1)
            fb.store(arrays["a"].base, i, 1)
            fb.load(arrays["b"].base, i)

        program, ops = _block(build)
        deps = memory_dependences(program, ops)
        # store a[] vs load b[]: provably disjoint; the initial load of b
        # precedes the store of a, also disjoint.
        assert deps == []

    def test_constant_offsets_disambiguate(self):
        def build(fb, arrays):
            fb.store(arrays["a"].base, 2, 1)
            fb.load(arrays["a"].base, 3)
            fb.load(arrays["a"].base, 2)

        program, ops = _block(build)
        deps = memory_dependences(program, ops)
        assert len(deps) == 1  # only the exact-match pair
