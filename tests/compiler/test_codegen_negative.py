"""Negative paths and invariants the codegen must enforce."""

import pytest

from repro.arch import four_core, mesh
from repro.compiler import Codegen, VoltronCompiler
from repro.isa import ProgramBuilder
from repro.isa.operations import Opcode
from repro.workloads.kernels import KernelContext, doall_kernel


def _program():
    pb = ProgramBuilder("t")
    fb = pb.function("main")
    fb.block("entry")
    ctx = KernelContext(pb=pb, fb=fb, seed=1)
    doall_kernel(ctx, trips=48)
    fb.halt()
    return pb.finish()


class TestGuards:
    def test_eight_core_machine_compiles_clustered(self):
        """Meshes past the 4-core stall-bus group are no longer rejected:
        coupled regions run as one clustered ensemble, and the result
        matches the paper-size machine bit for bit."""
        from repro.sim import VoltronMachine

        compiler = VoltronCompiler(_program())
        small = VoltronMachine(compiler.compile("hybrid", four_core()), four_core())
        small.run()
        config = mesh(8)
        large = VoltronMachine(compiler.compile("hybrid", config), config)
        assert large.coupled_ensembles == [large.cores]
        large.run()
        assert large.final_memory() == small.final_memory()

    def test_mismatched_machine_rejected_at_simulation(self):
        from repro.arch import two_core
        from repro.sim import VoltronMachine

        compiled = VoltronCompiler(_program()).compile("ilp", two_core())
        with pytest.raises(ValueError, match="compiled for 2"):
            VoltronMachine(compiled, four_core())


class TestStructuralInvariants:
    def _compiled(self, strategy):
        return VoltronCompiler(_program()).compile(strategy, four_core())

    def test_terminators_are_final_slots_in_coupled_blocks(self):
        compiled = self._compiled("ilp")
        for core in range(4):
            for function in compiled.streams[core].values():
                for block in function.ordered_blocks():
                    term_slots = [
                        i
                        for i, op_ in enumerate(block.slots)
                        if op_ is not None
                        and op_.opcode in (Opcode.BR, Opcode.RET, Opcode.HALT)
                    ]
                    for slot in term_slots:
                        trailing = block.slots[slot + 1 :]
                        assert all(t is None for t in trailing), (
                            f"{block.label}: ops after terminator"
                        )

    def test_every_conditional_branch_has_pbr_before_it(self):
        compiled = self._compiled("hybrid")
        for core in range(4):
            for function in compiled.streams[core].values():
                for block in function.ordered_blocks():
                    ops = [op_ for op_ in block.slots if op_ is not None]
                    for index, op_ in enumerate(ops):
                        if op_.opcode is Opcode.BR:
                            btr = op_.srcs[0]
                            defs = [
                                prior
                                for prior in ops[:index]
                                if btr in prior.dests
                            ]
                            assert defs, f"BR without PBR in {block.label}"

    def test_entry_block_exists_on_every_core(self):
        compiled = self._compiled("hybrid")
        for core in range(4):
            function = compiled.streams[core]["main"]
            assert function.entry in function.blocks

    def test_halt_present_on_every_core(self):
        compiled = self._compiled("hybrid")
        for core in range(4):
            halts = [
                op_
                for function in compiled.streams[core].values()
                for block in function.ordered_blocks()
                for op_ in block.ops()
                if op_.opcode is Opcode.HALT
            ]
            assert halts, f"core {core} never halts"

    def test_origin_attrs_link_back_to_source_ops(self):
        program = _program()
        source_uids = {
            op_.uid for fn in program.functions.values() for op_ in fn.all_ops()
        }
        compiled = VoltronCompiler(program).compile("ilp", four_core())
        linked = 0
        for core in range(4):
            for function in compiled.streams[core].values():
                for block in function.ordered_blocks():
                    for op_ in block.ops():
                        origin = op_.attrs.get("origin")
                        if origin is not None:
                            assert origin in source_uids
                            linked += 1
        assert linked > 0
