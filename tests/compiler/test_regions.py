"""Unit tests for region identification and the selection policy."""

import pytest

from repro.compiler.regions import (
    MISS_FRACTION_THRESHOLD,
    estimated_miss_fraction,
    select_regions,
)
from repro.compiler.profiling import profile_program
from repro.isa import ProgramBuilder
from repro.workloads.kernels import (
    KernelContext,
    doall_kernel,
    dswp_kernel,
    ilp_kernel,
    serial_kernel,
    strand_kernel,
)


def _program_with(kernel, **kwargs):
    pb = ProgramBuilder("t")
    fb = pb.function("main")
    fb.block("entry")
    ctx = KernelContext(pb=pb, fb=fb, seed=3)
    kernel(ctx, **kwargs)
    fb.halt()
    return pb.finish()


def _regions(program, strategy, n_cores=4):
    profile = profile_program(program)
    return select_regions(
        program, program.main(), profile, n_cores, strategy
    )


class TestPolicyOrdering:
    def test_doall_loop_selected_as_llp_in_hybrid(self):
        program = _program_with(doall_kernel, trips=64)
        regions = _regions(program, "hybrid")
        assert any(r.strategy == "doall" for r in regions)

    def test_llp_strategy_keeps_only_doall(self):
        program = _program_with(strand_kernel, trips=64)
        regions = _regions(program, "llp")
        assert all(r.strategy == "doall" for r in regions)

    def test_ilp_strategy_selects_no_regions(self):
        program = _program_with(doall_kernel, trips=64)
        assert _regions(program, "ilp") == []

    def test_baseline_selects_no_regions(self):
        program = _program_with(doall_kernel, trips=64)
        assert _regions(program, "baseline") == []

    def test_tlp_never_selects_doall(self):
        program = _program_with(doall_kernel, trips=64)
        regions = _regions(program, "tlp")
        assert all(r.strategy != "doall" for r in regions)
        assert regions  # the loop still becomes a decoupled region

    def test_pipeline_loop_selected_as_dswp(self):
        program = _program_with(dswp_kernel, trips=64)
        regions = _regions(program, "hybrid")
        assert any(r.strategy == "dswp" for r in regions)

    def test_miss_heavy_loop_selected_as_strand(self):
        program = _program_with(strand_kernel, trips=64)
        regions = _regions(program, "hybrid")
        assert any(r.strategy in ("strand", "dswp") for r in regions)

    def test_single_core_machine_selects_nothing(self):
        program = _program_with(doall_kernel, trips=64)
        assert _regions(program, "hybrid", n_cores=1) == []

    def test_serial_recurrence_not_parallelized_in_hybrid(self):
        program = _program_with(serial_kernel, trips=64)
        regions = _regions(program, "hybrid")
        assert all(r.strategy != "doall" and r.strategy != "dswp"
                   for r in regions)


class TestMissFraction:
    def test_resident_block_low_fraction(self):
        program = _program_with(ilp_kernel, trips=64)
        profile = profile_program(program)
        fn = program.main()
        loop_block = next(
            block for block in fn.ordered_blocks()
            if block.attrs.get("loop_name")
        )
        assert (
            estimated_miss_fraction(fn, loop_block, profile)
            < MISS_FRACTION_THRESHOLD
        )

    def test_streaming_block_high_fraction(self):
        program = _program_with(strand_kernel, trips=64)
        profile = profile_program(program)
        fn = program.main()
        loop_block = next(
            block for block in fn.ordered_blocks()
            if block.attrs.get("loop_name")
        )
        assert (
            estimated_miss_fraction(fn, loop_block, profile)
            > MISS_FRACTION_THRESHOLD
        )

    def test_unexecuted_block_is_zero(self):
        pb = ProgramBuilder("t")
        fb = pb.function("main")
        fb.block("entry")
        fb.halt()
        fb.block("dead")
        fb.halt()
        program = pb.finish()
        profile = profile_program(program)
        assert (
            estimated_miss_fraction(
                program.main(), program.main().block("dead"), profile
            )
            == 0.0
        )


class TestRegionShape:
    def test_region_ids_unique(self):
        program = _program_with(doall_kernel, trips=64)
        regions = _regions(program, "hybrid")
        ids = [r.rid for r in regions]
        assert len(ids) == len(set(ids))

    def test_loop_regions_reference_their_loop(self):
        program = _program_with(doall_kernel, trips=64)
        region = next(
            r for r in _regions(program, "hybrid") if r.strategy == "doall"
        )
        assert region.loop is not None
        assert region.block == region.loop.header
        assert region.doall is not None

    def test_invalid_strategy_rejected(self):
        program = _program_with(doall_kernel, trips=64)
        profile = profile_program(program)
        with pytest.raises(ValueError):
            select_regions(program, program.main(), profile, 4, "turbo")
