"""Codegen tests: structure of the machine code each strategy emits."""

import pytest

from repro.arch import four_core, mesh, two_core
from repro.compiler import VoltronCompiler
from repro.isa import ProgramBuilder
from repro.isa.operations import Opcode
from repro.workloads.kernels import (
    KernelContext,
    doall_kernel,
    dswp_kernel,
    match_kernel,
    reduction_kernel,
    strand_kernel,
)


def _compile(kernel, strategy, n_cores=4, **kwargs):
    pb = ProgramBuilder("t")
    fb = pb.function("main")
    fb.block("entry")
    ctx = KernelContext(pb=pb, fb=fb, seed=2)
    out = kernel(ctx, **kwargs)
    fb.halt()
    program = pb.finish()
    compiled = VoltronCompiler(program).compile(strategy, mesh(n_cores))
    return program, compiled, out


def all_ops(compiled, core=None, opcode=None):
    result = []
    cores = range(compiled.n_cores) if core is None else [core]
    for c in cores:
        for function in compiled.streams[c].values():
            for block in function.ordered_blocks():
                for op in block.ops():
                    if opcode is None or op.opcode is opcode:
                        result.append(op)
    return result


class TestCoupledStructure:
    def test_every_core_has_every_block(self):
        program, compiled, _ = _compile(doall_kernel, "ilp")
        labels = [
            set(compiled.streams[c]["main"].blocks) for c in range(4)
        ]
        assert all(l == labels[0] for l in labels)

    def test_coupled_blocks_have_equal_lengths(self):
        program, compiled, _ = _compile(doall_kernel, "ilp")
        for label in compiled.streams[0]["main"].blocks:
            lengths = {
                len(compiled.streams[c]["main"].block(label).slots)
                for c in range(4)
            }
            assert len(lengths) == 1

    def test_branches_replicated_and_aligned(self):
        program, compiled, _ = _compile(doall_kernel, "ilp")
        loop_label = next(
            b.label
            for b in compiled.streams[0]["main"].ordered_blocks()
            if b.taken == b.label
        )
        slots = []
        for c in range(4):
            block = compiled.streams[c]["main"].block(loop_label)
            br_slots = [
                i for i, op in enumerate(block.slots)
                if op is not None and op.opcode is Opcode.BR
            ]
            assert len(br_slots) == 1
            slots.append(br_slots[0])
        assert len(set(slots)) == 1  # same cycle on every core

    def test_ilp_emits_direct_mode_comm(self):
        program, compiled, _ = _compile(doall_kernel, "ilp")
        assert all_ops(compiled, opcode=Opcode.PUT)
        assert all_ops(compiled, opcode=Opcode.GET)
        assert not all_ops(compiled, opcode=Opcode.SEND)

    def test_llp_serial_fabric_puts_work_on_core0(self):
        program, compiled, _ = _compile(strand_kernel, "llp")
        # strand kernel has no DOALL loop: under 'llp' it must stay serial.
        for core in range(1, 4):
            computational = [
                op
                for op in all_ops(compiled, core=core)
                if op.opcode
                not in (Opcode.PBR, Opcode.BR, Opcode.HALT, Opcode.GET,
                        Opcode.NOP)
            ]
            assert computational == []


class TestDoallStructure:
    def test_region_blocks_present(self):
        program, compiled, _ = _compile(doall_kernel, "llp")
        table = compiled.attrs["regions"]
        strategies = {entry["strategy"] for entry in table.values()}
        assert strategies == {"doall"}
        labels = {label for (_fn, label) in table}
        assert any(label.endswith("_chunk") for label in labels)
        assert any(label.endswith("_join") for label in labels)

    def test_tx_brackets_on_every_core(self):
        program, compiled, _ = _compile(doall_kernel, "llp")
        for core in range(4):
            begins = all_ops(compiled, core=core, opcode=Opcode.TX_BEGIN)
            commits = all_ops(compiled, core=core, opcode=Opcode.TX_COMMIT)
            assert len(begins) == 1 and len(commits) == 1
            assert begins[0].attrs["order"] == core
            assert begins[0].attrs["chunks"] == 4

    def test_spawn_listen_sleep_protocol(self):
        program, compiled, _ = _compile(doall_kernel, "llp")
        spawns = all_ops(compiled, core=0, opcode=Opcode.SPAWN)
        assert len(spawns) == 3  # one per worker core
        for core in range(1, 4):
            assert all_ops(compiled, core=core, opcode=Opcode.LISTEN)
            assert all_ops(compiled, core=core, opcode=Opcode.SLEEP)
        assert len(all_ops(compiled, core=0, opcode=Opcode.RELEASE)) == 3

    def test_reduction_gets_partial_combines(self):
        program, compiled, _ = _compile(reduction_kernel, "llp")
        join_recvs = [
            op
            for op in all_ops(compiled, core=0, opcode=Opcode.RECV)
            if op.attrs.get("source_core") in (1, 2, 3)
        ]
        assert len(join_recvs) >= 3

    def test_mode_switch_brackets(self):
        program, compiled, _ = _compile(doall_kernel, "llp")
        for core in range(4):
            switches = all_ops(compiled, core=core, opcode=Opcode.MODE_SWITCH)
            modes = sorted(op.attrs["mode"] for op in switches)
            assert modes == ["coupled", "decoupled"]


class TestDecoupledStructure:
    def test_strand_region_uses_queue_comm(self):
        program, compiled, _ = _compile(strand_kernel, "tlp")
        assert all_ops(compiled, opcode=Opcode.SEND)
        assert all_ops(compiled, opcode=Opcode.RECV)

    def test_match_loop_predicate_is_communicated(self):
        """The Fig. 8 shape: the branch predicate flows through the queue
        network each iteration."""
        program, compiled, _ = _compile(match_kernel, "tlp", length=96)
        from repro.isa.operations import RegFile

        pred_recvs = [
            op
            for op in all_ops(compiled, opcode=Opcode.RECV)
            if op.dests and op.dests[0].file is RegFile.PR
        ]
        assert pred_recvs

    def test_dswp_carried_channel_has_prologue_and_drain(self):
        program, compiled, _ = _compile(dswp_kernel, "tlp", trips=64)
        tagged_sends = [
            op
            for op in all_ops(compiled, opcode=Opcode.SEND)
            if op.attrs.get("tag")
        ]
        tagged_recvs = [
            op
            for op in all_ops(compiled, opcode=Opcode.RECV)
            if op.attrs.get("tag")
        ]
        assert tagged_sends and tagged_recvs
        # Prologue block exists when a carried value crosses stages.
        labels = {
            block.label
            for c in range(4)
            for block in compiled.streams[c]["main"].ordered_blocks()
        }
        assert any(label.endswith("_pro") for label in labels)

    def test_decoupled_block_lengths_may_differ(self):
        program, compiled, _ = _compile(strand_kernel, "tlp")
        table = compiled.attrs["regions"]
        body_label = next(
            label
            for (_fn, label), entry in table.items()
            if entry["origin"] == label
        )
        lengths = set()
        for core in range(4):
            stream = compiled.streams[core]["main"]
            if body_label in stream.blocks:
                lengths.add(len(stream.block(body_label).slots))
        assert len(lengths) >= 1  # present, possibly on a subset of cores


class TestProgramPurity:
    def test_source_program_not_mutated(self):
        pb = ProgramBuilder("t")
        fb = pb.function("main")
        fb.block("entry")
        ctx = KernelContext(pb=pb, fb=fb, seed=2)
        doall_kernel(ctx, trips=32)
        fb.halt()
        program = pb.finish()
        before = [
            (op.uid, op.core, op.slot)
            for op in program.main().all_ops()
        ]
        compiler = VoltronCompiler(program)
        compiler.compile("hybrid", mesh(4))
        compiler.compile("ilp", two_core())
        after = [
            (op.uid, op.core, op.slot)
            for op in program.main().all_ops()
        ]
        assert before == after

    def test_machine_ops_have_fresh_uids(self):
        program, compiled, _ = _compile(doall_kernel, "hybrid")
        uids = [op.uid for op in all_ops(compiled)]
        assert len(uids) == len(set(uids))

    def test_region_table_attached(self):
        program, compiled, _ = _compile(doall_kernel, "hybrid")
        assert compiled.attrs["strategy"] == "hybrid"
        assert compiled.attrs["regions"]
