"""Unit tests for the profiling interpreter."""

from repro.compiler.profiling import Profiler, profile_program
from repro.isa import ProgramBuilder
from repro.isa.operations import Opcode
from repro.workloads.kernels import MISS_ARRAY


def _doall_program(trips=16):
    pb = ProgramBuilder("t")
    a = pb.alloc("a", max(trips, 32), init=range(max(trips, 32)))
    out = pb.alloc("o", max(trips, 32))
    fb = pb.function("main")
    fb.block("entry")
    with fb.counted_loop("L", 0, trips) as i:
        v = fb.load(a.base, i)
        fb.store(out.base, i, v)
    fb.halt()
    return pb.finish()


def _carried_program(trips=16):
    pb = ProgramBuilder("t")
    a = pb.alloc("a", max(trips + 1, 32), init=[1] * max(trips + 1, 32))
    fb = pb.function("main")
    fb.block("entry")
    with fb.counted_loop("L", 0, trips) as i:
        v = fb.load(a.base, i)
        nxt = fb.add(i, 1)
        fb.store(a.base, nxt, v)  # writes what the next iteration reads
    fb.halt()
    return pb.finish()


class TestLoopProfiles:
    def test_doall_loop_observed_independent(self):
        profile = profile_program(_doall_program())
        loop = profile.loop_profile("main", "L")
        assert loop is not None
        assert loop.observed_doall
        assert loop.average_trip_count == 16

    def test_cross_iteration_conflict_observed(self):
        profile = profile_program(_carried_program())
        loop = profile.loop_profile("main", "L")
        assert loop is not None
        assert not loop.observed_doall
        assert loop.cross_iteration_conflicts > 0

    def test_same_iteration_reuse_is_not_a_conflict(self):
        pb = ProgramBuilder("t")
        a = pb.alloc("a", 32)
        fb = pb.function("main")
        fb.block("entry")
        with fb.counted_loop("L", 0, 8) as i:
            fb.store(a.base, i, i)
            fb.load(a.base, i)  # same-iteration read after write
        fb.halt()
        profile = profile_program(pb.finish())
        assert profile.loop_profile("main", "L").observed_doall

    def test_loop_entries_counted_per_reentry(self):
        pb = ProgramBuilder("t")
        fb = pb.function("main")
        fb.block("entry")
        with fb.counted_loop("outer", 0, 3):
            with fb.counted_loop("inner", 0, 4):
                fb.mov(1)
        fb.halt()
        profile = profile_program(pb.finish())
        inner = profile.loop_profile("main", "inner")
        assert inner.entries == 3
        assert inner.iterations == 12
        assert inner.average_trip_count == 4

    def test_conflicts_through_calls_attributed_to_caller_loop(self):
        pb = ProgramBuilder("t")
        a = pb.alloc("a", 32)
        writer = pb.function("writer", n_params=1)
        writer.block("w_entry")
        (idx,) = writer.function.params
        writer.store(a.base, idx, 1)
        writer.ret(0)
        fb = pb.function("main")
        fb.block("entry")
        with fb.counted_loop("L", 0, 8):
            fb.call("writer", [0])  # every iteration writes a[0]
        fb.halt()
        profile = profile_program(pb.finish())
        loop = profile.loop_profile("main", "L")
        assert not loop.observed_doall


class TestMissProfiles:
    def test_streaming_large_array_misses(self):
        pb = ProgramBuilder("t")
        big = pb.alloc("big", MISS_ARRAY, init=[1] * MISS_ARRAY)
        fb = pb.function("main")
        fb.block("entry")
        with fb.counted_loop("L", 0, 256) as i:
            off = fb.mul(i, 8)  # one access per cache line
            fb.load(big.base, off)
        fb.halt()
        program = pb.finish()
        profile = profile_program(program)
        load = next(
            op
            for op in program.main().block("L").ops
            if op.opcode is Opcode.LOAD
        )
        assert profile.miss_rate(load) > 0.9
        assert profile.likely_missing(load)

    def test_resident_array_hits(self):
        pb = ProgramBuilder("t")
        small = pb.alloc("small", 32, init=[1] * 32)
        fb = pb.function("main")
        fb.block("entry")
        with fb.counted_loop("warm", 0, 32) as i:
            fb.load(small.base, i)
        with fb.counted_loop("hot", 0, 32) as j:
            fb.load(small.base, j)
        fb.halt()
        program = pb.finish()
        profile = profile_program(program)
        hot_load = next(
            op
            for op in program.main().block("hot").ops
            if op.opcode is Opcode.LOAD
        )
        assert profile.miss_rate(hot_load) == 0.0

    def test_miss_rate_of_unseen_op_is_zero(self):
        program = _doall_program()
        profile = profile_program(program)
        from repro.isa.operations import make_op

        ghost = make_op(Opcode.LOAD)
        assert profile.miss_rate(ghost) == 0.0


class TestExecutionCounts:
    def test_block_counts_match_trips(self):
        profile = profile_program(_doall_program(trips=10))
        assert profile.block_count("main", "L") == 10

    def test_dynamic_ops_positive(self):
        assert profile_program(_doall_program()).dynamic_ops > 0
