"""Tests for the compiler façade."""

import pytest

from repro.arch import four_core, mesh, single_core, two_core
from repro.compiler.driver import VoltronCompiler, compile_program
from repro.isa import ProgramBuilder


def _program():
    pb = ProgramBuilder("t")
    a = pb.alloc("a", 32, init=range(32))
    o = pb.alloc("o", 32)
    fb = pb.function("main")
    fb.block("entry")
    with fb.counted_loop("L", 0, 32) as i:
        fb.store(o.base, i, fb.mul(fb.load(a.base, i), 3))
    fb.halt()
    return pb.finish()


class TestVoltronCompiler:
    def test_profile_computed_once_and_cached(self):
        compiler = VoltronCompiler(_program())
        first = compiler.profile
        second = compiler.profile
        assert first is second

    def test_compile_each_strategy(self):
        compiler = VoltronCompiler(_program())
        for strategy in ("ilp", "tlp", "llp", "hybrid"):
            compiled = compiler.compile(strategy, four_core())
            assert compiled.attrs["strategy"] == strategy
            assert compiled.n_cores == 4

    def test_baseline_requires_single_core(self):
        compiler = VoltronCompiler(_program())
        with pytest.raises(ValueError):
            compiler.compile("baseline", two_core())
        assert compiler.compile("baseline").n_cores == 1

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            VoltronCompiler(_program()).compile("warp")

    def test_default_config_is_four_cores(self):
        compiled = VoltronCompiler(_program()).compile("hybrid")
        assert compiled.n_cores == 4


class TestCompileProgram:
    def test_single_core_forces_baseline(self):
        compiled = compile_program(_program(), n_cores=1, strategy="hybrid")
        assert compiled.n_cores == 1
        assert compiled.attrs["strategy"] == "baseline"

    def test_core_count_respected(self):
        compiled = compile_program(_program(), n_cores=2, strategy="ilp")
        assert compiled.n_cores == 2

    def test_compiled_validates(self):
        compiled = compile_program(_program(), 4, "hybrid")
        compiled.validate()  # should not raise
        assert compiled.static_op_count() > 0

    def test_describe_is_renderable(self):
        compiled = compile_program(_program(), 2, "ilp")
        text = compiled.describe()
        assert "core 0" in text and "core 1" in text
        assert "mode_switch" not in text  # pure-ILP compile has no switches
