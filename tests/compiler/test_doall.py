"""Unit tests for statistical DOALL detection and planning."""

import pytest

from repro.compiler.doall import plan_doall
from repro.compiler.loops import find_loops
from repro.compiler.profiling import profile_program
from repro.isa import ProgramBuilder


def _plan(build, n_cores=4, trip_threshold=None, args=()):
    pb = ProgramBuilder("t")
    fb = pb.function("main")
    fb.block("entry")
    build(pb, fb)
    fb.halt()
    program = pb.finish()
    profile = profile_program(program, args)
    function = program.main()
    loops = find_loops(function)
    assert loops, "test program must contain a loop"
    return plan_doall(
        program, function, loops[0], profile, n_cores,
        trip_threshold=trip_threshold,
    )


def elementwise(pb, fb, trips=32):
    a = pb.alloc("a", trips, init=range(trips))
    o = pb.alloc("o", trips)
    with fb.counted_loop("L", 0, trips) as i:
        v = fb.load(a.base, i)
        fb.store(o.base, i, fb.mul(v, 2))


class TestEligibility:
    def test_elementwise_loop_accepted(self):
        plan = _plan(elementwise)
        assert plan is not None
        assert plan.static_bounds == (0, 32)
        assert plan.static_trip_count() == 32
        assert plan.accumulators == []

    def test_reduction_accepted_with_accumulator(self):
        def build(pb, fb):
            a = pb.alloc("a", 32, init=range(32))
            o = pb.alloc("o", 1)
            acc = fb.mov(0)
            with fb.counted_loop("L", 0, 32) as i:
                fb.add(acc, fb.load(a.base, i), dest=acc)
            fb.store(o.base, 0, acc)

        plan = _plan(build)
        assert plan is not None
        assert len(plan.accumulators) == 1

    def test_cross_iteration_store_rejected(self):
        def build(pb, fb):
            a = pb.alloc("a", 40, init=[1] * 40)
            with fb.counted_loop("L", 0, 32) as i:
                v = fb.load(a.base, i)
                nxt = fb.add(i, 1)
                fb.store(a.base, nxt, v)

        assert _plan(build) is None

    def test_short_trip_count_rejected(self):
        def build(pb, fb):
            a = pb.alloc("a", 8, init=range(8))
            o = pb.alloc("o", 8)
            with fb.counted_loop("L", 0, 4) as i:
                fb.store(o.base, i, fb.load(a.base, i))

        # 4 iterations < 2 * 4 cores.
        assert _plan(build) is None
        # ... but passes with a lower threshold.
        assert _plan(build, trip_threshold=2) is not None

    def test_call_in_body_rejected(self):
        def build(pb, fb):
            helper = pb.function("h", n_params=1)
            helper.block("h_entry")
            (x,) = helper.function.params
            helper.ret(helper.add(x, 1))
            o = pb.alloc("o", 32)
            with fb.counted_loop("L", 0, 32) as i:
                fb.store(o.base, i, fb.call("h", [i]))

        assert _plan(build) is None

    def test_general_carried_register_rejected(self):
        def build(pb, fb):
            o = pb.alloc("o", 32)
            prev = fb.mov(0)
            with fb.counted_loop("L", 0, 32) as i:
                fb.store(o.base, i, prev)
                fb.mul(i, 3, dest=prev)  # not an accumulator shape

        assert _plan(build) is None

    def test_non_accumulator_liveout_rejected(self):
        def build(pb, fb):
            a = pb.alloc("a", 32, init=range(32))
            o = pb.alloc("o", 1)
            last = fb.mov(0)
            with fb.counted_loop("L", 0, 32) as i:
                v = fb.load(a.base, i)
                fb.mov(v, dest=last)  # last iteration's value escapes
            fb.store(o.base, 0, last)

        assert _plan(build) is None

    def test_down_loop_rejected(self):
        def build(pb, fb):
            o = pb.alloc("o", 33)
            with fb.counted_loop("L", 32, 0, down=True) as i:
                fb.store(o.base, i, i)

        assert _plan(build) is None

    def test_single_core_rejected(self):
        assert _plan(elementwise, n_cores=1) is None

    def test_dynamic_bound_accepted_without_static_bounds(self):
        def build(pb, fb):
            a = pb.alloc("a", 64, init=range(64))
            o = pb.alloc("o", 64)
            n = fb.load(a.base, 63)  # dynamic bound (= 63)
            with fb.counted_loop("L", 0, n) as i:
                fb.store(o.base, i, fb.load(a.base, i))

        plan = _plan(build)
        assert plan is not None
        assert plan.static_bounds is None
        assert plan.static_trip_count() is None


class TestPlanDetails:
    def test_average_trip_from_profile(self):
        plan = _plan(elementwise)
        assert plan.average_trip == 32

    def test_step_exposed(self):
        def build(pb, fb):
            o = pb.alloc("o", 64)
            with fb.counted_loop("L", 0, 64, step=2) as i:
                fb.store(o.base, i, i)

        plan = _plan(build)
        assert plan is not None
        assert plan.step == 2
        assert plan.static_trip_count() == 32
