"""Unit tests for loop analysis: natural loops, induction, accumulators."""

from repro.compiler.loops import (
    dominators,
    find_loops,
    live_in_regs,
    live_out_regs,
    split_loop_latch,
)
from repro.isa import ProgramBuilder
from repro.isa.operations import Imm, Opcode


def _counted_program(start=0, bound=16, step=1):
    pb = ProgramBuilder("t")
    arr = pb.alloc("a", 32)
    fb = pb.function("main")
    fb.block("entry")
    acc = fb.mov(0)
    with fb.counted_loop("L", start, bound, step=step) as i:
        v = fb.load(arr.base, i)
        fb.add(acc, v, dest=acc)
    fb.store(arr.base, 0, acc)
    fb.halt()
    return pb.finish(), acc


class TestDominators:
    def test_entry_dominates_all(self):
        program, _ = _counted_program()
        fn = program.main()
        dom = dominators(fn)
        for label in fn.block_order:
            assert fn.entry in dom[label]

    def test_loop_header_dominates_itself_only_among_loop(self):
        program, _ = _counted_program()
        dom = dominators(program.main())
        assert "L" in dom["L"]


class TestFindLoops:
    def test_counted_loop_detected(self):
        program, _ = _counted_program()
        loops = find_loops(program.main())
        assert len(loops) == 1
        loop = loops[0]
        assert loop.header == "L"
        assert loop.is_single_block
        assert loop.preheader == "entry"
        assert loop.exit is not None

    def test_induction_variable(self):
        program, _ = _counted_program(start=2, bound=20, step=3)
        loop = find_loops(program.main())[0]
        induction = loop.induction
        assert induction is not None
        assert induction.step == 3
        assert induction.init == Imm(2)
        assert induction.bound == Imm(20)
        assert induction.compare is not None
        assert induction.trip_count() == 6  # ceil((20-2)/3)

    def test_down_loop_negative_step(self):
        pb = ProgramBuilder("t")
        fb = pb.function("main")
        fb.block("entry")
        with fb.counted_loop("L", 8, 0, down=True):
            fb.mov(1)
        fb.halt()
        loop = find_loops(pb.finish().main())[0]
        assert loop.induction is not None
        assert loop.induction.step == -1

    def test_dynamic_bound_has_no_static_trip(self):
        pb = ProgramBuilder("t")
        fb = pb.function("main", n_params=1)
        fb.block("entry")
        (n,) = fb.function.params
        with fb.counted_loop("L", 0, n):
            fb.mov(1)
        fb.halt()
        loop = find_loops(pb.finish().main())[0]
        assert loop.induction is not None
        assert loop.induction.trip_count() is None

    def test_accumulator_detected(self):
        program, acc = _counted_program()
        loop = find_loops(program.main())[0]
        regs = [a.reg for a in loop.accumulators]
        assert acc in regs

    def test_accumulator_with_extra_use_rejected(self):
        pb = ProgramBuilder("t")
        arr = pb.alloc("a", 32)
        fb = pb.function("main")
        fb.block("entry")
        acc = fb.mov(0)
        with fb.counted_loop("L", 0, 8) as i:
            fb.add(acc, i, dest=acc)
            fb.store(arr.base, i, acc)  # acc escapes each iteration
        fb.halt()
        loop = find_loops(pb.finish().main())[0]
        assert acc not in [a.reg for a in loop.accumulators]

    def test_nested_loops_found(self):
        pb = ProgramBuilder("t")
        fb = pb.function("main")
        fb.block("entry")
        with fb.counted_loop("outer", 0, 3):
            with fb.counted_loop("inner", 0, 4):
                fb.mov(1)
        fb.halt()
        loops = find_loops(pb.finish().main())
        headers = {loop.header for loop in loops}
        assert headers == {"outer", "inner"}
        outer = next(l for l in loops if l.header == "outer")
        inner = next(l for l in loops if l.header == "inner")
        assert "inner" in outer.blocks
        assert not outer.is_single_block
        assert inner.is_single_block

    def test_non_loop_program_has_no_loops(self):
        pb = ProgramBuilder("t")
        fb = pb.function("main")
        fb.block("entry")
        fb.mov(1)
        fb.halt()
        assert find_loops(pb.finish().main()) == []


class TestLiveness:
    def test_live_out_includes_accumulator(self):
        program, acc = _counted_program()
        loop = find_loops(program.main())[0]
        assert acc in live_out_regs(program.main(), loop)

    def test_live_in_includes_upstream_values(self):
        pb = ProgramBuilder("t")
        fb = pb.function("main")
        fb.block("entry")
        scale = fb.mov(3)
        with fb.counted_loop("L", 0, 8) as i:
            fb.mul(i, scale)
        fb.halt()
        program = pb.finish()
        loop = find_loops(program.main())[0]
        assert scale in live_in_regs(program.main(), loop)


class TestSplitLoopLatch:
    def test_counted_loop_latch_replicated(self):
        program, _ = _counted_program()
        loop = find_loops(program.main())[0]
        block = program.main().block("L")
        body, latch, replicate = split_loop_latch(block, loop)
        assert replicate
        opcodes = [op.opcode for op in latch]
        assert Opcode.ADD in opcodes  # induction update
        assert Opcode.CMP_LT in opcodes
        assert Opcode.PBR in opcodes and Opcode.BR in opcodes
        assert all(op not in latch for op in body)
        assert len(body) + len(latch) == len(block.ops)

    def test_pointer_loop_latch_not_replicable(self):
        pb = ProgramBuilder("t")
        arr = pb.alloc("a", 32, init=[1] * 32)
        fb = pb.function("main")
        fb.block("entry")
        p = fb.mov(arr.base)
        fb.block("loop")
        v = fb.load(p, 0)
        fb.add(p, v, dest=p)
        cond = fb.cmp_lt(p, arr.base + 8)
        fb.branch_if(cond, "loop")
        fb.block("done")
        fb.halt()
        program = pb.finish()
        loop = find_loops(program.main())[0]
        block = program.main().block("loop")
        body, latch, replicate = split_loop_latch(block, loop)
        assert not replicate
        assert {op.opcode for op in latch} == {Opcode.PBR, Opcode.BR}
