"""Unit tests for communication op construction."""

from repro.arch.mesh import Mesh
from repro.compiler.comm import (
    broadcast_group,
    coupled_transfer,
    decoupled_transfer,
    memory_sync_pair,
    recv_value,
    send_value,
)
from repro.isa.operations import Opcode, Reg, RegFile
from repro.isa.registers import RegisterAllocator

R = lambda i: Reg(RegFile.GPR, i)
P = lambda i: Reg(RegFile.PR, i)


class TestCoupledTransfer:
    def test_adjacent_single_hop(self):
        mesh = Mesh(1, 2, 2)
        ops = coupled_transfer(mesh, 0, [1], R(5))
        assert [op.opcode for op in ops] == [Opcode.PUT, Opcode.GET]
        put, get = ops
        assert put.core == 0 and get.core == 1
        assert put.attrs["align"] == get.attrs["align"]
        assert put.attrs["direction"] == "east"
        assert get.attrs["direction"] == "west"
        assert get.dest == R(5)

    def test_diagonal_two_hops_via_intermediate(self):
        mesh = Mesh(2, 2, 4)
        ops = coupled_transfer(mesh, 0, [3], R(5))
        # Two PUT/GET pairs: 0 -> 1 -> 3 along the XY route.
        assert [op.opcode for op in ops] == [
            Opcode.PUT, Opcode.GET, Opcode.PUT, Opcode.GET,
        ]
        assert [op.core for op in ops] == [0, 1, 1, 3]
        # Distinct align ids per hop.
        assert ops[0].attrs["align"] != ops[2].attrs["align"]

    def test_source_excluded_from_destinations(self):
        mesh = Mesh(1, 2, 2)
        assert coupled_transfer(mesh, 0, [0], R(1)) == []

    def test_multiple_destinations_chain_each(self):
        mesh = Mesh(2, 2, 4)
        ops = coupled_transfer(mesh, 0, [1, 2], R(7))
        get_cores = [op.core for op in ops if op.opcode is Opcode.GET]
        assert set(get_cores) == {1, 2}

    def test_predicates_use_broadcast(self):
        mesh = Mesh(2, 2, 4)
        ops = coupled_transfer(mesh, 1, [0, 2, 3], P(0))
        assert ops[0].opcode is Opcode.BCAST
        gets = ops[1:]
        assert all(op.opcode is Opcode.GET for op in gets)
        assert all(op.attrs["direction"] == "bcast" for op in gets)
        assert all(op.attrs["bcast_src"] == 1 for op in gets)
        align = ops[0].attrs["align"]
        assert all(op.attrs["align"] == align for op in gets)


class TestBroadcastGroup:
    def test_excludes_source(self):
        ops = broadcast_group(2, [0, 1, 2, 3], P(1))
        gets = [op for op in ops if op.opcode is Opcode.GET]
        assert {op.core for op in gets} == {0, 1, 3}


class TestDecoupledTransfer:
    def test_send_recv_pair(self):
        ops = decoupled_transfer(0, [2], R(4))
        send, recv = ops
        assert send.opcode is Opcode.SEND and recv.opcode is Opcode.RECV
        assert send.attrs["target_core"] == 2
        assert recv.attrs["source_core"] == 0
        assert recv.dest == R(4)

    def test_all_marked_as_transfers(self):
        for op in decoupled_transfer(0, [1, 2, 3], R(4)):
            assert op.attrs["transfer"]

    def test_sync_attr_propagates(self):
        ops = decoupled_transfer(0, [1], R(4), sync="pred")
        assert all(op.attrs["sync"] == "pred" for op in ops)


class TestMemorySync:
    def test_dummy_pair_shape(self):
        regs = RegisterAllocator()
        send, recv = memory_sync_pair(1, 3, regs)
        assert send.attrs["sync"] == "mem" and recv.attrs["sync"] == "mem"
        assert send.core == 1 and recv.core == 3
        assert recv.dest is not None  # scratch register

    def test_scratch_registers_are_fresh(self):
        regs = RegisterAllocator()
        _, recv1 = memory_sync_pair(0, 1, regs)
        _, recv2 = memory_sync_pair(0, 1, regs)
        assert recv1.dest != recv2.dest


class TestTaggedChannels:
    def test_send_recv_tags(self):
        send = send_value(0, 1, R(2), tag="carried_r2")
        recv = recv_value(1, 0, R(2), tag="carried_r2")
        assert send.attrs["tag"] == recv.attrs["tag"] == "carried_r2"

    def test_untagged_by_default(self):
        assert "tag" not in send_value(0, 1, R(2)).attrs


class TestZeroHopEdges:
    """A DFG edge whose endpoints land on the same core needs no
    communication at all -- the helpers must emit nothing rather than a
    self-addressed message (the network rejects core->self sends)."""

    def test_decoupled_transfer_to_self_is_empty(self):
        assert decoupled_transfer(2, [2], R(1)) == []

    def test_self_among_destinations_is_skipped(self):
        ops = decoupled_transfer(1, [0, 1, 3], R(6))
        sends = [op for op in ops if op.opcode is Opcode.SEND]
        recvs = [op for op in ops if op.opcode is Opcode.RECV]
        assert {op.attrs["target_core"] for op in sends} == {0, 3}
        assert all(op.core != 1 for op in recvs)

    def test_broadcast_to_only_self_is_bare(self):
        # A BCAST with no remote reader is a single (dead) driver op:
        # no GETs, so nothing ever samples the wire.
        ops = broadcast_group(0, [0], P(2))
        assert [op.opcode for op in ops] == [Opcode.BCAST]

    def test_coupled_transfer_duplicate_destinations(self):
        mesh = Mesh(1, 2, 2)
        ops = coupled_transfer(mesh, 0, [1, 1], R(3))
        assert [op.opcode for op in ops] == [Opcode.PUT, Opcode.GET]


class TestBroadcastFanOut:
    def test_full_fan_out_one_get_per_reader(self):
        ops = broadcast_group(1, [0, 1, 2, 3], P(0))
        bcast, *gets = ops
        assert bcast.opcode is Opcode.BCAST and bcast.core == 1
        assert [op.core for op in gets] == [0, 2, 3]  # sorted, no self
        align = bcast.attrs["align"]
        assert all(op.attrs["align"] == align for op in gets)
        assert all(op.attrs["direction"] == "bcast" for op in gets)
        assert all(op.attrs["bcast_src"] == 1 for op in gets)
        assert all(op.dest == P(0) for op in gets)

    def test_duplicate_readers_collapse(self):
        ops = broadcast_group(0, [1, 1, 2, 2], P(3))
        gets = [op for op in ops if op.opcode is Opcode.GET]
        assert [op.core for op in gets] == [1, 2]

    def test_distinct_groups_get_distinct_align_ids(self):
        a = broadcast_group(0, [1], P(0))[0].attrs["align"]
        b = broadcast_group(0, [1], P(0))[0].attrs["align"]
        assert a != b


class TestSyncPairInsertionOrder:
    """memory_sync_pair returns (send, recv) in dependence order; when a
    block carries several pairs on one channel the FIFO discipline makes
    k-th SEND meet k-th RECV, so insertion order is correctness."""

    def test_pair_order_is_send_then_recv(self):
        regs = RegisterAllocator()
        pair = memory_sync_pair(0, 1, regs)
        assert [op.opcode for op in pair] == [Opcode.SEND, Opcode.RECV]
        send, recv = pair
        assert send.attrs["target_core"] == recv.core
        assert recv.attrs["source_core"] == send.core

    def test_pairs_share_one_untagged_channel(self):
        regs = RegisterAllocator()
        send1, recv1 = memory_sync_pair(0, 1, regs)
        send2, recv2 = memory_sync_pair(0, 1, regs)
        for op in (send1, recv1, send2, recv2):
            assert "tag" not in op.attrs
        # Same (src, dst, tag) channel: FIFO order must pair 1 with 1.
        assert send1.attrs["target_core"] == send2.attrs["target_core"]
        assert recv1.attrs["source_core"] == recv2.attrs["source_core"]

    def test_pair_token_is_dummy(self):
        regs = RegisterAllocator()
        send, recv = memory_sync_pair(2, 0, regs)
        # The payload is meaningless: an immediate zero into a scratch
        # register nothing reads.
        assert send.srcs and send.srcs[0].value == 0
        assert send.attrs["transfer"] and recv.attrs["transfer"]
