"""Unit tests for BUG, eBUG, and DSWP partitioners."""

import pytest

from repro.arch.mesh import Mesh
from repro.compiler.dfg import build_block_dfg, carried_register_edges
from repro.compiler.loops import find_loops, split_loop_latch
from repro.compiler.partition.bug import BugPartitioner
from repro.compiler.partition.dswp import DswpPartitioner
from repro.compiler.partition.ebug import EBugPartitioner
from repro.compiler.profiling import profile_program
from repro.isa import ProgramBuilder
from repro.isa.operations import Opcode
from repro.workloads.kernels import MISS_ARRAY


def _wide_chains_body(chains=4, depth=3):
    """Independent chains: ideal BUG input.  Returns (program, body ops)."""
    pb = ProgramBuilder("t")
    fb = pb.function("main")
    fb.block("entry")
    accs = [fb.mov(k + 1) for k in range(chains)]
    with fb.counted_loop("L", 0, 8) as i:
        for k in range(chains):
            t = fb.mul(accs[k], 3)
            for _ in range(depth - 1):
                t = fb.add(t, 1)
            fb.xor(t, i, dest=accs[k])
    fb.halt()
    program = pb.finish()
    loop = find_loops(program.main())[0]
    body, _latch, _rep = split_loop_latch(program.main().block("L"), loop)
    return program, body


class TestBug:
    def test_independent_chains_spread(self):
        program, body = _wide_chains_body(chains=4)
        graph = build_block_dfg(
            program, body, carried_regs=carried_register_edges(body)
        )
        result = BugPartitioner(Mesh(2, 2, 4)).partition(graph)
        used = {result.assignment[op.uid] for op in body}
        assert len(used) >= 2  # work spreads over multiple cores

    def test_dependent_chain_stays_together(self):
        pb = ProgramBuilder("t")
        fb = pb.function("main")
        fb.block("entry")
        t = fb.mov(1)
        for _ in range(6):
            t = fb.add(t, 1)
        fb.halt()
        program = pb.finish()
        ops = program.main().block("entry").ops[:7]
        graph = build_block_dfg(program, ops)
        result = BugPartitioner(Mesh(1, 2, 2)).partition(graph)
        cores = {result.assignment[op.uid] for op in ops}
        assert len(cores) == 1  # splitting a serial chain only adds latency

    def test_every_op_assigned_in_range(self):
        program, body = _wide_chains_body()
        graph = build_block_dfg(program, body)
        result = BugPartitioner(Mesh(2, 2, 4)).partition(graph)
        for op in body:
            assert 0 <= result.assignment[op.uid] < 4

    def test_single_core_trivial(self):
        program, body = _wide_chains_body()
        graph = build_block_dfg(program, body)
        result = BugPartitioner(Mesh(1, 1, 1)).partition(graph)
        assert set(result.assignment.values()) == {0}


class TestEBug:
    def _missy_program(self):
        pb = ProgramBuilder("t")
        a = pb.alloc("a", MISS_ARRAY, init=[1] * MISS_ARRAY)
        b = pb.alloc("b", MISS_ARRAY, init=[2] * MISS_ARRAY)
        fb = pb.function("main")
        fb.block("entry")
        with fb.counted_loop("L", 0, 64) as i:
            off = fb.mul(i, 8)
            va = fb.load(a.base, off)
            ca = fb.add(va, 1)
            vb = fb.load(b.base, off)
            cb = fb.add(vb, 2)
            fb.xor(ca, cb)
        fb.halt()
        return pb.finish()

    def test_missing_load_and_consumer_share_core(self):
        program = self._missy_program()
        profile = profile_program(program)
        loop = find_loops(program.main())[0]
        body, _l, _r = split_loop_latch(program.main().block("L"), loop)
        carried = carried_register_edges(body, exclude={loop.induction.reg})
        graph = build_block_dfg(program, body, carried_regs=carried)
        partitioner = EBugPartitioner(Mesh(1, 2, 2), profile)
        result = partitioner.partition(graph)
        loads = [op for op in body if op.opcode is Opcode.LOAD]
        for load in loads:
            consumers = [
                op for op in body if load.dest in op.src_regs()
            ]
            for consumer in consumers:
                assert (
                    result.assignment[load.uid]
                    == result.assignment[consumer.uid]
                )

    def test_memory_spread_across_cores(self):
        """Memory balancing: the two missing streams land on two cores so
        their stalls can overlap (the paper's MLP argument)."""
        program = self._missy_program()
        profile = profile_program(program)
        loop = find_loops(program.main())[0]
        body, _l, _r = split_loop_latch(program.main().block("L"), loop)
        carried = carried_register_edges(body, exclude={loop.induction.reg})
        graph = build_block_dfg(program, body, carried_regs=carried)
        result = EBugPartitioner(Mesh(1, 2, 2), profile).partition(graph)
        loads = [op for op in body if op.opcode is Opcode.LOAD]
        cores = {result.assignment[load.uid] for load in loads}
        assert len(cores) == 2

    def test_carried_group_constraint(self):
        pb = ProgramBuilder("t")
        fb = pb.function("main")
        fb.block("entry")
        acc = fb.mov(0)
        with fb.counted_loop("L", 0, 8) as i:
            t = fb.mul(acc, 3)
            fb.add(t, i, dest=acc)
        fb.halt()
        program = pb.finish()
        loop = find_loops(program.main())[0]
        body, _l, _r = split_loop_latch(program.main().block("L"), loop)
        carried = carried_register_edges(body, exclude={loop.induction.reg})
        graph = build_block_dfg(program, body, carried_regs=carried)
        result = EBugPartitioner(Mesh(1, 2, 2)).partition(graph)
        recurrence = [
            op for op in body if op.opcode in (Opcode.MUL, Opcode.ADD)
        ]
        assert len({result.assignment[op.uid] for op in recurrence}) == 1


class TestDswp:
    def _pipeline_body(self):
        pb = ProgramBuilder("t")
        links = pb.alloc("next", 64, init=[(i + 1) % 64 for i in range(64)])
        vals = pb.alloc("vals", 64, init=[3] * 64)
        out = pb.alloc("out", 64)
        fb = pb.function("main")
        fb.block("entry")
        node = fb.mov(0)
        with fb.counted_loop("L", 0, 32) as i:
            v = fb.load(vals.base, node)
            t = fb.mul(v, 3)
            t = fb.add(t, 1)
            t = fb.mul(t, 5)
            t = fb.add(t, 7)
            fb.store(out.base, i, t)
            fb.load(links.base, node, dest=node)
        fb.halt()
        program = pb.finish()
        loop = find_loops(program.main())[0]
        body, _l, _r = split_loop_latch(program.main().block("L"), loop)
        return program, body, loop

    def test_pipeline_found(self):
        program, body, loop = self._pipeline_body()
        partition = DswpPartitioner(program, 2).partition(
            body, replicated_regs={loop.induction.reg}
        )
        assert partition is not None
        assert partition.n_stages == 2
        assert partition.estimated_speedup > 1.0

    def test_stage_edges_flow_forward(self):
        """Intra-iteration dataflow must go from earlier to later stages."""
        program, body, loop = self._pipeline_body()
        partition = DswpPartitioner(program, 4).partition(
            body, replicated_regs={loop.induction.reg}
        )
        by_uid = partition.stage_of
        defs = {}
        for op in body:
            for reg in op.src_regs():
                if reg in defs and defs[reg].uid in by_uid:
                    assert by_uid[defs[reg].uid] <= by_uid[op.uid]
            for reg in op.dests:
                defs[reg] = op

    def test_pointer_chase_is_single_scc(self):
        program, body, loop = self._pipeline_body()
        partition = DswpPartitioner(program, 4).partition(
            body, replicated_regs={loop.induction.reg}
        )
        chase = next(
            op
            for op in body
            if op.opcode is Opcode.LOAD and op.dest in op.src_regs()
        )
        # The self-recurrent load sits in the earliest stage.
        assert partition.stage_of[chase.uid] == 0

    def test_serial_body_rejected(self):
        pb = ProgramBuilder("t")
        fb = pb.function("main")
        fb.block("entry")
        acc = fb.mov(1)
        with fb.counted_loop("L", 0, 8):
            fb.mul(acc, 3, dest=acc)
        fb.halt()
        program = pb.finish()
        loop = find_loops(program.main())[0]
        body, _l, _r = split_loop_latch(program.main().block("L"), loop)
        partition = DswpPartitioner(program, 4).partition(
            body, replicated_regs={loop.induction.reg}
        )
        assert partition is None  # one SCC: no pipeline

    def test_stage_weights_balanced(self):
        program, body, loop = self._pipeline_body()
        partition = DswpPartitioner(program, 2).partition(
            body, replicated_regs={loop.induction.reg}
        )
        total = sum(partition.stage_weights)
        assert max(partition.stage_weights) <= 0.8 * total

    def test_empty_body(self):
        program, _, _ = self._pipeline_body()
        assert DswpPartitioner(program, 4).partition([]) is None
