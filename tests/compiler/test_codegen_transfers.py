"""Codegen transfer-insertion internals: where communication ops land."""

import pytest

from repro.arch import four_core, mesh, two_core
from repro.compiler import VoltronCompiler
from repro.isa import ProgramBuilder
from repro.isa.operations import Opcode, RegFile
from repro.workloads.kernels import KernelContext, doall_kernel, strand_kernel


def compile_kernel(kernel, strategy, n_cores=4, **kwargs):
    pb = ProgramBuilder("t")
    fb = pb.function("main")
    fb.block("entry")
    ctx = KernelContext(pb=pb, fb=fb, seed=6)
    out = kernel(ctx, **kwargs)
    fb.halt()
    program = pb.finish()
    return program, VoltronCompiler(program).compile(strategy, mesh(n_cores))


def iter_ops(compiled, core=None):
    cores = range(compiled.n_cores) if core is None else [core]
    for c in cores:
        for function in compiled.streams[c].values():
            for block in function.ordered_blocks():
                for slot, op in enumerate(block.slots):
                    if op is not None:
                        yield block, slot, op


class TestTransferAttributes:
    def test_every_comm_op_is_marked_or_protocol(self):
        program, compiled = compile_kernel(doall_kernel, "hybrid")
        comm = (Opcode.PUT, Opcode.GET, Opcode.SEND, Opcode.RECV,
                Opcode.BCAST)
        protocol = {"spawn", "release"}
        for _block, _slot, op in iter_ops(compiled):
            if op.opcode in comm:
                assert op.attrs.get("transfer") or op.attrs.get("sync"), op

    def test_no_btr_transfers(self):
        """Branch-target registers are per-core (each core branches to its
        own physical block): they must never travel the network."""
        program, compiled = compile_kernel(doall_kernel, "hybrid")
        for _block, _slot, op in iter_ops(compiled):
            if op.opcode in (Opcode.PUT, Opcode.SEND):
                for src in op.src_regs():
                    assert src.file is not RegFile.BTR
            if op.opcode in (Opcode.GET, Opcode.RECV) and op.dests:
                assert op.dests[0].file is not RegFile.BTR

    def test_put_get_pairs_share_align_and_slot(self):
        program, compiled = compile_kernel(
            doall_kernel, "ilp", n_cores=2, trips=48
        )
        puts = {}
        gets = {}
        for block, slot, op in iter_ops(compiled):
            if op.opcode is Opcode.PUT:
                puts[op.attrs["align"]] = (block.label, slot)
            elif op.opcode is Opcode.GET and "align" in op.attrs:
                gets.setdefault(op.attrs["align"], []).append(
                    (block.label, slot)
                )
        assert puts
        for align, position in puts.items():
            for get_position in gets.get(align, []):
                assert get_position == position, (
                    "PUT/GET pair not co-scheduled"
                )

    def test_doall_body_has_no_transfers(self):
        """Chunk bodies are fully private: any SEND/RECV inside one would
        be a codegen bug."""
        program, compiled = compile_kernel(doall_kernel, "llp")
        table = compiled.attrs["regions"]
        body_labels = {
            label
            for (_fn, label), entry in table.items()
            if entry["origin"] == label and entry["strategy"] == "doall"
        }
        assert body_labels
        for core in range(4):
            for label in body_labels:
                stream = compiled.streams[core]["main"]
                if label not in stream.blocks:
                    continue
                for op_ in stream.block(label).ops():
                    assert op_.opcode not in (Opcode.SEND, Opcode.RECV), op_


class TestModeAnnotations:
    def test_every_block_has_consistent_mode_across_cores(self):
        program, compiled = compile_kernel(strand_kernel, "hybrid")
        modes = {}
        for core in range(4):
            for function in compiled.streams[core].values():
                for block in function.ordered_blocks():
                    key = (function.name, block.label)
                    modes.setdefault(key, set()).add(block.mode)
        for key, seen in modes.items():
            assert len(seen) == 1, f"{key} has mixed modes {seen}"

    def test_decoupled_blocks_only_inside_regions(self):
        program, compiled = compile_kernel(strand_kernel, "hybrid")
        table = compiled.attrs["regions"]
        for core in range(4):
            for function in compiled.streams[core].values():
                for block in function.ordered_blocks():
                    if block.mode == "decoupled":
                        assert (function.name, block.label) in table

    def test_region_annotation_matches_table(self):
        program, compiled = compile_kernel(strand_kernel, "hybrid")
        table = compiled.attrs["regions"]
        for core in range(4):
            for function in compiled.streams[core].values():
                for block in function.ordered_blocks():
                    entry = table.get((function.name, block.label))
                    if entry is not None:
                        assert block.region == entry["rid"]
                    else:
                        assert block.region == 0


class TestSerialFabric:
    def test_llp_strategy_places_fabric_on_core0_only(self):
        program, compiled = compile_kernel(strand_kernel, "llp")
        allowed = {
            Opcode.PBR, Opcode.BR, Opcode.HALT, Opcode.RET, Opcode.CALL,
            Opcode.GET, Opcode.NOP, Opcode.MODE_SWITCH,
        }
        for core in (1, 2, 3):
            for _block, _slot, op in iter_ops(compiled, core=core):
                assert op.opcode in allowed, (core, op)
