"""Unit tests for the 2-D mesh topology and XY routing."""

import pytest

from repro.arch.mesh import DIRECTIONS, Mesh, opposite


class TestTopology:
    def test_positions_row_major(self):
        mesh = Mesh(2, 2, 4)
        assert mesh.position(0) == (0, 0)
        assert mesh.position(1) == (0, 1)
        assert mesh.position(2) == (1, 0)
        assert mesh.position(3) == (1, 1)

    def test_neighbors_2x2(self):
        mesh = Mesh(2, 2, 4)
        assert mesh.neighbor(0, "east") == 1
        assert mesh.neighbor(0, "south") == 2
        assert mesh.neighbor(3, "west") == 2
        assert mesh.neighbor(3, "north") == 1

    def test_edge_of_mesh_raises(self):
        mesh = Mesh(2, 2, 4)
        with pytest.raises(ValueError):
            mesh.neighbor(0, "west")
        with pytest.raises(ValueError):
            mesh.neighbor(0, "north")

    def test_partial_last_row(self):
        # 3 cores on a 2x2 grid: position (1,1) does not exist.
        mesh = Mesh(2, 2, 3)
        with pytest.raises(ValueError):
            mesh.neighbor(1, "south")
        assert mesh.neighbor(2, "north") == 0

    def test_neighbors_dict(self):
        mesh = Mesh(2, 2, 4)
        assert mesh.neighbors(0) == {"east": 1, "south": 2}

    def test_opposite(self):
        for direction in DIRECTIONS:
            assert opposite(opposite(direction)) == direction

    def test_core_range_check(self):
        mesh = Mesh(1, 2, 2)
        with pytest.raises(ValueError):
            mesh.position(2)


class TestRouting:
    def test_hops_is_manhattan(self):
        mesh = Mesh(2, 2, 4)
        assert mesh.hops(0, 0) == 0
        assert mesh.hops(0, 1) == 1
        assert mesh.hops(0, 3) == 2
        assert mesh.hops(1, 2) == 2

    def test_route_column_first(self):
        mesh = Mesh(2, 2, 4)
        # XY: 0 -> 1 (fix column) -> 3 (fix row)
        assert mesh.route(0, 3) == [1, 3]
        assert mesh.route(3, 0) == [2, 0]

    def test_route_same_core_is_empty(self):
        mesh = Mesh(2, 2, 4)
        assert mesh.route(2, 2) == []

    def test_direct_path_directions(self):
        mesh = Mesh(2, 2, 4)
        assert mesh.direct_path_directions(0, 3) == ["east", "south"]
        assert mesh.direct_path_directions(3, 0) == ["west", "north"]
        assert mesh.direct_path_directions(0, 1) == ["east"]

    def test_route_length_equals_hops(self):
        mesh = Mesh(3, 3, 9)
        for src in range(9):
            for dst in range(9):
                assert len(mesh.route(src, dst)) == mesh.hops(src, dst)

    def test_route_steps_are_adjacent(self):
        mesh = Mesh(3, 3, 9)
        for src in range(9):
            for dst in range(9):
                current = src
                for step in mesh.route(src, dst):
                    assert mesh.hops(current, step) == 1
                    current = step
                assert current == dst
