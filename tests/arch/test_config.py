"""Unit tests for machine configurations."""

import pytest

from repro.arch.config import (
    CacheConfig,
    MachineConfig,
    NetworkConfig,
    four_core,
    mesh,
    single_core,
    two_core,
)


class TestCacheConfig:
    def test_paper_l1_geometry(self):
        # 4 kB 2-way with 32 B lines -> 1024 words, 64 sets.
        l1 = CacheConfig(size_words=1024, associativity=2)
        assert l1.n_sets == 64

    def test_paper_l2_geometry(self):
        l2 = CacheConfig(size_words=32768, associativity=4, hit_latency=7)
        assert l2.n_sets == 1024

    def test_rejects_non_multiple_size(self):
        with pytest.raises(ValueError):
            CacheConfig(size_words=1000, associativity=3)


class TestNetworkConfig:
    def test_queue_latency_matches_paper(self):
        # 2 cycles + 1 per hop (Section 3.1).
        net = NetworkConfig()
        assert net.queue_latency(1) == 3
        assert net.queue_latency(2) == 4

    def test_direct_latency_is_one_per_hop(self):
        net = NetworkConfig()
        assert net.direct_cycles_per_hop == 1


class TestMachineConfig:
    def test_presets(self):
        assert single_core().n_cores == 1
        assert two_core().mesh_shape == (1, 2)
        assert four_core().mesh_shape == (2, 2)

    def test_mesh_helper_presets_and_general(self):
        assert mesh(1).n_cores == 1
        assert mesh(4).mesh_shape == (2, 2)
        cfg8 = mesh(8)
        rows, cols = cfg8.mesh_shape
        assert rows * cols >= 8

    def test_mesh_too_small_rejected(self):
        with pytest.raises(ValueError):
            MachineConfig(n_cores=4, mesh_shape=(1, 2))

    def test_zero_cores_rejected(self):
        with pytest.raises(ValueError):
            MachineConfig(n_cores=0, mesh_shape=(1, 1))

    def test_coupled_group_limit_default_is_four(self):
        # "coupling more than 4 cores is rare", Section 3.2.
        assert four_core().coupled_group_size == 4

    def test_configs_are_frozen(self):
        config = four_core()
        with pytest.raises(Exception):
            config.n_cores = 8
