"""The redesigned machine-spec API: mesh shapes for arbitrary core
counts, the preset registry, resolve_machine, and override diffing."""

import pytest

from repro.arch.config import (
    MachineConfig,
    NetworkConfig,
    apply_overrides,
    four_core,
    list_presets,
    machine_overrides,
    mesh,
    preset,
    resolve_machine,
    single_core,
    two_core,
)
from repro.arch.mesh import Mesh


class TestMeshShapes:
    def test_small_counts_return_paper_presets(self):
        assert mesh(1) == single_core()
        assert mesh(2) == two_core()
        assert mesh(4) == four_core()

    @pytest.mark.parametrize(
        "n,shape",
        [(6, (2, 3)), (8, (2, 4)), (9, (3, 3)), (12, (3, 4)),
         (16, (4, 4)), (32, (4, 8)), (64, (8, 8))],
    )
    def test_composite_counts_keep_their_shapes(self, n, shape):
        assert mesh(n).mesh_shape == shape

    @pytest.mark.parametrize(
        "n,shape",
        [(7, (2, 4)), (13, (3, 5)), (17, (3, 6)), (31, (4, 8))],
    )
    def test_prime_counts_get_near_square_rectangles(self, n, shape):
        """Primes no longer degenerate to a 1xN chain: the enclosing
        rectangle is near-square with the holes at the tail."""
        config = mesh(n)
        assert config.mesh_shape == shape
        rows, cols = config.mesh_shape
        assert rows * cols >= n
        # Near-square: perimeter within 2 of the perfect square's.
        root = int(n**0.5) + 1
        assert rows + cols <= 2 * root + 1

    @pytest.mark.parametrize("n", [7, 13, 17, 23, 31])
    def test_holey_meshes_still_route_between_all_pairs(self, n):
        rows, cols = mesh(n).mesh_shape
        grid = Mesh(rows, cols, n)
        for a in range(n):
            for b in range(n):
                if a != b:
                    assert grid.hops(a, b) >= 1

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            mesh(0)


class TestPresets:
    def test_registry_covers_sizes_and_coherence_variants(self):
        names = list_presets()
        assert len(names) == 18
        for base in ("single", "two", "four", "mesh16", "mesh32", "mesh64"):
            assert base in names
            assert f"{base}-snoop" in names
            assert f"{base}-directory" in names

    def test_preset_core_counts(self):
        assert preset("single").n_cores == 1
        assert preset("mesh16").n_cores == 16
        assert preset("mesh64").n_cores == 64

    def test_coherence_variants(self):
        assert preset("mesh32").coherence == "snoop"
        assert preset("mesh32-snoop").coherence == "snoop"
        assert preset("mesh32-directory").coherence == "directory"

    def test_unknown_preset_raises(self):
        with pytest.raises(KeyError):
            preset("mesh128")


class TestResolveMachine:
    def test_int_builds_a_mesh(self):
        assert resolve_machine(16) == mesh(16)

    def test_string_uses_the_registry(self):
        assert resolve_machine("mesh16-directory") == preset("mesh16-directory")

    def test_config_passes_through(self):
        config = four_core()
        assert resolve_machine(config) is config

    def test_bool_is_not_a_core_count(self):
        with pytest.raises(TypeError):
            resolve_machine(True)

    def test_unknown_name_raises_value_error(self):
        with pytest.raises(ValueError):
            resolve_machine("mesh128")

    def test_other_types_raise(self):
        with pytest.raises(TypeError):
            resolve_machine(4.0)


class TestMachineOverrides:
    def test_default_mesh_has_no_overrides(self):
        assert machine_overrides(mesh(16)) == {}

    def test_directory_variant_diffs_coherence_only(self):
        assert machine_overrides(preset("mesh16-directory")) == {
            "coherence": "directory"
        }

    def test_round_trips_through_apply_overrides(self):
        config = preset("mesh32-directory")
        rebuilt = apply_overrides(mesh(32), machine_overrides(config))
        assert rebuilt == config

    def test_include_shape_false_drops_mesh_shape(self):
        import dataclasses

        odd = dataclasses.replace(mesh(16), mesh_shape=(2, 8))
        assert "mesh_shape" in machine_overrides(odd)
        assert "mesh_shape" not in machine_overrides(odd, include_shape=False)


class TestConfigValidation:
    def test_rejects_unknown_coherence(self):
        with pytest.raises(ValueError):
            MachineConfig(n_cores=4, coherence="mesi")

    def test_rejects_unknown_queue_policy(self):
        with pytest.raises(ValueError):
            NetworkConfig(queue_policy="token-ring")

    def test_rejects_non_positive_queue_depth(self):
        with pytest.raises(ValueError):
            NetworkConfig(queue_depth=0)

    def test_rejects_negative_latencies(self):
        with pytest.raises(ValueError):
            MachineConfig(n_cores=4, directory_latency=-1)
        with pytest.raises(ValueError):
            MachineConfig(n_cores=4, cluster_stall_latency=-1)
