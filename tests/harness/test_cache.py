"""Tests for the on-disk result cache layer.

The cache's contract has three legs: keys are *content* hashes stable
across processes (so parallel workers and later invocations share one
cache), hit/miss tallies reflect actual disk traffic (so the reporting
line is trustworthy), and ``--no-cache`` really bypasses the whole layer.
"""

from __future__ import annotations

import io
import json
import subprocess
import sys
from pathlib import Path

from repro.arch import mesh, single_core
from repro.harness import (
    ExperimentRunner,
    ResultCache,
    cache_key,
    program_fingerprint,
    reference_key,
)
from repro.harness.cli import main as cli_main
from repro.harness.reporting import render_cache_line
from repro.workloads.suite import build

#: Smallest benchmark cell in the suite -- the golden tests pin it too.
BENCH = "rawcaudio"

SRC_DIR = Path(__file__).resolve().parents[2] / "src"


class TestResultCache:
    def test_miss_then_hit_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.load("deadbeef") is None
        assert (cache.hits, cache.misses) == (0, 1)
        cache.store("deadbeef", {"cycles": 42})
        assert cache.load("deadbeef") == {"cycles": 42}
        assert (cache.hits, cache.misses) == (1, 1)

    def test_store_publishes_atomically(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("aa", {"x": 1})
        cache.store("bb", {"x": 2})
        # No temp droppings: only the two published entries exist.
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "aa.json",
            "bb.json",
        ]

    def test_corrupt_entry_counts_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        (tmp_path / "bad.json").write_text("{not json")
        assert cache.load("bad") is None
        assert cache.misses == 1


class TestKeys:
    def test_key_depends_on_cell_coordinates(self):
        program = build(BENCH).program
        base = cache_key(program, mesh(2), 1, "ilp", 1000)
        assert cache_key(program, mesh(2), 1, "ilp", 1000) == base
        assert cache_key(program, mesh(4), 1, "ilp", 1000) != base
        assert cache_key(program, mesh(2), 2, "ilp", 1000) != base
        assert cache_key(program, mesh(2), 1, "tlp", 1000) != base
        assert cache_key(program, mesh(2), 1, "ilp", 2000) != base

    def test_key_depends_on_program_content(self):
        a = build(BENCH, seed=1).program
        b = build(BENCH, seed=2).program
        config = single_core()
        if program_fingerprint(a) == program_fingerprint(b):
            # Seed-insensitive generator: same content must mean same key.
            assert cache_key(a, config, 1, "baseline", 1000) == cache_key(
                b, config, 1, "baseline", 1000
            )
        else:
            assert cache_key(a, config, 1, "baseline", 1000) != cache_key(
                b, config, 1, "baseline", 1000
            )

    def test_reference_key_ignores_machine(self):
        program = build(BENCH).program
        # One reference entry serves every (cores, strategy) cell.
        assert reference_key(program) == reference_key(program)
        assert reference_key(program) not in {
            cache_key(program, mesh(2), 1, "ilp", 1000),
            cache_key(program, single_core(), 1, "baseline", 1000),
        }

    def test_keys_stable_across_processes(self):
        """The whole point of sha256 over content: a worker process (or a
        tomorrow's invocation) must derive the very same keys, unlike
        Python's per-process randomized ``hash()``."""
        program = build(BENCH).program
        local = {
            "cache": cache_key(program, mesh(2), 1, "ilp", 1000),
            "reference": reference_key(program),
        }
        script = (
            "import json\n"
            "from repro.arch import mesh\n"
            "from repro.harness import cache_key, reference_key\n"
            "from repro.workloads.suite import build\n"
            f"program = build({BENCH!r}).program\n"
            "print(json.dumps({\n"
            "    'cache': cache_key(program, mesh(2), 1, 'ilp', 1000),\n"
            "    'reference': reference_key(program),\n"
            "}))\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(SRC_DIR), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr
        assert json.loads(proc.stdout) == local


class TestRunnerCaching:
    def test_second_runner_hits_instead_of_simulating(self, tmp_path):
        first = ExperimentRunner(benchmarks=[BENCH], cache_dir=tmp_path)
        result = first.run(BENCH, 1, "baseline")
        # Cold cache: the cell and the reference entry both missed.
        assert first.cache.hits == 0
        assert first.cache.misses >= 1

        second = ExperimentRunner(benchmarks=[BENCH], cache_dir=tmp_path)
        again = second.run(BENCH, 1, "baseline")
        assert second.cache.hits == 1
        assert second.cache.misses == 0
        assert again.cycles == result.cycles
        assert again.stats.to_dict() == result.stats.to_dict()

    def test_prefetch_resolves_hits_in_process(self, tmp_path):
        cells = [(BENCH, 1, "baseline"), (BENCH, 2, "ilp")]
        warm = ExperimentRunner(benchmarks=[BENCH], cache_dir=tmp_path)
        warm.prefetch(cells)
        assert warm.cache.hits == 0

        reader = ExperimentRunner(benchmarks=[BENCH], cache_dir=tmp_path)
        reader.prefetch(cells)
        assert reader.cache.hits == len(cells)
        assert reader.cache.misses == 0
        for cell in cells:
            assert cell in reader._runs

    def test_in_memory_memo_avoids_recounting(self, tmp_path):
        runner = ExperimentRunner(benchmarks=[BENCH], cache_dir=tmp_path)
        runner.run(BENCH, 1, "baseline")
        traffic = (runner.cache.hits, runner.cache.misses)
        runner.run(BENCH, 1, "baseline")  # memoized, no disk probe
        assert (runner.cache.hits, runner.cache.misses) == traffic

    def test_no_cache_dir_disables_layer(self):
        runner = ExperimentRunner(benchmarks=[BENCH], cache_dir=None)
        assert runner.cache is None
        assert render_cache_line(runner) == "cache     : disabled"

    def test_cache_line_reports_traffic(self, tmp_path):
        runner = ExperimentRunner(benchmarks=[BENCH], cache_dir=tmp_path)
        runner.run(BENCH, 1, "baseline")
        line = render_cache_line(runner)
        assert "miss(es)" in line and str(tmp_path) in line


class TestCliCacheFlags:
    def _run_cli(self, argv):
        out = io.StringIO()
        assert cli_main(argv, out=out) == 0
        return out.getvalue()

    def test_no_cache_flag_bypasses_cache(self, tmp_path):
        output = self._run_cli(
            ["run", "--benchmark", BENCH, "--cores", "1", "--no-cache",
             "--cache-dir", str(tmp_path / "never")]
        )
        assert "cache     : disabled" in output
        assert not (tmp_path / "never").exists()

    def test_cache_dir_flag_populates_and_reuses(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cold = self._run_cli(
            ["run", "--benchmark", BENCH, "--cores", "1",
             "--cache-dir", str(cache_dir)]
        )
        assert "0 hit(s)" in cold
        assert cache_dir.is_dir() and any(cache_dir.iterdir())
        warm = self._run_cli(
            ["run", "--benchmark", BENCH, "--cores", "1",
             "--cache-dir", str(cache_dir)]
        )
        assert "0 miss(es)" in warm
