"""The design-space sweep driver: spec, dominance, frontier, end-to-end.

Dominance is checked with hand-built points (no simulator), the
end-to-end sweep with tiny workloads on the real runner -- including the
contract that a second identical sweep against the same cache directory
simulates nothing.
"""

import json

import pytest

from repro.harness.sweep import (
    AXIS_KINDS,
    SweepPoint,
    SweepSpec,
    dominates,
    pareto_frontier,
    render_frontiers,
    run_sweep,
    write_sweep,
)
from repro.workloads.generator import GenKnobs, make_handle

TINY = GenKnobs(regions=(1, 2), trips=(8, 16))


def _point(speedup, strategy="hybrid", **machine):
    defaults = {
        "cores": 4,
        "coherence": "snoop",
        "queue_policy": "pair",
        "queue_depth": 16,
        "queue_cycles_per_hop": 1,
        "memory_latency": 100,
        "tm_commit_latency": 4,
    }
    defaults.update(machine)
    return SweepPoint(
        machine=defaults, strategy=strategy, geomean_speedup=speedup
    )


class TestSpec:
    def test_rejects_empty_workloads(self):
        with pytest.raises(ValueError, match="workload"):
            SweepSpec(workloads=())

    def test_rejects_empty_axis(self):
        with pytest.raises(ValueError, match="cores"):
            SweepSpec(workloads=("rawcaudio",), cores=())

    def test_machine_points_cross_product(self):
        spec = SweepSpec(
            workloads=("rawcaudio",),
            cores=(2, 4),
            queue_depths=(4, 16),
            memory_latencies=(50, 100, 200),
        )
        points = spec.machine_points()
        assert len(points) == 2 * 2 * 3
        assert spec.varied_axes() == [
            "cores",
            "queue_depth",
            "memory_latency",
        ]
        assert {
            "cores",
            "coherence",
            "queue_policy",
            "queue_depth",
            "queue_cycles_per_hop",
            "memory_latency",
            "tm_commit_latency",
        } == set(points[0])


class TestDominance:
    def test_faster_on_identical_hardware_dominates(self):
        assert dominates(_point(2.0), _point(1.5))
        assert not dominates(_point(1.5), _point(2.0))

    def test_equal_points_do_not_dominate_each_other(self):
        assert not dominates(_point(2.0), _point(2.0))

    def test_cheaper_resource_at_same_speed_dominates(self):
        small = _point(2.0, queue_depth=4)
        big = _point(2.0, queue_depth=16)
        assert dominates(small, big)
        assert not dominates(big, small)

    def test_higher_penalty_tolerated_at_same_speed_dominates(self):
        """Matching speed while suffering *more* memory latency means
        cheaper hardware wins the comparison."""
        tolerant = _point(2.0, memory_latency=200)
        pampered = _point(2.0, memory_latency=50)
        assert dominates(tolerant, pampered)
        assert not dominates(pampered, tolerant)

    def test_tradeoffs_are_incomparable(self):
        faster_bigger = _point(2.5, queue_depth=16)
        slower_smaller = _point(2.0, queue_depth=4)
        assert not dominates(faster_bigger, slower_smaller)
        assert not dominates(slower_smaller, faster_bigger)

    def test_axis_kinds_cover_every_machine_axis(self):
        assert set(AXIS_KINDS) == set(
            SweepSpec(workloads=("x",)).axes()
        )

    def test_frontier_keeps_only_nondominated(self):
        points = [
            _point(2.0, queue_depth=4),   # frontier: cheap and fast
            _point(2.0, queue_depth=16),  # dominated by [0]
            _point(2.5, queue_depth=16),  # frontier: fastest
            _point(1.0, queue_depth=4),   # dominated by [0]
        ]
        assert pareto_frontier(points) == [0, 2]


class TestRunSweep:
    @pytest.fixture(scope="class")
    def workloads(self):
        return [make_handle(101, TINY), make_handle(102, TINY)]

    def test_sweep_over_three_axes(self, workloads, tmp_path):
        spec = SweepSpec(
            workloads=tuple(workloads),
            strategies=("tlp", "hybrid"),
            cores=(2, 4),
            queue_depths=(4, 16),
            memory_latencies=(50, 200),
        )
        document = run_sweep(
            spec, max_cycles=2_000_000, cache_dir=tmp_path / "cache"
        )
        assert document["schema_version"] == "1.1"
        assert document["varied_axes"] == [
            "cores",
            "queue_depth",
            "memory_latency",
        ]
        # 2 strategies x 2 cores x 2 depths x 2 latencies.
        assert len(document["points"]) == 16
        for strategy in ("tlp", "hybrid"):
            frontier = document["frontiers"][strategy]
            assert frontier, f"{strategy} frontier is empty"
            for index in frontier:
                assert document["points"][index]["strategy"] == strategy
        point = document["points"][0]
        assert set(point["speedups"]) == set(workloads)
        assert all(v > 0 for v in point["speedups"].values())
        assert point["geomean_speedup"] > 0
        assert document["cache"]["misses"] > 0

        # The machine axes genuinely reach the simulator: a 4x deeper
        # queue or 4x slower memory must not leave every cycle count
        # identical across the whole sweep.
        by_machine = {
            (
                p["machine"]["queue_depth"],
                p["machine"]["memory_latency"],
            ): tuple(sorted(p["cycles"].items()))
            for p in document["points"]
            if p["strategy"] == "hybrid" and p["machine"]["cores"] == 4
        }
        assert len(set(by_machine.values())) > 1

        # Re-sweep against the same cache: zero new simulations.
        again = run_sweep(
            spec, max_cycles=2_000_000, cache_dir=tmp_path / "cache"
        )
        assert again["cache"]["misses"] == 0
        assert again["cache"]["hits"] > 0
        assert again["points"] == document["points"]

    def test_write_and_render(self, workloads, tmp_path):
        spec = SweepSpec(
            workloads=(workloads[0],),
            strategies=("hybrid",),
            cores=(2,),
        )
        document = run_sweep(
            spec, max_cycles=2_000_000, cache_dir=tmp_path / "cache"
        )
        path = write_sweep(document, tmp_path / "out" / "sweep.json")
        assert path.exists()
        assert json.loads(path.read_text()) == document
        text = render_frontiers(document)
        assert "frontier [hybrid]" in text
        assert "cores=2" in text
