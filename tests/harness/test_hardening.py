"""Hardened harness behaviour: worker crashes, hung cells, flaky workers,
corrupt cache entries, and the chaos-mode knobs.

The pool entry point is injectable (``runner._worker_fn``), so the
failure modes are staged with real subprocesses -- a worker that calls
``os._exit`` genuinely breaks the pool, a sleeping worker genuinely blows
its deadline -- while the serial fallback exercises the real simulator on
the suite's smallest benchmarks.
"""

from __future__ import annotations

import io
import json
import os
import time
from pathlib import Path

import pytest

from repro.harness import (
    CACHE_VERSION,
    ExperimentRunner,
    FailureSummary,
    ResultCache,
    render_cache_line,
    render_failure_line,
    render_fault_line,
)
from repro.harness.cli import build_parser, _make_runner, main as cli_main
from repro.harness.experiments import _run_cells_worker
from repro.sim.faults import FaultConfig

BENCHES = ("rawcaudio", "gsmdecode")

#: Two benchmarks x baseline: the smallest cell list that takes the
#: parallel prefetch path (a single benchmark short-circuits to serial).
CELLS = [(name, 1, "baseline") for name in BENCHES]


def _crash_worker(spec):
    # Simulates a segfault / OOM kill: the worker process dies without
    # unwinding, which surfaces in the parent as BrokenProcessPool.
    os._exit(3)


def _hang_worker(spec):
    time.sleep(3.0)
    return _run_cells_worker(spec)


def _flaky_worker(spec):
    # First invocation per benchmark hangs past any sane deadline; every
    # later one behaves.  The marker lives in the (shared) cache dir so
    # the state survives the worker process boundary.
    marker = Path(spec[4]) / f"flaky-{spec[0]}"
    if not marker.exists():
        marker.write_text("seen")
        time.sleep(3.0)
    return _run_cells_worker(spec)


def _runner(tmp_path, **kwargs):
    kwargs.setdefault("benchmarks", list(BENCHES))
    kwargs.setdefault("cache_dir", tmp_path / "cache")
    kwargs.setdefault("jobs", 2)
    return ExperimentRunner(**kwargs)


class TestWorkerCrash:
    def test_broken_pool_degrades_to_serial(self, tmp_path):
        runner = _runner(tmp_path)
        runner._worker_fn = _crash_worker
        runner.prefetch(CELLS)
        # Every cell still produced a result, in-process.
        for cell in CELLS:
            assert cell in runner._runs
        assert runner.failures.worker_crashes >= 1
        assert len(runner.failures.degraded) == len(CELLS)
        line = render_failure_line(runner)
        assert "worker crash(es)" in line
        assert "re-run serially" in line

    def test_crash_results_still_correct(self, tmp_path):
        crashed = _runner(tmp_path / "a")
        crashed._worker_fn = _crash_worker
        crashed.prefetch(CELLS)
        clean = _runner(tmp_path / "b", jobs=1)
        clean.prefetch(CELLS)
        for cell in CELLS:
            assert (
                crashed._runs[cell].cycles == clean._runs[cell].cycles
            )


class TestCellTimeout:
    def test_hung_worker_times_out_and_falls_back(self, tmp_path):
        runner = _runner(tmp_path, cell_timeout=0.5, retries=0)
        runner._worker_fn = _hang_worker
        started = time.monotonic()
        runner.prefetch(CELLS)
        elapsed = time.monotonic() - started
        for cell in CELLS:
            assert cell in runner._runs
        assert runner.failures.timed_out  # both specs blew the deadline
        assert len(runner.failures.degraded) == len(CELLS)
        # The whole recovery (timeout + serial re-run of two tiny cells)
        # must beat the 3s the workers would have slept.
        assert elapsed < 3.0

    def test_flaky_worker_recovers_on_retry(self, tmp_path):
        # Round one hangs past the deadline; the retry behaves.  The
        # deadline leaves room for a real worker (interpreter start +
        # build + simulate), while the hang comfortably exceeds it.
        runner = _runner(
            tmp_path, cell_timeout=2.5, retries=2, retry_backoff=0.05
        )
        (tmp_path / "cache").mkdir(parents=True, exist_ok=True)
        runner._worker_fn = _flaky_worker
        runner.prefetch(CELLS)
        for cell in CELLS:
            assert cell in runner._runs
        assert runner.failures.timed_out  # round one hung
        assert runner.failures.retried  # round two was scheduled

    def test_no_timeout_configured_waits_for_slow_workers(self, tmp_path):
        runner = _runner(tmp_path, cell_timeout=None)
        runner.prefetch(CELLS)
        assert not runner.failures.any()
        assert render_failure_line(runner) == "failures  : none"


class TestCacheQuarantine:
    def test_truncated_entry_is_miss_and_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("key", {"cycles": 1})
        path = tmp_path / "key.json"
        path.write_text(path.read_text()[:10])  # torn write
        assert cache.load("key") is None
        assert cache.quarantined == 1
        assert not path.exists()
        assert (tmp_path / "key.json.corrupt").exists()
        # The slot is clean again: a re-store round-trips.
        cache.store("key", {"cycles": 2})
        assert cache.load("key") == {"cycles": 2}

    def test_wrong_version_is_miss_and_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        (tmp_path / "old.json").write_text(
            json.dumps({"cache_version": CACHE_VERSION - 1, "payload": {}})
        )
        assert cache.load("old") is None
        assert cache.quarantined == 1
        assert (tmp_path / "old.json.corrupt").exists()

    def test_pre_envelope_payload_is_miss_and_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        (tmp_path / "raw.json").write_text(json.dumps({"cycles": 42}))
        assert cache.load("raw") is None
        assert cache.quarantined == 1

    def test_plain_missing_file_is_not_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.load("absent") is None
        assert cache.quarantined == 0

    def test_runner_survives_corrupted_cell_entry(self, tmp_path):
        cache_dir = tmp_path / "cache"
        warm = ExperimentRunner(benchmarks=["rawcaudio"], cache_dir=cache_dir)
        warm.run("rawcaudio", 1, "baseline")
        for entry in cache_dir.glob("*.json"):
            entry.write_text("{definitely not json")
        runner = ExperimentRunner(
            benchmarks=["rawcaudio"], cache_dir=cache_dir
        )
        result = runner.run("rawcaudio", 1, "baseline")  # no exception
        assert result.correct
        assert runner.cache.quarantined >= 1


class TestFailureSummary:
    def test_clean_summary(self):
        summary = FailureSummary()
        assert not summary.any()

    def test_each_field_trips_any(self):
        assert FailureSummary(timed_out=["x"]).any()
        assert FailureSummary(retried=["x"]).any()
        assert FailureSummary(degraded=["x"]).any()
        assert FailureSummary(worker_crashes=1).any()
        assert FailureSummary(cache_quarantined=1).any()

    def test_quarantine_reaches_summary_and_report(self, tmp_path):
        cache_dir = tmp_path / "cache"
        warm = ExperimentRunner(benchmarks=["rawcaudio"], cache_dir=cache_dir)
        warm.run("rawcaudio", 1, "baseline")
        for entry in cache_dir.glob("*.json"):
            entry.write_text("{torn")
        runner = ExperimentRunner(benchmarks=["rawcaudio"], cache_dir=cache_dir)
        runner.run("rawcaudio", 1, "baseline")
        summary = runner.failure_summary()
        assert summary.cache_quarantined == runner.cache.quarantined >= 1
        line = render_failure_line(runner)
        assert "quarantined cache" in line
        assert f"quarantined={runner.cache.quarantined}" in render_cache_line(
            runner
        )

    def test_render_without_failures_attribute(self):
        class Legacy:
            pass

        assert render_failure_line(Legacy()) == "failures  : none"


class TestFaultKnobs:
    def _parse(self, argv):
        return build_parser().parse_args(argv)

    def test_flags_reach_the_runner(self, tmp_path):
        args = self._parse(
            ["run", "--benchmark", "rawcaudio", "--faults",
             "--fault-seed", "42", "--fault-rate", "0.25",
             "--cell-timeout", "7.5", "--cache-dir", str(tmp_path)]
        )
        runner = _make_runner(args, ["rawcaudio"])
        assert runner.fault_config == FaultConfig(seed=42, rate=0.25)
        assert runner.cell_timeout == 7.5

    def test_faults_off_by_default(self, tmp_path):
        args = self._parse(
            ["run", "--benchmark", "rawcaudio", "--cache-dir", str(tmp_path)]
        )
        runner = _make_runner(args, ["rawcaudio"])
        assert runner.fault_config is None
        assert runner.cell_timeout is None
        assert render_fault_line(runner) == ""

    def test_fault_runs_get_distinct_cache_keys(self, tmp_path):
        clean = ExperimentRunner(benchmarks=["rawcaudio"], cache_dir=tmp_path)
        chaotic = ExperimentRunner(
            benchmarks=["rawcaudio"],
            cache_dir=tmp_path,
            faults=FaultConfig(seed=1),
        )
        assert clean._cell_key("rawcaudio", 1, "baseline") != chaotic._cell_key(
            "rawcaudio", 1, "baseline"
        )

    def test_cli_chaos_run_reports_injections(self, tmp_path):
        out = io.StringIO()
        assert (
            cli_main(
                ["run", "--benchmark", "rawcaudio", "--cores", "2",
                 "--strategy", "ilp", "--faults", "--fault-seed", "5",
                 "--fault-rate", "0.05", "--cache-dir", str(tmp_path)],
                out=out,
            )
            == 0
        )
        output = out.getvalue()
        assert "faults    : profile=timing seed=5 rate=0.05" in output
        assert "injection(s)" in output
        assert "correct   : outputs match the reference interpreter" in output
        # Timing-only chaos has no recovery subsystem, hence no report.
        assert "recovery  :" not in output

    def test_cli_destructive_run_reports_recovery(self, tmp_path):
        out = io.StringIO()
        assert (
            cli_main(
                ["run", "--benchmark", "rawcaudio", "--cores", "2",
                 "--strategy", "tlp", "--faults", "--fault-seed", "5",
                 "--fault-profile", "destructive",
                 "--cache-dir", str(tmp_path)],
                out=out,
            )
            == 0
        )
        output = out.getvalue()
        assert "faults    : profile=destructive" in output
        assert "recovery  : crc_errors=" in output
        assert "watchdog=" in output and "remaps=" in output
        assert "correct   : outputs match the reference interpreter" in output

    def test_cli_scale_destructive_run_extends_the_recovery_line(
        self, tmp_path
    ):
        """A destructive run on a directory/vlink mesh reports the
        scale-out channels -- directory scrubs, vlink pool reclaims, and
        the remap-distance histogram -- appended to the recovery line
        (small snoop machines keep the exact legacy line above)."""
        out = io.StringIO()
        assert (
            cli_main(
                ["run", "--benchmark", "171.swim",
                 "--machine", "mesh16-directory", "--strategy", "llp",
                 "--queue-policy", "vlink", "--faults",
                 "--fault-seed", "42", "--fault-profile", "destructive",
                 "--cache-dir", str(tmp_path)],
                out=out,
            )
            == 0
        )
        output = out.getvalue()
        assert "directory coherence, vlink queues" in output
        assert "recovery  : crc_errors=" in output
        assert "dir_scrubs=" in output
        assert "vlink_reclaims=" in output
        assert "remap_hops=" in output
        assert "correct   : outputs match the reference interpreter" in output

    def test_fault_profile_flag_reaches_the_config(self, tmp_path):
        args = self._parse(
            ["run", "--benchmark", "rawcaudio", "--faults",
             "--fault-profile", "both", "--cache-dir", str(tmp_path)]
        )
        runner = _make_runner(args, ["rawcaudio"])
        assert runner.fault_config.profile == "both"

    def test_chaos_figure_end_to_end(self, tmp_path):
        """The full gauntlet: a parallel chaos figure run over a corrupted
        cache with a crash-free pool must finish and report cleanly."""
        runner = ExperimentRunner(
            benchmarks=list(BENCHES),
            cache_dir=tmp_path,
            jobs=2,
            cell_timeout=120,
            faults=FaultConfig(seed=3, rate=0.01),
        )
        runner.prefetch(CELLS)
        for cell in CELLS:
            assert runner._runs[cell].correct
        assert not runner.failures.any()
