"""The ``repro.api`` facade: stable signatures, result-schema
versioning, and observability integration.

These tests are the compatibility contract from the package docstring:
``cores=`` / ``faults=`` are canonical (the deprecated ``n_cores=`` /
``name=`` / ``fault_config=`` aliases shipped their warning release and
are gone -- they now fail like any unknown keyword), serialized
``RunResult`` payloads carry ``schema_version`` and readers reject
foreign majors, and a profiled run is strictly serial and uncached.
"""

from __future__ import annotations

import io
import json

import pytest

import repro
from repro import api
from repro.harness.cli import main as cli_main
from repro.harness.experiments import (
    ExperimentRunner,
    RunResult,
    SCHEMA_VERSION,
)
from repro.obs import Observability
from repro.sim.faults import FaultConfig
from repro.workloads.suite import BENCHMARKS


@pytest.fixture(scope="module")
def baseline_payload():
    result = repro.run_cell(
        "rawcaudio", 1, "baseline", max_cycles=20_000_000
    )
    return result.to_dict()


class TestFacade:
    def test_lazy_reexports(self):
        assert repro.run_cell is api.run_cell
        assert repro.session is api.session
        assert repro.FIGURES == api.FIGURES
        assert "run_figure" in dir(repro)
        with pytest.raises(AttributeError):
            repro.does_not_exist

    def test_list_benchmarks(self):
        names = repro.list_benchmarks()
        assert names == list(BENCHMARKS)
        # A fresh list every call: mutating it cannot corrupt the suite.
        names.clear()
        assert repro.list_benchmarks() == list(BENCHMARKS)

    def test_compile_benchmark(self):
        compiled = repro.compile_benchmark("rawcaudio", machine=2, strategy="ilp")
        assert compiled is not None

    def test_run_cell_round_trip(self, baseline_payload):
        assert baseline_payload["schema_version"] == SCHEMA_VERSION
        restored = RunResult.from_dict(baseline_payload)
        assert restored.correct
        assert restored.to_dict() == baseline_payload

    def test_run_cell_with_obs_attaches_metrics(self):
        obs = Observability()
        result = repro.run_cell(
            "rawcaudio", 2, "ilp", obs=obs, max_cycles=20_000_000
        )
        assert result.metrics is not None
        assert set(result.metrics) == {"series", "timeline", "truncated"}
        assert result.metrics["timeline"]["cycles"] == result.cycles
        # The metrics payload survives serialization unchanged.
        assert json.loads(json.dumps(result.to_dict()))["metrics"] == (
            result.metrics
        )

    def test_run_figure_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown figure"):
            repro.run_figure("99")

    def test_run_figure_over_empty_suite(self):
        assert repro.run_figure("13", benchmarks=[]) == {}

    def test_session_is_an_experiment_runner(self):
        runner = repro.session([], faults=FaultConfig(seed=9))
        assert isinstance(runner, ExperimentRunner)
        assert runner.fault_config == FaultConfig(seed=9)


class TestSchemaVersion:
    def test_missing_version_rejected(self, baseline_payload):
        payload = dict(baseline_payload)
        payload.pop("schema_version")
        with pytest.raises(ValueError, match="schema_version"):
            RunResult.from_dict(payload)

    def test_foreign_major_rejected(self, baseline_payload):
        payload = dict(baseline_payload, schema_version="2.0")
        with pytest.raises(ValueError, match="schema_version"):
            RunResult.from_dict(payload)

    def test_newer_minor_accepted(self, baseline_payload):
        payload = dict(baseline_payload, schema_version="3.9")
        assert RunResult.from_dict(payload).correct


class TestRemovedSpellings:
    """The deprecated kwarg aliases are gone: nothing special-cases them
    anymore, so they fail as plain unknown keywords (native TypeError)."""

    def test_unknown_kwarg_rejected(self):
        with pytest.raises(TypeError, match="bogus"):
            ExperimentRunner(benchmarks=[], bogus=1)

    def test_fault_config_alias_removed(self):
        with pytest.raises(TypeError, match="fault_config"):
            ExperimentRunner(benchmarks=[], fault_config=FaultConfig(seed=1))

    def test_run_aliases_removed(self):
        runner = ExperimentRunner(benchmarks=[])
        with pytest.raises(TypeError, match="n_cores"):
            runner.run("rawcaudio", strategy="baseline", n_cores=1)
        with pytest.raises(TypeError, match="name"):
            runner.run(name="rawcaudio", cores=1, strategy="baseline")

    def test_figure_driver_alias_removed(self):
        runner = ExperimentRunner(benchmarks=[])
        with pytest.raises(TypeError, match="n_cores"):
            runner.fig10_11_speedups(n_cores=2)
        with pytest.raises(TypeError, match="n_cores"):
            runner.fig14_mode_time(n_cores=4)

    def test_canonical_spellings_work(self):
        runner = ExperimentRunner(
            benchmarks=["rawcaudio"], max_cycles=20_000_000
        )
        result = runner.run(benchmark="rawcaudio", cores=1, strategy="baseline")
        assert result.correct
        assert runner.run("rawcaudio", 1, "baseline") is result


class TestObsConstraints:
    def test_obs_with_cache_dir_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="cache"):
            ExperimentRunner(
                benchmarks=[], cache_dir=tmp_path, obs=Observability()
            )

    def test_obs_with_jobs_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            ExperimentRunner(benchmarks=[], jobs=2, obs=Observability())

    def test_obs_is_single_use_within_a_session(self):
        runner = ExperimentRunner(
            benchmarks=["rawcaudio"],
            max_cycles=20_000_000,
            obs=Observability(),
        )
        first = runner.run("rawcaudio", 1, "baseline")
        assert first.metrics is not None
        second = runner.run("rawcaudio", 2, "ilp")
        assert second.metrics is None


class TestCliProfiling:
    def test_trace_and_metrics_out(self, tmp_path):
        out = io.StringIO()
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        assert (
            cli_main(
                [
                    "run", "--benchmark", "rawcaudio", "--cores", "2",
                    "--strategy", "ilp",
                    "--trace-out", str(trace_path),
                    "--metrics-out", str(metrics_path),
                    "--cache-dir", str(tmp_path / "cache"),
                ],
                out=out,
            )
            == 0
        )
        trace = json.loads(trace_path.read_text())
        assert trace["traceEvents"]
        assert trace["otherData"]["truncated"] is False
        metrics = json.loads(metrics_path.read_text())
        assert metrics["timeline"]["cycles"] > 0
        assert metrics["series"]["cycle"]
        output = out.getvalue()
        assert "trace     :" in output
        assert "metrics   :" in output
        # Profiling forced the run off the cache.
        assert not (tmp_path / "cache").exists()


class TestGeneratedFacade:
    def test_list_benchmarks_appends_generated_handles(self):
        from repro.workloads.generator import parse_handle

        names = api.list_benchmarks(generated=3, gen_seed=50)
        assert names[:-3] == sorted(BENCHMARKS)
        handles = names[-3:]
        assert [parse_handle(h)[0] for h in handles] == [50, 51, 52]

    def test_generate_workload_returns_runnable_handle(self):
        from repro.workloads.generator import GenKnobs

        handle = api.generate_workload(
            seed=60, knobs=GenKnobs(regions=(1, 2), trips=(8, 16))
        )
        assert handle.startswith("gen:60:")
        result = api.run_cell(handle, machine=2, strategy="tlp")
        assert result.correct
        assert result.cycles > 0

    def test_session_accepts_config_overrides(self):
        runner = api.session(
            benchmarks=["rawcaudio"],
            config_overrides={"memory_latency": 37},
        )
        assert runner.machine_config(4).memory_latency == 37

    def test_sweep_facade_writes_artifact(self, tmp_path):
        from repro.workloads.generator import GenKnobs, make_handle

        handle = make_handle(61, GenKnobs(regions=(1, 2), trips=(8, 16)))
        out_path = tmp_path / "sweep.json"
        document = repro.sweep(
            [handle],
            strategies=("hybrid",),
            machines=(2, 4),
            queue_depths=(4, 16),
            cache_dir=tmp_path / "cache",
            out=out_path,
        )
        assert len(document["points"]) == 4
        assert document["frontiers"]["hybrid"]
        assert json.loads(out_path.read_text()) == document
