"""Tests for the execution tracer."""

from repro.arch import two_core
from repro.compiler import compile_program
from repro.harness.trace import Tracer
from repro.isa import ProgramBuilder
from repro.isa.operations import Opcode
from repro.sim import VoltronMachine


def _machine():
    from repro.workloads.kernels import KernelContext, ilp_kernel

    pb = ProgramBuilder("t")
    fb = pb.function("main")
    fb.block("entry")
    ctx = KernelContext(pb=pb, fb=fb, seed=1)
    ilp_kernel(ctx, trips=16, chains=4)
    fb.halt()
    compiled = compile_program(pb.finish(), 2, "ilp")
    return VoltronMachine(compiled, two_core())


class TestTracer:
    def test_events_collected_in_cycle_order(self):
        machine = _machine()
        tracer = Tracer.attach(machine)
        machine.run()
        cycles = [event.cycle for event in tracer.events]
        assert cycles == sorted(cycles)
        assert tracer.cycles_spanned() > 0

    def test_events_cover_both_cores(self):
        machine = _machine()
        tracer = Tracer.attach(machine)
        machine.run()
        assert tracer.events_for(0)
        assert tracer.events_for(1)

    def test_histogram_counts_comm_ops(self):
        machine = _machine()
        tracer = Tracer.attach(machine)
        machine.run()
        histogram = tracer.opcode_histogram()
        assert histogram.get(Opcode.PUT, 0) > 0
        assert histogram[Opcode.HALT] == 2

    def test_limit_truncates(self):
        machine = _machine()
        tracer = Tracer.attach(machine, limit=10)
        machine.run()
        assert len(tracer.events) == 10
        assert tracer.truncated
        assert "truncated" in tracer.render()

    def test_truncation_counts_dropped_events(self):
        machine = _machine()
        full = Tracer.attach(machine)
        capped = Tracer.attach(machine, limit=10)
        machine.run()
        assert capped.dropped == len(full.events) - capped.limit
        assert f"{capped.dropped} dropped" in capped.render()

    def test_untruncated_trace_drops_nothing(self):
        machine = _machine()
        tracer = Tracer.attach(machine)
        machine.run()
        assert not tracer.truncated
        assert tracer.dropped == 0
        assert "truncated" not in tracer.render()

    def test_render_grid_shape(self):
        machine = _machine()
        tracer = Tracer.attach(machine)
        machine.run()
        first = tracer.events[0].cycle
        text = tracer.render(start=first, end=first + 40)
        lines = text.splitlines()
        assert lines[0] == f"cycles {first}..{first + 39}"
        core_rows = [l for l in lines if l.startswith("core")]
        assert len(core_rows) == 2
        # Each row: "coreN " + 2 chars per cycle.
        assert all(len(row) <= 6 + 2 * 40 for row in core_rows)
        assert "legend:" in text

    def test_render_empty_window(self):
        machine = _machine()
        tracer = Tracer.attach(machine)
        machine.run()
        text = tracer.render(start=10**9, width=10)
        assert "core0" in text  # renders blanks, no crash
