"""The machine= API redesign: deprecation shims, preset plumbing
through session/run_cell/sweep, and the CLI --machine flag."""

import io

import pytest

import repro
from repro import api
from repro.arch.config import mesh, preset
from repro.harness import cli


class TestMachineKwarg:
    def test_cores_kwarg_warns_and_still_works(self, tmp_path):
        with pytest.deprecated_call():
            result = api.run_cell(
                "rawcaudio", cores=2, strategy="ilp", cache_dir=tmp_path
            )
        assert result.correct
        assert result.n_cores == 2

    def test_both_spellings_is_a_type_error(self):
        with pytest.raises(TypeError, match="both"):
            api.run_cell("rawcaudio", machine=2, cores=2)

    def test_run_cell_requires_a_machine(self):
        with pytest.raises(TypeError, match="machine"):
            api.run_cell("rawcaudio")

    def test_machine_accepts_preset_names(self, tmp_path):
        result = api.run_cell(
            "rawcaudio", "two-directory", strategy="ilp", cache_dir=tmp_path
        )
        assert result.correct
        assert result.n_cores == 2

    def test_machine_accepts_full_configs(self, tmp_path):
        result = api.run_cell(
            "rawcaudio", preset("two"), strategy="ilp", cache_dir=tmp_path
        )
        assert result.correct

    def test_compile_benchmark_defaults_to_four_cores(self):
        compiled = api.compile_benchmark("rawcaudio", strategy="ilp")
        assert compiled is not None

    def test_verify_benchmark_accepts_machine(self):
        report = api.verify_benchmark(
            "rawcaudio", "mesh16-directory", strategy="llp"
        )
        assert report.ok

    def test_sweep_cores_kwarg_warns(self):
        with pytest.deprecated_call():
            with pytest.raises(ValueError):
                # Invalid workload aborts before any simulation; the
                # deprecation fires first.
                api.sweep([], cores=(2,))

    def test_list_presets_reexported(self):
        names = repro.list_presets()
        assert "mesh32-directory" in names
        assert names == api.list_presets()


class TestSessionMachine:
    def test_session_applies_machine_knobs_across_core_counts(self):
        runner = api.session(["rawcaudio"], machine="mesh16-directory")
        # include_shape=False: the knobs follow every core count the
        # session is asked for, not just 16.
        assert runner.machine_config(16).coherence == "directory"
        assert runner.machine_config(4).coherence == "directory"

    def test_session_default_machine_is_untouched(self):
        runner = api.session(["rawcaudio"])
        assert runner.machine_config(4) == mesh(4)


class TestSweepMachines:
    def test_machine_entries_may_only_vary_cores_and_coherence(self):
        import dataclasses

        odd = dataclasses.replace(mesh(4), memory_latency=50)
        with pytest.raises(ValueError, match="dedicated sweep axes"):
            api.sweep(["rawcaudio"], machines=[odd])

    def test_coherence_axis_derived_from_entries(self, tmp_path):
        document = api.sweep(
            ["rawcaudio"],
            machines=[2, "two-directory"],
            strategies=["ilp"],
            cache_dir=tmp_path,
        )
        assert document["axes"]["coherence"] == ["snoop", "directory"]
        assert document["axes"]["cores"] == [2]
        machines = {
            (p["machine"]["cores"], p["machine"]["coherence"])
            for p in document["points"]
        }
        assert machines == {(2, "snoop"), (2, "directory")}


class TestCliMachine:
    def test_run_accepts_preset(self, tmp_path):
        out = io.StringIO()
        code = cli.main(
            [
                "run", "--benchmark", "rawcaudio", "--machine", "two",
                "--strategy", "ilp", "--cache-dir", str(tmp_path / "c"),
            ],
            out=out,
        )
        assert code == 0
        assert "2 core(s)" in out.getvalue()

    def test_run_rejects_machine_plus_cores(self):
        out = io.StringIO()
        code = cli.main(
            [
                "run", "--benchmark", "rawcaudio", "--machine", "two",
                "--cores", "4",
            ],
            out=out,
        )
        assert code == 2
        assert "not both" in out.getvalue()

    def test_run_rejects_unknown_preset(self):
        out = io.StringIO()
        code = cli.main(
            ["run", "--benchmark", "rawcaudio", "--machine", "mesh128"],
            out=out,
        )
        assert code == 2
        assert "bad --machine" in out.getvalue()

    def test_figure_choices_include_scaling(self):
        assert "scaling" in cli.FIGURES

    def test_verify_machine_sets_grid_and_knobs(self):
        out = io.StringIO()
        code = cli.main(
            [
                "verify", "--benchmarks", "rawcaudio",
                "--machine", "mesh16-directory", "--strategies", "llp",
            ],
            out=out,
        )
        assert code == 0
        assert "1 cells" in out.getvalue()

    def test_sweep_rejects_machines_plus_cores(self):
        out = io.StringIO()
        code = cli.main(
            [
                "sweep", "--workloads", "rawcaudio",
                "--machines", "2", "--cores", "4",
            ],
            out=out,
        )
        assert code == 2
        assert "not both" in out.getvalue()
