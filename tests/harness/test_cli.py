"""Tests for the command-line interface."""

import io

import pytest

from repro.harness.cli import build_parser, main


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--benchmark", "nope"])

    def test_defaults(self):
        args = build_parser().parse_args(["run", "--benchmark", "gsmdecode"])
        assert args.cores == 4
        assert args.strategy == "hybrid"


class TestCommands:
    def test_list(self):
        code, text = run_cli(["list"])
        assert code == 0
        assert "gsmdecode" in text and "179.art" in text
        assert len(text.strip().splitlines()) == 25

    def test_run_single_benchmark(self):
        code, text = run_cli(
            ["run", "--benchmark", "rawcaudio", "--cores", "2",
             "--strategy", "ilp", "--stalls"]
        )
        assert code == 0
        assert "speedup" in text
        assert "correct" in text

    def test_run_single_core_is_baseline(self):
        code, text = run_cli(
            ["run", "--benchmark", "rawcaudio", "--cores", "1"]
        )
        assert code == 0
        assert "strategy baseline" in text
        assert "speedup 1.00x" in text

    def test_figure_10_subset(self):
        code, text = run_cli(
            ["figure", "--figure", "10", "--benchmarks", "rawcaudio",
             "gsmdecode"]
        )
        assert code == 0
        assert "Figure 10" in text
        assert "rawcaudio" in text and "gsmdecode" in text

    def test_figure_14_subset(self):
        code, text = run_cli(
            ["figure", "--figure", "14", "--benchmarks", "rawcaudio"]
        )
        assert code == 0
        assert "coupled" in text and "%" in text
