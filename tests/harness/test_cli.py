"""Tests for the command-line interface."""

import io

import pytest

from repro.harness.cli import build_parser, main


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_benchmark_rejected(self):
        # --benchmark is free-form (generated gen:<seed> handles are
        # legal), so rejection happens at command level, not argparse.
        code, text = run_cli(["run", "--benchmark", "nope"])
        assert code == 2
        assert "unknown benchmark" in text

    def test_defaults(self):
        args = build_parser().parse_args(["run", "--benchmark", "gsmdecode"])
        # Neither machine spelling is pinned at parse time; the run
        # command resolves the paper's 4-core mesh when both are unset.
        assert args.machine is None and args.cores is None
        assert args.strategy == "hybrid"


class TestCommands:
    def test_list(self):
        code, text = run_cli(["list"])
        assert code == 0
        assert "gsmdecode" in text and "179.art" in text
        assert len(text.strip().splitlines()) == 25

    def test_run_single_benchmark(self):
        code, text = run_cli(
            ["run", "--benchmark", "rawcaudio", "--cores", "2",
             "--strategy", "ilp", "--stalls"]
        )
        assert code == 0
        assert "speedup" in text
        assert "correct" in text

    def test_run_single_core_is_baseline(self):
        code, text = run_cli(
            ["run", "--benchmark", "rawcaudio", "--cores", "1"]
        )
        assert code == 0
        assert "strategy baseline" in text
        assert "speedup 1.00x" in text

    def test_figure_10_subset(self):
        code, text = run_cli(
            ["figure", "--figure", "10", "--benchmarks", "rawcaudio",
             "gsmdecode"]
        )
        assert code == 0
        assert "Figure 10" in text
        assert "rawcaudio" in text and "gsmdecode" in text

    def test_figure_14_subset(self):
        code, text = run_cli(
            ["figure", "--figure", "14", "--benchmarks", "rawcaudio"]
        )
        assert code == 0
        assert "coupled" in text and "%" in text


class TestGeneratedWorkloads:
    def test_list_with_generated_handles(self):
        code, text = run_cli(["list", "--generated", "3", "--gen-seed", "7"])
        assert code == 0
        lines = text.strip().splitlines()
        assert len(lines) == 28  # 25 named + 3 generated
        handles = [line for line in lines if line.startswith("gen:7")]
        assert len(handles) == 1
        assert any(line.startswith("gen:9") for line in lines)

    def test_run_generated_handle(self):
        from repro.workloads.generator import GenKnobs, make_handle

        handle = make_handle(11, GenKnobs(regions=(1, 2), trips=(8, 16)))
        code, text = run_cli(
            ["run", "--benchmark", handle, "--cores", "2",
             "--strategy", "tlp"]
        )
        assert code == 0
        assert "speedup" in text and "correct" in text

    def test_run_malformed_handle_is_exit_2(self):
        code, text = run_cli(["run", "--benchmark", "gen:notanumber"])
        assert code == 2
        assert "unknown benchmark" in text

    def test_run_unregistered_knobs_hash_is_exit_2(self):
        code, text = run_cli(["run", "--benchmark", "gen:1:deadbeef0000"])
        assert code == 2
        assert "unknown benchmark" in text

    def test_verify_generated_handle(self):
        from repro.workloads.generator import GenKnobs, make_handle

        handle = make_handle(12, GenKnobs(regions=(1, 1), trips=(8, 16)))
        code, text = run_cli(
            ["verify", "--benchmarks", handle, "--cores", "2",
             "--strategies", "hybrid"]
        )
        assert code == 0
        assert "0 with findings" in text


class TestSweepCommand:
    def test_sweep_generated_three_axes(self, tmp_path):
        out_path = tmp_path / "sweep.json"
        code, text = run_cli(
            ["sweep", "--generated", "2", "--gen-seed", "31",
             "--strategies", "hybrid", "--cores", "2", "4",
             "--queue-depths", "4", "16",
             "--memory-latencies", "50", "200",
             "--cache-dir", str(tmp_path / "cache"),
             "--out", str(out_path)]
        )
        assert code == 0
        assert "frontier [hybrid]" in text
        assert str(out_path) in text
        import json

        document = json.loads(out_path.read_text())
        assert document["varied_axes"] == [
            "cores", "queue_depth", "memory_latency",
        ]
        assert len(document["points"]) == 8

    def test_sweep_needs_workloads(self):
        code, text = run_cli(["sweep"])
        assert code == 2
        assert "workload" in text

    def test_sweep_rejects_faults(self):
        code, text = run_cli(
            ["sweep", "--workloads", "rawcaudio", "--faults"]
        )
        assert code == 2
        assert "does not support --faults" in text
