"""Internals of the experiment runner: region-time grouping, reference
caching, and benchmark reconstruction."""

import pytest

from repro.harness.experiments import ExperimentRunner, RunResult, _group_cycles
from repro.sim.stats import MachineStats


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(benchmarks=["rawcaudio"], max_cycles=5_000_000)


class TestCaching:
    def test_benchmark_built_once(self, runner):
        first = runner.benchmark("rawcaudio")
        assert runner.benchmark("rawcaudio") is first

    def test_compiler_shared_across_strategies(self, runner):
        first = runner.compiler("rawcaudio")
        assert runner.compiler("rawcaudio") is first

    def test_reference_outputs_cached(self, runner):
        first = runner.reference_outputs("rawcaudio")
        assert runner.reference_outputs("rawcaudio") is first
        assert set(first) == set(runner.benchmark("rawcaudio").outputs)

    def test_unknown_benchmark_raises(self, runner):
        with pytest.raises(KeyError):
            runner.benchmark("nope")


class TestGroupCycles:
    def _result(self, block_cycles, region_table):
        stats = MachineStats(n_cores=1)
        stats.block_cycles = block_cycles
        return RunResult(
            benchmark="x",
            n_cores=1,
            strategy="ilp",
            cycles=sum(block_cycles.values()),
            stats=stats,
            correct=True,
            region_table=region_table,
        )

    def test_unmapped_labels_group_by_themselves(self):
        result = self._result(
            {("main", "a"): 10, ("main", "b"): 5}, {}
        )
        groups = _group_cycles(result)
        assert groups == {"main:a": 10, "main:b": 5}

    def test_region_labels_collapse_to_origin(self):
        table = {
            ("main", "R1_enter"): {"rid": 1, "strategy": "doall",
                                   "origin": "L"},
            ("main", "L"): {"rid": 1, "strategy": "doall", "origin": "L"},
            ("main", "R1_exit"): {"rid": 1, "strategy": "doall",
                                  "origin": "L"},
        }
        result = self._result(
            {
                ("main", "R1_enter"): 2,
                ("main", "L"): 40,
                ("main", "R1_exit"): 3,
                ("main", "entry"): 1,
            },
            table,
        )
        groups = _group_cycles(result)
        assert groups == {"main:L": 45, "main:entry": 1}


class TestRunValidation:
    def test_run_result_records_strategy_and_cores(self, runner):
        result = runner.run("rawcaudio", 2, "ilp")
        assert result.n_cores == 2
        assert result.strategy == "ilp"
        assert result.correct
        assert result.cycles == result.stats.cycles

    def test_speedup_is_baseline_over_run(self, runner):
        baseline = runner.baseline("rawcaudio").cycles
        run = runner.run("rawcaudio", 2, "ilp").cycles
        assert runner.speedup("rawcaudio", 2, "ilp") == baseline / run
