"""Degraded-path coverage for the hardened runner, under journaling.

tests/harness/test_hardening.py proves the failure modes are absorbed;
this module proves the *accounting* survives them: every degradation --
broken pool, deadline-expired retries, lost heartbeats, quarantined
cache entries, abandoned cells -- must leave a balanced journal (every
planned cell terminal), honest attempt counts, and a resumable history.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

from repro.harness import ExperimentRunner, JournalReplay
from repro.harness.experiments import (
    _heartbeat_path,
    _run_cells_worker,
    _write_heartbeat,
)
from repro.harness.reporting import render_failure_line, render_journal_line

BENCHES = ("rawcaudio", "gsmdecode")
CELLS = [(name, 1, "baseline") for name in BENCHES]


def _crash_worker(spec):
    os._exit(3)  # segfault/OOM stand-in: breaks the pool, no unwinding


def _hang_worker(spec):
    time.sleep(3.0)
    return _run_cells_worker(spec)


def _beat_then_hang_worker(spec):
    # A worker that freezes mid-task: it heartbeats once (so the
    # supervisor knows it existed), then goes silent without exiting.
    heartbeat = spec[7]
    if heartbeat is not None:
        _write_heartbeat(_heartbeat_path(heartbeat[0], spec[0]))
    time.sleep(3.0)
    return _run_cells_worker(spec)


def _runner(tmp_path, **kwargs):
    kwargs.setdefault("benchmarks", list(BENCHES))
    kwargs.setdefault("cache_dir", tmp_path / "cache")
    kwargs.setdefault("jobs", 2)
    kwargs.setdefault("journal", tmp_path / "run.jnl")
    return ExperimentRunner(**kwargs)


class TestBrokenPoolJournalled:
    def test_serial_fallback_balances_the_journal(self, tmp_path):
        runner = _runner(tmp_path)
        runner._worker_fn = _crash_worker
        runner.prefetch(CELLS)
        runner.close_journal()
        for cell in CELLS:
            assert cell in runner._runs
        assert len(runner.failures.degraded) == len(CELLS)
        replay = JournalReplay.from_path(tmp_path / "run.jnl")
        assert replay.balanced()
        assert sorted(replay.completed_keys()) == sorted(replay.states)
        # Each cell burned a pool attempt then a serial one.
        assert all(count >= 2 for count in replay.attempts.values())
        assert runner.failures.max_attempts() >= 2
        line = render_failure_line(runner)
        assert "attempt(s)" in line and "worker crash(es)" in line

    def test_crash_then_resume_replays_everything(self, tmp_path):
        first = _runner(tmp_path)
        first._worker_fn = _crash_worker
        first.prefetch(CELLS)
        first.close_journal()
        resumed = _runner(tmp_path, journal=tmp_path / "run.jnl", resume=True)
        resumed.prefetch(CELLS)
        resumed.close_journal()
        assert resumed.journal_stats["replayed"] == len(CELLS)
        assert resumed.journal_stats["rerun"] == 0
        for cell in CELLS:
            assert resumed._runs[cell].cycles == first._runs[cell].cycles
        assert "2 replayed" in render_journal_line(resumed)


class TestDeadlineRetryExhaustion:
    def test_exhausted_retries_degrade_with_full_history(self, tmp_path):
        runner = _runner(
            tmp_path, cell_timeout=0.4, retries=1, retry_backoff=0.05
        )
        runner._worker_fn = _hang_worker
        runner.prefetch(CELLS)
        runner.close_journal()
        for cell in CELLS:
            assert cell in runner._runs
        assert runner.failures.timed_out  # both rounds blew the deadline
        assert runner.failures.retried  # the retry round was scheduled
        assert len(runner.failures.degraded) == len(CELLS)
        replay = JournalReplay.from_path(tmp_path / "run.jnl")
        assert replay.balanced()
        # Two pool rounds + one serial run, all journaled as attempts.
        assert all(count == 3 for count in replay.attempts.values())
        assert runner.failures.max_attempts() == 3

    def test_backoff_jitter_is_seed_deterministic(self, tmp_path):
        a = ExperimentRunner(benchmarks=["rawcaudio"], backoff_seed=7)
        b = ExperimentRunner(benchmarks=["rawcaudio"], backoff_seed=7)
        c = ExperimentRunner(benchmarks=["rawcaudio"], backoff_seed=8)
        series_a = [a._backoff_delay(i) for i in (1, 2, 3)]
        series_b = [b._backoff_delay(i) for i in (1, 2, 3)]
        series_c = [c._backoff_delay(i) for i in (1, 2, 3)]
        assert series_a == series_b
        assert series_a != series_c
        # Exponential base, jitter within [1x, 2x) of it.
        for round_index, delay in zip((1, 2, 3), series_a):
            base = a.retry_backoff * 2 ** (round_index - 1)
            assert base <= delay < 2 * base

    def test_backoff_seed_defaults_to_build_seed(self):
        runner = ExperimentRunner(benchmarks=["rawcaudio"], seed=42)
        assert runner.backoff_seed == 42
        assert ExperimentRunner(
            benchmarks=["rawcaudio"], seed=42, backoff_seed=5
        ).backoff_seed == 5


class TestHeartbeatSupervision:
    def test_silent_worker_is_reaped_before_the_deadline(self, tmp_path):
        # The cell deadline is far beyond the hang; only the heartbeat
        # supervisor can explain finishing early.
        runner = _runner(
            tmp_path, cell_timeout=30.0, retries=0, heartbeat_timeout=0.3
        )
        runner._worker_fn = _beat_then_hang_worker
        started = time.monotonic()
        runner.prefetch(CELLS)
        elapsed = time.monotonic() - started
        runner.close_journal()
        assert elapsed < 3.0  # did not wait out the 3s hang or the 30s deadline
        for cell in CELLS:
            assert cell in runner._runs
        assert runner.failures.timed_out
        assert len(runner.failures.degraded) == len(CELLS)
        replay = JournalReplay.from_path(tmp_path / "run.jnl")
        assert replay.balanced()

    def test_healthy_workers_are_not_reaped(self, tmp_path):
        runner = _runner(tmp_path, heartbeat_timeout=5.0)
        runner.prefetch(CELLS)
        runner.close_journal()
        assert not runner.failures.any()
        assert JournalReplay.from_path(tmp_path / "run.jnl").balanced()


class TestAbandonedEscalation:
    def _poison(self, runner, bad_benchmark):
        original = runner._simulate

        def simulate(name, n_cores, strategy):
            if name == bad_benchmark:
                raise RuntimeError("poisoned cell")
            return original(name, n_cores, strategy)

        runner._simulate = simulate

    def test_first_abandoned_cell_raises_by_default(self, tmp_path):
        runner = _runner(tmp_path, jobs=1)
        self._poison(runner, "rawcaudio")
        with pytest.raises(RuntimeError, match="poisoned"):
            runner.prefetch(CELLS)
        runner.close_journal()
        replay = JournalReplay.from_path(tmp_path / "run.jnl")
        # Even the propagated failure was journaled first.
        assert "abandoned" in replay.states.values()
        assert runner.failures.abandoned == ["rawcaudio[1-baseline]"]

    def test_max_abandoned_lets_the_grid_finish_around_poison(self, tmp_path):
        runner = _runner(tmp_path, max_abandoned=1)
        runner._worker_fn = _crash_worker  # force the serial-fallback path
        self._poison(runner, "rawcaudio")
        runner.prefetch(CELLS)  # no exception: one abandonment absorbed
        runner.close_journal()
        assert ("gsmdecode", 1, "baseline") in runner._runs
        assert ("rawcaudio", 1, "baseline") not in runner._runs
        assert runner.journal_stats["abandoned"] == 1
        replay = JournalReplay.from_path(tmp_path / "run.jnl")
        assert replay.balanced()
        assert replay.accounting()["abandoned"] == 1
        line = render_failure_line(runner)
        assert "abandoned" in line


class TestQuarantineResumeInterplay:
    def test_corrupt_cache_on_resume_re_simulates_and_rebalances(
        self, tmp_path
    ):
        journal = tmp_path / "run.jnl"
        warm = _runner(tmp_path, jobs=1)
        warm.prefetch(CELLS)
        warm.close_journal()
        golden = {cell: warm._runs[cell].to_dict() for cell in CELLS}
        # The journal promises durable cache entries -- break that promise
        # behind its back (disk corruption), then resume.
        for entry in Path(tmp_path / "cache").glob("*.json"):
            entry.write_text("{torn mid-write")
        resumed = _runner(tmp_path, jobs=1, journal=journal, resume=True)
        resumed.prefetch(CELLS)
        resumed.close_journal()
        # The corrupt entries were quarantined, the cells re-simulated,
        # and the results still bit-identical to the golden run.
        assert resumed.cache.quarantined >= len(CELLS)
        assert resumed.journal_stats["replayed"] == 0
        assert resumed.journal_stats["rerun"] == len(CELLS)
        for cell in CELLS:
            assert resumed._runs[cell].to_dict() == golden[cell]
        replay = JournalReplay.from_path(journal)
        assert replay.balanced()

    def test_intact_cache_on_resume_is_pure_replay(self, tmp_path):
        journal = tmp_path / "run.jnl"
        warm = _runner(tmp_path, jobs=1)
        warm.prefetch(CELLS)
        warm.close_journal()
        records_before = len(
            Path(journal).read_text().strip().splitlines()
        )
        resumed = _runner(tmp_path, jobs=1, journal=journal, resume=True)
        resumed.prefetch(CELLS)
        resumed.close_journal()
        assert resumed.journal_stats["replayed"] == len(CELLS)
        records_after = len(Path(journal).read_text().strip().splitlines())
        # A pure replay appends only the resumed 'start' header: no new
        # lifecycle records, hence zero re-simulation.
        assert records_after == records_before + 1
