"""Tests for the experiment harness (on a reduced benchmark subset)."""

import pytest

from repro.harness.experiments import (
    ExperimentRunner,
    arithmean,
    geomean,
)
from repro.harness.reporting import render_bar_breakdown, render_table
from repro.sim.stats import STALL_CATEGORIES


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(
        benchmarks=["gsmdecode", "179.art", "171.swim"],
        max_cycles=5_000_000,
    )


class TestRunner:
    def test_runs_are_cached(self, runner):
        first = runner.run("gsmdecode", 2, "ilp")
        second = runner.run("gsmdecode", 2, "ilp")
        assert first is second

    def test_baseline_is_single_core(self, runner):
        result = runner.baseline("gsmdecode")
        assert result.n_cores == 1
        assert result.correct

    def test_speedup_positive(self, runner):
        assert runner.speedup("gsmdecode", 2, "hybrid") > 0.5


class TestFigures:
    def test_fig10_shape(self, runner):
        table = runner.fig10_11_speedups(2)
        assert set(table) == {"gsmdecode", "179.art", "171.swim"}
        for row in table.values():
            assert set(row) == {"ilp", "tlp", "llp"}
            assert all(v > 0 for v in row.values())

    def test_fig12_normalized_stalls(self, runner):
        table = runner.fig12_stalls()
        for row in table.values():
            assert set(row) == {"coupled", "decoupled"}
            for bars in row.values():
                assert set(bars) == set(STALL_CATEGORIES)
                assert all(v >= 0 for v in bars.values())

    def test_fig12_decoupled_overlaps_cache_stalls(self, runner):
        """The paper's headline Fig. 12 observation: decoupled execution
        spends far less time in cache-miss stalls on miss-heavy programs
        (each core stalls separately)."""
        row = runner.fig12_stalls()["179.art"]
        coupled = row["coupled"]["dstall"] + row["coupled"]["istall"]
        decoupled = row["decoupled"]["dstall"] + row["decoupled"]["istall"]
        assert decoupled < coupled

    def test_fig13_hybrid_at_least_matches_best_single(self, runner):
        hybrid = runner.fig13_hybrid()
        for name in runner.names:
            singles = runner.fig10_11_speedups(4)[name]
            assert hybrid[name][4] >= 0.9 * max(singles.values())

    def test_fig14_mode_fractions_sum_to_one(self, runner):
        table = runner.fig14_mode_time()
        for row in table.values():
            assert row["coupled"] + row["decoupled"] == pytest.approx(1.0)

    def test_fig3_fractions_sum_to_one(self, runner):
        table = runner.fig3_breakdown()
        for row in table.values():
            assert sum(row.values()) == pytest.approx(1.0)
            assert set(row) == {"ilp", "tlp", "llp", "single"}

    def test_fig3_art_prefers_fine_grain_tlp(self, runner):
        row = runner.fig3_breakdown()["179.art"]
        assert row["tlp"] == max(row.values())


class TestStatistics:
    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([]) == 0.0

    def test_arithmean(self):
        assert arithmean([1.0, 3.0]) == 2.0
        assert arithmean([]) == 0.0


class TestReporting:
    def test_render_table_contains_rows_and_average(self):
        text = render_table(
            "My table",
            {"alpha": {"x": 1.25}, "beta": {"x": 2.0}},
            columns=("x",),
        )
        assert "My table" in text
        assert "alpha" in text and "beta" in text
        assert "1.25" in text and "2.00" in text
        assert "average" in text
        assert "1.62" in text or "1.63" in text

    def test_render_bar_breakdown_scales_to_percent(self):
        text = render_bar_breakdown(
            "Modes", {"a": {"coupled": 0.25, "decoupled": 0.75}},
            columns=("coupled", "decoupled"),
        )
        assert "25.0%" in text and "75.0%" in text

    def test_missing_column_renders_nan(self):
        text = render_table("t", {"a": {}}, columns=("ghost",),
                            average_row=False)
        assert "nan" in text
