"""Unit coverage for the write-ahead run journal and its replay.

The journal is the crash-safety keystone: every other layer (runner,
sweep driver, fuzz campaign, CLI resume) trusts that (1) records hit the
disk in order, one fsync each, (2) a torn tail -- the one artifact a
SIGKILL can leave -- parses as "everything before it", and (3) replay
distills any record history into the per-cell state machine the resume
path re-dispatches from.
"""

from __future__ import annotations

import json
import os
import signal
import threading

import pytest

from repro.harness.journal import (
    JOURNAL_VERSION,
    JournalReplay,
    RunJournal,
    flush_on_signals,
    read_journal,
)

CELL = ("rawcaudio", 2, "ilp")


def _events(path):
    return [record["event"] for record in read_journal(path)]


class TestRunJournal:
    def test_start_record_and_lifecycle_roundtrip(self, tmp_path):
        path = tmp_path / "run.jnl"
        with RunJournal(path, context={"driver": "test"}) as journal:
            journal.planned(CELL, "k1")
            journal.dispatched(CELL, "k1", attempt=1, mode="pool")
            journal.completed(CELL, "k1", source="worker", attempt=1)
        records = read_journal(path)
        assert _events(path) == ["start", "planned", "dispatched", "completed"]
        start = records[0]
        assert start["journal_version"] == JOURNAL_VERSION
        assert start["resumed"] is False
        assert start["driver"] == "test"
        assert records[1]["cell"] == list(CELL)
        assert records[2]["mode"] == "pool"
        # Monotonic timestamps: strictly ordered within one process.
        stamps = [record["t"] for record in records]
        assert stamps == sorted(stamps)

    def test_fresh_open_truncates_resume_appends(self, tmp_path):
        path = tmp_path / "run.jnl"
        with RunJournal(path) as journal:
            journal.planned(CELL, "k1")
        with RunJournal(path, resume=True) as journal:
            journal.completed(CELL, "k1", source="cache")
        assert _events(path) == ["start", "planned", "start", "completed"]
        assert read_journal(path)[2]["resumed"] is True
        # Without resume the history restarts from scratch.
        with RunJournal(path):
            pass
        assert _events(path) == ["start"]

    def test_writes_after_close_are_dropped(self, tmp_path):
        path = tmp_path / "run.jnl"
        journal = RunJournal(path)
        journal.close()
        journal.planned(CELL, "k1")  # no exception, no record
        journal.close()  # idempotent
        assert _events(path) == ["start"]

    def test_records_are_one_line_each(self, tmp_path):
        path = tmp_path / "run.jnl"
        with RunJournal(path) as journal:
            journal.abandoned(CELL, "k1", reason="multi\nline\nreason")
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1])["reason"] == "multi\nline\nreason"


class TestReadJournal:
    def test_torn_final_line_is_dropped(self, tmp_path):
        path = tmp_path / "run.jnl"
        with RunJournal(path) as journal:
            journal.planned(CELL, "k1")
            journal.completed(CELL, "k1", source="serial")
        with open(path, "a") as handle:
            handle.write('{"event":"planned","cell":["gsm')  # SIGKILL here
        assert _events(path) == ["start", "planned", "completed"]

    def test_torn_middle_line_raises(self, tmp_path):
        path = tmp_path / "run.jnl"
        with RunJournal(path) as journal:
            journal.planned(CELL, "k1")
        text = path.read_text()
        lines = text.splitlines()
        lines.insert(1, '{"torn":')
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="not the final line"):
            read_journal(path)

    def test_resume_trims_torn_tail_before_appending(self, tmp_path):
        # The SIGKILL-mid-write artifact: without the trim, the resumed
        # records would land *after* the torn line and read_journal
        # would reject the whole file as unreplayable.
        path = tmp_path / "run.jnl"
        with RunJournal(path) as journal:
            journal.planned(CELL, "k1")
        with open(path, "a") as handle:
            handle.write('{"event":"completed","cell":["gsm')
        with RunJournal(path, resume=True) as journal:
            journal.completed(CELL, "k1", source="serial")
        assert _events(path) == ["start", "planned", "start", "completed"]

    def test_resume_repairs_missing_final_newline(self, tmp_path):
        path = tmp_path / "run.jnl"
        with RunJournal(path) as journal:
            journal.planned(CELL, "k1")
        with open(path, "rb+") as handle:
            handle.seek(-1, os.SEEK_END)
            handle.truncate()  # complete record, torn newline
        with RunJournal(path, resume=True) as journal:
            journal.completed(CELL, "k1", source="serial")
        assert _events(path) == ["start", "planned", "start", "completed"]

    def test_resume_leaves_mid_file_tears_alone(self, tmp_path):
        path = tmp_path / "run.jnl"
        with RunJournal(path) as journal:
            journal.planned(CELL, "k1")
        lines = path.read_text().splitlines()
        lines.insert(1, '{"torn":')
        path.write_text("\n".join(lines) + "\n")
        before = path.read_text()
        with RunJournal(path, resume=True) as journal:
            pass
        # Not repaired (out-of-order durability is not ours to hide):
        # the original lines survive and read_journal still rejects it.
        assert path.read_text().startswith(before)
        with pytest.raises(ValueError, match="not the final line"):
            read_journal(path)

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "run.jnl"
        with RunJournal(path) as journal:
            journal.planned(CELL, "k1")
        with open(path, "a") as handle:
            handle.write("\n\n")
        assert _events(path) == ["start", "planned"]


class TestJournalReplay:
    def _replay(self, *records):
        return JournalReplay(list(records))

    def test_state_machine_and_terminal_queries(self):
        replay = self._replay(
            {"event": "planned", "cell": list(CELL), "key": "a"},
            {"event": "dispatched", "cell": list(CELL), "key": "a",
             "attempt": 1},
            {"event": "completed", "cell": list(CELL), "key": "a"},
            {"event": "planned", "cell": ["x", 1, "baseline"], "key": "b"},
            {"event": "dispatched", "cell": ["x", 1, "baseline"], "key": "b",
             "attempt": 1},
        )
        assert replay.is_completed("a")
        assert replay.state("b") == "dispatched"
        assert replay.completed_keys() == ["a"]
        assert replay.incomplete_keys() == ["b"]
        assert not replay.balanced()
        assert replay.accounting() == {
            "planned": 2, "completed": 1, "abandoned": 0, "incomplete": 1,
        }

    def test_completed_is_sticky(self):
        replay = self._replay(
            {"event": "completed", "key": "a", "cell": list(CELL)},
            {"event": "planned", "key": "a", "cell": list(CELL)},
            {"event": "failed", "key": "a", "cell": list(CELL)},
        )
        assert replay.is_completed("a")

    def test_abandoned_is_terminal_and_balanced(self):
        replay = self._replay(
            {"event": "planned", "key": "a", "cell": list(CELL)},
            {"event": "abandoned", "key": "a", "cell": list(CELL)},
            {"event": "planned", "key": "b", "cell": list(CELL)},
            {"event": "completed", "key": "b", "cell": list(CELL)},
        )
        assert replay.balanced()
        assert replay.accounting()["abandoned"] == 1

    def test_attempts_accumulate_across_history(self):
        replay = self._replay(
            *({"event": "dispatched", "key": "a", "cell": list(CELL)},) * 3
        )
        assert replay.attempts["a"] == 3

    def test_meta_events_are_ignored_interrupted_is_flagged(self):
        replay = self._replay(
            {"event": "note", "key": "a", "cell": list(CELL)},
            {"event": "interrupted", "signum": 15},
            {"event": "heartbeat"},
        )
        assert replay.states == {}
        assert replay.interrupted

    def test_keyless_records_fall_back_to_cell(self):
        replay = self._replay(
            {"event": "planned", "cell": list(CELL), "key": None},
            {"event": "completed", "cell": list(CELL), "key": None},
        )
        assert replay.is_completed(f"cell:{list(CELL)!r}")

    def test_foreign_journal_version_is_rejected(self):
        with pytest.raises(ValueError, match="journal_version"):
            self._replay(
                {"event": "start", "journal_version": JOURNAL_VERSION + 1}
            )

    def test_from_path_matches_live_journal(self, tmp_path):
        path = tmp_path / "run.jnl"
        with RunJournal(path) as journal:
            journal.planned(CELL, "k1")
            journal.dispatched(CELL, "k1", attempt=1, mode="serial")
            journal.completed(CELL, "k1", source="serial", attempt=1)
        replay = JournalReplay.from_path(path)
        assert replay.is_completed("k1")
        assert replay.balanced()


class TestFlushOnSignals:
    def test_sigterm_flushes_and_unwinds(self, tmp_path):
        path = tmp_path / "run.jnl"
        journal = RunJournal(path)
        with pytest.raises(KeyboardInterrupt, match="journal flushed"):
            with flush_on_signals(journal):
                journal.planned(CELL, "k1")
                os.kill(os.getpid(), signal.SIGTERM)
        assert _events(path) == ["start", "planned", "interrupted"]
        assert JournalReplay.from_path(path).interrupted
        # The journal is closed; late writes are dropped, not errors.
        journal.planned(CELL, "k2")
        assert _events(path) == ["start", "planned", "interrupted"]

    def test_previous_handlers_are_restored(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jnl")
        before = signal.getsignal(signal.SIGTERM)
        with flush_on_signals(journal):
            assert signal.getsignal(signal.SIGTERM) is not before
        assert signal.getsignal(signal.SIGTERM) is before
        journal.close()

    def test_no_journal_is_a_noop(self):
        before = signal.getsignal(signal.SIGTERM)
        with flush_on_signals(None):
            assert signal.getsignal(signal.SIGTERM) is before

    def test_off_main_thread_degrades_gracefully(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jnl")
        outcome = {}

        def body():
            try:
                with flush_on_signals(journal):
                    outcome["entered"] = True
            except Exception as error:  # pragma: no cover - the failure
                outcome["error"] = error

        thread = threading.Thread(target=body)
        thread.start()
        thread.join()
        assert outcome.get("entered") is True
        assert "error" not in outcome
        journal.close()
