"""Virtual-Link operand queues and clustered coupled mode.

The vlink policy trades the paper's per-pair receive FIFOs (storage
quadratic in the core count) for one shared pool per receiver plus a
reserved slot per producer -- the reservation is the deadlock-freedom
argument the unit tests below pin down.  Clustered coupled mode lets
meshes beyond the 4-core stall-bus reach run DVLIW schedules as one
lockstep ensemble with a cluster-network stall penalty.
"""

import dataclasses

from repro.arch.config import NetworkConfig, four_core, mesh
from repro.arch.mesh import Mesh
from repro.compiler.driver import VoltronCompiler
from repro.sim.machine import VoltronMachine
from repro.sim.network import OperandNetwork
from repro.workloads.suite import build


def make_net(policy, depth=2, n_cores=4):
    config = mesh(n_cores)
    net_config = dataclasses.replace(
        config.network, queue_policy=policy, queue_depth=depth
    )
    rows, cols = config.mesh_shape
    return OperandNetwork(Mesh(rows, cols, n_cores), net_config)


class TestVlinkFlowControl:
    def test_pair_policy_caps_per_pair(self):
        net = make_net("pair", depth=2)
        net.send(0, 3, 1, cycle=0)
        net.send(0, 3, 2, cycle=0)
        assert not net.can_send(0, 3)
        assert net.can_send(1, 3)  # a different pair has its own queue

    def test_vlink_shares_one_receiver_pool(self):
        net = make_net("vlink", depth=2)
        net.send(0, 3, 1, cycle=0)
        net.send(0, 3, 2, cycle=0)
        # Core 0 filled the pool; its next send must wait...
        assert not net.can_send(0, 3)
        # ...and core 1 competes for the same pool, but its reserved
        # slot admits one message even though the pool is full.
        assert net.can_send(1, 3)
        net.send(1, 3, 3, cycle=0)
        assert not net.can_send(1, 3)

    def test_reserved_slot_is_per_producer(self):
        """Every producer with nothing outstanding can send one message
        regardless of pool pressure -- a consumer draining producers in
        index order can never wedge the awaited one out."""
        net = make_net("vlink", depth=1)
        net.send(0, 3, 1, cycle=0)  # pool is now full
        for src in (1, 2):
            assert net.can_send(src, 3)
            net.send(src, 3, src, cycle=0)
            assert not net.can_send(src, 3)

    def test_receive_releases_pool_capacity(self):
        net = make_net("vlink", depth=1)
        net.send(0, 3, 7, cycle=0)
        net.send(1, 3, 8, cycle=0)  # via core 1's reserved slot
        assert not net.can_send(0, 3)
        net.deliver(20)
        message = net.try_receive(3, 0, 20)
        assert message is not None and message.value == 7
        assert net.can_send(0, 3)

    def test_out_of_order_drain_never_deadlocks(self):
        """DOALL-merge shape: every worker sends, the merge reads them
        in index order while the pool is saturated."""
        n = 9
        net = make_net("vlink", depth=2, n_cores=n)
        for src in range(1, n):
            assert net.can_send(src, 0), f"producer {src} wedged"
            net.send(src, 0, src, cycle=0)
        net.deliver(50)
        for src in range(1, n):
            message = net.try_receive(0, src, 50)
            assert message is not None and message.value == src
        assert net.credits_balanced()

    def test_reserved_slot_message_does_not_charge_the_pool(self):
        """The double-reserve audit: a message admitted through its
        producer's reserved slot must not also consume a shared-pool
        credit.  Before exact slot accounting, core 1's reserved-slot
        message below also counted against the pool, so draining core
        0's pool message left the pool looking full."""
        net = make_net("vlink", depth=1)
        net.send(0, 3, 7, cycle=0)  # takes the one pool slot
        net.send(1, 3, 8, cycle=0)  # admitted via core 1's reserved slot
        assert net._pool_load[3] == 1  # not 2: the reserved send is free
        net.deliver(20)
        message = net.try_receive(3, 0, 20)
        assert message is not None and message.value == 7
        # The pool is genuinely empty even though core 1's message is
        # still unread in its reserved slot.
        assert net._pool_load[3] == 0
        assert (1, 3) in net._reserved

    def test_release_frees_exactly_the_occupied_slot(self):
        net = make_net("vlink", depth=1)
        net.send(0, 3, 7, cycle=0)
        net.send(1, 3, 8, cycle=0)
        net.deliver(20)
        assert net.try_receive(3, 1, 20).value == 8
        assert (1, 3) not in net._reserved  # reserved slot released
        assert net._pool_load[3] == 1       # pool slot still held
        assert net.try_receive(3, 0, 20).value == 7
        assert net.credits_balanced()


class TestVlinkRetransmission:
    """The link layer's slot reclamation on retransmission
    (``OperandNetwork.requeue`` with destructive faults armed)."""

    class _RecoveryStub:
        def __init__(self):
            self.reclaims = []

        def vlink_reclaim(self, message, cycle):
            self.reclaims.append((message.seq, cycle))

        def link_accept(self, network, message, cycle):
            return True  # every delivery attempt lands intact

    def test_requeued_pool_message_moves_to_free_reserved_slot(self):
        """A retransmission whose producer's reserved slot is free moves
        into it, returning the pool credit for the whole backoff window
        instead of holding it dark."""
        net = make_net("vlink", depth=1)
        stub = self._RecoveryStub()
        net.recovery = stub
        net.send(1, 3, 9, cycle=0)          # pool slot
        assert not net.can_send(1, 3)        # outstanding, pool full
        message = net._in_flight.pop()       # the link layer's view of a
        message.ready_cycle = 40             # failed attempt, backed off
        net.requeue(message, cycle=5)
        assert message.slot == "reserved"
        assert net._pool_load[3] == 0        # pool credit returned
        assert (1, 3) in net._reserved
        assert stub.reclaims == [(message.seq, 5)]
        # The freed pool slot admits core 1's next message behind the
        # retransmission -- the re-credit is architecturally visible.
        assert net.can_send(1, 3)

    def test_requeued_reserved_message_keeps_its_slot(self):
        """A retransmission already in the reserved slot stays there:
        no pool charge, no double reservation."""
        net = make_net("vlink", depth=1)
        stub = self._RecoveryStub()
        net.recovery = stub
        net.send(0, 3, 7, cycle=0)           # pool
        net.send(1, 3, 8, cycle=0)           # reserved
        message = next(m for m in net._in_flight if m.src == 1)
        net._in_flight.remove(message)
        message.ready_cycle = 40
        net.requeue(message, cycle=5)
        assert message.slot == "reserved"
        assert net._pool_load[3] == 1
        assert stub.reclaims == []

    def test_requeue_without_free_reservation_competes_for_the_pool(self):
        """Two pool messages from one producer: the retransmitted one
        cannot move (the producer's reserved slot would only free once
        its other message drains), so it keeps its pool slot."""
        net = make_net("vlink", depth=2)
        stub = self._RecoveryStub()
        net.recovery = stub
        net.send(1, 3, 9, cycle=0)           # pool
        net.send(1, 3, 10, cycle=0)          # pool
        first = next(m for m in net._in_flight if m.value == 9)
        net._in_flight.remove(first)
        first.ready_cycle = 40
        net.requeue(first, cycle=5)
        assert first.slot == "reserved"      # slot WAS free: reclaimed
        assert net._pool_load[3] == 1
        # ...but a second failure from the same producer finds the
        # reservation occupied and must keep competing for the pool.
        second = next(m for m in net._in_flight if m.value == 10)
        net._in_flight.remove(second)
        second.ready_cycle = 50
        net.requeue(second, cycle=6)
        assert second.slot == "pool"
        assert net._pool_load[3] == 1
        assert len(stub.reclaims) == 1
        # Draining everything returns every credit.
        net.deliver(60)
        assert net.try_receive(3, 1, 60).value == 9
        assert net.try_receive(3, 1, 60).value == 10
        assert net.credits_balanced()


class TestClusteredCoupledMode:
    def test_small_machines_have_no_cluster_penalty(self):
        bench = build("rawcaudio")
        config = four_core()
        compiled = VoltronCompiler(bench.program).compile("ilp", config)
        machine = VoltronMachine(compiled, config)
        assert machine._cluster_penalty == 0
        assert machine.coupled_ensembles == machine.groups

    def test_large_machines_step_one_ensemble(self):
        bench = build("rawcaudio")
        config = mesh(16)
        compiled = VoltronCompiler(bench.program).compile("ilp", config)
        machine = VoltronMachine(compiled, config)
        assert len(machine.groups) == 4
        assert machine.coupled_ensembles == [machine.cores]
        assert machine._cluster_penalty == config.cluster_stall_latency

    def test_cluster_penalty_costs_cycles_not_correctness(self):
        bench = build("rawcaudio")
        base = mesh(16)
        free = dataclasses.replace(base, cluster_stall_latency=0)
        slow = dataclasses.replace(base, cluster_stall_latency=6)
        compiled = VoltronCompiler(bench.program).compile("ilp", base)
        results = {}
        for label, config in (("free", free), ("slow", slow)):
            machine = VoltronMachine(compiled, config)
            machine.run()
            results[label] = (machine.stats.cycles, machine.final_memory())
        assert results["slow"][0] >= results["free"][0]
        assert results["slow"][1] == results["free"][1]
