"""Virtual-Link operand queues and clustered coupled mode.

The vlink policy trades the paper's per-pair receive FIFOs (storage
quadratic in the core count) for one shared pool per receiver plus a
reserved slot per producer -- the reservation is the deadlock-freedom
argument the unit tests below pin down.  Clustered coupled mode lets
meshes beyond the 4-core stall-bus reach run DVLIW schedules as one
lockstep ensemble with a cluster-network stall penalty.
"""

import dataclasses

from repro.arch.config import NetworkConfig, four_core, mesh
from repro.arch.mesh import Mesh
from repro.compiler.driver import VoltronCompiler
from repro.sim.machine import VoltronMachine
from repro.sim.network import OperandNetwork
from repro.workloads.suite import build


def make_net(policy, depth=2, n_cores=4):
    config = mesh(n_cores)
    net_config = dataclasses.replace(
        config.network, queue_policy=policy, queue_depth=depth
    )
    rows, cols = config.mesh_shape
    return OperandNetwork(Mesh(rows, cols, n_cores), net_config)


class TestVlinkFlowControl:
    def test_pair_policy_caps_per_pair(self):
        net = make_net("pair", depth=2)
        net.send(0, 3, 1, cycle=0)
        net.send(0, 3, 2, cycle=0)
        assert not net.can_send(0, 3)
        assert net.can_send(1, 3)  # a different pair has its own queue

    def test_vlink_shares_one_receiver_pool(self):
        net = make_net("vlink", depth=2)
        net.send(0, 3, 1, cycle=0)
        net.send(0, 3, 2, cycle=0)
        # Core 0 filled the pool; its next send must wait...
        assert not net.can_send(0, 3)
        # ...and core 1 competes for the same pool, but its reserved
        # slot admits one message even though the pool is full.
        assert net.can_send(1, 3)
        net.send(1, 3, 3, cycle=0)
        assert not net.can_send(1, 3)

    def test_reserved_slot_is_per_producer(self):
        """Every producer with nothing outstanding can send one message
        regardless of pool pressure -- a consumer draining producers in
        index order can never wedge the awaited one out."""
        net = make_net("vlink", depth=1)
        net.send(0, 3, 1, cycle=0)  # pool is now full
        for src in (1, 2):
            assert net.can_send(src, 3)
            net.send(src, 3, src, cycle=0)
            assert not net.can_send(src, 3)

    def test_receive_releases_pool_capacity(self):
        net = make_net("vlink", depth=1)
        net.send(0, 3, 7, cycle=0)
        net.send(1, 3, 8, cycle=0)  # via core 1's reserved slot
        assert not net.can_send(0, 3)
        net.deliver(20)
        message = net.try_receive(3, 0, 20)
        assert message is not None and message.value == 7
        assert net.can_send(0, 3)

    def test_out_of_order_drain_never_deadlocks(self):
        """DOALL-merge shape: every worker sends, the merge reads them
        in index order while the pool is saturated."""
        n = 9
        net = make_net("vlink", depth=2, n_cores=n)
        for src in range(1, n):
            assert net.can_send(src, 0), f"producer {src} wedged"
            net.send(src, 0, src, cycle=0)
        net.deliver(50)
        for src in range(1, n):
            message = net.try_receive(0, src, 50)
            assert message is not None and message.value == src


class TestClusteredCoupledMode:
    def test_small_machines_have_no_cluster_penalty(self):
        bench = build("rawcaudio")
        config = four_core()
        compiled = VoltronCompiler(bench.program).compile("ilp", config)
        machine = VoltronMachine(compiled, config)
        assert machine._cluster_penalty == 0
        assert machine.coupled_ensembles == machine.groups

    def test_large_machines_step_one_ensemble(self):
        bench = build("rawcaudio")
        config = mesh(16)
        compiled = VoltronCompiler(bench.program).compile("ilp", config)
        machine = VoltronMachine(compiled, config)
        assert len(machine.groups) == 4
        assert machine.coupled_ensembles == [machine.cores]
        assert machine._cluster_penalty == config.cluster_stall_latency

    def test_cluster_penalty_costs_cycles_not_correctness(self):
        bench = build("rawcaudio")
        base = mesh(16)
        free = dataclasses.replace(base, cluster_stall_latency=0)
        slow = dataclasses.replace(base, cluster_stall_latency=6)
        compiled = VoltronCompiler(bench.program).compile("ilp", base)
        results = {}
        for label, config in (("free", free), ("slow", slow)):
            machine = VoltronMachine(compiled, config)
            machine.run()
            results[label] = (machine.stats.cycles, machine.final_memory())
        assert results["slow"][0] >= results["free"][0]
        assert results["slow"][1] == results["free"][1]
