"""Directory-based coherence: same MOESI protocol as the snooping bus
(states, miss pattern, final data), different cost model (directory
lookup latency, O(sharers) invalidation)."""

import random

import pytest

from repro.arch.config import MachineConfig, four_core, mesh
from repro.sim.caches import (
    EXCLUSIVE,
    INVALID,
    MODIFIED,
    OWNED,
    SHARED,
    DirectoryCoherence,
    SnoopBus,
    make_coherence,
)


def directory_config(n_cores=4):
    base = mesh(n_cores)
    import dataclasses

    return dataclasses.replace(base, coherence="directory")


class TestFactory:
    def test_snoop_config_builds_snoop_bus(self):
        bus = make_coherence(four_core())
        assert type(bus) is SnoopBus

    def test_directory_config_builds_directory(self):
        bus = make_coherence(directory_config())
        assert isinstance(bus, DirectoryCoherence)


class TestDirectoryMOESI:
    """The snooping-bus MOESI tests, replayed against the directory."""

    def setup_method(self):
        self.bus = DirectoryCoherence(directory_config())

    def test_first_load_fills_exclusive(self):
        cycles, miss = self.bus.access(0, 0, is_store=False)
        assert miss
        assert self.bus.l1ds[0].state_of(0) == EXCLUSIVE

    def test_second_load_hits_without_directory_cost(self):
        self.bus.access(0, 0, is_store=False)
        cycles, miss = self.bus.access(0, 1, is_store=False)
        assert not miss
        assert cycles == self.bus.config.l1d.hit_latency

    def test_read_of_modified_line_makes_owner(self):
        self.bus.access(0, 0, is_store=True)
        cycles, miss = self.bus.access(1, 0, is_store=False)
        assert miss
        assert self.bus.l1ds[0].state_of(0) == OWNED
        assert self.bus.l1ds[1].state_of(0) == SHARED

    def test_store_invalidates_other_copies(self):
        self.bus.access(0, 0, is_store=False)
        self.bus.access(1, 0, is_store=False)
        self.bus.access(2, 0, is_store=True)
        assert self.bus.l1ds[0].state_of(0) == INVALID
        assert self.bus.l1ds[1].state_of(0) == INVALID
        assert self.bus.l1ds[2].state_of(0) == MODIFIED

    def test_single_writer_invariant(self):
        pattern = [(0, True), (1, False), (2, True), (3, False), (1, True)]
        for core, is_store in pattern:
            self.bus.access(core, 0, is_store=is_store)
            holders = [
                self.bus.l1ds[c].state_of(0) in (MODIFIED, EXCLUSIVE)
                for c in range(4)
            ]
            assert sum(holders) <= 1

    def test_miss_pays_directory_lookup(self):
        config = self.bus.config
        snoop = SnoopBus(four_core())
        snoop_cycles, _ = snoop.access(0, 0, is_store=False)
        cycles, _ = self.bus.access(0, 0, is_store=False)
        assert cycles == snoop_cycles + config.directory_latency

    def test_shared_store_upgrade_pays_directory_lookup(self):
        self.bus.access(0, 0, is_store=False)
        self.bus.access(1, 0, is_store=False)
        cycles, miss = self.bus.access(0, 0, is_store=True)
        assert not miss
        assert cycles == (
            self.bus.config.l1d.hit_latency
            + self.bus.config.directory_latency
            + self.bus.upgrade_latency
        )

    def test_exclusive_store_promotes_silently(self):
        """M/E upgrades never consult the directory (no other sharers by
        the single-writer invariant)."""
        self.bus.access(0, 0, is_store=False)  # E
        cycles, miss = self.bus.access(0, 0, is_store=True)
        assert not miss
        assert cycles == self.bus.config.l1d.hit_latency


class TestPresenceVector:
    def setup_method(self):
        self.bus = DirectoryCoherence(directory_config())

    def test_presence_tracks_sharers(self):
        self.bus.access(0, 0, is_store=False)
        self.bus.access(1, 0, is_store=False)
        self.bus.check_directory()
        self.bus.access(2, 0, is_store=True)
        self.bus.check_directory()

    def test_eviction_clears_presence(self):
        config = self.bus.config
        lines = config.l1d.size_words // config.l1d.line_words
        # Touch enough distinct lines mapping everywhere to force
        # evictions, then check the mirror invariant still holds.
        for i in range(4 * lines):
            self.bus.access(i % 4, i * config.l1d.line_words, is_store=(i % 3 == 0))
        self.bus.check_directory()

    def test_flush_core_writes_back_and_clears(self):
        self.bus.access(0, 0, is_store=True)
        self.bus.flush_core(0)
        assert self.bus.l1ds[0].state_of(0) == INVALID
        self.bus.check_directory()


class TestSnoopDirectoryEquivalence:
    """Randomized differential: identical states and miss pattern, only
    the cycle accounting differs."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_random_traffic_matches(self, seed):
        n_cores = 8
        snoop = SnoopBus(mesh(n_cores))
        directory = DirectoryCoherence(directory_config(n_cores))
        rng = random.Random(seed)
        for _ in range(600):
            core = rng.randrange(n_cores)
            addr = rng.randrange(256)
            is_store = rng.random() < 0.4
            s_cycles, s_miss = snoop.access(core, addr, is_store=is_store)
            d_cycles, d_miss = directory.access(core, addr, is_store=is_store)
            assert s_miss == d_miss
            assert d_cycles >= s_cycles
        for c in range(n_cores):
            for addr in range(256):
                assert snoop.l1ds[c].state_of(addr) == directory.l1ds[
                    c
                ].state_of(addr)
        directory.check_directory()


class TestDirectoryFaultHooks:
    """Fault injection on the directory path: the inherited SnoopBus
    latency hooks and the directory-latency channel of its own."""

    def _plan(self, rate=1.0, **kwargs):
        from repro.sim.faults import FaultConfig, FaultPlan

        return FaultPlan(FaultConfig(seed=13, rate=rate, **kwargs))

    def test_inherited_mem_faults_fire_on_the_directory_path(self):
        clean = DirectoryCoherence(directory_config())
        faulty = DirectoryCoherence(directory_config())
        faulty.faults = self._plan()
        clean_cycles, clean_miss = clean.access(0, 0, is_store=False)
        cycles, miss = faulty.access(0, 0, is_store=False)
        assert miss == clean_miss
        assert faulty.faults.summary()["mem"] == 1
        assert cycles > clean_cycles

    def test_directory_channel_fires_on_misses_and_upgrades_only(self):
        bus = DirectoryCoherence(directory_config())
        bus.faults = self._plan()
        bus.access(0, 0, is_store=False)  # miss: directory transaction
        fires = bus.faults.summary()["directory"]
        assert fires == 1
        bus.access(0, 0, is_store=False)  # load hit: no indirection
        assert bus.faults.summary()["directory"] == fires
        bus.access(1, 0, is_store=False)  # second sharer: miss
        assert bus.faults.summary()["directory"] == fires + 1
        bus.access(0, 0, is_store=True)   # S->M upgrade: indirection
        assert bus.faults.summary()["directory"] == fires + 2

    def test_snoop_bus_never_consumes_the_directory_stream(self):
        bus = SnoopBus(mesh(4))
        bus.faults = self._plan()
        for addr in range(0, 64, 4):
            bus.access(0, addr, is_store=True)
            bus.access(1, addr, is_store=False)
        assert bus.faults.summary()["directory"] == 0
        assert bus.faults.summary()["mem"] > 0

    def test_directory_latency_faults_inflate_cycles_only(self):
        """Same traffic with and without timing faults: identical
        states, identical miss pattern, higher or equal cycles."""
        clean = DirectoryCoherence(directory_config(8))
        faulty = DirectoryCoherence(directory_config(8))
        faulty.faults = self._plan(rate=0.3)
        rng = random.Random(17)
        for _ in range(600):
            core = rng.randrange(8)
            addr = rng.randrange(256)
            is_store = rng.random() < 0.4
            c_cycles, c_miss = clean.access(core, addr, is_store=is_store)
            f_cycles, f_miss = faulty.access(core, addr, is_store=is_store)
            assert c_miss == f_miss
            assert f_cycles >= c_cycles
        for core in range(8):
            for addr in range(256):
                assert clean.l1ds[core].state_of(addr) == faulty.l1ds[
                    core
                ].state_of(addr)
        faulty.check_directory()

    def test_check_directory_holds_under_timing_faults_end_to_end(self):
        from repro.arch.config import resolve_machine
        from repro.compiler import VoltronCompiler
        from repro.sim.faults import FaultConfig, FaultPlan
        from repro.sim.machine import VoltronMachine
        from repro.workloads.suite import build

        bench = build("gsmdecode")
        config = resolve_machine("mesh16-directory")
        compiled = VoltronCompiler(bench.program).compile("hybrid", config)
        golden = VoltronMachine(compiled, config)
        golden.run()
        plan = FaultPlan(FaultConfig(seed=14, rate=0.02))
        machine = VoltronMachine(compiled, config, faults=plan)
        machine.run()
        assert plan.summary()["directory"] > 0
        machine.bus.check_directory()
        assert machine.final_memory() == golden.final_memory()


class TestScrubCore:
    """Blackout recovery's directory scrub: dead cores leave every
    sharer vector; M/O data survives via writeback."""

    def test_scrub_removes_core_from_presence(self):
        bus = DirectoryCoherence(directory_config())
        bus.access(0, 0, is_store=True)   # core 0 holds the line M
        bus.access(1, 64, is_store=False)
        scrubbed = bus.scrub_core(0)
        assert scrubbed == 1
        assert bus.l1ds[0].state_of(0) == INVALID
        line_addr = 0
        assert 0 not in bus._presence.get(line_addr, set())
        bus.check_directory()

    def test_scrub_writes_back_modified_lines(self):
        bus = DirectoryCoherence(directory_config())
        bus.access(0, 0, is_store=True)
        l2_before = bus.l2.array.state_of(0)
        bus.scrub_core(0)
        assert bus.l2.array.state_of(0) == MODIFIED
        # A later miss is served by the L2, never by the dead core.
        cycles, miss = bus.access(1, 0, is_store=False)
        assert miss
        bus.check_directory()

    def test_scrub_of_empty_core_is_a_no_op(self):
        bus = DirectoryCoherence(directory_config())
        assert bus.scrub_core(2) == 0
        bus.check_directory()
