"""Golden machine-statistics regression tests.

Each case pins the complete ``MachineStats.to_dict()`` payload of one
small benchmark cell to a JSON file under ``tests/sim/golden/``.  Any
change to timing, stall attribution, mode residency, cache behaviour, or
network accounting shows up as a golden diff -- deliberate model changes
regenerate the files with::

    PYTHONPATH=src python -m pytest tests/sim/test_golden_stats.py --update-golden
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.arch import mesh, single_core
from repro.compiler import compile_program
from repro.sim import VoltronMachine
from repro.workloads.suite import build

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Small, fast benchmarks covering serial, coupled, and decoupled modes.
CASES = [
    ("rawcaudio", 1, "baseline"),
    ("gsmdecode", 2, "ilp"),
    ("g721decode", 4, "tlp"),
]


def _stats_payload(name: str, n_cores: int, strategy: str) -> dict:
    bench = build(name)
    config = single_core() if n_cores == 1 else mesh(n_cores)
    compiled = compile_program(bench.program, n_cores, strategy)
    return VoltronMachine(compiled, config).run().to_dict()


@pytest.mark.parametrize("name,n_cores,strategy", CASES)
def test_stats_match_golden(name, n_cores, strategy, update_golden):
    payload = _stats_payload(name, n_cores, strategy)
    path = GOLDEN_DIR / f"{name}_{n_cores}cores_{strategy}.json"
    if update_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return
    assert path.exists(), (
        f"missing golden file {path.name}; run pytest with --update-golden "
        "to create it"
    )
    golden = json.loads(path.read_text())
    assert payload == golden, (
        f"{name} [{n_cores}-core {strategy}] stats drifted from "
        f"{path.name}; if the model change is intentional, regenerate "
        "with --update-golden"
    )
