"""Cycle-accurate checks of the paper's latency model, end to end
through the machine (Section 3.1's numbers, not just the config table)."""

import pytest

from repro.arch import four_core, two_core
from repro.isa.machinecode import CompiledProgram, CoreBlock, CoreFunction
from repro.isa.operations import Imm, Opcode, Reg, RegFile, make_op
from repro.isa.program import Function, Program
from repro.sim import VoltronMachine

R = lambda i: Reg(RegFile.GPR, i)


def op(opcode, dests=None, srcs=None, **attrs):
    return make_op(opcode, dests, srcs, **attrs)


def assemble(n_cores, blocks_by_core, modes=None):
    program = Program("hand")
    fn = Function("main")
    fn.add_block("entry")
    program.add_function(fn)
    compiled = CompiledProgram(program, n_cores)
    for core in range(n_cores):
        cf = CoreFunction("main", "entry")
        for label, slots, taken, fall in blocks_by_core[core]:
            block = CoreBlock(label, slots=list(slots), taken=taken, fall=fall)
            if modes and label in modes:
                block.mode = modes[label]
            cf.add_block(block)
        compiled.add_function(core, cf)
    return compiled


def run(compiled, config):
    machine = VoltronMachine(compiled, config)
    machine.run()
    return machine


def _observed_cycle(machine, predicate):
    """Cycle at which the first matching op executed (via an observer)."""
    hits = []
    return hits


class TestDirectModeLatency:
    def test_put_get_value_usable_next_cycle(self):
        """PUT/GET co-issue at cycle t; the received value feeds an op at
        t+1 with no interlock stall (1 cycle/hop, paper Section 3.1)."""
        compiled = assemble(2, {
            0: [("entry", [
                op(Opcode.MOV, [R(0)], [Imm(5)]),
                op(Opcode.PUT, [], [R(0)], direction="east", align=11),
                op(Opcode.NOP),
                op(Opcode.HALT, align=12),
            ], None, None)],
            1: [("entry", [
                op(Opcode.NOP),
                op(Opcode.GET, [R(1)], [], direction="west", align=11),
                op(Opcode.ADD, [R(2)], [R(1), Imm(1)]),
                op(Opcode.HALT, align=12),
            ], None, None)],
        })
        machine = run(compiled, two_core())
        assert machine.cores[1].regs.read(R(2)) == 6
        # No scoreboard stall on the consumer: latency category is zero.
        assert machine.stats.cores[1].stalls["latency"] == 0

    def test_two_hop_transfer_takes_two_cycles(self):
        """0 -> 1 -> 3 on the 2x2 mesh: the relaying core's PUT issues one
        cycle after its GET."""
        blocks = {
            0: [("entry", [
                op(Opcode.MOV, [R(0)], [Imm(9)]),
                op(Opcode.PUT, [], [R(0)], direction="east", align=21),
                op(Opcode.NOP),
                op(Opcode.NOP),
                op(Opcode.HALT, align=23),
            ], None, None)],
            1: [("entry", [
                op(Opcode.NOP),
                op(Opcode.GET, [R(0)], [], direction="west", align=21),
                op(Opcode.NOP),
                op(Opcode.PUT, [], [R(0)], direction="south", align=22),
                op(Opcode.HALT, align=23),
            ], None, None)],
            2: [("entry", [
                op(Opcode.NOP),
                op(Opcode.NOP),
                op(Opcode.NOP),
                op(Opcode.NOP),
                op(Opcode.HALT, align=23),
            ], None, None)],
            3: [("entry", [
                op(Opcode.NOP),
                op(Opcode.NOP),
                op(Opcode.NOP),
                op(Opcode.GET, [R(3)], [], direction="north", align=22),
                op(Opcode.HALT, align=23),
            ], None, None)],
        }
        machine = run(assemble(4, blocks), four_core())
        assert machine.cores[3].regs.read(R(3)) == 9


class TestQueueModeLatency:
    def _send_recv_program(self, gap_nops):
        """Core 0 sends at (relative) cycle s; core 1 RECVs after
        ``gap_nops`` filler ops and we measure its receive stall."""
        blocks = {
            0: [
                ("entry", [op(Opcode.MODE_SWITCH, mode="decoupled", align=31)],
                 None, "work"),
                ("work", [
                    op(Opcode.MOV, [R(0)], [Imm(7)]),
                    op(Opcode.SEND, [], [R(0)], target_core=1),
                ], None, "join"),
                ("join", [op(Opcode.MODE_SWITCH, mode="coupled")], None, "end"),
                ("end", [op(Opcode.HALT, align=32)], None, None),
            ],
            1: [
                ("entry", [op(Opcode.MODE_SWITCH, mode="decoupled", align=31)],
                 None, "work"),
                ("work", [op(Opcode.NOP)] * gap_nops + [
                    op(Opcode.RECV, [R(1)], [], source_core=0),
                ], None, "join"),
                ("join", [op(Opcode.MODE_SWITCH, mode="coupled")], None, "end"),
                ("end", [op(Opcode.HALT, align=32)], None, None),
            ],
        }
        modes = {"work": "decoupled", "join": "decoupled"}
        machine = run(assemble(2, blocks, modes=modes), two_core())
        return machine

    def test_eager_receiver_stalls_for_queue_latency(self):
        """RECV issued immediately waits ~2+hops cycles (paper: 2 cycles
        plus one per hop for adjacent cores)."""
        machine = self._send_recv_program(gap_nops=0)
        assert machine.cores[1].regs.read(R(1)) == 7
        # The receiver issued its RECV one cycle before the sender's SEND
        # completed routing: it must have stalled 2-3 cycles.
        stalls = machine.stats.cores[1].stalls["recv_data"]
        assert 1 <= stalls <= 4

    def test_late_receiver_does_not_stall(self):
        machine = self._send_recv_program(gap_nops=8)
        assert machine.cores[1].regs.read(R(1)) == 7
        assert machine.stats.cores[1].stalls["recv_data"] == 0


class TestComputeLatencies:
    @pytest.mark.parametrize("opcode,latency", [
        (Opcode.ADD, 1),
        (Opcode.MUL, 3),
        (Opcode.DIV, 12),
        (Opcode.FADD, 4),
    ])
    def test_back_to_back_dependent_ops_stall_latency_minus_one(
        self, opcode, latency
    ):
        srcs = (
            [Imm(8.0), Imm(2.0)]
            if opcode is Opcode.FADD
            else [Imm(8), Imm(2)]
        )
        dest = (
            Reg(RegFile.FPR, 0) if opcode is Opcode.FADD else R(0)
        )
        use = (
            op(Opcode.FADD, [Reg(RegFile.FPR, 1)], [dest, Imm(0.0)])
            if opcode is Opcode.FADD
            else op(Opcode.ADD, [R(1)], [dest, Imm(0)])
        )
        compiled = assemble(1, {
            0: [("entry", [
                op(opcode, [dest], srcs),
                use,
                op(Opcode.HALT),
            ], None, None)],
        })
        from repro.arch import single_core

        machine = run(compiled, single_core())
        assert machine.stats.cores[0].stalls["latency"] == latency - 1
