"""Unit tests for the low-cost transactional memory."""

import pytest

from repro.sim.faults import FaultConfig, FaultPlan
from repro.sim.memory import MainMemory, WriteBuffer
from repro.sim.tm import TransactionError, TransactionalMemory


class TestWriteBuffer:
    def test_buffered_store_shadows_memory(self):
        memory = MainMemory({10: 5})
        buffer = WriteBuffer()
        assert buffer.load(10, memory) == 5
        buffer.store(10, 99)
        assert buffer.load(10, memory) == 99
        assert memory.load(10) == 5

    def test_publish(self):
        memory = MainMemory()
        buffer = WriteBuffer()
        buffer.store(1, 11)
        buffer.store(2, 22)
        buffer.publish(memory)
        assert memory.load(1) == 11
        assert memory.load(2) == 22

    def test_discard(self):
        memory = MainMemory()
        buffer = WriteBuffer()
        buffer.store(1, 11)
        buffer.load(2, memory)
        buffer.discard()
        assert not buffer.read_set and not buffer.write_set
        buffer.publish(memory)
        assert memory.load(1) == 0

    def test_conflict_detection_uses_read_set(self):
        memory = MainMemory()
        buffer = WriteBuffer()
        buffer.load(5, memory)
        assert buffer.conflicts_with([5])
        assert not buffer.conflicts_with([6])


class TestOrderedCommit:
    def setup_method(self):
        self.memory = MainMemory()
        self.tm = TransactionalMemory(self.memory)

    def test_in_order_commit_succeeds(self):
        self.tm.begin(0, region=1, order=0, n_chunks=2)
        self.tm.begin(1, region=1, order=1, n_chunks=2)
        self.tm.store(0, 100, 1)
        self.tm.store(1, 200, 2)
        assert self.tm.may_commit(0)
        assert not self.tm.may_commit(1)
        assert self.tm.try_commit(0)
        assert self.tm.may_commit(1)
        assert self.tm.try_commit(1)
        assert self.memory.load(100) == 1
        assert self.memory.load(200) == 2

    def test_out_of_order_commit_rejected(self):
        self.tm.begin(0, region=1, order=0, n_chunks=2)
        self.tm.begin(1, region=1, order=1, n_chunks=2)
        with pytest.raises(TransactionError):
            self.tm.try_commit(1)

    def test_conflict_aborts_later_chunk(self):
        self.tm.begin(0, region=1, order=0, n_chunks=2)
        self.tm.begin(1, region=1, order=1, n_chunks=2)
        # Chunk 1 reads address 7 before chunk 0's write commits.
        assert self.tm.load(1, 7) == 0
        self.tm.store(0, 7, 42)
        assert self.tm.try_commit(0)
        assert not self.tm.try_commit(1)  # read 7, chunk 0 wrote 7 -> abort
        assert self.tm.aborts == 1
        # Retry after the earlier commit: reads see the committed value.
        self.tm.begin(1, region=1, order=1, n_chunks=2)
        assert self.tm.load(1, 7) == 42
        assert self.tm.try_commit(1)

    def test_no_conflict_when_read_precedes_no_write(self):
        self.tm.begin(0, region=1, order=0, n_chunks=2)
        self.tm.begin(1, region=1, order=1, n_chunks=2)
        self.tm.load(1, 7)
        self.tm.store(0, 8, 1)  # disjoint address
        assert self.tm.try_commit(0)
        assert self.tm.try_commit(1)
        assert self.tm.aborts == 0

    def test_writes_invisible_until_commit(self):
        self.tm.begin(0, region=1, order=0, n_chunks=1)
        self.tm.store(0, 50, 9)
        assert self.memory.load(50) == 0
        self.tm.try_commit(0)
        assert self.memory.load(50) == 9

    def test_abort_discards_buffer(self):
        self.tm.begin(0, region=1, order=0, n_chunks=1)
        self.tm.store(0, 50, 9)
        self.tm.abort(0)
        assert self.memory.load(50) == 0
        assert not self.tm.in_transaction(0)

    def test_region_reentry_wraps_commit_order(self):
        """An outer loop re-executing the same DOALL region must keep
        committing (the order counter wraps modulo the chunk count)."""
        for _entry in range(3):
            self.tm.begin(0, region=4, order=0, n_chunks=2)
            self.tm.begin(1, region=4, order=1, n_chunks=2)
            assert self.tm.try_commit(0)
            assert self.tm.try_commit(1)
        assert self.tm.commits == 6

    def test_new_region_with_active_tx_rejected(self):
        self.tm.begin(0, region=1, order=0, n_chunks=2)
        with pytest.raises(TransactionError):
            self.tm.begin(1, region=2, order=0, n_chunks=2)

    def test_double_begin_rejected(self):
        self.tm.begin(0, region=1, order=0, n_chunks=1)
        with pytest.raises(TransactionError):
            self.tm.begin(0, region=1, order=0, n_chunks=1)

    def test_non_transactional_access_passthrough(self):
        self.tm.store(0, 5, 123)
        assert self.tm.load(0, 5) == 123
        assert self.memory.load(5) == 123

    def test_write_write_only_conflict_not_flagged_on_reader(self):
        # Chunk 1 writes 7 (no read): chunk 0's commit of 7 does not
        # invalidate it (lazy versioning orders the writes by commit).
        self.tm.begin(0, region=1, order=0, n_chunks=2)
        self.tm.begin(1, region=1, order=1, n_chunks=2)
        self.tm.store(0, 7, 1)
        self.tm.store(1, 7, 2)
        assert self.tm.try_commit(0)
        assert self.tm.try_commit(1)
        assert self.memory.load(7) == 2  # chunk order preserved

    def test_abort_restores_pre_chunk_memory_exactly(self):
        # The whole image, not just the touched addresses: an aborted
        # chunk's stores (including read-modify-writes of populated
        # locations) must leave no trace anywhere.
        self.memory.store(10, 111)
        self.memory.store(11, 222)
        snapshot = dict(self.memory.as_dict())
        self.tm.begin(0, region=1, order=0, n_chunks=1)
        self.tm.store(0, 10, -1)   # overwrite a populated word
        self.tm.store(0, 999, 7)   # touch a fresh word
        assert self.tm.load(0, 10) == -1  # chunk sees its own store
        self.tm.abort(0)
        assert dict(self.memory.as_dict()) == snapshot

    def test_out_of_order_commit_raises_after_wrap(self):
        # The wrap-around counter must keep rejecting out-of-order
        # commits on region re-entry, not just on the first pass.
        self.tm.begin(0, region=1, order=0, n_chunks=2)
        self.tm.begin(1, region=1, order=1, n_chunks=2)
        assert self.tm.try_commit(0)
        assert self.tm.try_commit(1)
        self.tm.begin(0, region=1, order=0, n_chunks=2)
        self.tm.begin(1, region=1, order=1, n_chunks=2)
        with pytest.raises(TransactionError):
            self.tm.try_commit(1)


class TestFaultInjection:
    def setup_method(self):
        self.memory = MainMemory()
        self.tm = TransactionalMemory(self.memory)

    def _always_conflict(self):
        return FaultPlan(FaultConfig(seed=1, rate=0.0, tm_rate=1.0))

    def test_spurious_conflict_aborts_clean_commit(self):
        self.tm.faults = self._always_conflict()
        self.tm.begin(0, region=1, order=0, n_chunks=1)
        self.tm.store(0, 5, 9)
        assert not self.tm.try_commit(0)  # validation passed, aborted anyway
        assert self.tm.spurious_aborts == 1
        assert self.tm.aborts == 1
        assert self.memory.load(5) == 0

    def test_livelock_guard_escalates_and_guarantees_progress(self):
        self.tm.faults = self._always_conflict()
        for attempt in range(self.tm.livelock_threshold):
            self.tm.begin(0, region=1, order=0, n_chunks=1)
            self.tm.store(0, 5, 9)
            assert not self.tm.try_commit(0)
        assert self.tm.livelock_escalations == 1
        # Serialized mode: injection is suppressed, the retry commits.
        self.tm.begin(0, region=1, order=0, n_chunks=1)
        self.tm.store(0, 5, 9)
        assert self.tm.try_commit(0)
        assert self.memory.load(5) == 9
        assert self.tm.commits == 1

    def test_serialized_mode_resets_once_wave_commits(self):
        self.tm.faults = self._always_conflict()
        for _ in range(self.tm.livelock_threshold):
            self.tm.begin(0, region=1, order=0, n_chunks=1)
            assert not self.tm.try_commit(0)
        self.tm.begin(0, region=1, order=0, n_chunks=1)
        assert self.tm.try_commit(0)  # serialized: suppressed injection
        # The wave committed, so injection resumes on the next chunk.
        self.tm.begin(0, region=1, order=0, n_chunks=1)
        assert not self.tm.try_commit(0)
        assert self.tm.spurious_aborts == self.tm.livelock_threshold + 1

    def test_success_resets_abort_streak(self):
        # Aborts separated by a success never reach the threshold.
        plan = FaultPlan(FaultConfig(seed=1, rate=0.0, tm_rate=0.0))
        self.tm.faults = plan
        for _ in range(self.tm.livelock_threshold * 2):
            self.tm.begin(0, region=1, order=0, n_chunks=1)
            self.tm.abort(0)
            self.tm._abort_streak[0] = 0  # simulate an interleaved success
        assert self.tm.livelock_escalations == 0

    def test_no_faults_attached_means_no_spurious_aborts(self):
        self.tm.begin(0, region=1, order=0, n_chunks=1)
        self.tm.store(0, 5, 1)
        assert self.tm.try_commit(0)
        assert self.tm.spurious_aborts == 0
