"""Unit tests for value storage (main memory)."""

from repro.sim.memory import MainMemory


class TestMainMemory:
    def test_zero_fill(self):
        memory = MainMemory()
        assert memory.load(12345) == 0

    def test_image_initialization(self):
        memory = MainMemory({3: 30, 4: 40})
        assert memory.load(3) == 30
        assert memory.load(4) == 40

    def test_store_overwrites(self):
        memory = MainMemory({1: 10})
        memory.store(1, 99)
        assert memory.load(1) == 99

    def test_as_dict_is_a_copy(self):
        memory = MainMemory({1: 10})
        snapshot = memory.as_dict()
        memory.store(1, 2)
        assert snapshot[1] == 10

    def test_len_counts_written_words(self):
        memory = MainMemory()
        memory.store(5, 1)
        memory.store(6, 2)
        assert len(memory) == 2

    def test_image_is_copied_not_aliased(self):
        image = {7: 70}
        memory = MainMemory(image)
        memory.store(7, 71)
        assert image[7] == 70
