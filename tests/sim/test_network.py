"""Unit tests for the dual-mode scalar operand network."""

import pytest

from repro.arch.config import NetworkConfig
from repro.arch.mesh import Mesh
from repro.sim.network import DirectWires, NetworkError, OperandNetwork


def make_network(rows=2, cols=2, n=4, **kwargs):
    return OperandNetwork(Mesh(rows, cols, n), NetworkConfig(**kwargs))


class TestDirectWires:
    def test_put_get_same_cycle(self):
        wires = DirectWires(Mesh(1, 2, 2))
        wires.put(0, "east", 42, cycle=5)
        assert wires.get(1, "west", cycle=5) == 42

    def test_value_is_not_latched_across_cycles(self):
        wires = DirectWires(Mesh(1, 2, 2))
        wires.put(0, "east", 42, cycle=5)
        with pytest.raises(NetworkError):
            wires.get(1, "west", cycle=6)

    def test_get_without_put_raises(self):
        wires = DirectWires(Mesh(1, 2, 2))
        with pytest.raises(NetworkError):
            wires.get(1, "west", cycle=0)

    def test_put_off_mesh_raises(self):
        wires = DirectWires(Mesh(1, 2, 2))
        with pytest.raises(ValueError):
            wires.put(0, "west", 1, cycle=0)

    def test_both_directions_simultaneously(self):
        wires = DirectWires(Mesh(1, 2, 2))
        wires.put(0, "east", 1, cycle=0)
        wires.put(1, "west", 2, cycle=0)
        assert wires.get(1, "west", 0) == 1
        assert wires.get(0, "east", 0) == 2

    def test_broadcast(self):
        wires = DirectWires(Mesh(2, 2, 4))
        wires.bcast(1, True, cycle=3)
        for core in (0, 2, 3):
            assert wires.read_bcast(core, 3, src=1) is True

    def test_two_broadcasts_same_cycle_need_source_ids(self):
        wires = DirectWires(Mesh(2, 2, 4))
        wires.bcast(0, 1, cycle=3)
        wires.bcast(1, 2, cycle=3)
        assert wires.read_bcast(2, 3, src=0) == 1
        assert wires.read_bcast(2, 3, src=1) == 2
        with pytest.raises(NetworkError):
            wires.read_bcast(2, 3)  # ambiguous without a source


class TestQueueMode:
    def test_end_to_end_latency_adjacent(self):
        """2 cycles + 1 per hop (paper Section 3.1)."""
        net = make_network()
        net.send(0, 1, 42, cycle=0)
        net.deliver(1)
        # Arrival is at entry(1) + hops(1) = cycle 2; not before.
        assert net.try_receive(1, 0, cycle=1) is None
        net.deliver(2)
        message = net.try_receive(1, 0, cycle=2)
        assert message is not None and message.value == 42

    def test_two_hop_latency(self):
        net = make_network()
        net.send(0, 3, 7, cycle=0)
        net.deliver(2)
        assert net.try_receive(3, 0, cycle=2) is None
        net.deliver(3)
        assert net.try_receive(3, 0, cycle=3).value == 7

    def test_cam_matches_sender(self):
        net = make_network()
        net.send(0, 2, "from0", cycle=0)
        net.send(1, 2, "from1", cycle=0)
        net.deliver(10)
        assert net.try_receive(2, 1, cycle=10).value == "from1"
        assert net.try_receive(2, 0, cycle=10).value == "from0"

    def test_fifo_per_sender(self):
        net = make_network()
        net.send(0, 1, "first", cycle=0)
        net.send(0, 1, "second", cycle=1)
        net.deliver(10)
        assert net.try_receive(1, 0, cycle=10).value == "first"
        assert net.try_receive(1, 0, cycle=10).value == "second"

    def test_tags_isolate_channels(self):
        net = make_network()
        net.send(0, 1, "tagged", cycle=0, tag="carried")
        net.send(0, 1, "plain", cycle=1)
        net.deliver(10)
        assert net.try_receive(1, 0, cycle=10).value == "plain"
        assert net.try_receive(1, 0, cycle=10, tag="carried").value == "tagged"

    def test_self_send_rejected(self):
        net = make_network()
        with pytest.raises(NetworkError):
            net.send(2, 2, 1, cycle=0)

    def test_spawn_and_release_are_control_messages(self):
        net = make_network()
        net.send(0, 1, "entry_label", cycle=0, kind="spawn")
        net.send(0, 1, None, cycle=1, kind="release")
        net.deliver(10)
        assert net.try_receive(1, 0, cycle=10) is None  # not data
        spawn = net.peek_control(1, cycle=10)
        assert spawn.kind == "spawn" and spawn.value == "entry_label"
        release = net.peek_control(1, cycle=10)
        assert release.kind == "release"
        assert net.peek_control(1, cycle=10) is None


class TestFlowControl:
    def test_credit_exhaustion(self):
        net = make_network(queue_depth=4)
        for k in range(4):
            assert net.can_send(0, 1)
            net.send(0, 1, k, cycle=0)
        assert not net.can_send(0, 1)
        with pytest.raises(NetworkError):
            net.send(0, 1, 99, cycle=0)

    def test_credits_are_per_destination(self):
        net = make_network(queue_depth=2)
        net.send(0, 1, 1, cycle=0)
        net.send(0, 1, 2, cycle=0)
        assert not net.can_send(0, 1)
        assert net.can_send(0, 2)

    def test_credits_are_per_sender(self):
        """A flooding sender must not block another sender's channel."""
        net = make_network(queue_depth=2)
        net.send(0, 2, 1, cycle=0)
        net.send(0, 2, 2, cycle=0)
        assert not net.can_send(0, 2)
        assert net.can_send(1, 2)
        net.send(1, 2, "urgent", cycle=0)
        net.deliver(10)
        assert net.try_receive(2, 1, cycle=10).value == "urgent"

    def test_receive_returns_credit(self):
        net = make_network(queue_depth=1)
        net.send(0, 1, 1, cycle=0)
        assert not net.can_send(0, 1)
        net.deliver(10)
        net.try_receive(1, 0, cycle=10)
        assert net.can_send(0, 1)

    def test_quiescent(self):
        net = make_network()
        assert net.quiescent()
        net.send(0, 1, 1, cycle=0)
        assert not net.quiescent()
        net.deliver(10)
        assert not net.quiescent()
        net.try_receive(1, 0, cycle=10)
        assert net.quiescent()
