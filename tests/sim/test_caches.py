"""Unit tests for the cache hierarchy and MOESI snooping protocol."""

import pytest

from repro.arch.config import CacheConfig, MachineConfig, four_core, two_core
from repro.sim.caches import (
    EXCLUSIVE,
    INVALID,
    L1ICache,
    MODIFIED,
    OWNED,
    SHARED,
    SetAssocCache,
    SharedL2,
    SnoopBus,
)


def small_cache(sets=2, ways=2, line=8):
    return SetAssocCache(
        CacheConfig(size_words=sets * ways * line, associativity=ways, line_words=line)
    )


class TestSetAssocCache:
    def test_miss_then_hit(self):
        cache = small_cache()
        assert cache.lookup(5) is None
        cache.insert(5, EXCLUSIVE)
        assert cache.lookup(5).state == EXCLUSIVE

    def test_lru_eviction(self):
        cache = small_cache(sets=1, ways=2)
        cache.insert(0, EXCLUSIVE)
        cache.insert(1, EXCLUSIVE)
        cache.lookup(0)  # make line 0 most recent
        evicted = cache.insert(2, EXCLUSIVE)
        assert evicted == (1, EXCLUSIVE)
        assert cache.lookup(0) is not None
        assert cache.lookup(1) is None

    def test_insert_existing_updates_state(self):
        cache = small_cache()
        cache.insert(3, SHARED)
        assert cache.insert(3, MODIFIED) is None
        assert cache.state_of(3) == MODIFIED

    def test_invalidate(self):
        cache = small_cache()
        cache.insert(3, MODIFIED)
        assert cache.invalidate(3) == MODIFIED
        assert cache.invalidate(3) is None
        assert cache.state_of(3) == INVALID

    def test_sets_index_by_modulo(self):
        cache = small_cache(sets=2, ways=1)
        cache.insert(0, EXCLUSIVE)
        cache.insert(1, EXCLUSIVE)  # different set: no eviction
        assert cache.lookup(0) is not None
        assert cache.lookup(1) is not None


class TestSnoopBusMOESI:
    def setup_method(self):
        self.bus = SnoopBus(four_core())

    def test_first_load_fills_exclusive(self):
        cycles, miss = self.bus.access(0, 0, is_store=False)
        assert miss
        assert self.bus.l1ds[0].state_of(0) == EXCLUSIVE

    def test_second_load_hits(self):
        self.bus.access(0, 0, is_store=False)
        cycles, miss = self.bus.access(0, 1, is_store=False)  # same line
        assert not miss
        assert cycles == self.bus.config.l1d.hit_latency

    def test_store_fills_modified(self):
        self.bus.access(0, 0, is_store=True)
        assert self.bus.l1ds[0].state_of(0) == MODIFIED

    def test_read_of_modified_line_makes_owner(self):
        self.bus.access(0, 0, is_store=True)  # core 0: M
        cycles, miss = self.bus.access(1, 0, is_store=False)
        assert miss
        assert self.bus.l1ds[0].state_of(0) == OWNED
        assert self.bus.l1ds[1].state_of(0) == SHARED
        assert self.bus.cache_to_cache == 1

    def test_read_of_exclusive_line_demotes_to_shared(self):
        self.bus.access(0, 0, is_store=False)  # core 0: E
        self.bus.access(1, 0, is_store=False)
        assert self.bus.l1ds[0].state_of(0) == SHARED
        assert self.bus.l1ds[1].state_of(0) == SHARED

    def test_store_invalidates_other_copies(self):
        self.bus.access(0, 0, is_store=False)
        self.bus.access(1, 0, is_store=False)
        self.bus.access(2, 0, is_store=True)
        assert self.bus.l1ds[0].state_of(0) == INVALID
        assert self.bus.l1ds[1].state_of(0) == INVALID
        assert self.bus.l1ds[2].state_of(0) == MODIFIED
        assert self.bus.invalidations >= 2

    def test_store_upgrade_from_shared_costs_bus_round(self):
        self.bus.access(0, 0, is_store=False)
        self.bus.access(1, 0, is_store=False)  # both S
        cycles, miss = self.bus.access(0, 0, is_store=True)
        assert not miss  # upgrade, not a refill
        assert cycles == self.bus.config.l1d.hit_latency + self.bus.upgrade_latency
        assert self.bus.l1ds[0].state_of(0) == MODIFIED
        assert self.bus.l1ds[1].state_of(0) == INVALID

    def test_store_hit_on_exclusive_promotes_silently(self):
        self.bus.access(0, 0, is_store=False)  # E
        cycles, miss = self.bus.access(0, 0, is_store=True)
        assert not miss
        assert cycles == self.bus.config.l1d.hit_latency
        assert self.bus.l1ds[0].state_of(0) == MODIFIED

    def test_single_writer_invariant(self):
        """At most one core may hold a line in M/E at any time."""
        import itertools

        pattern = [(0, True), (1, False), (2, True), (3, False), (1, True)]
        for core, is_store in pattern:
            self.bus.access(core, 0, is_store=is_store)
            holders = [
                self.bus.l1ds[c].state_of(0) in (MODIFIED, EXCLUSIVE)
                for c in range(4)
            ]
            assert sum(holders) <= 1

    def test_miss_latency_tiers(self):
        config = four_core()
        bus = SnoopBus(config)
        # Cold miss goes to memory.
        cycles, _ = bus.access(0, 0, is_store=False)
        assert cycles == config.l1d.hit_latency + config.memory_latency
        # A different core's miss is served cache-to-cache at L2-hit cost.
        cycles, _ = bus.access(1, 0, is_store=False)
        assert cycles == config.l1d.hit_latency + config.l2.hit_latency

    def test_l2_hit_after_eviction_writeback(self):
        config = two_core()
        bus = SnoopBus(config)
        bus.access(0, 0, is_store=True)
        # Fill enough lines mapping to set 0 to evict line 0 (2-way).
        n_sets = config.l1d.n_sets
        bus.access(0, n_sets * config.l1d.line_words, is_store=True)
        bus.access(0, 2 * n_sets * config.l1d.line_words, is_store=True)
        # The dirty line was written back: refetch is an L2 hit.
        cycles, miss = bus.access(0, 0, is_store=False)
        assert miss
        assert cycles == config.l1d.hit_latency + config.l2.hit_latency


class TestL1ICache:
    def test_miss_then_hit(self):
        config = four_core()
        icache = L1ICache(config.l1i)
        l2 = SharedL2(config.l2, config.l2_banks)
        first = icache.access(0, l2, config.memory_latency)
        assert first == config.memory_latency
        again = icache.access(1, l2, config.memory_latency)  # same line
        assert again == 0
        assert icache.hits == 1 and icache.misses == 1

    def test_refill_from_l2(self):
        config = four_core()
        icache_a = L1ICache(config.l1i)
        icache_b = L1ICache(config.l1i)
        l2 = SharedL2(config.l2, config.l2_banks)
        icache_a.access(0, l2, config.memory_latency)
        # Second core's miss on the same line hits the shared L2.
        assert icache_b.access(0, l2, config.memory_latency) == config.l2.hit_latency


class TestSharedL2:
    def test_bank_accounting(self):
        config = four_core()
        l2 = SharedL2(config.l2, 4)
        for line in range(8):
            l2.access(line)
        assert l2.bank_accesses == [2, 2, 2, 2]

    def test_hit_miss_counters(self):
        config = four_core()
        l2 = SharedL2(config.l2, 4)
        assert not l2.access(0)
        assert l2.access(0)
        assert l2.hits == 1 and l2.misses == 1
