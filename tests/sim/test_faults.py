"""Unit tests for the deterministic fault-injection subsystem."""

import pytest

from repro.arch import mesh, single_core
from repro.compiler import VoltronCompiler
from repro.sim import FaultConfig, FaultPlan, VoltronMachine
from repro.workloads.suite import build


class TestFaultConfig:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultConfig(rate=-0.1)
        with pytest.raises(ValueError):
            FaultConfig(rate=1.5)
        with pytest.raises(ValueError):
            FaultConfig(tm_rate=2.0)

    def test_delay_bounds_validated(self):
        with pytest.raises(ValueError):
            FaultConfig(max_mem_delay=0)
        with pytest.raises(ValueError):
            FaultConfig(max_net_delay=0)
        with pytest.raises(ValueError):
            FaultConfig(max_stall_hold=-3)

    def test_frozen(self):
        config = FaultConfig(seed=3)
        with pytest.raises(Exception):
            config.seed = 4

    def test_profile_validated(self):
        with pytest.raises(ValueError):
            FaultConfig(profile="nuclear")
        for profile in ("timing", "destructive", "both"):
            assert FaultConfig(profile=profile).profile == profile

    def test_destructive_rates_validated(self):
        with pytest.raises(ValueError):
            FaultConfig(corrupt_rate=-0.1)
        with pytest.raises(ValueError):
            FaultConfig(drop_rate=1.5)
        with pytest.raises(ValueError):
            FaultConfig(blackout_rate=2.0)
        with pytest.raises(ValueError):
            FaultConfig(max_blackout=0)
        with pytest.raises(ValueError):
            FaultConfig(retransmit_budget=0)
        with pytest.raises(ValueError):
            FaultConfig(heartbeat_misses=0)


class TestFaultPlan:
    def test_same_seed_same_schedule(self):
        a = FaultPlan(FaultConfig(seed=11, rate=0.1))
        b = FaultPlan(FaultConfig(seed=11, rate=0.1))
        draws_a = [a.mem_delay() for _ in range(5000)]
        draws_b = [b.mem_delay() for _ in range(5000)]
        assert draws_a == draws_b
        assert a.summary() == b.summary()

    def test_different_seeds_differ(self):
        a = FaultPlan(FaultConfig(seed=11, rate=0.1))
        b = FaultPlan(FaultConfig(seed=12, rate=0.1))
        assert [a.net_delay() for _ in range(5000)] != [
            b.net_delay() for _ in range(5000)
        ]

    def test_channels_are_independent_streams(self):
        # Draining one channel must not shift another channel's schedule.
        a = FaultPlan(FaultConfig(seed=5, rate=0.1))
        b = FaultPlan(FaultConfig(seed=5, rate=0.1))
        for _ in range(1000):
            a.mem_delay()
        assert [a.net_delay() for _ in range(1000)] == [
            b.net_delay() for _ in range(1000)
        ]

    def test_rate_zero_never_fires(self):
        plan = FaultPlan(FaultConfig(seed=1, rate=0.0, tm_rate=0.0))
        assert all(plan.mem_delay() == 0 for _ in range(10_000))
        assert not any(plan.spurious_conflict() for _ in range(10_000))
        assert plan.injections() == 0

    def test_rate_one_always_fires(self):
        plan = FaultPlan(FaultConfig(seed=1, rate=1.0, tm_rate=1.0))
        assert all(plan.mem_delay() >= 1 for _ in range(100))
        assert all(plan.spurious_conflict() for _ in range(100))

    def test_delays_respect_bounds(self):
        plan = FaultPlan(
            FaultConfig(seed=2, rate=1.0, max_mem_delay=3, max_net_delay=2)
        )
        assert all(1 <= plan.mem_delay() <= 3 for _ in range(500))
        assert all(1 <= plan.net_delay() <= 2 for _ in range(500))

    def test_empirical_rate_tracks_configured_rate(self):
        plan = FaultPlan(FaultConfig(seed=9, rate=0.05))
        fires = sum(1 for _ in range(20_000) if plan.mem_delay())
        assert 700 <= fires <= 1300  # 1000 expected

    def test_summary_accounting(self):
        plan = FaultPlan(FaultConfig(seed=4, rate=0.5))
        for _ in range(200):
            plan.mem_delay()
            plan.net_delay()
        summary = plan.summary()
        assert summary["mem"] > 0 and summary["net"] > 0
        assert summary["ifetch"] == summary["tm"] == summary["stall_bus"] == 0
        assert summary["injections"] == plan.injections()
        assert summary["injected_cycles"] == plan.injected_cycles()
        assert summary["injected_cycles"] >= summary["injections"]


class TestProfiles:
    def test_timing_profile_disarms_destructive_channels(self):
        plan = FaultPlan(
            FaultConfig(
                seed=1, profile="timing", corrupt_rate=1.0, drop_rate=1.0,
                blackout_rate=1.0,
            )
        )
        assert plan.timing and not plan.destructive
        assert all(plan.xmit_outcome() is None for _ in range(500))
        assert all(plan.blackout_cycles() == 0 for _ in range(500))

    def test_destructive_profile_disarms_timing_channels(self):
        plan = FaultPlan(
            FaultConfig(
                seed=1, profile="destructive", rate=1.0, tm_rate=1.0,
                corrupt_rate=1.0,
            )
        )
        assert plan.destructive and not plan.timing
        assert all(plan.mem_delay() == 0 for _ in range(500))
        assert not any(plan.spurious_conflict() for _ in range(500))
        assert plan.xmit_outcome() is not None

    def test_both_profile_arms_everything(self):
        plan = FaultPlan(
            FaultConfig(
                seed=1, profile="both", rate=1.0, corrupt_rate=1.0,
                blackout_rate=1.0,
            )
        )
        assert plan.timing and plan.destructive
        assert plan.mem_delay() >= 1
        assert plan.xmit_outcome() is not None
        assert plan.blackout_cycles() >= 1

    def test_destructive_with_zero_rates_is_not_destructive(self):
        plan = FaultPlan(
            FaultConfig(
                seed=1, profile="destructive", corrupt_rate=0.0,
                drop_rate=0.0, blackout_rate=0.0,
            )
        )
        assert not plan.destructive

    def test_drop_takes_priority_over_corrupt(self):
        # Both channels firing on the same attempt must resolve to one
        # outcome; drop is sampled first.
        plan = FaultPlan(
            FaultConfig(
                seed=1, profile="destructive", corrupt_rate=1.0,
                drop_rate=1.0,
            )
        )
        assert all(plan.xmit_outcome() == "drop" for _ in range(200))

    def test_summary_includes_destructive_channels(self):
        plan = FaultPlan(
            FaultConfig(seed=2, profile="destructive", corrupt_rate=0.5,
                        drop_rate=0.5, blackout_rate=0.5)
        )
        for _ in range(200):
            plan.xmit_outcome()
            plan.blackout_cycles()
        summary = plan.summary()
        assert summary["corrupt"] > 0 or summary["drop"] > 0
        assert summary["blackout"] > 0
        assert summary["injections"] == plan.injections()

    def test_blackout_duration_respects_bound(self):
        plan = FaultPlan(
            FaultConfig(seed=3, profile="destructive", blackout_rate=1.0,
                        max_blackout=17)
        )
        assert all(1 <= plan.blackout_cycles() <= 17 for _ in range(300))


class TestMachineIntegration:
    def _compiled(self, name, n_cores, strategy):
        bench = build(name)
        config = single_core() if n_cores == 1 else mesh(n_cores)
        return VoltronCompiler(bench.program).compile(strategy, config), config

    def test_faults_disable_fast_forward(self):
        compiled, config = self._compiled("rawcaudio", 1, "baseline")
        machine = VoltronMachine(
            compiled, config, faults=FaultPlan(FaultConfig(seed=1))
        )
        assert machine.fast_forward is False

    def test_plan_wired_into_every_subsystem(self):
        compiled, config = self._compiled("rawcaudio", 2, "tlp")
        plan = FaultPlan(FaultConfig(seed=1))
        machine = VoltronMachine(compiled, config, faults=plan)
        assert machine.bus.faults is plan
        assert machine.network.faults is plan
        assert machine.tm.faults is plan
        assert all(icache.faults is plan for icache in machine.icaches)

    def test_no_plan_leaves_hooks_detached(self):
        compiled, config = self._compiled("rawcaudio", 2, "tlp")
        machine = VoltronMachine(compiled, config)
        assert machine.faults is None
        assert machine.bus.faults is None
        assert machine.network.faults is None
        assert machine.tm.faults is None

    def test_faulted_run_slower_but_architecturally_identical(self):
        compiled, config = self._compiled("rawcaudio", 2, "tlp")
        golden = VoltronMachine(compiled, config)
        golden_stats = golden.run()
        plan = FaultPlan(FaultConfig(seed=3, rate=0.05))
        machine = VoltronMachine(compiled, config, faults=plan)
        stats = machine.run()
        assert plan.injections() > 0
        assert stats.cycles > golden_stats.cycles
        assert machine.final_memory() == golden.final_memory()

    def test_faulted_run_is_reproducible(self):
        compiled, config = self._compiled("rawcaudio", 2, "ilp")
        runs = []
        for _ in range(2):
            plan = FaultPlan(FaultConfig(seed=8, rate=0.05))
            machine = VoltronMachine(compiled, config, faults=plan)
            stats = machine.run()
            runs.append((stats.cycles, plan.injections(), plan.summary()))
        assert runs[0] == runs[1]
