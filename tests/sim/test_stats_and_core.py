"""Unit tests for statistics containers and per-core state."""

import pytest

from repro.isa.machinecode import CoreBlock, CoreFunction
from repro.isa.operations import Imm, Opcode, Reg, RegFile, make_op
from repro.sim.core import Core
from repro.sim.stats import STALL_CATEGORIES, CoreStats, MachineStats


class TestCoreStats:
    def test_all_categories_present(self):
        stats = CoreStats()
        assert set(stats.stalls) == set(STALL_CATEGORIES)

    def test_stall_accumulates(self):
        stats = CoreStats()
        stats.stall("dstall")
        stats.stall("dstall", 5)
        assert stats.stalls["dstall"] == 6
        assert stats.total_stalls == 6

    def test_unknown_category_rejected(self):
        stats = CoreStats()
        with pytest.raises(ValueError, match="unknown stall category"):
            stats.stall("bogus")
        # The error message should name the legal categories so a typo'd
        # call site can be fixed without opening stats.py.
        with pytest.raises(ValueError, match="istall"):
            stats.stall("cache")
        # A rejected category must not leave a partial entry behind.
        assert set(stats.stalls) == set(STALL_CATEGORIES)
        assert stats.total_stalls == 0


class TestMachineStats:
    def test_per_core_containers_created(self):
        stats = MachineStats(n_cores=4)
        assert len(stats.cores) == 4

    def test_mean_stalls(self):
        stats = MachineStats(n_cores=2)
        stats.cores[0].stall("recv_data", 10)
        assert stats.mean_stalls("recv_data") == 5.0

    def test_mode_fraction(self):
        stats = MachineStats(n_cores=1)
        stats.mode_cycles["coupled"] = 30
        stats.mode_cycles["decoupled"] = 70
        assert stats.mode_fraction("decoupled") == 0.70
        empty = MachineStats(n_cores=1)
        assert empty.mode_fraction("coupled") == 0.0

    def test_summary_includes_stall_keys(self):
        summary = MachineStats(n_cores=2).summary()
        for category in STALL_CATEGORIES:
            assert f"stall_{category}" in summary

    def test_summary_stall_keys_sync_with_categories(self):
        """summary() and STALL_CATEGORIES must stay in lock-step: adding a
        category without surfacing it (or vice versa) is a silent
        reporting bug, so compare the *exact* sets."""
        summary = MachineStats(n_cores=2).summary()
        stall_keys = {key for key in summary if key.startswith("stall_")}
        assert stall_keys == {f"stall_{c}" for c in STALL_CATEGORIES}

    def test_summary_reports_mean_stalls(self):
        stats = MachineStats(n_cores=2)
        stats.cores[0].stall("barrier", 8)
        stats.cores[1].stall("barrier", 4)
        assert stats.summary()["stall_barrier"] == 6.0


def _core_with_block(slots, label="entry"):
    core = Core(0)
    cf = CoreFunction("main", label)
    cf.add_block(CoreBlock(label, slots=slots))
    core.push_frame(cf, return_dest=None)
    return core, cf


class TestCoreState:
    def test_position_and_advance(self):
        core, _ = _core_with_block([make_op(Opcode.NOP), make_op(Opcode.NOP)])
        assert core.position() == ("main", "entry", 0)
        core.advance_slot()
        assert core.position()[2] == 1
        core.advance_slot()
        assert core.at_block_end()

    def test_jump_resets_fetch_marker(self):
        core, cf = _core_with_block([make_op(Opcode.NOP)])
        cf.add_block(CoreBlock("next", slots=[make_op(Opcode.NOP)]))
        core.mark_fetched()
        assert not core.needs_fetch()
        core.jump("next")
        assert core.needs_fetch()
        assert core.position() == ("main", "next", 0)

    def test_scoreboard_gates_sources(self):
        core, _ = _core_with_block([make_op(Opcode.NOP)])
        r = Reg(RegFile.GPR, 0)
        op = make_op(Opcode.ADD, [Reg(RegFile.GPR, 1)], [r, Imm(1)])
        core.write_reg(r, 7, ready=10)
        assert not core.srcs_ready(op, 5)
        assert core.srcs_ready(op, 10)

    def test_immediates_always_ready(self):
        core, _ = _core_with_block([make_op(Opcode.NOP)])
        op = make_op(Opcode.ADD, [Reg(RegFile.GPR, 1)], [Imm(1), Imm(2)])
        assert core.srcs_ready(op, 0)

    def test_block_until_keeps_latest(self):
        core, _ = _core_with_block([make_op(Opcode.NOP)])
        core.block_until(10, "dstall")
        core.block_until(5, "istall")  # earlier: ignored
        assert core.next_free == 10
        assert core.pending_cause == "dstall"

    def test_checkpoint_and_rollback(self):
        core, cf = _core_with_block([make_op(Opcode.NOP)])
        cf.add_block(CoreBlock("retry", slots=[make_op(Opcode.NOP)]))
        r = Reg(RegFile.GPR, 0)
        core.write_reg(r, 1, ready=0)
        core.checkpoint_registers("retry")
        core.write_reg(r, 99, ready=0)
        label = core.rollback_registers()
        assert label == "retry"
        assert core.regs.read(r) == 1
        assert core.reg_ready == {}

    def test_call_stack(self):
        core, cf = _core_with_block([make_op(Opcode.NOP)])
        callee = CoreFunction("helper", "h_entry")
        callee.add_block(CoreBlock("h_entry", slots=[make_op(Opcode.NOP)]))
        dest = Reg(RegFile.GPR, 3)
        core.push_frame(callee, return_dest=dest)
        assert core.call_depth == 2
        assert core.position() == ("helper", "h_entry", 0)
        frame = core.pop_frame()
        assert frame.return_dest == dest
        assert core.position()[0] == "main"
