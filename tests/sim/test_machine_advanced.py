"""Advanced machine behaviors: transactions, observers, group limits,
credit stalls, and mode restoration around calls."""

import pytest

from repro.arch import four_core, mesh, single_core, two_core
from repro.compiler import VoltronCompiler, compile_program
from repro.isa import ProgramBuilder, run_program
from repro.isa.operations import Opcode
from repro.sim import VoltronMachine
from repro.workloads.kernels import KernelContext, doall_kernel, strand_kernel


def _doall_program(trips=40):
    pb = ProgramBuilder("t")
    fb = pb.function("main")
    fb.block("entry")
    ctx = KernelContext(pb=pb, fb=fb, seed=3)
    out = doall_kernel(ctx, trips=trips)
    fb.halt()
    return pb.finish(), out


class TestTransactionsThroughTheMachine:
    def test_commit_counts_match_chunks(self):
        program, out = _doall_program()
        compiled = compile_program(program, 4, "llp")
        machine = VoltronMachine(compiled, four_core())
        stats = machine.run()
        assert stats.tx_commits == 4
        assert stats.tx_aborts == 0
        assert stats.spawns == 3

    def test_tx_wait_stalls_enforce_ordered_commit(self):
        program, out = _doall_program()
        compiled = compile_program(program, 4, "llp")
        machine = VoltronMachine(compiled, four_core())
        stats = machine.run()
        # Later chunks usually wait for earlier ones at commit.
        total_tx_wait = sum(c.stalls["tx_wait"] for c in stats.cores)
        assert total_tx_wait > 0

    def test_rollback_reexecutes_to_correct_result(self):
        pb = ProgramBuilder("conflict")
        n = 32
        perm = pb.alloc("perm", n, init=[(i * 5) % n for i in range(n)])
        same = pb.alloc("same", n, init=[3] * n)
        cells = pb.alloc("cells", n)
        fb = pb.function("main", n_params=1)
        fb.block("entry")
        (which,) = fb.function.params
        clean = fb.cmp_eq(which, 0)
        base = fb.select(clean, perm.base, same.base)
        with fb.counted_loop("L", 0, n) as i:
            k = fb.load(base, i)
            v = fb.load(cells.base, k)
            fb.store(cells.base, k, fb.add(v, 1))
        fb.halt()
        program = pb.finish()
        compiled = compile_program(program, 4, "llp", profile_args=(0,))
        machine = VoltronMachine(compiled, four_core(), args=(1,))
        stats = machine.run()
        assert stats.tx_aborts > 0
        reference = run_program(program, (1,))
        assert machine.array_values("cells") == reference.array_values(
            program, "cells"
        )


class TestObservers:
    def test_observer_sees_executed_ops(self):
        program, out = _doall_program(trips=16)
        compiled = compile_program(program, 2, "ilp")
        machine = VoltronMachine(compiled, two_core())
        seen = []
        machine.op_observers.append(
            lambda cycle, core, op: seen.append((cycle, core, op.opcode))
        )
        stats = machine.run()
        assert len(seen) >= stats.total_ops()
        assert any(opcode is Opcode.PUT for _c, _k, opcode in seen)
        cycles = [c for c, _k, _o in seen]
        assert cycles == sorted(cycles)

    def test_no_observer_overhead_path(self):
        program, out = _doall_program(trips=16)
        compiled = compile_program(program, 2, "ilp")
        machine = VoltronMachine(compiled, two_core())
        stats = machine.run()
        assert stats.cycles > 0  # plain run without observers works


class TestGroupLimit:
    def test_compiling_beyond_stall_bus_group_runs_clustered(self):
        """Past the 4-core stall-bus group the compiler no longer
        rejects the machine: coupled regions execute as one clustered
        ensemble with the same final memory as the paper's grid."""
        program, _ = _doall_program()
        compiler = VoltronCompiler(program)
        small = VoltronMachine(compiler.compile("hybrid", mesh(4)), mesh(4))
        small.run()
        config = mesh(8)
        large = VoltronMachine(compiler.compile("hybrid", config), config)
        assert large.coupled_ensembles == [large.cores]
        large.run()
        assert large.final_memory() == small.final_memory()


class TestCreditStalls:
    def test_send_stall_counted_under_tiny_queues(self):
        import dataclasses

        from repro.arch.config import NetworkConfig

        pb = ProgramBuilder("t")
        fb = pb.function("main")
        fb.block("entry")
        ctx = KernelContext(pb=pb, fb=fb, seed=3)
        out = strand_kernel(ctx, trips=48)
        fb.halt()
        program = pb.finish()
        config = dataclasses.replace(
            mesh(4), network=NetworkConfig(queue_depth=1)
        )
        compiled = VoltronCompiler(program).compile("tlp", config)
        machine = VoltronMachine(compiled, config, max_cycles=5_000_000)
        stats = machine.run()
        reference = run_program(program)
        assert machine.array_values(out) == reference.array_values(program, out)
        # depth-1 queues force rendezvous: the machine must still finish
        # (flow control can slow it down but never deadlock it).
        assert stats.cycles > 0


class TestModeRestoreAroundCalls:
    def test_call_in_decoupled_region_restores_decoupled_mode(self):
        pb = ProgramBuilder("t")
        a = pb.alloc("a", 32, init=range(32))
        o = pb.alloc("o", 32)
        helper = pb.function("twist", n_params=1)
        helper.block("h")
        (x,) = helper.function.params
        helper.ret(helper.xor(helper.mul(x, 3), 5))
        fb = pb.function("main")
        fb.block("entry")
        with fb.counted_loop("L", 0, 32) as i:
            v = fb.load(a.base, i)
            w = fb.call("twist", [v])
            fb.store(o.base, i, w)
        fb.halt()
        program = pb.finish()
        reference = run_program(program)
        compiled = compile_program(program, 4, "tlp")
        machine = VoltronMachine(compiled, four_core())
        stats = machine.run()
        assert machine.array_values("o") == reference.array_values(program, "o")
        # Both modes really ran, and call sync stalls were paid.
        assert stats.mode_cycles["decoupled"] > 0
        assert sum(c.stalls["call_sync"] for c in stats.cores) > 0
